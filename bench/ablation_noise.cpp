// Ablation: measurement-noise robustness. Each candidate measurement is the
// mean of `repeats` timed runs; fewer repeats mean noisier feedback to the
// tuner. This sweep compares AutoTVM and BTED+BAO at 1, 3 and 10 repeats —
// the bootstrap ensemble is the paper's answer to noisy evaluations, so its
// advantage should widen as repeats shrink.
#include <cstdio>

#include "core/advanced_tuner.hpp"
#include "exp_common.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "support/string_util.hpp"
#include "tuner/xgb_tuner.hpp"

namespace {

using namespace aal;
using namespace aal::bench;

double run_with_repeats(const Workload& w, const GpuSpec& spec,
                        const TunerFactory& factory, int repeats,
                        std::uint64_t salt) {
  TuneOptions options;
  options.budget = std::min<std::int64_t>(budget(), 512);
  options.early_stopping = 0;
  double total = 0.0;
  for (int trial = 0; trial < trials(); ++trial) {
    TuningTask task(w, spec);
    SimulatedDevice device(spec, salt * 37 + static_cast<std::uint64_t>(trial));
    Measurer measurer(task, device, repeats);
    auto tuner = factory(nullptr);
    options.seed = salt * 53 + static_cast<std::uint64_t>(trial) + 1;
    const TuneResult result = tuner->tune(measurer, options);
    if (result.best) {
      total += task.profile(result.best->config).gflops(w.flops());
    }
  }
  return total / trials();
}

}  // namespace

int main() {
  set_log_threshold(LogLevel::kWarn);
  banner("Ablation: measurement noise", "timing repeats 1 / 3 / 10");

  const GpuSpec spec = GpuSpec::gtx1080ti();
  const auto tasks = extract_tasks(fuse(make_mobilenet_v1()));
  const Workload w = tasks[0].workload;
  std::printf("task: %s\n\n", w.brief().c_str());

  TextTable table;
  table.set_header({"repeats", "AutoTVM true GFLOPS", "BTED+BAO true GFLOPS",
                    "BAO advantage"});
  std::uint64_t salt = 1;
  for (int repeats : {1, 3, 10}) {
    const double autotvm = run_with_repeats(
        w, spec, autotvm_tuner_factory(), repeats, salt++);
    const double bao = run_with_repeats(
        w, spec, bted_bao_tuner_factory(), repeats, salt++);
    table.add_row({std::to_string(repeats), format_double(autotvm, 1),
                   format_double(bao, 1),
                   format_percent((bao - autotvm) / autotvm)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
