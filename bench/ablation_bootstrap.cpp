// Ablation: how many bootstrap evaluation functions (Gamma) does BAO need?
// The paper fixes Gamma = 2; this sweep checks 1 (no ensembling), 2, 4, 8
// on two representative MobileNet-v1 tasks. More resamples stabilize the
// acquisition but cost linearly more surrogate fits per iteration.
#include <chrono>
#include <cstdio>

#include "core/advanced_tuner.hpp"
#include "exp_common.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace aal;
  using namespace aal::bench;
  set_log_threshold(LogLevel::kWarn);
  banner("Ablation: bootstrap Gamma", "BAO with 1/2/4/8 resampled sets");

  const GpuSpec spec = GpuSpec::gtx1080ti();
  const auto tasks = extract_tasks(fuse(make_mobilenet_v1()));
  const Workload workloads[] = {tasks[0].workload, tasks[2].workload};

  TuneOptions options;
  options.budget = std::min<std::int64_t>(budget(), 512);
  options.early_stopping = 0;

  TextTable table;
  table.set_header({"task", "Gamma", "true best GFLOPS", "wall s/trial"});
  for (const Workload& w : workloads) {
    for (int gamma : {1, 2, 4, 8}) {
      const auto t0 = std::chrono::steady_clock::now();
      BaoParams bao;
      bao.gamma = gamma;
      const TunerFactory factory = [&](TransferContext*) {
        return std::make_unique<AdvancedActiveLearningTuner>(BtedParams{}, bao);
      };
      const TaskOutcome outcome = run_task(
          w, spec, factory, options, trials(),
          static_cast<std::uint64_t>(gamma) * 17);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count() /
          trials();
      table.add_row({w.brief(), std::to_string(gamma),
                     format_double(outcome.mean_true_gflops, 1),
                     format_double(wall, 2)});
    }
    table.add_separator();
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nExpected: Gamma=1 is noticeably less stable; returns flatten "
              "by Gamma=2-4\nwhile cost grows linearly — supporting the "
              "paper's Gamma=2 choice.\n");
  return 0;
}
