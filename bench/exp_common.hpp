// Shared helpers for the experiment harnesses in bench/.
//
// Every harness reproduces one table or figure of the paper. Runtime knobs
// come from the environment so `for b in build/bench/*; do $b; done` stays
// within a sane wall-clock budget on one core while a full paper-scale run
// remains one variable away:
//   AAL_TRIALS  trials averaged per (task, tuner) pair   (default 3;  paper 10)
//   AAL_BUDGET  measurement budget per task              (default 1024; paper ~1024)
//   AAL_RUNS    inference runs per deployed model        (default 600; paper 600)
//   AAL_JOBS    concurrent tuning lanes / grid cells     (default 1)
//   AAL_METRICS set non-zero to print a metrics summary  (default off)
//
// Results are bitwise-identical for every AAL_JOBS value: seeds derive from
// (task, arm, trial) positions and measurement noise is counter-based.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "measure/backend.hpp"
#include "measure/measure.hpp"
#include "obs/metrics.hpp"
#include "pipeline/model_tuner.hpp"
#include "support/logging.hpp"
#include "support/stats.hpp"
#include "tuner/tuning_session.hpp"

namespace aal::bench {

inline std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoll(value);
}

inline int trials() { return static_cast<int>(env_int("AAL_TRIALS", 3)); }
inline std::int64_t budget() { return env_int("AAL_BUDGET", 1024); }
inline int latency_runs() { return static_cast<int>(env_int("AAL_RUNS", 600)); }
inline int jobs() {
  const auto j = env_int("AAL_JOBS", 1);
  return j < 1 ? 1 : static_cast<int>(j);
}
inline bool metrics_enabled() { return env_int("AAL_METRICS", 0) != 0; }

/// Process-wide registry the harnesses report into when AAL_METRICS is set
/// (null otherwise, which keeps the hot paths metric-free).
inline MetricsRegistry* shared_metrics() {
  static MetricsRegistry registry;
  return metrics_enabled() ? &registry : nullptr;
}

/// Prints the shared registry (no-op when AAL_METRICS is off).
inline void print_metrics_summary() {
  if (MetricsRegistry* m = shared_metrics()) {
    std::printf("\nmetrics (AAL_METRICS=1):\n%s", m->to_text().c_str());
  }
}

/// The paper's three experiment arms, in Table I column order.
struct ExperimentArm {
  std::string label;
  TunerFactory factory;
};

inline std::vector<ExperimentArm> paper_arms() {
  return {
      {"AutoTVM", autotvm_tuner_factory()},
      {"BTED", bted_tuner_factory()},
      {"BTED+BAO", bted_bao_tuner_factory()},
  };
}

/// Averaged single-task tuning outcome across trials.
struct TaskOutcome {
  double mean_best_gflops = 0.0;       // as measured (noisy)
  double mean_true_gflops = 0.0;       // noise-free quality of the pick
  double mean_configs = 0.0;           // measured configurations spent
  std::vector<std::int64_t> best_flats;  // per trial, for deployment
};

/// Runs one tuner arm on one workload `trials` times with distinct seeds.
/// Each trial drives a TuningSession over `backend` (serial when null);
/// since measurement noise is counter-based the backend never changes the
/// numbers, only the wall-clock.
inline TaskOutcome run_task(const Workload& workload, const GpuSpec& spec,
                            const TunerFactory& factory,
                            const TuneOptions& base_options, int num_trials,
                            std::uint64_t salt,
                            MeasureBackend* backend = nullptr) {
  TaskOutcome outcome;
  for (int trial = 0; trial < num_trials; ++trial) {
    TuningTask task(workload, spec);
    SimulatedDevice device(spec,
                           salt * 0x9E3779B9ULL + static_cast<std::uint64_t>(trial));
    Measurer measurer(task, device);
    auto tuner = factory(nullptr);
    TuneOptions options = base_options;
    options.seed = salt * 131 + static_cast<std::uint64_t>(trial) + 1;
    options.obs.metrics = shared_metrics();
    SerialBackend serial;
    TuningSession session(*tuner, measurer, options,
                          backend != nullptr ? *backend : static_cast<MeasureBackend&>(serial));
    const TuneResult result = session.run();
    outcome.mean_best_gflops += result.best_gflops();
    outcome.mean_configs += static_cast<double>(result.num_measured);
    if (result.best) {
      outcome.mean_true_gflops +=
          task.profile(result.best->config).gflops(workload.flops());
      outcome.best_flats.push_back(result.best->config.flat);
    } else {
      outcome.best_flats.push_back(-1);
    }
  }
  outcome.mean_best_gflops /= num_trials;
  outcome.mean_true_gflops /= num_trials;
  outcome.mean_configs /= num_trials;
  return outcome;
}

/// Prints the standard harness banner.
inline void banner(const char* experiment, const char* what) {
  std::printf("=======================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("trials=%d budget=%lld runs=%d jobs=%d (override via AAL_TRIALS "
              "/ AAL_BUDGET / AAL_RUNS / AAL_JOBS)\n",
              trials(), static_cast<long long>(budget()), latency_runs(),
              jobs());
  std::printf("=======================================================\n");
}

}  // namespace aal::bench
