// Ablation: initialization strategies. Compares random initialization
// (AutoTVM), plain TED (B = 1), BTED at several (B, M) settings, and the
// literal Euclidean-distance kernel vs the default RBF kernel — all feeding
// the same XGB tuner, so only the initial set differs.
#include <cstdio>

#include "core/bted.hpp"
#include "exp_common.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "support/string_util.hpp"
#include "tuner/xgb_tuner.hpp"

namespace {

using namespace aal;
using namespace aal::bench;

TunerFactory xgb_with_init(InitSampler init, const char* name) {
  return [init = std::move(init), name](TransferContext*) {
    auto tuner = std::make_unique<XgbTuner>(
        std::make_shared<GbdtSurrogateFactory>(), init);
    tuner->set_name(name);
    return tuner;
  };
}

}  // namespace

int main() {
  set_log_threshold(LogLevel::kWarn);
  banner("Ablation: BTED initialization", "random vs TED vs BTED variants");

  const GpuSpec spec = GpuSpec::gtx1080ti();
  const auto tasks = extract_tasks(fuse(make_mobilenet_v1()));
  const Workload w = tasks[0].workload;
  std::printf("task: %s\n\n", w.brief().c_str());

  TuneOptions options;
  options.budget = std::min<std::int64_t>(budget(), 512);
  options.early_stopping = 0;

  struct Variant {
    std::string label;
    TunerFactory factory;
  };
  std::vector<Variant> variants;
  variants.push_back({"random init (AutoTVM)",
                      xgb_with_init(random_init_sampler(), "random-init")});
  {
    BtedParams p;  // plain TED over one M-sized draw
    p.num_batches = 1;
    variants.push_back({"plain TED (B=1, M=500)",
                        xgb_with_init(bted_init_sampler(p), "ted")});
  }
  for (int batches : {5, 10, 20}) {
    BtedParams p;
    p.num_batches = batches;
    variants.push_back({"BTED B=" + std::to_string(batches) + ", M=500",
                        xgb_with_init(bted_init_sampler(p), "bted")});
  }
  {
    BtedParams p;
    p.batch_sample_size = 200;
    variants.push_back({"BTED B=10, M=200",
                        xgb_with_init(bted_init_sampler(p), "bted")});
  }
  {
    BtedParams p;
    p.kernel = TedKernel::kEuclideanDistance;
    variants.push_back({"BTED, literal distance kernel",
                        xgb_with_init(bted_init_sampler(p), "bted-lit")});
  }

  TextTable table;
  table.set_header({"initialization", "true best GFLOPS", "configs"});
  std::uint64_t salt = 1;
  for (const auto& v : variants) {
    const TaskOutcome outcome =
        run_task(w, spec, v.factory, options, trials(), salt++);
    table.add_row({v.label, format_double(outcome.mean_true_gflops, 1),
                   format_double(outcome.mean_configs, 0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nPaper setting: B=10, M=500, m=64, mu=0.1. The literal "
              "distance matrix is not\nPSD, so its deflation degenerates — "
              "see DESIGN.md for why the default is RBF.\n");
  return 0;
}
