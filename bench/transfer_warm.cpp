// Cross-run transfer harness: cold-vs-warm tuning over a shared store
// ("aaltune-bench/v1" JSON, suite "transfer" — see docs/PERF.md).
//
// The flow mirrors the fleet workflow the transfer layer exists for: one
// run tunes model A against a store, a later run tunes model B (same
// operator kinds, different shapes, so B's task keys are absent from the
// store) with --transfer. Beyond timing, every warm pass is a correctness
// audit: the harness fails hard unless the warm run activated a prior for
// every task AND measured at most half the configurations of the cold run
// — the same pin tests/integration/test_transfer.cpp enforces — so the
// checked-in BENCH_transfer.json baseline doubles as a transfer-quality
// record.
//
// Entries:
//   transfer_cold_tune   model B, no store, full-width initialization
//   transfer_warm_tune   model B over model A's store with transfer on
//                        (baseline = the cold median, so speedup is the
//                        end-to-end warm-start win)
//   transfer_prior_build prior assembly alone: index + embed + rank +
//                        seed-mapping + meta fit for one task
//
// Usage: transfer_warm [--repeats N] [--scale full|smoke] [--out FILE].
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "hwsim/gpu_spec.hpp"
#include "obs/metrics.hpp"
#include "pipeline/model_tuner.hpp"
#include "store/record_store.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"
#include "transfer/transfer_prior.hpp"

namespace {

using namespace aal;
namespace fs = std::filesystem;

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 ? samples[n / 2]
               : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, long long>> params;
  double median_ms = 0.0;
  double baseline_median_ms = 0.0;  // > 0: emit baseline + speedup
};

void write_json(std::FILE* out, const std::string& scale, int repeats,
                const std::vector<BenchEntry>& entries) {
#ifdef NDEBUG
  const char* build = "Release";
#else
  const char* build = "Debug";
#endif
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"aaltune-bench/v1\",\n");
  std::fprintf(out, "  \"suite\": \"transfer\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n", scale.c_str());
  std::fprintf(out, "  \"build\": \"%s\",\n", build);
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"threads\": %zu,\n", ThreadPool::shared().size());
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    std::fprintf(out, "    {\"name\": \"%s\", \"params\": {", e.name.c_str());
    for (std::size_t p = 0; p < e.params.size(); ++p) {
      std::fprintf(out, "%s\"%s\": %lld", p ? ", " : "",
                   e.params[p].first.c_str(), e.params[p].second);
    }
    std::fprintf(out, "}, \"median_ms\": %.6f", e.median_ms);
    if (e.baseline_median_ms > 0.0) {
      std::fprintf(out, ", \"baseline_median_ms\": %.6f, \"speedup\": %.3f",
                   e.baseline_median_ms,
                   e.baseline_median_ms / e.median_ms);
    }
    std::fprintf(out, "}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "transfer_warm: FAILED: %s\n", what.c_str());
  std::exit(1);
}

/// Model A — the fleet's history donor: conv + depthwise + dense.
Graph model_a() {
  Graph g("bench_cnn_a");
  NodeId x = g.add_input("data", {Shape{1, 8, 16, 16}, DType::kFloat32});
  x = g.conv2d("conv1", x, 16, 3, 1, 1);
  x = g.relu("conv1_relu", x);
  x = g.depthwise_conv2d("dw1", x, 3, 1, 1);
  x = g.relu("dw1_relu", x);
  x = g.max_pool2d("pool", x, 2, 2);
  x = g.flatten("flatten", x);
  x = g.dense("fc", x, 10);
  g.softmax("prob", x);
  g.validate();
  return g;
}

/// Model B — same kinds, shifted shapes: its task keys are absent from
/// A's store, so every saving is cross-task transfer, not record replay.
Graph model_b() {
  Graph g("bench_cnn_b");
  NodeId x = g.add_input("data", {Shape{1, 8, 16, 16}, DType::kFloat32});
  x = g.conv2d("conv1", x, 24, 3, 1, 1);
  x = g.relu("conv1_relu", x);
  x = g.depthwise_conv2d("dw1", x, 3, 1, 1);
  x = g.relu("dw1_relu", x);
  x = g.max_pool2d("pool", x, 2, 2);
  x = g.flatten("flatten", x);
  x = g.dense("fc", x, 16);
  g.softmax("prob", x);
  g.validate();
  return g;
}

struct TuneShape {
  std::int64_t budget = 80;
  std::int64_t early_stop = 12;
  int num_initial = 48;  // the breadth the prior replaces with history
  int batch_size = 8;
};

ModelTuneOptions make_options(const TuneShape& shape) {
  ModelTuneOptions o;
  o.tune.budget = shape.budget;
  o.tune.early_stopping = shape.early_stop;
  o.tune.num_initial = shape.num_initial;
  o.tune.batch_size = shape.batch_size;
  return o;
}

struct TimedTune {
  double ms = 0.0;
  std::int64_t measured = 0;
};

TimedTune timed_tune(const Graph& g, const TuneShape& shape,
                     RecordStore* store, bool transfer) {
  MetricsRegistry metrics;
  ModelTuneOptions options = make_options(shape);
  options.store = store;
  options.metrics = &metrics;
  options.transfer.enabled = transfer;
  const auto t0 = std::chrono::steady_clock::now();
  const ModelTuneReport report =
      tune_model(g, GpuSpec::gtx1080ti(), bted_bao_tuner_factory(), options);
  const auto t1 = std::chrono::steady_clock::now();
  if (transfer) {
    const std::int64_t tasks = static_cast<std::int64_t>(report.tasks.size());
    if (metrics.counter("transfer.activations").value() != tasks) {
      fail("warm run activated a prior for " +
           std::to_string(metrics.counter("transfer.activations").value()) +
           " of " + std::to_string(tasks) + " tasks");
    }
    if (metrics.counter("store.hits").value() != 0) {
      fail("model B's tasks were preloaded from the store — the harness "
           "is measuring record replay, not transfer");
    }
  }
  for (const TaskTuneReport& t : report.tasks) {
    if (!t.result.best.has_value()) fail("no best config for " + t.task_key);
  }
  return {std::chrono::duration<double, std::milli>(t1 - t0).count(),
          metrics.counter("measure.configs_measured").value()};
}

double timed_prior_build(const RecordStore& store) {
  Conv2dWorkload w;
  w.batch = 1;
  w.in_channels = 8;
  w.height = 16;
  w.width = 16;
  w.out_channels = 24;
  w.kernel_h = 3;
  w.kernel_w = 3;
  w.pad_h = 1;
  w.pad_w = 1;
  const TuningTask task(Workload::conv2d(w), GpuSpec::gtx1080ti());
  TransferParams params;
  params.enabled = true;
  const auto t0 = std::chrono::steady_clock::now();
  const TransferPrior prior =
      build_transfer_prior(task, store, params, /*seed=*/1, Obs{});
  const auto t1 = std::chrono::steady_clock::now();
  if (!prior.active()) fail("prior_build produced an inactive prior");
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  set_log_threshold(LogLevel::kWarn);
  int repeats = 5;
  std::string scale = "full";
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "transfer_warm: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--repeats") {
      repeats = std::atoi(next().c_str());
    } else if (arg == "--scale") {
      scale = next();
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: transfer_warm [--repeats N] [--scale full|smoke] "
                   "[--out FILE]\n");
      return 2;
    }
  }
  if ((scale != "full" && scale != "smoke") || repeats < 1) {
    std::fprintf(stderr, "transfer_warm: bad --scale or --repeats\n");
    return 2;
  }
  const bool smoke = scale == "smoke";

  TuneShape shape;
  shape.budget = smoke ? 80 : 160;
  shape.num_initial = smoke ? 48 : 64;  // full scale = the paper's m = 64

  const fs::path dir =
      fs::temp_directory_path() /
      ("aal_transfer_warm_" + std::to_string(static_cast<long long>(
                                  ::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // One untimed donor run of model A fills the store every warm pass reads.
  const std::string store_dir = (dir / "store").string();
  {
    RecordStore store(store_dir);
    (void)timed_tune(model_a(), shape, &store, /*transfer=*/false);
    if (store.size() == 0) fail("donor run left the store empty");
  }

  const Graph b = model_b();
  const auto tune_params = [&](long long extra_warm) {
    std::vector<std::pair<std::string, long long>> params = {
        {"tasks", 3},
        {"budget", shape.budget},
        {"num_initial", shape.num_initial}};
    if (extra_warm >= 0) params.push_back({"warm_initial", extra_warm});
    return params;
  };

  std::vector<BenchEntry> entries;
  std::vector<double> cold_ms, warm_ms;
  std::int64_t cold_measured = 0, warm_measured = 0;
  for (int r = 0; r < repeats; ++r) {
    const TimedTune cold = timed_tune(b, shape, nullptr, /*transfer=*/false);
    cold_ms.push_back(cold.ms);
    cold_measured = cold.measured;  // deterministic: identical every repeat
  }
  for (int r = 0; r < repeats; ++r) {
    RecordStore store(store_dir, {.read_only = true});
    const TimedTune warm = timed_tune(b, shape, &store, /*transfer=*/true);
    warm_ms.push_back(warm.ms);
    warm_measured = warm.measured;
  }
  // The pin (same as tests/integration/test_transfer.cpp): the warm run
  // measures at most half the configurations of the cold run.
  if (warm_measured <= 0 || warm_measured * 2 > cold_measured) {
    fail("measured-config reduction below 2x: warm=" +
         std::to_string(warm_measured) +
         " cold=" + std::to_string(cold_measured));
  }
  std::fprintf(stderr, "transfer_warm: measured configs cold=%lld warm=%lld\n",
               static_cast<long long>(cold_measured),
               static_cast<long long>(warm_measured));

  const double cold_median = median(std::move(cold_ms));
  entries.push_back({"transfer_cold_tune", tune_params(-1), cold_median});
  entries.push_back({"transfer_warm_tune",
                     tune_params(TransferParams{}.warm_num_initial),
                     median(std::move(warm_ms)), cold_median});
  {
    RecordStore store(store_dir, {.read_only = true});
    std::vector<double> build_ms;
    for (int r = 0; r < repeats; ++r) {
      build_ms.push_back(timed_prior_build(store));
    }
    entries.push_back(
        {"transfer_prior_build",
         {{"store_records", static_cast<long long>(store.size())}},
         median(std::move(build_ms))});
  }

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "transfer_warm: cannot open %s\n",
                   out_path.c_str());
      return 1;
    }
  }
  write_json(out, scale, repeats, entries);
  if (out != stdout) std::fclose(out);
  fs::remove_all(dir);
  return 0;
}
