// Ablation: evaluation-function family under BS/BAO. The paper claims the
// framework "is general enough to handle various types of evaluation
// function f"; this sweep runs the full BTED+BAO tuner with GBDT, ridge
// regression and k-NN surrogates.
#include <chrono>
#include <cstdio>

#include "core/advanced_tuner.hpp"
#include "exp_common.hpp"
#include "ml/mlp.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace aal;
  using namespace aal::bench;
  set_log_threshold(LogLevel::kWarn);
  banner("Ablation: surrogate family", "BAO with GBDT / ridge / kNN");

  const GpuSpec spec = GpuSpec::gtx1080ti();
  const auto tasks = extract_tasks(fuse(make_mobilenet_v1()));
  const Workload workloads[] = {tasks[0].workload, tasks[1].workload};

  // Smaller budget than the other ablations: the MLP refits every BAO
  // iteration and is the costliest family even at reduced size.
  TuneOptions options;
  options.budget = std::min<std::int64_t>(budget(), 256);
  options.early_stopping = 0;

  MlpParams mlp;  // downsized for per-iteration refits
  mlp.hidden = {32, 16};
  mlp.epochs = 25;

  struct Family {
    const char* label;
    std::shared_ptr<const SurrogateFactory> factory;
  };
  const Family families[] = {
      {"gbdt",
       std::make_shared<GbdtSurrogateFactory>(
           AdvancedActiveLearningTuner::default_bootstrap_gbdt_params())},
      {"ridge", std::make_shared<RidgeSurrogateFactory>()},
      {"knn(5)", std::make_shared<KnnSurrogateFactory>(5)},
      {"mlp", std::make_shared<MlpSurrogateFactory>(mlp)},
  };

  TextTable table;
  table.set_header({"task", "surrogate", "true best GFLOPS", "wall s/trial"});
  std::uint64_t salt = 1;
  for (const Workload& w : workloads) {
    for (const Family& family : families) {
      const auto t0 = std::chrono::steady_clock::now();
      const TunerFactory factory = [&](TransferContext*) {
        return std::make_unique<AdvancedActiveLearningTuner>(
            BtedParams{}, BaoParams{}, family.factory);
      };
      const TaskOutcome outcome =
          run_task(w, spec, factory, options, trials(), salt++);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count() /
          trials();
      table.add_row({w.brief(), family.label,
                     format_double(outcome.mean_true_gflops, 1),
                     format_double(wall, 2)});
    }
    table.add_separator();
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nExpected: GBDT leads (it models knob interactions); ridge "
              "is fast but blind to\ninteractions; kNN sits between. All "
              "three run unchanged under BS/BAO.\n");
  return 0;
}
