// Ablation: BAO's adaptive neighborhood. Sweeps the base radius R, the
// growth factor tau, disabling adaptivity (tau -> 1+eps), the literal
// ceil in Equation (1) vs the raw ratio, and re-centering on the best-so-far
// instead of the last selection.
#include <cstdio>

#include "core/advanced_tuner.hpp"
#include "exp_common.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "support/string_util.hpp"

namespace {

using namespace aal;
using namespace aal::bench;

double run_variant(const Workload& w, const GpuSpec& spec,
                   const BaoParams& bao, std::uint64_t salt) {
  TuneOptions options;
  options.budget = std::min<std::int64_t>(budget(), 512);
  options.early_stopping = 0;
  const TunerFactory factory = [&](TransferContext*) {
    return std::make_unique<AdvancedActiveLearningTuner>(BtedParams{}, bao);
  };
  return run_task(w, spec, factory, options, trials(), salt).mean_true_gflops;
}

}  // namespace

int main() {
  set_log_threshold(LogLevel::kWarn);
  banner("Ablation: adaptive neighborhood", "R / tau / Eq.(1) variants");

  const GpuSpec spec = GpuSpec::gtx1080ti();
  const auto tasks = extract_tasks(fuse(make_mobilenet_v1()));
  const Workload w = tasks[2].workload;  // pointwise conv, 5.9x10^7 points
  std::printf("task: %s\n\n", w.brief().c_str());

  TextTable table;
  table.set_header({"variant", "true best GFLOPS"});
  std::uint64_t salt = 1;

  for (double radius : {1.5, 3.0, 6.0}) {
    BaoParams bao;
    bao.radius = radius;
    table.add_row({"R = " + format_double(radius, 1),
                   format_double(run_variant(w, spec, bao, salt++), 1)});
  }
  table.add_separator();
  {
    BaoParams bao;
    bao.metric = BaoMetric::kChoice;
    table.add_row({"R in choice-index space (ablation)",
                   format_double(run_variant(w, spec, bao, salt++), 1)});
  }
  {
    BaoParams bao;
    bao.compound_radius = true;
    table.add_row({"compounding radius growth",
                   format_double(run_variant(w, spec, bao, salt++), 1)});
  }
  table.add_separator();
  for (double tau : {1.001, 1.5, 3.0}) {
    BaoParams bao;
    bao.tau = tau;
    const std::string label =
        tau < 1.01 ? "tau ~= 1 (adaptivity off)" : "tau = " + format_double(tau, 1);
    table.add_row({label, format_double(run_variant(w, spec, bao, salt++), 1)});
  }
  table.add_separator();
  {
    BaoParams bao;
    bao.literal_ceil = false;
    table.add_row({"Eq.(1) raw ratio (no ceil)",
                   format_double(run_variant(w, spec, bao, salt++), 1)});
  }
  {
    BaoParams bao;
    bao.recentre_on_best = true;
    table.add_row({"re-centre on best-so-far",
                   format_double(run_variant(w, spec, bao, salt++), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nPaper setting: R=3, tau=1.5, eta=0.05 with the printed ceil "
              "(which makes the\ntrigger fire exactly when the last step "
              "regressed).\n");
  return 0;
}
