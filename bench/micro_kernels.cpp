// Kernel-layer benchmark harness: baseline-vs-optimized wall-clock for the
// dense primitives (support/dense.hpp) and the tuner stages rebuilt on top
// of them (TED selection, bootstrap rounds, BTED initialization).
//
// Unlike bench/micro_components.cpp (google-benchmark, human-readable),
// this harness emits machine-readable JSON ("aaltune-bench/v1", see
// docs/PERF.md) so CI can validate the schema and the checked-in
// BENCH_kernels.json / BENCH_tuner.json stay diffable. Each entry reports
// the median of --repeats runs; "baseline" entries re-run the pre-kernel-
// layer scalar implementations, replicated below verbatim so the comparison
// survives future rewrites of the library code.
//
// Usage: micro_kernels --suite kernels|tuner [--repeats N] [--scale
// full|smoke] [--target NAME] [--out FILE]. --scale smoke shrinks every
// problem so the CI bench-smoke job finishes in seconds; checked-in numbers
// use full scale. --target picks the deployment target the tuner suite's
// task binds to (default gpu-pascal); the per-target profile_batch:<name>
// entries always cover every registered target, so each backend's device
// model has a checked-in baseline entry.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/bootstrap.hpp"
#include "core/bted.hpp"
#include "core/ted.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "hwsim/target.hpp"
#include "measure/tuning_task.hpp"
#include "ml/surrogate.hpp"
#include "pipeline/model_tuner.hpp"
#include "support/dense.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace aal;

// ---------------------------------------------------------------------------
// Timing

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 ? samples[n / 2]
               : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

/// Median over `repeats` timed runs of `iters` back-to-back calls each
/// (iters > 1 amortizes clock granularity for sub-millisecond kernels).
double time_median_ms(int repeats, int iters, const std::function<void()>& fn) {
  fn();  // warm-up: page in code and data before the first sample
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count() /
                      iters);
  }
  return median(std::move(samples));
}

/// Defeat dead-code elimination without google-benchmark.
volatile double g_sink = 0.0;
void sink(double v) { g_sink = g_sink + v; }

// ---------------------------------------------------------------------------
// Result collection / JSON emission

struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, long long>> params;
  double median_ms = 0.0;
  double baseline_median_ms = -1.0;  // < 0 means "no baseline"
};

void write_json(std::FILE* out, const std::string& suite,
                const std::string& scale, int repeats,
                const std::vector<BenchEntry>& entries) {
#ifdef NDEBUG
  const char* build = "Release";
#else
  const char* build = "Debug";
#endif
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"aaltune-bench/v1\",\n");
  std::fprintf(out, "  \"suite\": \"%s\",\n", suite.c_str());
  std::fprintf(out, "  \"scale\": \"%s\",\n", scale.c_str());
  std::fprintf(out, "  \"build\": \"%s\",\n", build);
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"threads\": %zu,\n", ThreadPool::shared().size());
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    std::fprintf(out, "    {\"name\": \"%s\", \"params\": {", e.name.c_str());
    for (std::size_t p = 0; p < e.params.size(); ++p) {
      std::fprintf(out, "%s\"%s\": %lld", p ? ", " : "",
                   e.params[p].first.c_str(), e.params[p].second);
    }
    std::fprintf(out, "}, \"median_ms\": %.6f", e.median_ms);
    if (e.baseline_median_ms >= 0.0) {
      std::fprintf(out, ", \"baseline_median_ms\": %.6f, \"speedup\": %.3f",
                   e.baseline_median_ms,
                   e.baseline_median_ms / std::max(e.median_ms, 1e-12));
    }
    std::fprintf(out, "}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

// ---------------------------------------------------------------------------
// Pre-PR scalar baselines, replicated verbatim (do NOT "optimize" these:
// they are the yardstick the checked-in speedups are measured against).

/// Two-pass column standardization as ted.cpp had it before the Welford
/// rewrite (satellite fix in this PR).
void two_pass_standardize(dense::Matrix& x) {
  if (x.empty()) return;
  const double n = static_cast<double>(x.rows);
  for (std::size_t c = 0; c < x.cols; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < x.rows; ++r) sum += x.at(r, c);
    const double mean = sum / n;
    double var = 0.0;
    for (std::size_t r = 0; r < x.rows; ++r) {
      const double d = x.at(r, c) - mean;
      var += d * d;
    }
    const double stddev = std::sqrt(var / n);
    for (std::size_t r = 0; r < x.rows; ++r) {
      x.at(r, c) = stddev < 1e-12 ? 0.0 : (x.at(r, c) - mean) / stddev;
    }
  }
}

/// The scalar TED exactly as core/ted.cpp implemented it before this PR:
/// per-pair distance loops, full materialized kernel, per-pick column-norm
/// rescan, scalar read-modify-write deflation.
std::vector<std::size_t> ted_select_scalar(
    std::vector<std::vector<double>> x, std::size_t m,
    const TedParams& params = {}) {
  const std::size_t n = x.size();
  if (n == 0) return {};
  m = std::min(m, n);
  standardize_columns(x);
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < x[i].size(); ++c) {
        const double d = x[i][c] - x[j][c];
        acc += d * d;
      }
      dist[i * n + j] = dist[j * n + i] = std::sqrt(acc);
    }
  }
  std::vector<double> k(n * n, 0.0);
  if (params.kernel == TedKernel::kEuclideanDistance) {
    k = dist;
  } else {
    double sigma = params.rbf_sigma;
    if (sigma <= 0.0) {
      std::vector<double> off;
      off.reserve(n * (n - 1) / 2);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) off.push_back(dist[i * n + j]);
      }
      sigma = off.empty() ? 1.0 : std::max(1e-9, median(std::move(off)));
    }
    const double inv = 1.0 / (2.0 * sigma * sigma);
    for (std::size_t i = 0; i < n * n; ++i) {
      k[i] = std::exp(-dist[i] * dist[i] * inv);
    }
  }
  std::vector<std::size_t> selected;
  std::vector<bool> taken(n, false);
  std::vector<double> col(n);
  for (std::size_t pick = 0; pick < m; ++pick) {
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_v = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (taken[v]) continue;
      double norm_sq = 0.0;
      for (std::size_t u = 0; u < n; ++u) {
        norm_sq += k[v * n + u] * k[v * n + u];
      }
      const double score = norm_sq / (std::max(k[v * n + v], 0.0) + params.mu);
      if (score > best_score) {
        best_score = score;
        best_v = v;
      }
    }
    taken[best_v] = true;
    selected.push_back(best_v);
    const double denom = std::max(k[best_v * n + best_v], 0.0) + params.mu;
    for (std::size_t u = 0; u < n; ++u) col[u] = k[best_v * n + u];
    for (std::size_t i = 0; i < n; ++i) {
      const double ci = col[i] / denom;
      if (ci == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) k[i * n + j] -= ci * col[j];
    }
  }
  return selected;
}

// ---------------------------------------------------------------------------
// Inputs

dense::Matrix random_matrix(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  dense::Matrix x(n, d);
  for (double& v : x.data) v = rng.next_double(-1.0, 1.0);
  return x;
}

std::vector<std::vector<double>> to_rows(const dense::Matrix& x) {
  std::vector<std::vector<double>> rows(x.rows, std::vector<double>(x.cols));
  for (std::size_t r = 0; r < x.rows; ++r) {
    std::copy(x.row(r), x.row(r) + x.cols, rows[r].begin());
  }
  return rows;
}

const Workload& mobilenet_t1_workload() {
  static const Workload workload =
      extract_tasks(fuse(make_mobilenet_v1()))[0].workload;
  return workload;
}

TuningTask mobilenet_t1(const std::string& target) {
  return TuningTask(mobilenet_t1_workload(), make_target(target));
}

Dataset measured_dataset(const TuningTask& task, std::size_t rows) {
  Rng rng(42);
  Dataset data(static_cast<std::size_t>(task.space().feature_dim()));
  for (const Config& c :
       task.space().sample_distinct(static_cast<std::int64_t>(rows), rng)) {
    const KernelProfile p = task.profile(c);
    data.add_row(task.space().features(c),
                 p.valid ? p.gflops(task.workload().flops()) : 0.0);
  }
  return data;
}

// ---------------------------------------------------------------------------
// Suites

std::vector<BenchEntry> run_kernels_suite(int repeats, bool smoke) {
  std::vector<BenchEntry> out;

  {  // Gram matrix: blocked vs naive triple loop.
    const std::size_t n = smoke ? 64 : 512, d = 16;
    const dense::Matrix x = random_matrix(n, d, 11);
    std::vector<double> g;
    BenchEntry e{"gram",
                 {{"n", static_cast<long long>(n)},
                  {"d", static_cast<long long>(d)}}};
    e.median_ms = time_median_ms(repeats, smoke ? 8 : 3, [&] {
      dense::gram(x, g);
      sink(g[0]);
    });
    e.baseline_median_ms = time_median_ms(repeats, smoke ? 8 : 3, [&] {
      dense::gram_naive(x, g);
      sink(g[0]);
    });
    out.push_back(std::move(e));
  }

  {  // Pairwise squared distance: Gram-identity build vs per-pair loops.
    const std::size_t n = smoke ? 64 : 1024, d = 16;
    const dense::Matrix x = random_matrix(n, d, 12);
    std::vector<double> sq;
    BenchEntry e{"pairwise_sq_dist",
                 {{"n", static_cast<long long>(n)},
                  {"d", static_cast<long long>(d)}}};
    e.median_ms = time_median_ms(repeats, smoke ? 8 : 2, [&] {
      dense::pairwise_sq_dist(x, sq);
      sink(sq[1]);
    });
    e.baseline_median_ms = time_median_ms(repeats, smoke ? 8 : 2, [&] {
      dense::pairwise_sq_dist_naive(x, sq);
      sink(sq[1]);
    });
    out.push_back(std::move(e));
  }

  {  // Column standardization: one Welford pass vs two-pass. Both branches
     // copy the input first (the op mutates), so the copy cost cancels.
    const std::size_t n = smoke ? 128 : 2000, d = 16;
    const dense::Matrix x = random_matrix(n, d, 13);
    dense::Matrix scratch;
    BenchEntry e{"standardize_columns",
                 {{"n", static_cast<long long>(n)},
                  {"d", static_cast<long long>(d)}}};
    e.median_ms = time_median_ms(repeats, smoke ? 50 : 100, [&] {
      scratch = x;
      dense::standardize_columns(scratch);
      sink(scratch.at(0, 0));
    });
    e.baseline_median_ms = time_median_ms(repeats, smoke ? 50 : 100, [&] {
      scratch = x;
      two_pass_standardize(scratch);
      sink(scratch.at(0, 0));
    });
    out.push_back(std::move(e));
  }

  {  // TED selection, the acceptance benchmark: kernel-layer path (lazy
     // deflation at this n) vs the pre-PR scalar path, identical picks.
    struct Shape {
      std::size_t n, d, m;
      int iters;
    };
    const std::vector<Shape> shapes =
        smoke ? std::vector<Shape>{{128, 16, 8, 2}, {160, 16, 16, 2}}
              : std::vector<Shape>{{2000, 16, 16, 1},
                                   {2000, 16, 64, 1},
                                   {500, 16, 64, 3}};
    for (const Shape& s : shapes) {
      const dense::Matrix x = random_matrix(s.n, s.d, 14);
      const auto rows = to_rows(x);
      BenchEntry e{"ted_select",
                   {{"n", static_cast<long long>(s.n)},
                    {"d", static_cast<long long>(s.d)},
                    {"m", static_cast<long long>(s.m)}}};
      e.median_ms = time_median_ms(repeats, s.iters, [&] {
        sink(static_cast<double>(ted_select(x, s.m)[0]));
      });
      e.baseline_median_ms = time_median_ms(repeats, s.iters, [&] {
        sink(static_cast<double>(ted_select_scalar(rows, s.m)[0]));
      });
      out.push_back(std::move(e));
    }
  }

  return out;
}

std::vector<BenchEntry> run_tuner_suite(int repeats, bool smoke,
                                        const std::string& target) {
  std::vector<BenchEntry> out;
  const TuningTask task = mobilenet_t1(target);
  const Dataset data = measured_dataset(task, smoke ? 48 : 256);
  const GbdtSurrogateFactory factory;

  // Candidate feature batch for the scoring half of a BS round.
  const std::size_t num_candidates = smoke ? 64 : 512;
  dense::Matrix batch;
  {
    Rng rng(21);
    const auto candidates = task.space().sample_distinct(
        static_cast<std::int64_t>(num_candidates), rng);
    std::vector<std::vector<double>> rows;
    rows.reserve(candidates.size());
    for (const Config& c : candidates) rows.push_back(task.space().features(c));
    batch = dense::from_rows(rows);
  }

  // One BS round = fit the Gamma-model ensemble, then score the candidate
  // scope. Baseline: serial fits + per-candidate score(); optimized:
  // pool-parallel fits + batched score_all() through the flattened engine.
  // The fit half is bitwise-pinned by the golden traces (docs/PERF.md), so
  // on a single-core host only the scoring half can speed up — the entry's
  // headroom floor; gbt_predict_batch below isolates the engine itself.
  for (const int gamma : smoke ? std::vector<int>{2, 3}
                               : std::vector<int>{5, 20}) {
    BenchEntry e{"bs_round",
                 {{"gamma", gamma},
                  {"rows", static_cast<long long>(data.num_rows())},
                  {"candidates", static_cast<long long>(batch.rows)}}};
    e.median_ms = time_median_ms(repeats, 1, [&] {
      Rng rng(31);
      const BootstrapEnsemble ensemble(data, factory, gamma, rng,
                                       /*parallel_fit=*/true);
      const std::vector<double> scores = ensemble.score_all(batch);
      sink(scores[0]);
    });
    e.baseline_median_ms = time_median_ms(repeats, 1, [&] {
      Rng rng(31);
      const BootstrapEnsemble ensemble(data, factory, gamma, rng,
                                       /*parallel_fit=*/false);
      double acc = 0.0;
      for (std::size_t i = 0; i < batch.rows; ++i) {
        acc += ensemble.score(std::span<const double>{batch.row(i), batch.cols});
      }
      sink(acc);
    });
    out.push_back(std::move(e));
  }

  // The scoring engine in isolation: one GBDT predicting the whole
  // candidate block. Optimized: the flattened level-order batch walk;
  // baseline: the scalar per-row predict loop every call site used before
  // the engine existed. Two ensemble shapes — the surrogate default and a
  // smaller/shallower forest — so both cache regimes are covered.
  {
    struct ForestShape {
      int trees, depth;
    };
    for (const ForestShape shape : {ForestShape{60, 5}, ForestShape{32, 4}}) {
      GbdtParams params;
      params.num_trees = shape.trees;
      params.max_depth = shape.depth;
      Gbdt model;
      model.fit(data, params);
      const std::span<const double> all{batch.data.data(),
                                        batch.rows * batch.cols};
      std::vector<double> scores(batch.rows);
      BenchEntry e{"gbt_predict_batch",
                   {{"trees", shape.trees},
                    {"depth", shape.depth},
                    {"rows", static_cast<long long>(batch.rows)}}};
      e.median_ms = time_median_ms(repeats, smoke ? 40 : 20, [&] {
        model.predict_batch(all, batch.rows, scores);
        sink(scores[0]);
      });
      e.baseline_median_ms = time_median_ms(repeats, smoke ? 40 : 20, [&] {
        double acc = 0.0;
        for (std::size_t i = 0; i < batch.rows; ++i) {
          acc += model.predict(
              std::span<const double>{batch.row(i), batch.cols});
        }
        sink(acc);
      });
      out.push_back(std::move(e));
    }
  }

  {  // BTED initialization end-to-end (no scalar baseline survives in the
     // library; tracked optimized-only for trend monitoring).
    BtedParams params;
    if (smoke) {
      params.num_batches = 2;
      params.batch_sample_size = 60;
      params.num_select = 8;
    }
    BenchEntry e{"bted_sample",
                 {{"B", params.num_batches},
                  {"M", params.batch_sample_size},
                  {"m", params.num_select}}};
    e.median_ms = time_median_ms(repeats, 1, [&] {
      Rng rng(41);
      sink(static_cast<double>(bted_sample(task, params, rng).size()));
    });
    out.push_back(std::move(e));
  }

  // Per-target device-model throughput: sample a batch (through the
  // target's constraint filter) and profile every config. One entry per
  // registered target, so every backend's analytical model has a baseline
  // that regressions show up against. Optimized-only (the models are new).
  for (const std::string& tname : target_names()) {
    const TuningTask ttask = mobilenet_t1(tname);
    Rng rng(51);
    const auto configs = ttask.space().sample_distinct(smoke ? 64 : 512, rng);
    BenchEntry e{"profile_batch:" + tname,
                 {{"configs", static_cast<long long>(configs.size())}}};
    e.median_ms = time_median_ms(repeats, smoke ? 4 : 2, [&] {
      double acc = 0.0;
      for (const Config& c : configs) acc += ttask.profile(c).base_time_us;
      sink(acc);
    });
    out.push_back(std::move(e));
  }

  {  // End-to-end pipeline wall clock: tune_model over AlexNet with the
     // full advanced framework (BTED init + BAO rounds), the path every
     // batched-scoring change ultimately serves. Optimized-only — there is
     // no preserved scalar pipeline — tracked for trend monitoring.
    const Graph model = make_alexnet();
    const TunerFactory factory = bted_bao_tuner_factory();
    ModelTuneOptions options;
    options.tune.budget = smoke ? 16 : 48;
    options.tune.early_stopping = smoke ? 8 : 24;
    BenchEntry e{"tune_model_wall",
                 {{"budget", options.tune.budget},
                  {"early_stop", options.tune.early_stopping}}};
    e.median_ms = time_median_ms(repeats, 1, [&] {
      const ModelTuneReport report =
          tune_model(model, make_target(target), factory, options);
      sink(static_cast<double>(report.total_measured()));
    });
    out.push_back(std::move(e));
  }

  return out;
}

}  // namespace

int main(int argc, char** argv) {
  aal::set_log_threshold(aal::LogLevel::kWarn);
  std::string suite = "kernels", scale = "full", out_path;
  std::string target = "gpu-pascal";
  int repeats = 9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      suite = next();
    } else if (arg == "--repeats") {
      repeats = std::atoi(next());
    } else if (arg == "--scale") {
      scale = next();
    } else if (arg == "--target") {
      target = next();
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: micro_kernels [--suite kernels|tuner] "
                   "[--repeats N] [--scale full|smoke] [--target NAME] "
                   "[--out FILE]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if ((suite != "kernels" && suite != "tuner") ||
      (scale != "full" && scale != "smoke") || repeats < 1) {
    std::fprintf(stderr, "invalid arguments (see --help)\n");
    return 2;
  }

  const bool smoke = scale == "smoke";
  std::vector<BenchEntry> entries;
  try {
    entries = suite == "kernels" ? run_kernels_suite(repeats, smoke)
                                 : run_tuner_suite(repeats, smoke, target);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  write_json(out, suite, scale, repeats, entries);
  if (out != stdout) std::fclose(out);
  return 0;
}
