// Component micro-benchmarks (google-benchmark): cost of the building
// blocks that dominate tuning wall-time — feature extraction, the analytic
// kernel model, TED selection, BTED initialization, GBDT fits, bootstrap
// ensembles, SA rounds and neighborhood materialization.
#include <benchmark/benchmark.h>

#include "core/bootstrap.hpp"
#include "core/bted.hpp"
#include "core/ted.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "measure/tuning_task.hpp"
#include "ml/sa_optimizer.hpp"
#include "ml/surrogate.hpp"
#include "support/logging.hpp"

namespace {

using namespace aal;

const TuningTask& mobilenet_t1() {
  static const TuningTask task = [] {
    const auto tasks = extract_tasks(fuse(make_mobilenet_v1()));
    return TuningTask(tasks[0].workload, GpuSpec::gtx1080ti());
  }();
  return task;
}

Dataset measured_dataset(std::size_t rows) {
  const TuningTask& task = mobilenet_t1();
  Rng rng(42);
  Dataset data(static_cast<std::size_t>(task.space().feature_dim()));
  for (const Config& c : task.space().sample_distinct(
           static_cast<std::int64_t>(rows), rng)) {
    const KernelProfile p = task.profile(c);
    data.add_row(task.space().features(c),
                 p.valid ? p.gflops(task.workload().flops()) : 0.0);
  }
  return data;
}

void BM_FeatureExtraction(benchmark::State& state) {
  const TuningTask& task = mobilenet_t1();
  Rng rng(1);
  const Config c = task.space().sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(task.space().features(c));
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_KernelModelProfile(benchmark::State& state) {
  const TuningTask& task = mobilenet_t1();
  Rng rng(2);
  const Config c = task.space().sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(task.profile(c));
  }
}
BENCHMARK(BM_KernelModelProfile);

void BM_ConfigDecode(benchmark::State& state) {
  const TuningTask& task = mobilenet_t1();
  std::int64_t flat = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(task.space().at(flat));
    flat = (flat * 2654435761LL + 1) % task.space().size();
  }
}
BENCHMARK(BM_ConfigDecode);

void BM_TedSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const TuningTask& task = mobilenet_t1();
  Rng rng(3);
  std::vector<std::vector<double>> features;
  for (const Config& c :
       task.space().sample_distinct(static_cast<std::int64_t>(n), rng)) {
    features.push_back(task.space().features(c));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ted_select(features, 64));
  }
}
BENCHMARK(BM_TedSelect)->Arg(100)->Arg(500);

void BM_BtedSample(benchmark::State& state) {
  const TuningTask& task = mobilenet_t1();
  Rng rng(4);
  BtedParams params;  // paper defaults: B=10, M=500, m=64
  for (auto _ : state) {
    benchmark::DoNotOptimize(bted_sample(task, params, rng));
  }
}
BENCHMARK(BM_BtedSample)->Unit(benchmark::kMillisecond);

void BM_GbdtFit(benchmark::State& state) {
  const Dataset data = measured_dataset(static_cast<std::size_t>(state.range(0)));
  GbdtParams params;
  for (auto _ : state) {
    Gbdt model;
    model.fit(data, params);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_GbdtFit)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_BootstrapEnsemble(benchmark::State& state) {
  const Dataset data = measured_dataset(400);
  const GbdtSurrogateFactory factory;
  Rng rng(5);
  for (auto _ : state) {
    const BootstrapEnsemble ensemble(data, factory, 2, rng);
    benchmark::DoNotOptimize(&ensemble);
  }
}
BENCHMARK(BM_BootstrapEnsemble)->Unit(benchmark::kMillisecond);

void BM_SaMaximize(benchmark::State& state) {
  const TuningTask& task = mobilenet_t1();
  const Dataset data = measured_dataset(256);
  GbdtSurrogate model{GbdtParams{}};
  model.fit(data);
  SaParams params;
  const SaOptimizer sa(task.space(), params);
  Rng rng(6);
  const auto score = [&](const Config& c) {
    return model.predict(task.space().features(c));
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.maximize(score, 64, rng));
  }
}
BENCHMARK(BM_SaMaximize)->Unit(benchmark::kMillisecond);

void BM_Neighborhood(benchmark::State& state) {
  const TuningTask& task = mobilenet_t1();
  Rng rng(7);
  const Config center = task.space().sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        task.space().neighborhood(center, 3.0, 512, rng));
  }
}
BENCHMARK(BM_Neighborhood);

void BM_SimulatedMeasurement(benchmark::State& state) {
  const TuningTask& task = mobilenet_t1();
  SimulatedDevice device(GpuSpec::gtx1080ti(), 8);
  Rng rng(8);
  const Config c = task.space().sample(rng);
  const KernelProfile profile = task.profile(c);
  if (!profile.valid) {
    state.SkipWithError("sampled config not valid");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        device.run(profile, task.workload().flops(), 3, c.flat));
  }
}
BENCHMARK(BM_SimulatedMeasurement);

}  // namespace

int main(int argc, char** argv) {
  aal::set_log_threshold(aal::LogLevel::kWarn);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
