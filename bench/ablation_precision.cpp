// Ablation: reduced-precision deployment. Tunes the same layer in fp32,
// fp16 and int8 on two GPUs. Lower precision shrinks memory traffic on
// every part and adds arithmetic rate where the hardware has it (Pascal:
// 4x dp4a int8, no fp16 speedup; Volta: 2x fp16) — the tuners adapt
// schedules without any precision-specific logic.
#include <cstdio>

#include "exp_common.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace aal;
  using namespace aal::bench;
  set_log_threshold(LogLevel::kWarn);
  banner("Ablation: precision", "fp32 / fp16 / int8 deployments");

  const auto tasks = extract_tasks(fuse(make_mobilenet_v1()));
  Conv2dWorkload conv = tasks[2].workload.as_conv2d();  // pointwise conv

  TuneOptions options;
  options.budget = std::min<std::int64_t>(budget(), 384);
  options.early_stopping = 0;

  TextTable table;
  table.set_header({"GPU", "dtype", "best GFLOP(eq)/s", "vs fp32"});
  std::uint64_t salt = 1;
  for (const GpuSpec& gpu : {GpuSpec::gtx1080ti(), GpuSpec::v100()}) {
    double fp32_baseline = 0.0;
    for (DType dtype : {DType::kFloat32, DType::kFloat16, DType::kInt8}) {
      conv.dtype = dtype;
      const Workload w = Workload::conv2d(conv);
      const TaskOutcome outcome = run_task(
          w, gpu, bted_bao_tuner_factory(), options, trials(), salt++);
      if (dtype == DType::kFloat32) fp32_baseline = outcome.mean_true_gflops;
      table.add_row(
          {gpu.name, dtype_name(dtype),
           format_double(outcome.mean_true_gflops, 1),
           format_double(outcome.mean_true_gflops / fp32_baseline, 2) + "x"});
    }
    table.add_separator();
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nExpected: int8 gains most on Pascal (dp4a), fp16 gains on "
              "Volta; bandwidth-bound\nshapes gain from traffic reduction on "
              "both.\n");
  return 0;
}
