// Serve-layer load harness: drives the TuneServer daemon core with many
// concurrent submitters over one shared record store and reports
// machine-readable timings ("aaltune-bench/v1" JSON, suite "serve" —
// see docs/PERF.md and docs/SERVING.md).
//
// Beyond timing, every drain run is a correctness check: the harness
// asserts that no submitted job was lost or duplicated and that every job
// finished, and exits non-zero otherwise — so the checked-in
// BENCH_serve.json baselines double as a load-test record.
//
// Entries:
//   serve_submit_drain       N jobs from T threads into a cold store
//   serve_submit_drain_warm  same jobs against the store the cold run
//                            filled (the store-hit fast path)
//   serve_stream_replay      full trace replay of a finished job through
//                            the cursor-based streaming API
//   protocol_roundtrip       request parse + canonical re-serialization
//
// Usage: serve_load [--repeats N] [--scale full|smoke] [--out FILE].
// --scale smoke shrinks the fleet so the CI bench-smoke job finishes in
// seconds; checked-in numbers use full scale (128 concurrent jobs).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/server.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace aal;
namespace fs = std::filesystem;

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 ? samples[n / 2]
               : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, long long>> params;
  double median_ms = 0.0;
};

void write_json(std::FILE* out, const std::string& scale, int repeats,
                const std::vector<BenchEntry>& entries) {
#ifdef NDEBUG
  const char* build = "Release";
#else
  const char* build = "Debug";
#endif
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"aaltune-bench/v1\",\n");
  std::fprintf(out, "  \"suite\": \"serve\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n", scale.c_str());
  std::fprintf(out, "  \"build\": \"%s\",\n", build);
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"threads\": %zu,\n", ThreadPool::shared().size());
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    std::fprintf(out, "    {\"name\": \"%s\", \"params\": {", e.name.c_str());
    for (std::size_t p = 0; p < e.params.size(); ++p) {
      std::fprintf(out, "%s\"%s\": %lld", p ? ", " : "",
                   e.params[p].first.c_str(), e.params[p].second);
    }
    std::fprintf(out, "}, \"median_ms\": %.6f}%s\n", e.median_ms,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "serve_load: FAILED: %s\n", what.c_str());
  std::exit(1);
}

// ---------------------------------------------------------------------------
// The fleet drain: submit `jobs` jobs from `submit_threads` threads, wait
// for the server to drain, then audit the outcome.

struct FleetShape {
  int jobs = 0;
  int submit_threads = 0;
  int workers = 0;
  int measure_threads = 0;
  std::int64_t budget = 8;
};

double timed_drain(const FleetShape& shape, const std::string& store_dir,
                   const std::string& model_path) {
  TuneServerOptions options;
  options.workers = shape.workers;
  options.measure_threads = shape.measure_threads;
  options.max_queued = static_cast<std::size_t>(shape.jobs) + 1;
  options.tenant_quota = shape.jobs + 1;
  options.store_dir = store_dir;
  TuneServer server(options);

  std::vector<std::vector<std::int64_t>> ids(
      static_cast<std::size_t>(shape.submit_threads));
  const int per_thread = shape.jobs / shape.submit_threads;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> submitters;
  for (int t = 0; t < shape.submit_threads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < per_thread; ++j) {
        JobSpec spec;
        spec.model = model_path;
        spec.budget = shape.budget;
        spec.early_stop = 0;
        spec.seed = t * per_thread + j + 1;
        spec.tenant = "tenant" + std::to_string(t);
        ids[static_cast<std::size_t>(t)].push_back(server.submit(spec));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  server.wait_idle();
  const auto t1 = std::chrono::steady_clock::now();

  // Audit: exactly jobs unique ids, every job present and done.
  std::set<std::int64_t> unique;
  for (const auto& batch : ids) unique.insert(batch.begin(), batch.end());
  if (unique.size() != static_cast<std::size_t>(shape.jobs)) {
    fail("duplicated job ids: " + std::to_string(unique.size()) + " of " +
         std::to_string(shape.jobs) + " unique");
  }
  const std::vector<JobInfo> infos = server.list();
  if (infos.size() != static_cast<std::size_t>(shape.jobs)) {
    fail("lost jobs: server tracks " + std::to_string(infos.size()) +
         " of " + std::to_string(shape.jobs));
  }
  for (const JobInfo& info : infos) {
    if (info.state != JobState::kDone) {
      fail("job " + std::to_string(info.id) + " ended " +
           info.state_name() + (info.error.empty() ? "" : ": " + info.error));
    }
    if (unique.count(info.id) == 0) {
      fail("job " + std::to_string(info.id) + " was never submitted");
    }
  }
  if (server.metrics().counter_value("serve.jobs_done") != shape.jobs) {
    fail("serve.jobs_done disagrees with the fleet size");
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double timed_stream_replay(const std::string& model_path,
                           std::int64_t budget) {
  TuneServerOptions options;
  options.workers = 1;
  TuneServer server(options);
  JobSpec spec;
  spec.model = model_path;
  spec.budget = budget;
  spec.early_stop = 0;
  const std::int64_t job = server.submit(spec);
  const JobInfo done = server.wait_job(job);
  if (done.state != JobState::kDone) fail("stream_replay job did not finish");

  const auto t0 = std::chrono::steady_clock::now();
  std::string text;
  std::int64_t cursor = 0;
  bool finished = false;
  while (!finished) {
    for (const std::string& line :
         server.stream_lines(job, &cursor, &finished)) {
      text += line;
      text += '\n';
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (cursor != done.trace_steps || text.empty()) {
    fail("stream replay drained " + std::to_string(cursor) + " of " +
         std::to_string(done.trace_steps) + " events");
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double timed_protocol_roundtrip(int iters) {
  ServeRequest req;
  req.id = 1;
  req.op = ServeOp::kSubmit;
  req.spec.model = "resnet18";
  req.spec.tenant = "bench";
  const std::string line = req.to_line();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (ServeRequest::parse(line).to_line() != line) {
      fail("protocol round trip is not canonical");
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  set_log_threshold(LogLevel::kWarn);
  int repeats = 5;
  std::string scale = "full";
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_load: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--repeats") {
      repeats = std::atoi(next().c_str());
    } else if (arg == "--scale") {
      scale = next();
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: serve_load [--repeats N] [--scale full|smoke] "
                   "[--out FILE]\n");
      return 2;
    }
  }
  if ((scale != "full" && scale != "smoke") || repeats < 1) {
    std::fprintf(stderr, "serve_load: bad --scale or --repeats\n");
    return 2;
  }
  const bool smoke = scale == "smoke";

  const fs::path dir =
      fs::temp_directory_path() / ("aal_serve_load_" + std::to_string(
                                       static_cast<long long>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string model_path = (dir / "tiny.model").string();
  std::ofstream(model_path) << "%data = input(shape=[1,8,16,16])\n"
                               "%c1 = conv2d(%data, channels=16, kernel=3, "
                               "pad=1)\n";

  FleetShape shape;
  shape.jobs = smoke ? 16 : 128;
  shape.submit_threads = smoke ? 4 : 8;
  shape.workers = smoke ? 4 : 8;
  shape.measure_threads = smoke ? 2 : 4;
  shape.budget = 8;

  const auto shape_params = [&]() {
    return std::vector<std::pair<std::string, long long>>{
        {"jobs", shape.jobs},
        {"submit_threads", shape.submit_threads},
        {"workers", shape.workers},
        {"measure_threads", shape.measure_threads},
        {"budget", shape.budget}};
  };

  std::vector<BenchEntry> entries;
  {
    std::vector<double> cold;
    for (int r = 0; r < repeats; ++r) {
      const std::string store = (dir / ("cold" + std::to_string(r))).string();
      cold.push_back(timed_drain(shape, store, model_path));
    }
    entries.push_back({"serve_submit_drain", shape_params(),
                       median(std::move(cold))});
  }
  {
    // One untimed pass fills the store; the timed passes then ride its
    // warm-start records, the cross-job cache path docs/SERVING.md
    // describes.
    const std::string store = (dir / "warm").string();
    (void)timed_drain(shape, store, model_path);
    std::vector<double> warm;
    for (int r = 0; r < repeats; ++r) {
      warm.push_back(timed_drain(shape, store, model_path));
    }
    entries.push_back({"serve_submit_drain_warm", shape_params(),
                       median(std::move(warm))});
  }
  {
    const std::int64_t budget = smoke ? 16 : 64;
    std::vector<double> replay;
    for (int r = 0; r < repeats; ++r) {
      replay.push_back(timed_stream_replay(model_path, budget));
    }
    entries.push_back({"serve_stream_replay",
                       {{"budget", budget}},
                       median(std::move(replay))});
  }
  {
    const int iters = smoke ? 2000 : 20000;
    std::vector<double> parse;
    for (int r = 0; r < repeats; ++r) {
      parse.push_back(timed_protocol_roundtrip(iters));
    }
    entries.push_back({"protocol_roundtrip",
                       {{"iters", iters}},
                       median(std::move(parse))});
  }

  fs::remove_all(dir);
  std::FILE* out = out_path.empty() ? stdout
                                    : std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "serve_load: cannot open %s\n", out_path.c_str());
    return 1;
  }
  write_json(out, scale, repeats, entries);
  if (out != stdout) std::fclose(out);
  return 0;
}
