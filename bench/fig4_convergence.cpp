// Reproduces Fig. 4: GFLOPS convergence over measured configurations for
// the first two (tunable) layers of MobileNet-v1.
//   (a) layer 1 (the 3x3 stem conv): AutoTVM vs BTED
//   (b) layer 2 (the first depthwise conv): AutoTVM vs BTED+BAO
// The paper plots the running best up to 1024 configurations; we print the
// same series at fixed checkpoints, averaged over AAL_TRIALS seeds.
#include <algorithm>
#include <cstdio>

#include "exp_common.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "support/string_util.hpp"

namespace {

using namespace aal;
using namespace aal::bench;

/// Average running-best curve over trials, padded with the final value when
/// a trial early-stops before the budget.
std::vector<double> mean_curve(const Workload& workload, const GpuSpec& spec,
                               const TunerFactory& factory,
                               std::int64_t budget_points, int num_trials,
                               std::uint64_t salt) {
  std::vector<double> acc(static_cast<std::size_t>(budget_points), 0.0);
  for (int trial = 0; trial < num_trials; ++trial) {
    TuningTask task(workload, spec);
    SimulatedDevice device(spec, salt * 77 + static_cast<std::uint64_t>(trial));
    Measurer measurer(task, device);
    auto tuner = factory(nullptr);
    TuneOptions options;
    options.budget = budget_points;
    options.early_stopping = 0;  // Fig. 4 plots the full budget
    options.seed = salt * 13 + static_cast<std::uint64_t>(trial) + 1;
    options.obs.metrics = shared_metrics();
    const auto curve = tuner->tune(measurer, options).best_curve();
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] += i < curve.size() ? curve[i] : curve.back();
    }
  }
  for (double& v : acc) v /= num_trials;
  return acc;
}

void print_series(const char* label, const std::vector<double>& curve) {
  std::printf("%-10s", label);
  for (std::size_t i = 63; i < curve.size(); i += 64) {
    std::printf(" %7.1f", curve[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  set_log_threshold(LogLevel::kWarn);
  banner("Fig. 4", "convergence on MobileNet-v1 layers 1 and 2");

  const GpuSpec spec = GpuSpec::gtx1080ti();
  const auto tasks = extract_tasks(fuse(make_mobilenet_v1()));
  const Workload layer1 = tasks[0].workload;  // conv2d 3x224x224 -> 32
  const Workload layer2 = tasks[1].workload;  // depthwise 32x112x112

  const std::int64_t points = std::min<std::int64_t>(budget(), 1024);
  const int n = trials();

  std::printf("\n(a) layer 1: %s\n", layer1.brief().c_str());
  std::printf("%-10s", "configs");
  for (std::int64_t i = 64; i <= points; i += 64) std::printf(" %7lld", static_cast<long long>(i));
  std::printf("\n");
  print_series("AutoTVM",
               mean_curve(layer1, spec, autotvm_tuner_factory(), points, n, 1));
  print_series("BTED",
               mean_curve(layer1, spec, bted_tuner_factory(), points, n, 1));

  std::printf("\n(b) layer 2: %s\n", layer2.brief().c_str());
  std::printf("%-10s", "configs");
  for (std::int64_t i = 64; i <= points; i += 64) std::printf(" %7lld", static_cast<long long>(i));
  std::printf("\n");
  print_series("AutoTVM",
               mean_curve(layer2, spec, autotvm_tuner_factory(), points, n, 2));
  print_series("BTED+BAO",
               mean_curve(layer2, spec, bted_bao_tuner_factory(), points, n, 2));

  std::printf("\nExpected shape (paper): both panels converge faster and "
              "higher than AutoTVM;\nlayer 1 plateaus in the low thousands "
              "of GFLOPS, layer 2 (bandwidth-bound\ndepthwise) around an "
              "order of magnitude lower.\n");
  print_metrics_summary();
  return 0;
}
