// Design-space statistics quoted in the paper's text:
//   * the first VGG-16 node has ~0.2 billion configuration points,
//   * 58-node-scale task set across the five models,
//   * nodes average tens of millions of points.
// Prints per-model task inventories and space sizes for the record.
#include <cstdio>

#include "exp_common.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "space/schedule_template.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace aal;
  using namespace aal::bench;
  set_log_threshold(LogLevel::kWarn);
  banner("Space stats", "task inventory and configuration-space sizes");

  double grand_total = 0.0;
  std::int64_t grand_tasks = 0;
  std::int64_t grand_max = 0;

  for (const auto& name : model_zoo_names()) {
    const Graph model = make_model(name);
    const auto tasks = extract_tasks(fuse(model));
    std::printf("\n%s: %zu unique tasks, %.2f GFLOPs/inference\n",
                model_display_name(name).c_str(), tasks.size(),
                static_cast<double>(model.total_flops()) / 1e9);

    TextTable table;
    table.set_header({"task", "layers", "space size", "feature dim"});
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const ConfigSpace space = build_config_space(tasks[i].workload);
      table.add_row({tasks[i].workload.brief(),
                     std::to_string(tasks[i].count()),
                     format_count(space.size()),
                     std::to_string(space.feature_dim())});
      grand_total += static_cast<double>(space.size());
      grand_max = std::max(grand_max, space.size());
      ++grand_tasks;
    }
    std::printf("%s", table.to_string().c_str());
  }

  std::printf("\nacross the zoo: %lld tasks, largest space %s points, "
              "average %s points/task\n",
              static_cast<long long>(grand_tasks), format_count(grand_max).c_str(),
              format_count(static_cast<std::int64_t>(
                  grand_total / static_cast<double>(grand_tasks))).c_str());
  std::printf("(paper: ~0.2 billion for the first VGG-16 node; >50M per node "
              "on average)\n");
  return 0;
}
