// Reproduces Table I: end-to-end inference latency and run-to-run variance
// for the five models under AutoTVM, BTED and BTED+BAO, with improvement
// percentages relative to AutoTVM.
//
// Protocol per the paper: every task of every model is tuned node-wise
// (early stopping 400), the deployed model runs AAL_RUNS (600) times per
// trial, and results average over AAL_TRIALS trials.
#include <cstdio>

#include "exp_common.hpp"
#include "graph/models.hpp"
#include "pipeline/latency.hpp"
#include "support/string_util.hpp"

namespace {

using namespace aal;
using namespace aal::bench;

struct ArmResult {
  double latency_ms = 0.0;
  double variance = 0.0;
};

ArmResult evaluate_arm(const Graph& model, const GpuSpec& spec,
                       const TunerFactory& factory, std::uint64_t salt) {
  ArmResult total;
  const LatencyEvaluator evaluator(model, spec);
  for (int trial = 0; trial < trials(); ++trial) {
    ModelTuneOptions options;
    options.tune.budget = budget();
    options.tune.early_stopping = 400;
    options.tune.seed = salt * 100 + static_cast<std::uint64_t>(trial) + 1;
    options.device_seed = salt * 991 + static_cast<std::uint64_t>(trial);
    options.jobs = jobs();  // lane-parallel tuning; results jobs-invariant
    options.metrics = shared_metrics();
    const ModelTuneReport report =
        tune_model(model, spec, factory, options);
    const LatencyReport latency =
        evaluator.run(report.best_flat_by_task(), latency_runs(),
                      salt * 7 + static_cast<std::uint64_t>(trial));
    total.latency_ms += latency.mean_ms;
    total.variance += latency.variance;
  }
  total.latency_ms /= trials();
  total.variance /= trials();
  return total;
}

}  // namespace

int main() {
  set_log_threshold(LogLevel::kWarn);
  banner("Table I", "end-to-end model latency and variance, 3 algorithms");

  const GpuSpec spec = GpuSpec::gtx1080ti();
  const auto arms = paper_arms();

  TextTable table;
  table.set_header({"Model", "AutoTVM lat(ms)", "AutoTVM var", "BTED lat(ms)",
                    "d%", "BTED var", "d%", "B+B lat(ms)", "d%", "B+B var",
                    "d%"});

  double avg[3][2] = {};
  int model_count = 0;
  for (const auto& name : model_zoo_names()) {
    const Graph model = make_model(name);
    ArmResult results[3];
    for (std::size_t a = 0; a < arms.size(); ++a) {
      results[a] = evaluate_arm(model, spec, arms[a].factory,
                                static_cast<std::uint64_t>(model_count) * 10 + a + 1);
      std::fprintf(stderr, "[table1] %s / %s done\n", name.c_str(),
                   arms[a].label.c_str());
    }
    auto delta = [](double ours, double base) {
      return format_percent((ours - base) / base);
    };
    table.add_row({model_display_name(name),
                   format_double(results[0].latency_ms, 4),
                   format_double(results[0].variance, 4),
                   format_double(results[1].latency_ms, 4),
                   delta(results[1].latency_ms, results[0].latency_ms),
                   format_double(results[1].variance, 4),
                   delta(results[1].variance, results[0].variance),
                   format_double(results[2].latency_ms, 4),
                   delta(results[2].latency_ms, results[0].latency_ms),
                   format_double(results[2].variance, 4),
                   delta(results[2].variance, results[0].variance)});
    for (int a = 0; a < 3; ++a) {
      avg[a][0] += results[a].latency_ms;
      avg[a][1] += results[a].variance;
    }
    ++model_count;
  }
  table.add_separator();
  auto davg = [&](int a, int i) {
    return format_percent((avg[a][i] - avg[0][i]) / avg[0][i]);
  };
  table.add_row({"Average",
                 format_double(avg[0][0] / model_count, 4),
                 format_double(avg[0][1] / model_count, 4),
                 format_double(avg[1][0] / model_count, 4), davg(1, 0),
                 format_double(avg[1][1] / model_count, 4), davg(1, 1),
                 format_double(avg[2][0] / model_count, 4), davg(2, 0),
                 format_double(avg[2][1] / model_count, 4), davg(2, 1)});
  std::printf("%s", table.to_string().c_str());

  std::printf("\nExpected shape (paper): BTED+BAO reduces latency on every "
              "model (paper: up to\n-28.1%% on MobileNet-v1, -13.8%% average) "
              "and reduces variance strongly (paper:\nup to -92.7%%, -67.7%% "
              "average); BTED alone sits between AutoTVM and BTED+BAO.\n");
  print_metrics_summary();
  return 0;
}
