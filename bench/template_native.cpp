// Native-template harness: CUDA-shaped vs target-native config spaces on
// the non-GPU backends ("aaltune-bench/v1" JSON, suite "template_native" —
// see docs/PERF.md).
//
// For each backend target (cpu-simd, fpga-systolic) the harness tunes one
// small CNN twice — once from the default CUDA-shaped space and once from
// the target's native template ("cpu-native" / "systolic") — and reports
// the tuning wall time (native entries carry the CUDA median as baseline)
// plus, as integer params, the sampled feasible rate of each space
// (per-mille) and the best configuration quality found (GFLOPS x100).
//
// Every emit is also a correctness audit; the harness fails hard unless:
//   * the native fpga-systolic space samples >= 90% feasible (the pin
//     tests/space/test_native_templates.cpp enforces: infeasible <= 10%,
//     down from ~66% in the CUDA-shaped space),
//   * every native space samples at least as feasible as its CUDA
//     counterpart on the same target,
//   * every tune (either template) finds a best config for every task.
//
// Entries (x2 targets):
//   template_cuda_tune:<target>    tune from the CUDA-shaped space
//   template_native_tune:<target>  tune from the native space (baseline =
//                                  the CUDA median on the same target)
//
// Usage: template_native [--repeats N] [--scale full|smoke] [--out FILE].
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "graph/fusion.hpp"
#include "graph/graph.hpp"
#include "hwsim/target.hpp"
#include "measure/tuning_task.hpp"
#include "obs/metrics.hpp"
#include "pipeline/model_tuner.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace aal;

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 ? samples[n / 2]
               : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, long long>> params;
  double median_ms = 0.0;
  double baseline_median_ms = 0.0;  // > 0: emit baseline + speedup
};

void write_json(std::FILE* out, const std::string& scale, int repeats,
                const std::vector<BenchEntry>& entries) {
#ifdef NDEBUG
  const char* build = "Release";
#else
  const char* build = "Debug";
#endif
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"aaltune-bench/v1\",\n");
  std::fprintf(out, "  \"suite\": \"template_native\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n", scale.c_str());
  std::fprintf(out, "  \"build\": \"%s\",\n", build);
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"threads\": %zu,\n", ThreadPool::shared().size());
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    std::fprintf(out, "    {\"name\": \"%s\", \"params\": {", e.name.c_str());
    for (std::size_t p = 0; p < e.params.size(); ++p) {
      std::fprintf(out, "%s\"%s\": %lld", p ? ", " : "",
                   e.params[p].first.c_str(), e.params[p].second);
    }
    std::fprintf(out, "}, \"median_ms\": %.6f", e.median_ms);
    if (e.baseline_median_ms > 0.0) {
      std::fprintf(out, ", \"baseline_median_ms\": %.6f, \"speedup\": %.3f",
                   e.baseline_median_ms,
                   e.baseline_median_ms / e.median_ms);
    }
    std::fprintf(out, "}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "template_native: FAILED: %s\n", what.c_str());
  std::exit(1);
}

/// The bench CNN: conv + depthwise + dense, one task per kind.
Graph bench_model() {
  Graph g("bench_cnn_templates");
  NodeId x = g.add_input("data", {Shape{1, 8, 16, 16}, DType::kFloat32});
  x = g.conv2d("conv1", x, 16, 3, 1, 1);
  x = g.relu("conv1_relu", x);
  x = g.depthwise_conv2d("dw1", x, 3, 1, 1);
  x = g.relu("dw1_relu", x);
  x = g.max_pool2d("pool", x, 2, 2);
  x = g.flatten("flatten", x);
  x = g.dense("fc", x, 10);
  g.softmax("prob", x);
  g.validate();
  return g;
}

/// Sampled feasible rate of the model's task spaces under one template,
/// in per-mille (deterministic: fixed seed, fixed sample count). Sampling
/// retries until feasible, so pruned/checked is the infeasible fraction —
/// the same statistic the tuner's space.constraint_* metrics expose.
long long feasible_per_mille(const Graph& g, const TargetSpec& target,
                             const std::string& request, int samples) {
  std::int64_t checked = 0, pruned = 0;
  for (const Task& t : extract_tasks(fuse(g))) {
    const TuningTask task(t.workload, target, request);
    Rng rng(41);
    for (int i = 0; i < samples; ++i) (void)task.space().sample(rng);
    checked += task.space().feasibility_checks();
    pruned += task.space().pruned_count();
  }
  if (checked <= 0) fail("feasibility probe made no checks");
  return 1000 - (1000 * pruned) / checked;
}

struct TimedTune {
  double ms = 0.0;
  double best_gflops = 0.0;
};

TimedTune timed_tune(const Graph& g, const TargetSpec& target,
                     const std::string& request, std::int64_t budget) {
  ModelTuneOptions options;
  options.tune.budget = budget;
  options.tune.early_stopping = 12;
  options.tune.num_initial = 24;
  options.tune.batch_size = 8;
  options.schedule_template = request;
  const auto t0 = std::chrono::steady_clock::now();
  const ModelTuneReport report =
      tune_model(g, target, bted_bao_tuner_factory(), options);
  const auto t1 = std::chrono::steady_clock::now();
  TimedTune timed;
  timed.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (const TaskTuneReport& t : report.tasks) {
    if (!t.result.best.has_value()) {
      fail("no best config for " + t.task_key + " (template '" + request +
           "')");
    }
    timed.best_gflops = std::max(timed.best_gflops, t.result.best_gflops());
  }
  return timed;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_threshold(LogLevel::kWarn);
  int repeats = 5;
  std::string scale = "full";
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "template_native: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--repeats") {
      repeats = std::atoi(next().c_str());
    } else if (arg == "--scale") {
      scale = next();
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: template_native [--repeats N] "
                   "[--scale full|smoke] [--out FILE]\n");
      return 2;
    }
  }
  if ((scale != "full" && scale != "smoke") || repeats < 1) {
    std::fprintf(stderr, "template_native: bad --scale or --repeats\n");
    return 2;
  }
  const bool smoke = scale == "smoke";
  const std::int64_t budget = smoke ? 60 : 120;
  const int probe_samples = smoke ? 500 : 2000;

  const Graph g = bench_model();
  const long long tasks =
      static_cast<long long>(extract_tasks(fuse(g)).size());

  std::vector<BenchEntry> entries;
  for (const char* target_name : {"cpu-simd", "fpga-systolic"}) {
    const TargetSpec target = make_target(target_name);
    const long long cuda_feasible =
        feasible_per_mille(g, target, "", probe_samples);
    const long long native_feasible =
        feasible_per_mille(g, target, "native", probe_samples);

    // The audits: the native space must be mostly feasible by construction
    // (the fpga pin is the headline acceptance number) and never sample
    // worse than the CUDA-shaped space it replaces.
    if (std::string(target_name) == "fpga-systolic" &&
        native_feasible < 900) {
      fail("fpga-systolic native feasible rate " +
           std::to_string(native_feasible) + " per mille, need >= 900");
    }
    if (native_feasible < cuda_feasible) {
      fail(std::string(target_name) + ": native feasible rate " +
           std::to_string(native_feasible) + " below CUDA-shaped rate " +
           std::to_string(cuda_feasible));
    }
    std::fprintf(stderr,
                 "template_native: %s feasible per-mille cuda=%lld "
                 "native=%lld\n",
                 target_name, cuda_feasible, native_feasible);

    std::vector<double> cuda_ms, native_ms;
    double cuda_best = 0.0, native_best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const TimedTune t = timed_tune(g, target, "", budget);
      cuda_ms.push_back(t.ms);
      cuda_best = t.best_gflops;  // deterministic: identical every repeat
    }
    for (int r = 0; r < repeats; ++r) {
      const TimedTune t = timed_tune(g, target, "native", budget);
      native_ms.push_back(t.ms);
      native_best = t.best_gflops;
    }

    const auto params = [&](long long feasible, double best) {
      return std::vector<std::pair<std::string, long long>>{
          {"tasks", tasks},
          {"budget", budget},
          {"feasible_per_mille", feasible},
          {"best_gflops_x100", static_cast<long long>(best * 100.0)}};
    };
    const double cuda_median = median(std::move(cuda_ms));
    entries.push_back({std::string("template_cuda_tune:") + target_name,
                       params(cuda_feasible, cuda_best), cuda_median});
    entries.push_back({std::string("template_native_tune:") + target_name,
                       params(native_feasible, native_best),
                       median(std::move(native_ms)), cuda_median});
  }

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "template_native: cannot open %s\n",
                   out_path.c_str());
      return 1;
    }
  }
  write_json(out, scale, repeats, entries);
  if (out != stdout) std::fclose(out);
  return 0;
}
