// Ablation: hardware portability. The frameworks are hardware-agnostic —
// they only see a black-box measurement function — so the same three arms
// are run against three very different machine balances (the paper's GTX
// 1080 Ti, a V100-class server part and a small embedded GPU). The chosen
// schedules must adapt (absolute GFLOPS shift with peak/bandwidth) while
// the algorithmic ordering stays stable.
#include <cstdio>

#include "exp_common.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace aal;
  using namespace aal::bench;
  set_log_threshold(LogLevel::kWarn);
  banner("Ablation: hardware portability", "same tuners, three GPUs");

  const auto tasks = extract_tasks(fuse(make_mobilenet_v1()));
  const Workload w = tasks[0].workload;
  std::printf("task: %s\n\n", w.brief().c_str());

  TuneOptions options;
  options.budget = std::min<std::int64_t>(budget(), 512);
  options.early_stopping = 400;

  const GpuSpec gpus[] = {GpuSpec::gtx1080ti(), GpuSpec::v100(),
                          GpuSpec::small_embedded()};
  const auto arms = paper_arms();

  TextTable table;
  table.set_header({"GPU", "peak GFLOPS", "AutoTVM", "BTED", "BTED+BAO"});
  std::uint64_t salt = 1;
  for (const GpuSpec& gpu : gpus) {
    std::vector<std::string> row{gpu.name, format_double(gpu.peak_gflops(), 0)};
    for (const auto& arm : arms) {
      const TaskOutcome outcome =
          run_task(w, gpu, arm.factory, options, trials(), salt++);
      row.push_back(format_double(outcome.mean_true_gflops, 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nExpected: achieved GFLOPS scale with each machine's "
              "peak/bandwidth balance; no\ntuner needs hardware-specific "
              "changes (the paper's generality claim).\n");
  return 0;
}
