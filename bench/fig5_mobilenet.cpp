// Reproduces Fig. 5: per-task tuning outcomes on the 19 MobileNet-v1
// convolution tasks T1..T19 plus the AVG column.
//   (a) number of sampled configurations per task and algorithm
//   (b) best GFLOPS as a percentage of AutoTVM's
// Protocol follows the paper: early stopping 400, budget ~1024, results
// averaged over AAL_TRIALS seeds per (task, algorithm).
//
// The (task x arm) grid cells are independent (seeds derive from the cell
// position), so AAL_JOBS>1 runs them concurrently with bitwise-identical
// output; the wall-clock line at the end records the speedup.
#include <chrono>
#include <cstdio>
#include <future>

#include "exp_common.hpp"
#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "support/string_util.hpp"
#include "support/thread_pool.hpp"

int main() {
  using namespace aal;
  using namespace aal::bench;
  set_log_threshold(LogLevel::kWarn);
  banner("Fig. 5", "19 MobileNet-v1 tasks: #configs and GFLOPS vs AutoTVM");

  const GpuSpec spec = GpuSpec::gtx1080ti();
  const auto all_tasks = extract_tasks(fuse(make_mobilenet_v1()));
  std::vector<Workload> conv_tasks;
  for (const auto& t : all_tasks) {
    if (t.workload.is_conv()) conv_tasks.push_back(t.workload);
  }

  TuneOptions options;
  options.budget = budget();
  options.early_stopping = 400;

  const auto arms = paper_arms();
  const auto start = std::chrono::steady_clock::now();

  // One grid cell per (task, arm); cells are independent, so they can run
  // on any schedule. Results land in a position-indexed array and the table
  // is assembled serially afterwards.
  std::vector<std::vector<TaskOutcome>> outcomes(
      conv_tasks.size(), std::vector<TaskOutcome>(arms.size()));
  const auto run_cell = [&](std::size_t ti, std::size_t a) {
    outcomes[ti][a] = run_task(conv_tasks[ti], spec, arms[a].factory, options,
                               trials(), ti * 10 + a + 1);
    std::fprintf(stderr, "[fig5] T%zu %s done\n", ti + 1,
                 arms[a].label.c_str());
  };
  if (jobs() <= 1) {
    for (std::size_t ti = 0; ti < conv_tasks.size(); ++ti) {
      for (std::size_t a = 0; a < arms.size(); ++a) run_cell(ti, a);
    }
  } else {
    ThreadPool pool(static_cast<std::size_t>(jobs()));
    std::vector<std::future<void>> cells;
    for (std::size_t ti = 0; ti < conv_tasks.size(); ++ti) {
      for (std::size_t a = 0; a < arms.size(); ++a) {
        cells.push_back(pool.submit([&run_cell, ti, a] { run_cell(ti, a); }));
      }
    }
    for (auto& c : cells) c.get();
  }

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  TextTable table;
  table.set_header({"task", "workload", "cfg:AutoTVM", "cfg:BTED",
                    "cfg:BTED+BAO", "GF:AutoTVM", "GF:BTED%", "GF:BTED+BAO%"});

  double avg_cfg[3] = {0, 0, 0};
  double avg_ratio[3] = {0, 0, 0};
  for (std::size_t ti = 0; ti < conv_tasks.size(); ++ti) {
    const std::vector<TaskOutcome>& row = outcomes[ti];
    const double base = row[0].mean_true_gflops;
    table.add_row({"T" + std::to_string(ti + 1), conv_tasks[ti].brief(),
                   format_double(row[0].mean_configs, 0),
                   format_double(row[1].mean_configs, 0),
                   format_double(row[2].mean_configs, 0),
                   format_double(base, 1),
                   format_double(100.0 * row[1].mean_true_gflops / base, 1),
                   format_double(100.0 * row[2].mean_true_gflops / base, 1)});
    for (int a = 0; a < 3; ++a) {
      avg_cfg[a] += row[a].mean_configs / static_cast<double>(conv_tasks.size());
      avg_ratio[a] += row[a].mean_true_gflops / base /
                      static_cast<double>(conv_tasks.size());
    }
  }
  table.add_separator();
  table.add_row({"AVG", "",
                 format_double(avg_cfg[0], 0), format_double(avg_cfg[1], 0),
                 format_double(avg_cfg[2], 0), "100.0",
                 format_double(100.0 * avg_ratio[1], 1),
                 format_double(100.0 * avg_ratio[2], 1)});
  std::printf("%s", table.to_string().c_str());

  std::printf("\nGFLOPS are the noise-free quality of each arm's chosen "
              "config, as %% of AutoTVM.\nExpected shape (paper): BTED "
              "samples somewhat more configs than AutoTVM while\nBTED+BAO "
              "samples about the same; both exceed 100%% GFLOPS on average "
              "(paper:\nup to +36.7%% for BTED and +47.9%% for BTED+BAO on "
              "individual tasks).\n");
  std::printf("\nwall-clock: %.1f s at AAL_JOBS=%d (output is identical for "
              "any jobs value)\n", elapsed_s, jobs());
  return 0;
}
