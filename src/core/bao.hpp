// Bootstrap-guided Adaptive Optimization (BAO) — Algorithm 4 of the paper.
//
// Iterative stage of the advanced active-learning framework. Each step:
//   1. the search scope C_t is the radius-R neighborhood (Euclidean in
//      knob-choice space) of the previously selected configuration;
//   2. if the relative improvement r_t (Equation (1)) of the last two steps
//      fell below eta, the radius is enlarged to tau*R for this step;
//   3. BS (Algorithm 3) fits Gamma bootstrap surrogates on everything
//      measured so far and picks argmax of their summed predictions over
//      C_t; the pick is deployed (measured) and appended to X, Y.
//
// Equation (1) is implemented literally, ceil((y[t-1]-y[t-2])/y[t-1]):
// with eta in (0,1) the ceil makes the trigger binary — the radius grows
// exactly when the latest step failed to improve on the one before
// (see DESIGN.md). Set literal_ceil=false for the real-valued variant.
//
// BaoSearch is a stepwise (ask/tell) formulation of the loop: next()
// proposes the configuration Algorithm 4 would deploy, observe() appends
// the deployment outcome to the y* series and moves the center. The
// enclosing policy (AdvancedActiveLearningTuner) feeds it from a
// TuningSession, which owns all budget/early-stopping accounting.
#pragma once

#include <memory>
#include <optional>

#include "core/bootstrap.hpp"
#include "measure/measure.hpp"
#include "tuner/tuner.hpp"

namespace aal {

struct TransferPrior;  // src/transfer: cross-run warm-start prior

/// Which metric R is measured in: the paper says "Euclidean distance
/// between points" where a point x is defined as the configuration's
/// feature vector, so kFeature (log2-factor space) is the faithful default;
/// kChoice (entity-index space) is kept for the adaptive-neighborhood
/// ablation.
enum class BaoMetric { kFeature, kChoice };

struct BaoParams {
  double eta = 0.05;    // relative-improvement threshold
  double tau = 1.5;     // radius growth factor (tau > 1)
  double radius = 3.0;  // base neighborhood radius R
  BaoMetric metric = BaoMetric::kFeature;
  int gamma = 2;        // bootstrap resamples per step

  /// Max candidates materialized from each neighborhood; the exact ball is
  /// subsampled only above this (the ball at R=3 is usually smaller).
  std::size_t neighborhood_cap = 512;
  /// Apply Equation (1) with the printed ceil (default) or as a raw ratio.
  bool literal_ceil = true;
  /// Center the neighborhood on the best-so-far config instead of the last
  /// selected one (ablation; the paper centers on the last selection).
  bool recentre_on_best = false;
  /// Compound the radius (R, tau R, tau^2 R, ...) across *consecutive*
  /// non-improving steps instead of capping at tau R. Algorithm 4 as
  /// printed re-bases to R each iteration; compounding lets the search
  /// escape exhausted basins on very large spaces (ablation-measured).
  bool compound_radius = false;
  double max_radius = 24.0;  // compounding cap
};

/// One BAO run over a single task: proposes one configuration per
/// iteration. The measurer must already contain the initialization set
/// (BTED picks and/or preloaded records) before the first next().
class BaoSearch {
 public:
  /// Validates parameters (tau > 1, radius > 0; throws InvalidArgument).
  explicit BaoSearch(BaoParams params);

  const BaoParams& params() const { return params_; }

  /// Attaches an observability handle: next() then emits scope_change
  /// events whenever the radius adapts (R -> tau*R, with r_t and eta) and a
  /// surrogate_fit event per bootstrap ensemble, plus bao.* counters.
  void set_obs(Obs obs) { obs_ = std::move(obs); }

  /// Attaches a cross-run transfer prior (non-owning; null detaches). When
  /// the prior carries a meta-surrogate, the selection step maximizes
  ///   ensemble_score + w(n) * gamma * best_gflops * meta_prediction
  /// instead of the raw ensemble score, where w(n) decays geometrically in
  /// the number of *fresh* live observations n — fleet history dominates
  /// early, live evidence takes over as it accumulates.
  void set_transfer_prior(const TransferPrior* prior) {
    transfer_prior_ = prior;
  }

  /// Algorithm 4, one iteration: adapts the radius from the y* series,
  /// materializes the neighborhood C_t of the current center (widening
  /// geometrically while it contains no unmeasured point), fits the
  /// bootstrap ensemble and returns its argmax. Returns nullopt when every
  /// reachable configuration has been measured (degenerate tiny space).
  std::optional<Config> next(const Measurer& measurer,
                             const SurrogateFactory& surrogate_factory,
                             Rng& rng);

  /// Records the deployment outcome of the configuration returned by the
  /// last next(): appends to the y* series and moves the center.
  void observe(const MeasureResult& result, const Measurer& measurer);

  /// Number of next() proposals so far.
  int iterations() const { return iterations_; }

 private:
  BaoParams params_;
  Obs obs_;
  const TransferPrior* transfer_prior_ = nullptr;
  std::optional<Config> center_;
  std::vector<double> y_series_;
  int stagnant_steps_ = 0;
  int iterations_ = 0;
};

}  // namespace aal
