#include "core/ted.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <numeric>

#include "support/common.hpp"
#include "support/stats.hpp"

namespace aal {

void standardize_columns(std::vector<std::vector<double>>& features) {
  if (features.empty()) return;
  const std::size_t dim = features[0].size();
  for (std::size_t c = 0; c < dim; ++c) {
    double sum = 0.0;
    for (const auto& row : features) sum += row[c];
    const double m = sum / static_cast<double>(features.size());
    double var = 0.0;
    for (const auto& row : features) var += (row[c] - m) * (row[c] - m);
    var /= static_cast<double>(features.size());
    const double sd = std::sqrt(var);
    if (sd < 1e-12) {
      for (auto& row : features) row[c] = 0.0;
    } else {
      for (auto& row : features) row[c] = (row[c] - m) / sd;
    }
  }
}

std::vector<std::size_t> ted_select(
    const std::vector<std::vector<double>>& features, std::size_t m,
    const TedParams& params) {
  const std::size_t n = features.size();
  if (n == 0) return {};
  for (const auto& row : features) {
    AAL_CHECK(row.size() == features[0].size(),
              "ted_select: ragged feature matrix");
  }
  if (m >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    return all;
  }

  // Normalize a copy so Euclidean distances weigh knobs equally.
  std::vector<std::vector<double>> x = features;
  standardize_columns(x);

  // Pairwise distances.
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < x[i].size(); ++c) {
        const double d = x[i][c] - x[j][c];
        acc += d * d;
      }
      const double d = std::sqrt(acc);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }

  // Kernel matrix K (row-major, symmetric).
  std::vector<double> k(n * n, 0.0);
  if (params.kernel == TedKernel::kEuclideanDistance) {
    k = dist;
  } else {
    double sigma = params.rbf_sigma;
    if (sigma <= 0.0) {
      // Median-distance heuristic over off-diagonal entries.
      std::vector<double> off;
      off.reserve(n * (n - 1) / 2);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) off.push_back(dist[i * n + j]);
      }
      sigma = off.empty() ? 1.0 : std::max(1e-9, median(std::move(off)));
    }
    const double inv = 1.0 / (2.0 * sigma * sigma);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const double d = dist[i * n + j];
        k[i * n + j] = std::exp(-d * d * inv);
      }
    }
  }

  std::vector<std::size_t> selected;
  selected.reserve(m);
  std::vector<bool> taken(n, false);
  std::vector<double> col(n);

  for (std::size_t pick = 0; pick < m; ++pick) {
    // Score every remaining candidate: ||K_v||^2 / (k(v,v) + mu). With the
    // paper's distance "kernel" the deflated matrix is not PSD, so the
    // diagonal can drift negative; clamping it at zero keeps the score (and
    // the deflation divisor) well-defined without changing the PSD case.
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_v = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (taken[v]) continue;
      double norm_sq = 0.0;
      for (std::size_t u = 0; u < n; ++u) {
        const double e = k[v * n + u];
        norm_sq += e * e;
      }
      const double score =
          norm_sq / (std::max(k[v * n + v], 0.0) + params.mu);
      if (score > best_score) {
        best_score = score;
        best_v = v;
      }
    }
    AAL_ASSERT(best_v < n, "TED failed to select a candidate");
    taken[best_v] = true;
    selected.push_back(best_v);

    // Rank-one deflation: K <- K - K_x K_x^T / (k(x,x) + mu).
    const double denom = std::max(k[best_v * n + best_v], 0.0) + params.mu;
    for (std::size_t u = 0; u < n; ++u) col[u] = k[best_v * n + u];
    for (std::size_t i = 0; i < n; ++i) {
      const double ci = col[i] / denom;
      if (ci == 0.0) continue;
      double* row = &k[i * n];
      for (std::size_t j = 0; j < n; ++j) row[j] -= ci * col[j];
    }
  }
  return selected;
}

}  // namespace aal
