#include "core/ted.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <numeric>

#include "support/common.hpp"
#include "support/stats.hpp"

namespace aal {

namespace {

/// Median Euclidean distance over the strict upper triangle of a squared-
/// distance matrix. Selects on the *squared* values (sqrt is monotone, so
/// the selected elements are the same) and takes square roots only of the
/// one or two middle elements — bitwise-identical to sorting the sqrt'ed
/// distances and averaging the middles (what the scalar path did), minus
/// an n^2/2 sqrt pass. Mirrors the element choice of stats.hpp median().
double median_distance(const std::vector<double>& sq, std::size_t n) {
  if (n < 2) return 1.0;
  std::vector<double> off;
  off.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    off.insert(off.end(), &sq[i * n + i + 1], &sq[i * n + n]);
  }
  const std::size_t mid = off.size() / 2;
  std::nth_element(off.begin(), off.begin() + static_cast<std::ptrdiff_t>(mid),
                   off.end());
  const double hi = std::sqrt(off[mid]);
  if (off.size() % 2 == 1) return hi;
  const double lo = std::sqrt(*std::max_element(
      off.begin(), off.begin() + static_cast<std::ptrdiff_t>(mid)));
  return 0.5 * (lo + hi);
}

/// Builds the TED kernel matrix K (row-major n x n) from already z-scored
/// features: the literal Euclidean-distance matrix, or an RBF of it with
/// the median-distance bandwidth heuristic when sigma <= 0. The squared-
/// distance matrix is transformed into K in place (reads stay ahead of the
/// mirrored writes), so only one n x n buffer is ever allocated.
std::vector<double> build_kernel(const dense::Matrix& x,
                                 const TedParams& params) {
  const std::size_t n = x.rows;
  std::vector<double> k;
  dense::pairwise_sq_dist(x, k);

  if (params.kernel == TedKernel::kEuclideanDistance) {
    for (std::size_t i = 0; i < n; ++i) {
      // Diagonal already exactly 0; transform the upper row, mirror down.
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d = std::sqrt(k[i * n + j]);
        k[i * n + j] = d;
        k[j * n + i] = d;
      }
    }
    return k;
  }

  double sigma = params.rbf_sigma;
  if (sigma <= 0.0) {
    sigma = std::max(1e-9, median_distance(k, n));
  }
  const double inv = 1.0 / (2.0 * sigma * sigma);
  for (std::size_t i = 0; i < n; ++i) {
    k[i * n + i] = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double e = std::exp(-k[i * n + j] * inv);
      k[i * n + j] = e;
      k[j * n + i] = e;
    }
  }
  return k;
}

/// Greedy TED selection with the deflation materialized in K: scores come
/// from row norms that dense::deflate_rank_one refreshes in the same pass
/// that applies K <- K - K_x K_x^T / (k(x,x)+mu). Best when K fits in
/// cache, where the write-back is free; O(n^2) read+write per pick.
std::vector<std::size_t> select_materialized(std::vector<double>& k,
                                             std::size_t n, std::size_t m,
                                             double mu) {
  std::vector<std::size_t> selected;
  selected.reserve(m);
  std::vector<bool> taken(n, false);
  std::vector<double> norm_sq(n);
  dense::row_sq_norms(k.data(), n, norm_sq.data());
  std::vector<double> col(n);

  for (std::size_t pick = 0; pick < m; ++pick) {
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_v = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (taken[v]) continue;
      const double score =
          std::max(norm_sq[v], 0.0) / (std::max(k[v * n + v], 0.0) + mu);
      if (score > best_score) {
        best_score = score;
        best_v = v;
      }
    }
    AAL_ASSERT(best_v < n, "TED failed to select a candidate");
    taken[best_v] = true;
    selected.push_back(best_v);
    if (pick + 1 == m) break;  // the final deflation is unobservable

    const double denom = std::max(k[best_v * n + best_v], 0.0) + mu;
    std::copy_n(&k[best_v * n], n, col.begin());
    dense::deflate_rank_one(k.data(), n, col.data(), denom, norm_sq.data());
  }
  return selected;
}

/// Greedy TED selection with *lazy* deflation: K stays read-only and the
/// deflated matrix K_t = K - sum_s d_s d_s^T / denom_s is represented by
/// the stored pick columns d_s. Each pick reconstructs its column, runs one
/// read-only mat-vec r = K_t d_t, and updates the cached row norms and
/// diagonal via
///   ||K_{t+1}[i]||^2 = ||K_t[i]||^2 - 2 c_i r_i + c_i^2 ||d_t||^2,
///   K_{t+1}[i][i]    = K_t[i][i] - c_i d_t[i],        c_i = d_t[i]/denom_t.
/// O(n^2) *read-only* per pick — half the memory traffic of the
/// materialized path once K outgrows the cache (see docs/PERF.md).
std::vector<std::size_t> select_lazy(const std::vector<double>& k,
                                     std::size_t n, std::size_t m,
                                     double mu) {
  std::vector<std::size_t> selected;
  selected.reserve(m);
  std::vector<bool> taken(n, false);
  std::vector<double> norm_sq(n), diag(n);
  dense::row_sq_norms(k.data(), n, norm_sq.data());
  for (std::size_t i = 0; i < n; ++i) diag[i] = k[i * n + i];

  std::vector<std::vector<double>> hist_cols;  // d_s
  std::vector<double> hist_inv_denom;          // 1/denom_s
  hist_cols.reserve(m);
  hist_inv_denom.reserve(m);
  std::vector<double> col(n), r(n);

  for (std::size_t pick = 0; pick < m; ++pick) {
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_v = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (taken[v]) continue;
      const double score =
          std::max(norm_sq[v], 0.0) / (std::max(diag[v], 0.0) + mu);
      if (score > best_score) {
        best_score = score;
        best_v = v;
      }
    }
    AAL_ASSERT(best_v < n, "TED failed to select a candidate");
    taken[best_v] = true;
    selected.push_back(best_v);
    if (pick + 1 == m) break;

    // d_t = K_t[:, x] — original column (K is symmetric: row x) minus the
    // contribution of every earlier deflation.
    std::copy_n(&k[best_v * n], n, col.begin());
    for (std::size_t s = 0; s < hist_cols.size(); ++s) {
      const double coef = hist_cols[s][best_v] * hist_inv_denom[s];
      if (coef != 0.0) dense::axpy(-coef, hist_cols[s].data(), col.data(), n);
    }
    const double denom = std::max(diag[best_v], 0.0) + mu;
    const double inv_denom = 1.0 / denom;

    // r = K_t d_t = K d_t - sum_s d_s (d_s . d_t) / denom_s.
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = dense::dot(&k[i * n], col.data(), n);
    }
    for (std::size_t s = 0; s < hist_cols.size(); ++s) {
      const double w =
          dense::dot(hist_cols[s].data(), col.data(), n) * hist_inv_denom[s];
      if (w != 0.0) dense::axpy(-w, hist_cols[s].data(), r.data(), n);
    }

    const double col_norm = dense::dot(col.data(), col.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const double ci = col[i] * inv_denom;
      norm_sq[i] += ci * (ci * col_norm - 2.0 * r[i]);
      diag[i] -= ci * col[i];
    }
    hist_cols.push_back(col);
    hist_inv_denom.push_back(inv_denom);
  }
  return selected;
}

/// Above this row count the n x n kernel matrix outgrows typical L2/L3 and
/// the lazy read-only path wins on memory traffic; below it the
/// materialized path's simpler per-pick work is faster.
constexpr std::size_t kLazySelectThreshold = 1024;

}  // namespace

void standardize_columns(std::vector<std::vector<double>>& features) {
  if (features.empty()) return;
  dense::Matrix x = dense::from_rows(features);
  dense::standardize_columns(x);
  for (std::size_t r = 0; r < x.rows; ++r) {
    std::copy_n(x.row(r), x.cols, features[r].begin());
  }
}

std::vector<std::size_t> ted_select(const dense::Matrix& features,
                                    std::size_t m, const TedParams& params) {
  const std::size_t n = features.rows;
  if (n == 0) return {};
  if (m >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    return all;
  }

  // Normalize a copy so Euclidean distances weigh knobs equally.
  dense::Matrix x = features;
  dense::standardize_columns(x);

  std::vector<double> k = build_kernel(x, params);
  return n > kLazySelectThreshold
             ? select_lazy(k, n, m, params.mu)
             : select_materialized(k, n, m, params.mu);
}

std::vector<std::size_t> ted_select(
    const std::vector<std::vector<double>>& features, std::size_t m,
    const TedParams& params) {
  if (features.empty()) return {};
  for (const auto& row : features) {
    AAL_CHECK(row.size() == features[0].size(),
              "ted_select: ragged feature matrix");
  }
  return ted_select(dense::from_rows(features), m, params);
}

}  // namespace aal
