// Batch Transductive Experimental Design — Algorithm 2 of the paper.
//
// B batches are drawn uniformly from the configuration space (|V_b| = M
// each), TED selects m diverse configurations from each batch (in parallel),
// the per-batch picks are unioned (<= B*m points) and a final TED pass over
// the union returns the m-point initial set. The randomness is what makes
// the method scale to 10^8-point spaces: TED itself only ever sees M-point
// matrices. Paper defaults: (mu=0.1, M=500, m=64, B=10).
#pragma once

#include <vector>

#include "core/ted.hpp"
#include "measure/tuning_task.hpp"
#include "space/config_space.hpp"
#include "support/rng.hpp"
#include "tuner/tuner.hpp"

namespace aal {

struct BtedParams {
  double mu = 0.1;
  std::int64_t batch_sample_size = 500;  // M
  int num_select = 64;                   // m
  int num_batches = 10;                  // B
  TedKernel kernel = TedKernel::kRbf;  // see TedParams::kernel
  /// Run the B per-batch TED selections on the shared thread pool.
  bool parallel = true;
};

/// Runs BTED over a task's configuration space and returns the initial set
/// (size min(m, space size)).
std::vector<Config> bted_sample(const TuningTask& task,
                                const BtedParams& params, Rng& rng);

/// Adapter so BTED plugs into any tuner's initialization stage
/// (XgbTuner / AdvancedActiveLearningTuner). The sampler's `m` argument
/// overrides params.num_select at call time.
InitSampler bted_init_sampler(BtedParams params = {});

}  // namespace aal
