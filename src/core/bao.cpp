#include "core/bao.hpp"

#include <cmath>
#include <unordered_set>

#include "support/logging.hpp"

namespace aal {

namespace {

/// Equation (1): relative improvement between the two previous steps.
double relative_improvement(double y_prev, double y_prev2, bool literal_ceil) {
  if (y_prev <= 0.0) return -1.0;  // failed/zero step: force exploration
  const double ratio = (y_prev - y_prev2) / y_prev;
  return literal_ceil ? std::ceil(ratio) : ratio;
}

}  // namespace

int run_bao(TuneLoopState& state, const SurrogateFactory& surrogate_factory,
            const BaoParams& params, Rng& rng) {
  AAL_CHECK(params.tau > 1.0, "BAO tau must be > 1");
  AAL_CHECK(params.radius > 0.0, "BAO radius must be > 0");

  Measurer& measurer = state.measurer();
  const TuningTask& task = measurer.task();
  const ConfigSpace& space = task.space();

  // The initialization set is everything the measurer knows — the just-
  // measured BTED picks plus any records preloaded from a previous session.
  AAL_CHECK(measurer.num_measured() > 0,
            "BAO requires an already-measured initialization set");

  // x*_0: best configuration of the initialization stage (Algorithm 4,
  // line 1). If every initial config failed, fall back to any measured one
  // — the enlarged-radius rule will pull the search away from it.
  const auto initial_best = measurer.best();
  Config center = initial_best ? initial_best->config
                               : measurer.all_results().front().config;

  // y* series for Equation (1); y*_0 is the incumbent's value.
  std::vector<double> y_series{initial_best ? initial_best->gflops : 0.0};
  int stagnant_steps = 0;

  int iterations = 0;
  while (!state.should_stop()) {
    ++iterations;

    // --- Adaptive search scope (lines 3-9) -----------------------------
    double radius = params.radius;
    if (y_series.size() >= 2) {
      const double rt = relative_improvement(y_series[y_series.size() - 1],
                                             y_series[y_series.size() - 2],
                                             params.literal_ceil);
      if (rt < params.eta) {
        ++stagnant_steps;
        radius = params.compound_radius
                     ? std::min(params.max_radius,
                                params.radius *
                                    std::pow(params.tau, stagnant_steps))
                     : params.tau * params.radius;
      } else {
        stagnant_steps = 0;
      }
    }

    const std::vector<MeasureResult> measured = measurer.all_results();
    std::unordered_set<std::int64_t> measured_flats;
    measured_flats.reserve(measured.size());
    for (const auto& r : measured) measured_flats.insert(r.config.flat);

    // Materialize C_t, excluding already-measured points (re-deploying them
    // would burn budget on memoized results). If the ball is exhausted,
    // widen it geometrically until fresh candidates appear.
    std::vector<Config> candidates;
    double r = radius;
    for (int attempt = 0; attempt < 8 && candidates.empty(); ++attempt) {
      std::vector<Config> ball =
          params.metric == BaoMetric::kFeature
              ? space.feature_neighborhood(center, r, params.neighborhood_cap,
                                           rng)
              : space.neighborhood(center, r, params.neighborhood_cap, rng);
      for (Config& c : ball) {
        if (!measured_flats.contains(c.flat)) candidates.push_back(std::move(c));
      }
      r *= params.tau;
    }
    if (candidates.empty()) {
      // Degenerate tiny space: everything reachable is measured.
      break;
    }

    // --- BS: bootstrap ensemble + argmax over C_t (line 10) -------------
    Dataset data(static_cast<std::size_t>(space.feature_dim()));
    for (const auto& r : measured) {
      data.add_row(space.features(r.config), r.ok ? r.gflops : 0.0);
    }
    const BootstrapEnsemble ensemble(data, surrogate_factory, params.gamma,
                                     rng);
    const std::size_t pick = bootstrap_select(ensemble, space, candidates);
    Config chosen = candidates[pick];

    // --- Deploy on hardware (lines 11-12) --------------------------------
    const bool keep_going = state.measure(chosen);
    const MeasureResult& result = measurer.measure(chosen);
    y_series.push_back(result.ok ? result.gflops : 0.0);

    center = params.recentre_on_best && state.best_flat() >= 0
                 ? space.at(state.best_flat())
                 : std::move(chosen);

    AAL_LOG_DEBUG << "BAO iter " << iterations << ": radius " << radius
                  << ", measured " << result.gflops << " GFLOPS, best "
                  << state.best_gflops();
    if (!keep_going) break;
  }
  return iterations;
}

}  // namespace aal
