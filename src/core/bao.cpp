#include "core/bao.hpp"

#include <cmath>
#include <limits>
#include <unordered_set>
#include <utility>

#include "support/logging.hpp"
#include "transfer/transfer_prior.hpp"

namespace aal {

namespace {

/// Equation (1): relative improvement between the two previous steps.
double relative_improvement(double y_prev, double y_prev2, bool literal_ceil) {
  if (y_prev <= 0.0) return -1.0;  // failed/zero step: force exploration
  const double ratio = (y_prev - y_prev2) / y_prev;
  return literal_ceil ? std::ceil(ratio) : ratio;
}

}  // namespace

BaoSearch::BaoSearch(BaoParams params) : params_(params) {
  AAL_CHECK(params_.tau > 1.0, "BAO tau must be > 1");
  AAL_CHECK(params_.radius > 0.0, "BAO radius must be > 0");
}

std::optional<Config> BaoSearch::next(const Measurer& measurer,
                                      const SurrogateFactory& surrogate_factory,
                                      Rng& rng) {
  const TuningTask& task = measurer.task();
  const ConfigSpace& space = task.space();

  // The initialization set is everything the measurer knows — the just-
  // measured BTED picks plus any records preloaded from a previous session.
  AAL_CHECK(measurer.num_measured() > 0,
            "BAO requires an already-measured initialization set");

  if (!center_) {
    // x*_0: best configuration of the initialization stage (Algorithm 4,
    // line 1). If every initial config failed, fall back to any measured
    // one — the enlarged-radius rule will pull the search away from it.
    const auto initial_best = measurer.best();
    center_ = initial_best ? initial_best->config
                           : measurer.all_results().front().config;
    // y* series for Equation (1); y*_0 is the incumbent's value.
    y_series_ = {initial_best ? initial_best->gflops : 0.0};
    stagnant_steps_ = 0;
  }

  ++iterations_;
  obs_.count("bao.iterations");

  // --- Adaptive search scope (lines 3-9) -----------------------------
  double radius = params_.radius;
  if (y_series_.size() >= 2) {
    const double rt = relative_improvement(y_series_[y_series_.size() - 1],
                                           y_series_[y_series_.size() - 2],
                                           params_.literal_ceil);
    if (rt < params_.eta) {
      ++stagnant_steps_;
      radius = params_.compound_radius
                   ? std::min(params_.max_radius,
                              params_.radius *
                                  std::pow(params_.tau, stagnant_steps_))
                   : params_.tau * params_.radius;
      obs_.count("bao.scope_changes");
      obs_.emit(TraceEventType::kScopeChange,
                {{"iter", TraceValue(iterations_)},
                 {"cause", TraceValue("stagnation")},
                 {"r_t", TraceValue(rt)},
                 {"eta", TraceValue(params_.eta)},
                 {"base_radius", TraceValue(params_.radius)},
                 {"radius", TraceValue(radius)},
                 {"tau", TraceValue(params_.tau)},
                 {"stagnant_steps", TraceValue(stagnant_steps_)}});
    } else {
      stagnant_steps_ = 0;
    }
  }

  const std::vector<MeasureResult> measured = measurer.all_results();
  std::unordered_set<std::int64_t> measured_flats;
  measured_flats.reserve(measured.size());
  for (const auto& r : measured) measured_flats.insert(r.config.flat);

  // Materialize C_t, excluding already-measured points (re-deploying them
  // would burn budget on memoized results). If the ball is exhausted,
  // widen it geometrically until fresh candidates appear.
  std::vector<Config> candidates;
  double r = radius;
  for (int attempt = 0; attempt < 8 && candidates.empty(); ++attempt) {
    if (attempt > 0) {
      obs_.count("bao.scope_changes");
      obs_.emit(TraceEventType::kScopeChange,
                {{"iter", TraceValue(iterations_)},
                 {"cause", TraceValue("exhausted")},
                 {"radius", TraceValue(r)},
                 {"tau", TraceValue(params_.tau)},
                 {"attempt", TraceValue(attempt)}});
    }
    std::vector<Config> ball =
        params_.metric == BaoMetric::kFeature
            ? space.feature_neighborhood(*center_, r, params_.neighborhood_cap,
                                         rng)
            : space.neighborhood(*center_, r, params_.neighborhood_cap, rng);
    for (Config& c : ball) {
      if (!measured_flats.contains(c.flat)) candidates.push_back(std::move(c));
    }
    r *= params_.tau;
  }
  if (candidates.empty()) {
    // Degenerate tiny space: everything reachable is measured.
    return std::nullopt;
  }

  // --- BS: bootstrap ensemble + argmax over C_t (line 10) -------------
  Dataset data(static_cast<std::size_t>(space.feature_dim()));
  {
    std::vector<double> row(static_cast<std::size_t>(space.feature_dim()));
    for (const auto& m : measured) {
      space.features_into(m.config, row);
      data.add_row(row, m.ok ? m.gflops : 0.0);
    }
  }
  BootstrapEnsemble ensemble(data, surrogate_factory, params_.gamma, rng);
  ensemble.set_obs(obs_);
  obs_.count("bao.surrogate_fits");
  obs_.emit(TraceEventType::kSurrogateFit,
            {{"model", TraceValue("bootstrap")},
             {"gamma", TraceValue(params_.gamma)},
             {"rows", TraceValue(data.num_rows())},
             {"candidates", TraceValue(candidates.size())}});
  // With a meta-surrogate attached, blend fleet history into the selection:
  // the prior's normalized predictions are rescaled to the ensemble's units
  // (gamma summed models x the live best GFLOPS) and weighted by a
  // confidence that halves every `half_life` fresh observations. Once the
  // weight decays away (or before any live success exists to set the
  // scale), selection falls back to the pure Algorithm 3 argmax.
  std::size_t pick;
  double meta_weight = 0.0;
  const std::optional<MeasureResult> live_best = measurer.best();
  if (transfer_prior_ != nullptr && transfer_prior_->meta != nullptr &&
      live_best && live_best->gflops > 0.0) {
    std::int64_t live = 0;
    for (const auto& m : measured) {
      if (!m.preloaded) ++live;
    }
    meta_weight = transfer_prior_->weight_at(live);
  }
  if (meta_weight > 1e-3) {
    const std::vector<double> ens = ensemble.score_configs(space, candidates);
    const dense::Matrix feats = space.features_batch(candidates);
    std::vector<double> meta(candidates.size(), 0.0);
    transfer_prior_->meta->predict_batch(feats.data, feats.rows, meta);
    const double scale = meta_weight * static_cast<double>(params_.gamma) *
                         live_best->gflops;
    pick = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double s = ens[i] + scale * meta[i];
      if (s > best_score) {  // ties break toward the lower index
        best_score = s;
        pick = i;
      }
    }
    obs_.count("transfer.meta_blends");
  } else {
    pick = bootstrap_select(ensemble, space, candidates);
  }
  AAL_LOG_DEBUG << "BAO iter " << iterations_ << ": radius " << radius << ", "
                << candidates.size() << " candidates";
  return candidates[pick];
}

void BaoSearch::observe(const MeasureResult& result, const Measurer& measurer) {
  y_series_.push_back(result.ok ? result.gflops : 0.0);
  if (params_.recentre_on_best) {
    const auto best = measurer.best();
    if (best) {
      center_ = best->config;
      return;
    }
  }
  center_ = result.config;
}

}  // namespace aal
