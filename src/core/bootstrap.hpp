// Bootstrap-guided Sampling (BS) — Algorithm 3 of the paper.
//
// Draws Gamma bootstrap resamples (with replacement, |X_gamma| = |X|) from
// the measured set, fits one evaluation function per resample, and returns
// the candidate in the current search scope C maximizing the *sum* of the
// ensemble's predictions. The surrogate family is pluggable (the paper:
// "our sampling algorithm is general enough to handle various types of
// evaluation function f").
//
// The Gamma fits are independent once each resample's rows and model seed
// are fixed, so they run across the shared thread pool: every resample's
// row indices and seed are drawn *serially* from the caller's Rng in the
// same order a serial fit would draw them, then the fits execute on any
// schedule and land in fixed slots. The ensemble — and the caller's Rng
// state — is therefore bitwise-identical to a serial construction (pinned
// by tests/core/test_bootstrap.cpp and the golden-trace suite).
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/surrogate.hpp"
#include "obs/obs.hpp"
#include "space/config_space.hpp"
#include "support/dense.hpp"
#include "support/rng.hpp"

namespace aal {

struct BootstrapParams {
  int gamma = 2;  // number of resampled sets (paper's experiments use 2)
};

/// Ensemble of Gamma surrogates fitted on bootstrap resamples. Split out of
/// the selection step so callers (BAO, tests, ablations) can reuse one
/// ensemble across several scoring calls within an iteration.
class BootstrapEnsemble {
 public:
  /// Fits Gamma models on resamples of `data`. Each model gets an
  /// independent seed derived from `rng`. With `parallel_fit` (the default)
  /// the fits fan out over ThreadPool::shared(); results are
  /// bitwise-identical to a serial construction either way.
  BootstrapEnsemble(const Dataset& data, const SurrogateFactory& factory,
                    int gamma, Rng& rng, bool parallel_fit = true);

  /// Sum of the Gamma models' predictions (the BS acquisition value).
  double score(std::span<const double> features) const;

  /// Batched acquisition: out[i] = score(features.row(i)) for every row,
  /// each row's sum accumulated in model order (bitwise equal to score()).
  /// Scored model-by-model through Surrogate::predict_batch, so GBDT
  /// members run the flattened engine (ml/flat_forest.hpp).
  std::vector<double> score_all(const dense::Matrix& features) const;

  /// Scores candidate configs, featurizing the whole batch at once and
  /// memoizing each config's ensemble score by Config::flat — the models
  /// are immutable after construction, so a config re-proposed in a later
  /// scoring call within the same round is served from cache instead of
  /// re-featurized and re-scored. Counters (via set_obs):
  /// `surrogate.batch_rows` += configs scored fresh, `surrogate.batch_hits`
  /// += configs served from cache.
  std::vector<double> score_configs(const ConfigSpace& space,
                                    std::span<const Config> candidates) const;

  /// Attaches an observability handle for the score_configs counters.
  void set_obs(Obs obs) { obs_ = std::move(obs); }

  int gamma() const { return static_cast<int>(models_.size()); }

  const Surrogate& model(std::size_t g) const { return *models_[g]; }

 private:
  std::vector<std::unique_ptr<Surrogate>> models_;
  // Memo for score_configs; mutable because caching is not an observable
  // state change (scores of an immutable ensemble are pure).
  mutable std::unordered_map<std::int64_t, double> score_cache_;
  Obs obs_;
};

/// Algorithm 3: returns the index into `candidates` of the configuration
/// maximizing the ensemble score (ties break toward the lower index; the
/// candidate list must be non-empty). Candidates are featurized once into a
/// dense::Matrix and scored in a batch.
std::size_t bootstrap_select(const BootstrapEnsemble& ensemble,
                             const ConfigSpace& space,
                             const std::vector<Config>& candidates);

}  // namespace aal
