// Bootstrap-guided Sampling (BS) — Algorithm 3 of the paper.
//
// Draws Gamma bootstrap resamples (with replacement, |X_gamma| = |X|) from
// the measured set, fits one evaluation function per resample, and returns
// the candidate in the current search scope C maximizing the *sum* of the
// ensemble's predictions. The surrogate family is pluggable (the paper:
// "our sampling algorithm is general enough to handle various types of
// evaluation function f").
#pragma once

#include <memory>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/surrogate.hpp"
#include "space/config_space.hpp"
#include "support/rng.hpp"

namespace aal {

struct BootstrapParams {
  int gamma = 2;  // number of resampled sets (paper's experiments use 2)
};

/// Ensemble of Gamma surrogates fitted on bootstrap resamples. Split out of
/// the selection step so callers (BAO, tests, ablations) can reuse one
/// ensemble across several scoring calls within an iteration.
class BootstrapEnsemble {
 public:
  /// Fits Gamma models on resamples of `data`. Each model gets an
  /// independent seed derived from `rng`.
  BootstrapEnsemble(const Dataset& data, const SurrogateFactory& factory,
                    int gamma, Rng& rng);

  /// Sum of the Gamma models' predictions (the BS acquisition value).
  double score(std::span<const double> features) const;

  int gamma() const { return static_cast<int>(models_.size()); }

 private:
  std::vector<std::unique_ptr<Surrogate>> models_;
};

/// Algorithm 3: returns the index into `candidates` of the configuration
/// maximizing the ensemble score (ties break toward the lower index; the
/// candidate list must be non-empty).
std::size_t bootstrap_select(const BootstrapEnsemble& ensemble,
                             const ConfigSpace& space,
                             const std::vector<Config>& candidates);

}  // namespace aal
