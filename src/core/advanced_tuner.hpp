// The paper's advanced active-learning framework as a Tuner:
// BTED initialization (Algorithms 1-2) + BAO iterative optimization
// (Algorithms 3-4). This is the "BTED + BAO" row of every experiment.
//
// As an ask/tell policy the two stages map directly onto propose():
// the first call returns the BTED initialization set; every later call
// returns the single configuration BAO deploys that iteration. The
// TuningSession owns budget and early stopping.
#pragma once

#include <memory>

#include "core/bao.hpp"
#include "core/bted.hpp"
#include "ml/surrogate.hpp"
#include "tuner/tuner.hpp"

namespace aal {

class AdvancedActiveLearningTuner final : public Tuner {
 public:
  /// The default bootstrap surrogate is a lighter GBDT than AutoTVM's cost
  /// model (32 trees, depth 4, no extra row subsampling — the bootstrap
  /// already resamples rows): BS refits Gamma models *every* iteration, so
  /// the base learner must be cheap; ranking quality at tuning scale is
  /// unaffected (see the surrogate ablation bench).
  static GbdtParams default_bootstrap_gbdt_params() {
    GbdtParams p;
    p.num_trees = 32;
    p.max_depth = 4;
    p.row_subsample = 1.0;
    return p;
  }

  explicit AdvancedActiveLearningTuner(
      BtedParams bted = {}, BaoParams bao = {},
      std::shared_ptr<const SurrogateFactory> surrogate_factory =
          std::make_shared<GbdtSurrogateFactory>(
              default_bootstrap_gbdt_params()));

  std::string name() const override { return "bted+bao"; }

  void begin(const Measurer& measurer, const TuneOptions& options) override;
  std::vector<Config> propose(std::int64_t k) override;
  void observe(std::span<const MeasureResult> results) override;

  const BtedParams& bted_params() const { return bted_; }
  const BaoParams& bao_params() const { return bao_; }

 private:
  BtedParams bted_;
  BaoParams bao_;
  std::shared_ptr<const SurrogateFactory> surrogate_factory_;

  const Measurer* measurer_ = nullptr;
  TuneOptions tune_options_;
  Rng rng_;
  std::unique_ptr<BaoSearch> bao_search_;
  bool initialized_ = false;
  bool bao_active_ = false;
};

}  // namespace aal
