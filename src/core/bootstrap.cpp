#include "core/bootstrap.hpp"

#include <limits>

#include "support/common.hpp"

namespace aal {

BootstrapEnsemble::BootstrapEnsemble(const Dataset& data,
                                     const SurrogateFactory& factory,
                                     int gamma, Rng& rng) {
  AAL_CHECK(gamma >= 1, "bootstrap gamma must be >= 1");
  AAL_CHECK(!data.empty(), "bootstrap ensemble needs measured data");
  models_.reserve(static_cast<std::size_t>(gamma));
  for (int g = 0; g < gamma; ++g) {
    const auto rows =
        rng.sample_with_replacement(data.num_rows(), data.num_rows());
    const Dataset resample = data.subset(rows);
    auto model = factory.create(rng());
    model->fit(resample);
    models_.push_back(std::move(model));
  }
}

double BootstrapEnsemble::score(std::span<const double> features) const {
  double acc = 0.0;
  for (const auto& model : models_) acc += model->predict(features);
  return acc;
}

std::size_t bootstrap_select(const BootstrapEnsemble& ensemble,
                             const ConfigSpace& space,
                             const std::vector<Config>& candidates) {
  AAL_CHECK(!candidates.empty(), "bootstrap_select needs candidates");
  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double s = ensemble.score(space.features(candidates[i]));
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

}  // namespace aal
