#include "core/bootstrap.hpp"

#include <algorithm>
#include <limits>

#include "support/common.hpp"
#include "support/thread_pool.hpp"

namespace aal {

namespace {

/// Below this many (rows x models) prediction calls the pool's queueing
/// overhead outweighs the fan-out; thresholds affect wall-clock only, never
/// results.
constexpr std::size_t kParallelScoreMinWork = 256;

}  // namespace

BootstrapEnsemble::BootstrapEnsemble(const Dataset& data,
                                     const SurrogateFactory& factory,
                                     int gamma, Rng& rng, bool parallel_fit) {
  AAL_CHECK(gamma >= 1, "bootstrap gamma must be >= 1");
  AAL_CHECK(!data.empty(), "bootstrap ensemble needs measured data");

  // Each resample's stochastic inputs — its row indices and its model seed —
  // are drawn serially from the caller's stream in exactly the order a
  // serial fit would draw them, so the Rng end-state and every model are
  // independent of the execution schedule below.
  struct Draw {
    std::vector<std::size_t> rows;
    std::uint64_t seed = 0;
  };
  std::vector<Draw> draws(static_cast<std::size_t>(gamma));
  for (auto& draw : draws) {
    draw.rows = rng.sample_with_replacement(data.num_rows(), data.num_rows());
    draw.seed = rng();
  }

  models_.resize(static_cast<std::size_t>(gamma));
  const auto fit_one = [&](std::size_t g) {
    const Dataset resample = data.subset(draws[g].rows);
    auto model = factory.create(draws[g].seed);
    model->fit(resample);
    models_[g] = std::move(model);  // fixed slot: reduction order is static
  };
  if (parallel_fit && gamma > 1 && ThreadPool::shared().size() > 1) {
    ThreadPool::shared().parallel_for(models_.size(), fit_one);
  } else {
    for (std::size_t g = 0; g < models_.size(); ++g) fit_one(g);
  }
}

double BootstrapEnsemble::score(std::span<const double> features) const {
  double acc = 0.0;
  for (const auto& model : models_) acc += model->predict(features);
  return acc;
}

std::vector<double> BootstrapEnsemble::score_all(
    const dense::Matrix& features) const {
  std::vector<double> out(features.rows, 0.0);
  const auto score_row = [&](std::size_t i) {
    const std::span<const double> row{features.row(i), features.cols};
    double acc = 0.0;
    for (const auto& model : models_) acc += model->predict(row);
    out[i] = acc;
  };
  const std::size_t work = features.rows * models_.size();
  if (work >= kParallelScoreMinWork && ThreadPool::shared().size() > 1) {
    ThreadPool::shared().parallel_for(features.rows, score_row);
  } else {
    for (std::size_t i = 0; i < features.rows; ++i) score_row(i);
  }
  return out;
}

std::size_t bootstrap_select(const BootstrapEnsemble& ensemble,
                             const ConfigSpace& space,
                             const std::vector<Config>& candidates) {
  AAL_CHECK(!candidates.empty(), "bootstrap_select needs candidates");
  dense::Matrix features(candidates.size(),
                         static_cast<std::size_t>(space.feature_dim()));
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto f = space.features(candidates[i]);
    std::copy(f.begin(), f.end(), features.row(i));
  }
  const std::vector<double> scores = ensemble.score_all(features);

  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > best_score) {
      best_score = scores[i];
      best = i;
    }
  }
  return best;
}

}  // namespace aal
