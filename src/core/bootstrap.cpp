#include "core/bootstrap.hpp"

#include <algorithm>
#include <limits>

#include "support/common.hpp"
#include "support/thread_pool.hpp"

namespace aal {

BootstrapEnsemble::BootstrapEnsemble(const Dataset& data,
                                     const SurrogateFactory& factory,
                                     int gamma, Rng& rng, bool parallel_fit) {
  AAL_CHECK(gamma >= 1, "bootstrap gamma must be >= 1");
  AAL_CHECK(!data.empty(), "bootstrap ensemble needs measured data");

  // Each resample's stochastic inputs — its row indices and its model seed —
  // are drawn serially from the caller's stream in exactly the order a
  // serial fit would draw them, so the Rng end-state and every model are
  // independent of the execution schedule below.
  struct Draw {
    std::vector<std::size_t> rows;
    std::uint64_t seed = 0;
  };
  std::vector<Draw> draws(static_cast<std::size_t>(gamma));
  for (auto& draw : draws) {
    draw.rows = rng.sample_with_replacement(data.num_rows(), data.num_rows());
    draw.seed = rng();
  }

  models_.resize(static_cast<std::size_t>(gamma));
  const auto fit_one = [&](std::size_t g) {
    const Dataset resample = data.subset(draws[g].rows);
    auto model = factory.create(draws[g].seed);
    model->fit(resample);
    models_[g] = std::move(model);  // fixed slot: reduction order is static
  };
  if (parallel_fit && gamma > 1 && ThreadPool::shared().size() > 1) {
    ThreadPool::shared().parallel_for(models_.size(), fit_one);
  } else {
    for (std::size_t g = 0; g < models_.size(); ++g) fit_one(g);
  }
}

double BootstrapEnsemble::score(std::span<const double> features) const {
  double acc = 0.0;
  for (const auto& model : models_) acc += model->predict(features);
  return acc;
}

std::vector<double> BootstrapEnsemble::score_all(
    const dense::Matrix& features) const {
  // Model-outer batched scoring: each member predicts the whole batch
  // (GBDT members through the flattened level-order engine), then its
  // column is folded into the running sums. Every row's sum accumulates in
  // model order — exactly score()'s expression sequence — so the result is
  // bitwise-identical to per-row scoring.
  std::vector<double> out(features.rows, 0.0);
  if (features.rows == 0) return out;
  std::vector<double> tmp(features.rows);
  const std::span<const double> all{features.data.data(),
                                    features.rows * features.cols};
  for (const auto& model : models_) {
    model->predict_batch(all, features.rows, tmp);
    for (std::size_t i = 0; i < features.rows; ++i) out[i] += tmp[i];
  }
  return out;
}

std::vector<double> BootstrapEnsemble::score_configs(
    const ConfigSpace& space, std::span<const Config> candidates) const {
  std::vector<double> out(candidates.size(), 0.0);
  std::vector<std::size_t> fresh;
  fresh.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto it = score_cache_.find(candidates[i].flat);
    if (it != score_cache_.end()) {
      out[i] = it->second;
    } else {
      fresh.push_back(i);
    }
  }
  if (!fresh.empty()) {
    const auto dim = static_cast<std::size_t>(space.feature_dim());
    dense::Matrix features(fresh.size(), dim);
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      space.features_into(candidates[fresh[k]],
                          std::span<double>{features.row(k), dim});
    }
    const std::vector<double> scores = score_all(features);
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      out[fresh[k]] = scores[k];
      score_cache_.emplace(candidates[fresh[k]].flat, scores[k]);
    }
  }
  obs_.count("surrogate.batch_rows",
             static_cast<std::int64_t>(fresh.size()));
  obs_.count("surrogate.batch_hits",
             static_cast<std::int64_t>(candidates.size() - fresh.size()));
  return out;
}

std::size_t bootstrap_select(const BootstrapEnsemble& ensemble,
                             const ConfigSpace& space,
                             const std::vector<Config>& candidates) {
  AAL_CHECK(!candidates.empty(), "bootstrap_select needs candidates");
  const std::vector<double> scores = ensemble.score_configs(
      space, std::span<const Config>{candidates.data(), candidates.size()});

  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > best_score) {
      best_score = scores[i];
      best = i;
    }
  }
  return best;
}

}  // namespace aal
