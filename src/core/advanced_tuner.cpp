#include "core/advanced_tuner.hpp"

#include "support/logging.hpp"

namespace aal {

AdvancedActiveLearningTuner::AdvancedActiveLearningTuner(
    BtedParams bted, BaoParams bao,
    std::shared_ptr<const SurrogateFactory> surrogate_factory)
    : bted_(bted), bao_(bao), surrogate_factory_(std::move(surrogate_factory)) {
  // Validate the BAO parameters up front (tau > 1, radius > 0).
  BaoSearch validate(bao_);
  (void)validate;
}

void AdvancedActiveLearningTuner::begin(const Measurer& measurer,
                                        const TuneOptions& options) {
  Tuner::begin(measurer, options);
  measurer_ = &measurer;
  tune_options_ = options;
  rng_.reseed(options.seed);
  bao_search_ = std::make_unique<BaoSearch>(bao_);
  bao_search_->set_obs(obs_);
  initialized_ = false;
  bao_active_ = false;
}

std::vector<Config> AdvancedActiveLearningTuner::propose(std::int64_t k) {
  (void)k;  // the session trims overshoot against the remaining budget

  // Stage 1: BTED initialization. options.num_initial (m) overrides the
  // params' num_select, mirroring the paper's m = 64 setting.
  if (!initialized_) {
    initialized_ = true;
    BtedParams bted = bted_;
    bted.num_select = tune_options_.num_initial;
    std::vector<Config> initial = bted_sample(measurer_->task(), bted, rng_);
    obs_.count("bted.initial_proposed",
               static_cast<std::int64_t>(initial.size()));
    AAL_LOG_DEBUG << "bted+bao: proposing " << initial.size()
                  << " initialization configs";
    return initial;
  }

  // Stage 2: one BAO iteration per round — the paper deploys exactly one
  // configuration per adaptive step.
  bao_active_ = true;
  std::optional<Config> chosen =
      bao_search_->next(*measurer_, *surrogate_factory_, rng_);
  if (!chosen) return {};
  return {std::move(*chosen)};
}

void AdvancedActiveLearningTuner::observe(
    std::span<const MeasureResult> results) {
  if (!bao_active_ || results.empty()) return;
  // BAO proposes one fresh config per round, so the round's fresh results
  // contain exactly its deployment.
  bao_search_->observe(results.front(), *measurer_);
}

}  // namespace aal
