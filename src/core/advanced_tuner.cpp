#include "core/advanced_tuner.hpp"

#include "support/logging.hpp"

namespace aal {

AdvancedActiveLearningTuner::AdvancedActiveLearningTuner(
    BtedParams bted, BaoParams bao,
    std::shared_ptr<const SurrogateFactory> surrogate_factory)
    : bted_(bted), bao_(bao), surrogate_factory_(std::move(surrogate_factory)) {}

TuneResult AdvancedActiveLearningTuner::tune(Measurer& measurer,
                                             const TuneOptions& options) {
  TuneLoopState state(measurer, options);
  Rng rng(options.seed);

  // Stage 1: BTED initialization. options.num_initial (m) overrides the
  // params' num_select, mirroring the paper's m = 64 setting.
  BtedParams bted = bted_;
  bted.num_select = options.num_initial;
  const std::vector<Config> initial =
      bted_sample(measurer.task(), bted, rng);
  state.measure_all(initial);
  AAL_LOG_DEBUG << "bted+bao: initialized with " << initial.size()
                << " configs, best " << state.best_gflops() << " GFLOPS";

  // Stage 2: BAO iterative optimization until budget / early stopping.
  if (!state.should_stop()) {
    run_bao(state, *surrogate_factory_, bao_, rng);
  }
  return state.finish(name());
}

}  // namespace aal
