#include "core/advanced_tuner.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/logging.hpp"
#include "transfer/transfer_prior.hpp"

namespace aal {

AdvancedActiveLearningTuner::AdvancedActiveLearningTuner(
    BtedParams bted, BaoParams bao,
    std::shared_ptr<const SurrogateFactory> surrogate_factory)
    : bted_(bted), bao_(bao), surrogate_factory_(std::move(surrogate_factory)) {
  // Validate the BAO parameters up front (tau > 1, radius > 0).
  BaoSearch validate(bao_);
  (void)validate;
}

void AdvancedActiveLearningTuner::begin(const Measurer& measurer,
                                        const TuneOptions& options) {
  Tuner::begin(measurer, options);
  measurer_ = &measurer;
  tune_options_ = options;
  rng_.reseed(options.seed);
  bao_search_ = std::make_unique<BaoSearch>(bao_);
  bao_search_->set_obs(obs_);
  bao_search_->set_transfer_prior(transfer_prior_);
  initialized_ = false;
  bao_active_ = false;
}

std::vector<Config> AdvancedActiveLearningTuner::propose(std::int64_t k) {
  (void)k;  // the session trims overshoot against the remaining budget

  // Stage 1: BTED initialization. options.num_initial (m) overrides the
  // params' num_select, mirroring the paper's m = 64 setting.
  if (!initialized_) {
    initialized_ = true;
    BtedParams bted = bted_;
    bted.num_select = tune_options_.num_initial;
    std::vector<Config> initial;
    if (transfer_prior_ != nullptr && transfer_prior_->active()) {
      // Warm start: fleet history replaces breadth. The initial set is the
      // prior's seeds (prior-task bests + HW-ranked feasible picks) capped
      // at warm_num_initial, with BTED topping up any shortfall — so the
      // warm run measures far fewer initialization configs than the cold
      // num_initial-wide sweep.
      int m = tune_options_.num_initial;
      if (transfer_prior_->warm_num_initial > 0) {
        m = std::min(m, transfer_prior_->warm_num_initial);
      }
      initial = transfer_prior_->seeds;
      if (initial.size() > static_cast<std::size_t>(m)) initial.resize(m);
      obs_.count("transfer.init_seeds",
                 static_cast<std::int64_t>(initial.size()));
      if (initial.size() < static_cast<std::size_t>(m)) {
        std::unordered_set<std::int64_t> taken;
        for (const Config& c : initial) taken.insert(c.flat);
        bted.num_select = m;
        for (Config& c : bted_sample(measurer_->task(), bted, rng_)) {
          if (initial.size() >= static_cast<std::size_t>(m)) break;
          if (taken.insert(c.flat).second) initial.push_back(std::move(c));
        }
      }
    } else {
      initial = bted_sample(measurer_->task(), bted, rng_);
    }
    obs_.count("bted.initial_proposed",
               static_cast<std::int64_t>(initial.size()));
    AAL_LOG_DEBUG << "bted+bao: proposing " << initial.size()
                  << " initialization configs";
    return initial;
  }

  // Stage 2: one BAO iteration per round — the paper deploys exactly one
  // configuration per adaptive step.
  bao_active_ = true;
  std::optional<Config> chosen =
      bao_search_->next(*measurer_, *surrogate_factory_, rng_);
  if (!chosen) return {};
  return {std::move(*chosen)};
}

void AdvancedActiveLearningTuner::observe(
    std::span<const MeasureResult> results) {
  if (!bao_active_ || results.empty()) return;
  // BAO proposes one fresh config per round, so the round's fresh results
  // contain exactly its deployment.
  bao_search_->observe(results.front(), *measurer_);
}

}  // namespace aal
