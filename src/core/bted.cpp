#include "core/bted.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/dense.hpp"
#include "support/thread_pool.hpp"

namespace aal {

namespace {

dense::Matrix featurize(const ConfigSpace& space,
                        const std::vector<Config>& configs) {
  return space.features_batch(
      std::span<const Config>{configs.data(), configs.size()});
}

std::vector<Config> pick(const std::vector<Config>& pool,
                         const std::vector<std::size_t>& indices) {
  std::vector<Config> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(pool[i]);
  return out;
}

}  // namespace

std::vector<Config> bted_sample(const TuningTask& task,
                                const BtedParams& params, Rng& rng) {
  AAL_CHECK(params.num_batches >= 1, "BTED needs at least one batch");
  AAL_CHECK(params.batch_sample_size >= 1, "BTED batch size must be >= 1");
  AAL_CHECK(params.num_select >= 1, "BTED must select at least one config");

  const ConfigSpace& space = task.space();
  TedParams ted;
  ted.mu = params.mu;
  ted.kernel = params.kernel;

  // Draw each batch's candidate set up front (deterministic order from the
  // caller's rng), then run the B TED selections, optionally in parallel.
  std::vector<std::vector<Config>> batches(
      static_cast<std::size_t>(params.num_batches));
  for (auto& batch : batches) {
    batch = space.sample_distinct(params.batch_sample_size, rng);
  }

  std::vector<std::vector<Config>> selected(batches.size());
  auto run_batch = [&](std::size_t b) {
    const auto features = featurize(space, batches[b]);
    const auto indices = ted_select(
        features, static_cast<std::size_t>(params.num_select), ted);
    selected[b] = pick(batches[b], indices);
  };
  if (params.parallel && batches.size() > 1) {
    ThreadPool::shared().parallel_for(batches.size(), run_batch);
  } else {
    for (std::size_t b = 0; b < batches.size(); ++b) run_batch(b);
  }

  // Union of per-batch picks (dedup by flat index, stable order).
  std::vector<Config> union_set;
  std::unordered_set<std::int64_t> seen;
  for (const auto& sel : selected) {
    for (const Config& c : sel) {
      if (seen.insert(c.flat).second) union_set.push_back(c);
    }
  }

  // Final TED pass over the union.
  const auto features = featurize(space, union_set);
  const auto indices = ted_select(
      features, static_cast<std::size_t>(params.num_select), ted);
  return pick(union_set, indices);
}

InitSampler bted_init_sampler(BtedParams params) {
  return [params](const TuningTask& task, int m, Rng& rng) {
    BtedParams p = params;
    p.num_select = m;
    return bted_sample(task, p, rng);
  };
}

}  // namespace aal
