// Transductive Experimental Design — Algorithm 1 of the paper.
//
// Given a candidate set V (rows of a feature matrix), greedily selects m
// configurations maximizing the TED score ||K_v||^2 / (k(v,v) + mu) with
// rank-one deflation K <- K - K_x K_x^T / (k(x,x) + mu) after each pick
// (Yu, Bi & Tresp, ICML'06). The paper computes K from Euclidean distances
// of the configuration vectors; an RBF kernel variant is provided for the
// ablation bench (the classical TED formulation). Features are z-scored
// over V first so no knob dominates the metric.
#pragma once

#include <cstddef>
#include <vector>

#include "support/dense.hpp"

namespace aal {

enum class TedKernel {
  kEuclideanDistance,  // K[i][j] = ||x_i - x_j||   (paper text)
  kRbf,                // K[i][j] = exp(-||x_i-x_j||^2 / (2 sigma^2))
};

struct TedParams {
  double mu = 0.1;
  /// The paper's text says K "is computed as Euclidean distance", but a raw
  /// distance matrix is not PSD: the rank-one deflation then amplifies the
  /// matrix by ~max(d)^2/mu per pick and the selection degenerates into
  /// near-duplicates after a handful of rounds (observable in the tests).
  /// Algorithm 1 originates from Yu/Bi/Tresp's TED, which assumes a proper
  /// kernel, so the default here is an RBF kernel *of* the Euclidean
  /// distance (median-bandwidth heuristic); the literal distance matrix
  /// stays available for the ablation bench.
  TedKernel kernel = TedKernel::kRbf;
  /// RBF bandwidth; <= 0 selects the median-distance heuristic.
  double rbf_sigma = 0.0;
};

/// Returns indices (into `features`) of the m selected rows, in selection
/// order. If m >= |V| all indices are returned. All rows must share width.
///
/// The selection runs on the shared dense-kernel layer
/// (`support/dense.hpp`): a blocked pairwise squared-distance build, cached
/// row norms, and either materialized rank-one deflation (small n) or a
/// lazy read-only formulation (large n) — see docs/PERF.md for the
/// crossover and measured speedups.
std::vector<std::size_t> ted_select(const dense::Matrix& features,
                                    std::size_t m,
                                    const TedParams& params = {});

/// Convenience adapter for vector-of-rows callers (copies into a
/// dense::Matrix). All rows must share width.
std::vector<std::size_t> ted_select(
    const std::vector<std::vector<double>>& features, std::size_t m,
    const TedParams& params = {});

/// Z-scores columns in place over the given rows (helper shared with BTED;
/// exposed for tests). Constant columns become all-zero.
void standardize_columns(std::vector<std::vector<double>>& features);

}  // namespace aal
