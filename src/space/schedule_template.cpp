#include "space/schedule_template.hpp"

#include "space/template_registry.hpp"
#include "support/common.hpp"

namespace aal {

namespace {

const std::vector<std::int64_t>& split_entity(const ConfigSpace& space,
                                              const Config& config,
                                              std::size_t knob_idx) {
  const SplitKnob& k = space.knob(knob_idx).as_split();
  return k.entities[static_cast<std::size_t>(config.choices[knob_idx])];
}

std::int64_t option_value(const ConfigSpace& space, const Config& config,
                          std::size_t knob_idx) {
  const OptionKnob& k = space.knob(knob_idx).as_option();
  return k.values[static_cast<std::size_t>(config.choices[knob_idx])];
}

}  // namespace

ConfigSpace build_config_space(const Workload& workload) {
  // Deprecated shim: forwards to the registry's default ("cuda") template on
  // the default target. A default-constructed TargetSpec is gpu-pascal — the
  // CUDA template ignores the target anyway — so the produced space is
  // byte-identical to the pre-registry builder on every code path.
  return TemplateRegistry::instance().build(workload, TargetSpec{});
}

ConvSchedule decode_conv_schedule(const Workload& workload,
                                  const ConfigSpace& space,
                                  const Config& config) {
  AAL_CHECK(workload.is_conv(), "decode_conv_schedule on non-conv workload");
  ConvSchedule s;
  const bool depthwise = workload.kind() == WorkloadKind::kDepthwiseConv2d;

  const auto& f = split_entity(space, config, 0);
  s.bf = f[0]; s.vf = f[1]; s.tf = f[2]; s.fi = f[3];
  const auto& y = split_entity(space, config, 1);
  s.by = y[0]; s.vy = y[1]; s.ty = y[2]; s.yi = y[3];
  const auto& x = split_entity(space, config, 2);
  s.bx = x[0]; s.vx = x[1]; s.tx = x[2]; s.xi = x[3];

  std::size_t idx = 3;
  if (!depthwise) {
    const auto& rc = split_entity(space, config, idx++);
    s.rco = rc[0];
    s.rci = rc[1];
  }
  const auto& ry = split_entity(space, config, idx++);
  s.ryo = ry[0]; s.ryi = ry[1];
  const auto& rx = split_entity(space, config, idx++);
  s.rxo = rx[0]; s.rxi = rx[1];
  s.auto_unroll_max_step = option_value(space, config, idx++);
  s.unroll_explicit = option_value(space, config, idx++) != 0;
  AAL_ASSERT(idx == space.num_knobs(), "conv template knob count mismatch");
  return s;
}

DenseSchedule decode_dense_schedule(const Workload& workload,
                                    const ConfigSpace& space,
                                    const Config& config) {
  AAL_CHECK(workload.kind() == WorkloadKind::kDense,
            "decode_dense_schedule on non-dense workload");
  DenseSchedule s;
  const auto& y = split_entity(space, config, 0);
  s.bo = y[0]; s.vo = y[1]; s.to = y[2]; s.oi = y[3];
  const auto& k = split_entity(space, config, 1);
  s.ko = k[0]; s.ki = k[1];
  s.auto_unroll_max_step = option_value(space, config, 2);
  s.unroll_explicit = option_value(space, config, 3) != 0;
  return s;
}

}  // namespace aal
