#include "space/schedule_template.hpp"

#include "support/common.hpp"

namespace aal {

namespace {

ConfigSpace build_conv2d_space(const Conv2dWorkload& w) {
  std::vector<Knob> knobs;
  knobs.push_back(Knob::split("tile_f", w.out_channels, 4));
  knobs.push_back(Knob::split("tile_y", w.out_height(), 4));
  knobs.push_back(Knob::split("tile_x", w.out_width(), 4));
  knobs.push_back(Knob::split("tile_rc", w.in_channels / w.groups, 2));
  knobs.push_back(Knob::split("tile_ry", w.kernel_h, 2));
  knobs.push_back(Knob::split("tile_rx", w.kernel_w, 2));
  knobs.push_back(Knob::option("auto_unroll_max_step", {0, 512, 1500}));
  knobs.push_back(Knob::option("unroll_explicit", {0, 1}));
  return ConfigSpace(std::move(knobs));
}

ConfigSpace build_depthwise_space(const Conv2dWorkload& w) {
  std::vector<Knob> knobs;
  knobs.push_back(Knob::split("tile_c", w.out_channels, 4));
  knobs.push_back(Knob::split("tile_y", w.out_height(), 4));
  knobs.push_back(Knob::split("tile_x", w.out_width(), 4));
  knobs.push_back(Knob::split("tile_ry", w.kernel_h, 2));
  knobs.push_back(Knob::split("tile_rx", w.kernel_w, 2));
  knobs.push_back(Knob::option("auto_unroll_max_step", {0, 256, 1500}));
  knobs.push_back(Knob::option("unroll_explicit", {0, 1}));
  return ConfigSpace(std::move(knobs));
}

ConfigSpace build_dense_space(const DenseWorkload& w) {
  std::vector<Knob> knobs;
  knobs.push_back(Knob::split("tile_y", w.out_features, 4));
  knobs.push_back(Knob::split("tile_k", w.in_features, 2));
  knobs.push_back(Knob::option("auto_unroll_max_step", {0, 512, 1500}));
  knobs.push_back(Knob::option("unroll_explicit", {0, 1}));
  return ConfigSpace(std::move(knobs));
}

const std::vector<std::int64_t>& split_entity(const ConfigSpace& space,
                                              const Config& config,
                                              std::size_t knob_idx) {
  const SplitKnob& k = space.knob(knob_idx).as_split();
  return k.entities[static_cast<std::size_t>(config.choices[knob_idx])];
}

std::int64_t option_value(const ConfigSpace& space, const Config& config,
                          std::size_t knob_idx) {
  const OptionKnob& k = space.knob(knob_idx).as_option();
  return k.values[static_cast<std::size_t>(config.choices[knob_idx])];
}

}  // namespace

ConfigSpace build_config_space(const Workload& workload) {
  switch (workload.kind()) {
    case WorkloadKind::kConv2d:
      return build_conv2d_space(workload.as_conv2d());
    case WorkloadKind::kDepthwiseConv2d:
      return build_depthwise_space(workload.as_conv2d());
    case WorkloadKind::kDense:
      return build_dense_space(workload.as_dense());
  }
  throw InternalError("unhandled workload kind");
}

ConvSchedule decode_conv_schedule(const Workload& workload,
                                  const ConfigSpace& space,
                                  const Config& config) {
  AAL_CHECK(workload.is_conv(), "decode_conv_schedule on non-conv workload");
  ConvSchedule s;
  const bool depthwise = workload.kind() == WorkloadKind::kDepthwiseConv2d;

  const auto& f = split_entity(space, config, 0);
  s.bf = f[0]; s.vf = f[1]; s.tf = f[2]; s.fi = f[3];
  const auto& y = split_entity(space, config, 1);
  s.by = y[0]; s.vy = y[1]; s.ty = y[2]; s.yi = y[3];
  const auto& x = split_entity(space, config, 2);
  s.bx = x[0]; s.vx = x[1]; s.tx = x[2]; s.xi = x[3];

  std::size_t idx = 3;
  if (!depthwise) {
    const auto& rc = split_entity(space, config, idx++);
    s.rco = rc[0];
    s.rci = rc[1];
  }
  const auto& ry = split_entity(space, config, idx++);
  s.ryo = ry[0]; s.ryi = ry[1];
  const auto& rx = split_entity(space, config, idx++);
  s.rxo = rx[0]; s.rxi = rx[1];
  s.auto_unroll_max_step = option_value(space, config, idx++);
  s.unroll_explicit = option_value(space, config, idx++) != 0;
  AAL_ASSERT(idx == space.num_knobs(), "conv template knob count mismatch");
  return s;
}

DenseSchedule decode_dense_schedule(const Workload& workload,
                                    const ConfigSpace& space,
                                    const Config& config) {
  AAL_CHECK(workload.kind() == WorkloadKind::kDense,
            "decode_dense_schedule on non-dense workload");
  DenseSchedule s;
  const auto& y = split_entity(space, config, 0);
  s.bo = y[0]; s.vo = y[1]; s.to = y[2]; s.oi = y[3];
  const auto& k = split_entity(space, config, 1);
  s.ko = k[0]; s.ki = k[1];
  s.auto_unroll_max_step = option_value(space, config, 2);
  s.unroll_explicit = option_value(space, config, 3) != 0;
  return s;
}

}  // namespace aal
