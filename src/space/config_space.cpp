#include "space/config_space.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

namespace aal {

namespace {

/// Rejection bound for constraint-filtered sampling: generous enough that a
/// feasible region of a few percent is still found with near certainty,
/// small enough that a pathological all-infeasible space degrades to a
/// plain draw instead of an infinite loop.
constexpr int kMaxFeasibleAttempts = 256;

}  // namespace

ConfigSpace::ConfigSpace(std::vector<Knob> knobs) : knobs_(std::move(knobs)) {
  AAL_CHECK(!knobs_.empty(), "config space needs at least one knob");
  size_ = 1;
  feature_dim_ = 0;
  for (const Knob& k : knobs_) {
    AAL_CHECK(k.size() >= 1, "knob '" << k.name() << "' is empty");
    AAL_ASSERT(size_ <= (std::int64_t{1} << 62) / k.size(),
               "config space size overflow");
    size_ *= k.size();
    feature_offsets_.push_back(feature_dim_);
    feature_dim_ += k.feature_width();
  }
}

const Knob& ConfigSpace::knob(std::size_t i) const {
  AAL_CHECK(i < knobs_.size(), "knob index out of range");
  return knobs_[i];
}

Config ConfigSpace::at(std::int64_t flat) const {
  AAL_CHECK(flat >= 0 && flat < size_,
            "flat index " << flat << " out of space size " << size_);
  Config c;
  c.flat = flat;
  c.choices.resize(knobs_.size());
  // Mixed-radix decode, least-significant knob last (so that knob 0 varies
  // slowest; purely a convention, kept stable for record files).
  std::int64_t rest = flat;
  for (std::size_t i = knobs_.size(); i-- > 0;) {
    const std::int64_t base = knobs_[i].size();
    c.choices[i] = static_cast<std::int32_t>(rest % base);
    rest /= base;
  }
  return c;
}

std::int64_t ConfigSpace::flat_of(
    const std::vector<std::int32_t>& choices) const {
  AAL_CHECK(choices.size() == knobs_.size(),
            "choice vector size mismatch: " << choices.size() << " vs "
                                            << knobs_.size());
  std::int64_t flat = 0;
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    const std::int64_t base = knobs_[i].size();
    AAL_CHECK(choices[i] >= 0 && choices[i] < base,
              "choice " << choices[i] << " out of range for knob '"
                        << knobs_[i].name() << "'");
    flat = flat * base + choices[i];
  }
  return flat;
}

Config ConfigSpace::make(std::vector<std::int32_t> choices) const {
  Config c;
  c.flat = flat_of(choices);
  c.choices = std::move(choices);
  return c;
}

void ConfigSpace::set_constraints(std::vector<SpaceConstraint> constraints) {
  for (const SpaceConstraint& c : constraints) {
    AAL_CHECK(!c.name.empty(), "space constraint needs a name");
    AAL_CHECK(static_cast<bool>(c.predicate),
              "space constraint '" << c.name << "' has no predicate");
  }
  constraints_ = std::move(constraints);
  stats_ = std::make_shared<ConstraintStats>();
}

bool ConfigSpace::feasible(const Config& config) const {
  if (constraints_.empty()) return true;
  stats_->checked.fetch_add(1, std::memory_order_relaxed);
  for (const SpaceConstraint& c : constraints_) {
    if (!c.predicate(*this, config)) {
      stats_->pruned.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

Config ConfigSpace::sample(Rng& rng) const {
  Config c = at(static_cast<std::int64_t>(
      rng.next_index(static_cast<std::uint64_t>(size_))));
  if (constraints_.empty()) return c;
  // Bounded rejection: almost-everywhere-infeasible spaces fall back to the
  // last draw rather than looping forever — the device model rejects that
  // config as an invalid build, so nothing downstream relies on the sample
  // being feasible.
  for (int attempt = 0; attempt < kMaxFeasibleAttempts; ++attempt) {
    if (feasible(c)) return c;
    c = at(static_cast<std::int64_t>(
        rng.next_index(static_cast<std::uint64_t>(size_))));
  }
  return c;
}

std::vector<Config> ConfigSpace::sample_distinct(std::int64_t n,
                                                 Rng& rng) const {
  std::vector<Config> out;
  if (n >= size_) {
    out.reserve(static_cast<std::size_t>(size_));
    for (std::int64_t i = 0; i < size_; ++i) {
      Config c = at(i);
      if (constraints_.empty() || feasible(c)) out.push_back(std::move(c));
    }
    return out;
  }
  std::unordered_set<std::int64_t> seen;
  seen.reserve(static_cast<std::size_t>(n) * 2);
  out.reserve(static_cast<std::size_t>(n));
  // Unconstrained draws always terminate because n < size(); constrained
  // draws are attempt-bounded (the feasible region may hold fewer than n
  // points), so the result may come back short.
  std::int64_t attempts_left =
      constraints_.empty() ? std::numeric_limits<std::int64_t>::max()
                           : n * kMaxFeasibleAttempts + kMaxFeasibleAttempts;
  while (static_cast<std::int64_t>(out.size()) < n && attempts_left-- > 0) {
    Config c = at(static_cast<std::int64_t>(
        rng.next_index(static_cast<std::uint64_t>(size_))));
    if (!constraints_.empty() && !feasible(c)) continue;
    if (seen.insert(c.flat).second) out.push_back(std::move(c));
  }
  return out;
}

std::vector<double> ConfigSpace::features(const Config& config) const {
  std::vector<double> out(static_cast<std::size_t>(feature_dim_));
  features_into(config, out);
  return out;
}

void ConfigSpace::features_into(const Config& config,
                                std::span<double> out) const {
  AAL_CHECK(config.choices.size() == knobs_.size(),
            "config does not belong to this space");
  AAL_CHECK(out.size() >= static_cast<std::size_t>(feature_dim_),
            "feature output span narrower than feature_dim");
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    const Knob& k = knobs_[i];
    const double* row = k.feature_row(config.choices[i]);
    std::copy(row, row + k.feature_width(),
              out.data() + feature_offsets_[i]);
  }
}

dense::Matrix ConfigSpace::features_batch(
    std::span<const Config> configs) const {
  dense::Matrix out(configs.size(), static_cast<std::size_t>(feature_dim_));
  for (std::size_t r = 0; r < configs.size(); ++r) {
    features_into(configs[r],
                  std::span<double>{out.row(r),
                                    static_cast<std::size_t>(feature_dim_)});
  }
  return out;
}

double ConfigSpace::choice_distance_sq(const Config& a,
                                       const Config& b) const {
  AAL_CHECK(a.choices.size() == knobs_.size() &&
                b.choices.size() == knobs_.size(),
            "configs do not belong to this space");
  double acc = 0.0;
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    const double d = static_cast<double>(a.choices[i]) - b.choices[i];
    acc += d * d;
  }
  return acc;
}

void ConfigSpace::enumerate_ball(const Config& center, double radius,
                                 std::size_t max_points,
                                 std::vector<Config>& out) const {
  const double r2 = radius * radius;
  std::vector<std::int32_t> current(knobs_.size(), 0);
  // Depth-first product of per-knob windows with a running distance budget.
  auto rec = [&](auto&& self, std::size_t knob_idx, double used) -> void {
    if (knob_idx == knobs_.size()) {
      Config c = make(current);
      if (c.flat != center.flat &&
          (constraints_.empty() || feasible(c))) {
        out.push_back(std::move(c));
      }
      return;
    }
    const double remaining = r2 - used;
    const auto span = static_cast<std::int32_t>(std::floor(std::sqrt(remaining)));
    const std::int32_t c0 = center.choices[knob_idx];
    const std::int32_t lo = std::max<std::int32_t>(0, c0 - span);
    const std::int32_t hi = std::min<std::int32_t>(
        static_cast<std::int32_t>(knobs_[knob_idx].size()) - 1, c0 + span);
    for (std::int32_t v = lo; v <= hi; ++v) {
      const double d = static_cast<double>(v - c0);
      if (used + d * d > r2) continue;
      current[knob_idx] = v;
      self(self, knob_idx + 1, used + d * d);
    }
  };
  rec(rec, 0, 0.0);
  (void)max_points;  // subsampling is handled by the caller
}

void ConfigSpace::sample_ball(const Config& center, double radius,
                              std::size_t max_points, Rng& rng,
                              std::vector<Config>& out) const {
  const double r2 = radius * radius;
  const auto span = static_cast<std::int32_t>(std::floor(radius));
  std::unordered_set<std::int64_t> seen{center.flat};
  const std::size_t max_attempts = max_points * 40 + 200;
  std::vector<std::int32_t> choices(knobs_.size());
  for (std::size_t attempt = 0;
       attempt < max_attempts && out.size() < max_points; ++attempt) {
    double used = 0.0;
    bool valid = true;
    for (std::size_t i = 0; i < knobs_.size(); ++i) {
      const auto offset =
          static_cast<std::int32_t>(rng.next_int(-span, span));
      const std::int32_t v = center.choices[i] + offset;
      if (v < 0 || v >= static_cast<std::int32_t>(knobs_[i].size())) {
        valid = false;
        break;
      }
      used += static_cast<double>(offset) * offset;
      if (used > r2) {
        valid = false;
        break;
      }
      choices[i] = v;
    }
    if (!valid) continue;
    Config c = make(choices);
    if (!seen.insert(c.flat).second) continue;
    if (!constraints_.empty() && !feasible(c)) continue;
    out.push_back(std::move(c));
  }
}

std::vector<Config> ConfigSpace::neighborhood(const Config& center,
                                              double radius,
                                              std::size_t max_points,
                                              Rng& rng) const {
  AAL_CHECK(radius >= 0.0, "neighborhood radius must be >= 0");
  std::vector<Config> out;
  if (max_points == 0) return out;

  // Estimate the bounding box of the ball to pick a strategy.
  const auto span = static_cast<std::int64_t>(std::floor(radius));
  double box = 1.0;
  for (const Knob& k : knobs_) {
    box *= static_cast<double>(std::min<std::int64_t>(2 * span + 1, k.size()));
    if (box > 4.0 * static_cast<double>(max_points) * 16.0) break;
  }

  if (box <= 4.0 * static_cast<double>(max_points) * 16.0) {
    enumerate_ball(center, radius, max_points, out);
    if (out.size() > max_points) {
      // Unbiased subsample of the exact ball.
      rng.shuffle(out);
      out.resize(max_points);
    }
  } else {
    sample_ball(center, radius, max_points, rng, out);
  }

  // Degenerate center (e.g. radius too small near a corner of a tiny
  // space): fall back to one random distinct point so BAO always has a
  // candidate to evaluate.
  if (out.empty() && size_ >= 2) {
    for (int i = 0; i < 64 && out.empty(); ++i) {
      Config c = sample(rng);
      if (c.flat != center.flat) out.push_back(std::move(c));
    }
  }
  return out;
}

double ConfigSpace::feature_distance_sq(const Config& a,
                                        const Config& b) const {
  const std::vector<double> fa = features(a);
  const std::vector<double> fb = features(b);
  double acc = 0.0;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const double d = fa[i] - fb[i];
    acc += d * d;
  }
  return acc;
}

std::vector<Config> ConfigSpace::feature_neighborhood(const Config& center,
                                                      double radius,
                                                      std::size_t max_points,
                                                      Rng& rng) const {
  AAL_CHECK(radius >= 0.0, "neighborhood radius must be >= 0");
  std::vector<Config> out;
  if (max_points == 0) return out;

  const std::vector<double> center_feats = features(center);
  const double r2 = radius * radius;
  std::unordered_set<std::int64_t> seen{center.flat};
  const std::size_t max_attempts = max_points * 60 + 400;
  std::vector<double> feats;
  feats.reserve(static_cast<std::size_t>(feature_dim_));

  for (std::size_t attempt = 0;
       attempt < max_attempts && out.size() < max_points; ++attempt) {
    // Mutate 1-3 random knobs of the center.
    std::vector<std::int32_t> choices = center.choices;
    const auto mutations = 1 + rng.next_index(3);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      const auto k = static_cast<std::size_t>(rng.next_index(knobs_.size()));
      choices[k] = static_cast<std::int32_t>(
          rng.next_index(static_cast<std::uint64_t>(knobs_[k].size())));
    }
    Config candidate = make(std::move(choices));
    if (seen.contains(candidate.flat)) continue;

    feats.clear();
    for (std::size_t i = 0; i < knobs_.size(); ++i) {
      knobs_[i].append_features(candidate.choices[i], feats);
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < feats.size() && acc <= r2; ++i) {
      const double d = feats[i] - center_feats[i];
      acc += d * d;
    }
    if (acc > r2) continue;
    seen.insert(candidate.flat);
    if (!constraints_.empty() && !feasible(candidate)) continue;
    out.push_back(std::move(candidate));
  }

  if (out.empty() && size_ >= 2) {
    for (int i = 0; i < 64 && out.empty(); ++i) {
      Config c = sample(rng);
      if (c.flat != center.flat) out.push_back(std::move(c));
    }
  }
  return out;
}

std::string ConfigSpace::to_string(const Config& config) const {
  std::ostringstream os;
  os << '#' << config.flat;
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    os << ' ' << knobs_[i].name() << '='
       << knobs_[i].entity_to_string(config.choices[i]);
  }
  return os.str();
}

}  // namespace aal
