// Tuning knobs.
//
// A ConfigSpace is a product of discrete knobs, exactly like AutoTVM's
// schedule-template spaces:
//   * SplitKnob — an ordered k-way tile split of a loop axis; each entity is
//     a factor tuple whose product equals the axis extent.
//   * OptionKnob — a categorical/ordinal choice from an explicit value list
//     (e.g. auto_unroll_max_step in {0, 512, 1500}).
// Entities are materialized eagerly: per-knob entity counts stay small (the
// axis extents are layer dimensions), while the *product* over knobs reaches
// 10^8 — the space itself is never materialized.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "support/common.hpp"

namespace aal {

struct SplitKnob {
  std::string name;
  std::int64_t extent = 1;  // axis length being split
  int parts = 1;            // number of factors
  /// entities[i] is the i-th factor tuple (size == parts, product == extent).
  std::vector<std::vector<std::int64_t>> entities;
};

struct OptionKnob {
  std::string name;
  std::vector<std::int64_t> values;
};

class Knob {
 public:
  /// Builds a split knob by enumerating all ordered factorizations.
  static Knob split(std::string name, std::int64_t extent, int parts);

  /// Builds a split knob keeping only factorizations whose i-th factor is
  /// <= caps[i] (a cap of 0 leaves that position unbounded). Native schedule
  /// templates use this to size tile splits from hardware limits so most
  /// entities are feasible by construction. If the caps reject every
  /// factorization the full unfiltered set is kept — a degenerate extent
  /// must still yield a valid knob, with the SpaceConstraint safety net
  /// handling any infeasible stragglers.
  static Knob split_capped(std::string name, std::int64_t extent, int parts,
                           const std::vector<std::int64_t>& caps);

  /// Builds an option knob from an explicit value list.
  static Knob option(std::string name, std::vector<std::int64_t> values);

  const std::string& name() const;
  std::int64_t size() const;

  bool is_split() const { return std::holds_alternative<SplitKnob>(data_); }
  const SplitKnob& as_split() const;
  const OptionKnob& as_option() const;

  /// Number of feature columns this knob contributes (parts for a split,
  /// 1 for an option).
  int feature_width() const;

  /// Appends this knob's features for entity `choice` to `out`.
  /// Split factors are encoded as log2(factor); option values as log2(v+1)
  /// so that 0 maps to 0. Log encoding makes tile ratios linear, which both
  /// the TED distance and the GBDT splits benefit from.
  void append_features(std::int64_t choice, std::vector<double>& out) const;

  /// Pointer to this knob's feature_width() precomputed feature values for
  /// entity `choice` — the same log2 encodings append_features emits,
  /// materialized once at construction so batch featurization is a copy.
  const double* feature_row(std::int64_t choice) const;

  /// Human-readable rendering of one entity, e.g. "[2, 4, 8, 1]" or "512".
  std::string entity_to_string(std::int64_t choice) const;

 private:
  void build_feature_table();

  std::variant<SplitKnob, OptionKnob> data_;
  /// size() x feature_width() row-major log2 feature table.
  std::vector<double> feature_table_;
};

}  // namespace aal
