// Target-native schedule templates behind a registry.
//
// A ScheduleTemplate is the unit of space construction: it builds the
// ConfigSpace for a workload *and* decodes a Config from that space into the
// semantic schedule (ConvSchedule / DenseSchedule) the target's device model
// consumes. The registry is keyed by (workload kind, target family): each
// template dispatches on the workload kind internally and declares which
// target kinds it can serve, so `resolve(request, target)` yields exactly one
// template per (kind, family) cell.
//
// Three templates ship:
//   * "cuda"       — the original CUDA-shaped space (4-way spatial splits,
//                    2-way reduction splits, unroll knobs). Valid on every
//                    target and the default everywhere, so pre-registry
//                    stores, golden traces and wire examples are unchanged.
//   * "cpu-native" — cache-tile / vectorize / parallel-outer knobs sized
//                    from CpuSpec (SIMD width, register file, core count,
//                    L2 capacity). CPU targets only.
//   * "systolic"   — PE-array tiling / dataflow / buffer-depth knobs sized
//                    from FpgaSpec (array shape, SIMD lanes, local buffer).
//                    FPGA targets only.
// The native templates emit spaces that are mostly feasible by construction;
// the device models' SpaceConstraints stay attached as a safety net.
//
// Layering: this header (and the templates) read TargetSpec/CpuSpec/FpgaSpec
// as plain header-only structs; aal_space does NOT link aal_hwsim (hwsim
// links space), so templates must not call hwsim .cpp symbols.
#pragma once

#include <string>
#include <vector>

#include "hwsim/target.hpp"
#include "ir/workload.hpp"
#include "space/config_space.hpp"
#include "space/schedule_template.hpp"

namespace aal {

/// Name of the default template, valid on every target. Task keys only carry
/// a `#<template>` suffix for non-default templates, so default-target and
/// default-template keys are byte-identical to the pre-registry format.
inline constexpr const char* kDefaultTemplateName = "cuda";

/// One schedule template: builds the tuning space for a workload on a target
/// and decodes configs into the semantic schedule the device model consumes.
/// Instances are stateless registry singletons with program lifetime — device
/// models hold them by pointer.
class ScheduleTemplate {
 public:
  virtual ~ScheduleTemplate() = default;

  /// Stable registry name ("cuda", "cpu-native", "systolic"): the CLI /
  /// store-key / wire vocabulary.
  virtual const std::string& name() const = 0;

  /// True when this template can build spaces for `kind` targets.
  virtual bool serves(TargetKind kind) const = 0;

  /// Builds the tuning space. Knob order is part of the contract with the
  /// decode methods below; native templates size their knob caps from the
  /// target's machine spec.
  virtual ConfigSpace build(const Workload& workload,
                            const TargetSpec& target) const = 0;

  /// Decodes a conv/depthwise config; requires a space this template built
  /// for the same workload.
  virtual ConvSchedule decode_conv(const Workload& workload,
                                   const ConfigSpace& space,
                                   const Config& config) const = 0;

  /// Decodes a dense config.
  virtual DenseSchedule decode_dense(const Workload& workload,
                                     const ConfigSpace& space,
                                     const Config& config) const = 0;
};

/// Process-wide registry of schedule templates. Lookup happens at task
/// construction (TuningTask / embed_task / transfer-prior source spaces);
/// the returned references stay valid for the program lifetime.
class TemplateRegistry {
 public:
  static const TemplateRegistry& instance();

  /// Resolves a template request against a target:
  ///   ""/"default" -> "cuda" (every target family);
  ///   "native"     -> the family's native template ("cpu-native" on CPU,
  ///                   "systolic" on FPGA, "cuda" on GPU — the CUDA space
  ///                   *is* GPU-native here);
  ///   exact name   -> that template, validated against the target family.
  /// Unknown names and family mismatches throw InvalidArgument listing the
  /// templates valid for the target.
  const ScheduleTemplate& resolve(const std::string& request,
                                  const TargetSpec& target) const;

  /// resolve() + build() in one step.
  ConfigSpace build(const Workload& workload, const TargetSpec& target,
                    const std::string& request = std::string()) const;

  /// Exact-name lookup, no family validation (store-key decode paths where
  /// the target may not be registered locally). Throws InvalidArgument on
  /// unknown names.
  const ScheduleTemplate& get(const std::string& name) const;

  /// Native template name for a target kind (for --list-targets).
  static const char* native_template_name(TargetKind kind);

  /// Names of every registered template, in table order.
  std::vector<std::string> template_names() const;

  /// Template names valid for one target kind, in table order.
  std::vector<std::string> template_names_for(TargetKind kind) const;

 private:
  TemplateRegistry();
  std::vector<const ScheduleTemplate*> templates_;
};

}  // namespace aal
