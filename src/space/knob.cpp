#include "space/knob.hpp"

#include <cmath>
#include <sstream>

#include "support/math_util.hpp"

namespace aal {

Knob Knob::split(std::string name, std::int64_t extent, int parts) {
  AAL_CHECK(extent >= 1, "split extent must be >= 1");
  AAL_CHECK(parts >= 1, "split parts must be >= 1");
  SplitKnob k;
  k.name = std::move(name);
  k.extent = extent;
  k.parts = parts;
  k.entities = ordered_factorizations(extent, parts);
  Knob out;
  out.data_ = std::move(k);
  out.build_feature_table();
  return out;
}

Knob Knob::split_capped(std::string name, std::int64_t extent, int parts,
                        const std::vector<std::int64_t>& caps) {
  AAL_CHECK(extent >= 1, "split extent must be >= 1");
  AAL_CHECK(parts >= 1, "split parts must be >= 1");
  AAL_CHECK(caps.size() == static_cast<std::size_t>(parts),
            "split_capped needs one cap per part (0 = unbounded)");
  auto all = ordered_factorizations(extent, parts);
  std::vector<std::vector<std::int64_t>> kept;
  for (const auto& entity : all) {
    bool ok = true;
    for (std::size_t p = 0; p < entity.size(); ++p) {
      if (caps[p] > 0 && entity[p] > caps[p]) {
        ok = false;
        break;
      }
    }
    if (ok) kept.push_back(entity);
  }
  SplitKnob k;
  k.name = std::move(name);
  k.extent = extent;
  k.parts = parts;
  // Fall back to the unfiltered set when the caps are unsatisfiable (e.g. a
  // prime extent larger than every cap): the knob must stay non-empty and
  // the constraint layer remains as safety net.
  k.entities = kept.empty() ? std::move(all) : std::move(kept);
  Knob out;
  out.data_ = std::move(k);
  out.build_feature_table();
  return out;
}

Knob Knob::option(std::string name, std::vector<std::int64_t> values) {
  AAL_CHECK(!values.empty(), "option knob needs at least one value");
  OptionKnob k;
  k.name = std::move(name);
  k.values = std::move(values);
  Knob out;
  out.data_ = std::move(k);
  out.build_feature_table();
  return out;
}

const std::string& Knob::name() const {
  return is_split() ? std::get<SplitKnob>(data_).name
                    : std::get<OptionKnob>(data_).name;
}

std::int64_t Knob::size() const {
  return is_split()
             ? static_cast<std::int64_t>(std::get<SplitKnob>(data_).entities.size())
             : static_cast<std::int64_t>(std::get<OptionKnob>(data_).values.size());
}

const SplitKnob& Knob::as_split() const {
  AAL_CHECK(is_split(), "knob '" << name() << "' is not a split knob");
  return std::get<SplitKnob>(data_);
}

const OptionKnob& Knob::as_option() const {
  AAL_CHECK(!is_split(), "knob '" << name() << "' is not an option knob");
  return std::get<OptionKnob>(data_);
}

int Knob::feature_width() const {
  return is_split() ? std::get<SplitKnob>(data_).parts : 1;
}

void Knob::build_feature_table() {
  const auto width = static_cast<std::size_t>(feature_width());
  feature_table_.resize(static_cast<std::size_t>(size()) * width);
  double* row = feature_table_.data();
  if (is_split()) {
    for (const auto& entity : std::get<SplitKnob>(data_).entities) {
      for (std::size_t p = 0; p < width; ++p) {
        row[p] = std::log2(static_cast<double>(entity[p]));
      }
      row += width;
    }
  } else {
    for (const std::int64_t v : std::get<OptionKnob>(data_).values) {
      *row++ = std::log2(static_cast<double>(v) + 1.0);
    }
  }
}

const double* Knob::feature_row(std::int64_t choice) const {
  AAL_CHECK(choice >= 0 && choice < size(),
            "knob '" << name() << "' choice " << choice << " out of range "
                     << size());
  return feature_table_.data() +
         static_cast<std::size_t>(choice) *
             static_cast<std::size_t>(feature_width());
}

void Knob::append_features(std::int64_t choice,
                           std::vector<double>& out) const {
  const double* row = feature_row(choice);
  out.insert(out.end(), row, row + feature_width());
}

std::string Knob::entity_to_string(std::int64_t choice) const {
  AAL_CHECK(choice >= 0 && choice < size(),
            "knob '" << name() << "' choice out of range");
  std::ostringstream os;
  if (is_split()) {
    const auto& entity =
        std::get<SplitKnob>(data_).entities[static_cast<std::size_t>(choice)];
    os << '[';
    for (std::size_t i = 0; i < entity.size(); ++i) {
      if (i > 0) os << ", ";
      os << entity[i];
    }
    os << ']';
  } else {
    os << std::get<OptionKnob>(data_).values[static_cast<std::size_t>(choice)];
  }
  return os.str();
}

}  // namespace aal
