// Configuration space: the product of a task's knobs.
//
// Points are addressed two ways:
//   * a flat index in [0, size()) under mixed-radix encoding — compact
//     storage, dedup keys, random sampling;
//   * a choice vector (one entity index per knob) — the coordinate system in
//     which BAO's neighborhoods are defined ("the Euclidean distance between
//     points" in the paper is taken over these coordinates).
// The space is *never* materialized; it reaches 2x10^8 points for the first
// VGG-16 node (matching the paper's 0.2 billion).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "space/knob.hpp"
#include "support/dense.hpp"
#include "support/rng.hpp"

namespace aal {

/// One design point: entity indices per knob plus the cached flat index.
struct Config {
  std::vector<std::int32_t> choices;
  std::int64_t flat = -1;

  bool operator==(const Config& other) const { return flat == other.flat; }
};

class ConfigSpace;

/// A hardware-native feasibility predicate over configurations (Bolt-style
/// "can the backend actually execute this schedule well?"). Constraints are
/// attached to a ConfigSpace by the target's DeviceModel; sampling then
/// rejects infeasible points before they ever reach a tuner proposal.
/// Predicates must be pure functions of (target spec, config) — no hidden
/// state — so pruning decisions are deterministic and schedule-independent.
struct SpaceConstraint {
  /// Stable short name, e.g. "cpu.working-set" or "fpga.pe-array".
  std::string name;
  /// Returns true when the config is feasible on the target.
  std::function<bool(const ConfigSpace&, const Config&)> predicate;
};

class ConfigSpace {
 public:
  ConfigSpace() = default;
  explicit ConfigSpace(std::vector<Knob> knobs);

  std::size_t num_knobs() const { return knobs_.size(); }
  const Knob& knob(std::size_t i) const;
  const std::vector<Knob>& knobs() const { return knobs_; }

  /// Total number of configurations (product of knob sizes).
  std::int64_t size() const { return size_; }

  /// Decodes a flat index into a Config.
  Config at(std::int64_t flat) const;

  /// Encodes a choice vector into its flat index.
  std::int64_t flat_of(const std::vector<std::int32_t>& choices) const;

  /// Builds a Config from a choice vector (computing the flat index).
  Config make(std::vector<std::int32_t> choices) const;

  /// Uniformly samples one configuration. With constraints attached the
  /// draw is retried (bounded) until a feasible point is found; the RNG
  /// consumption is unchanged when no constraints are attached.
  Config sample(Rng& rng) const;

  /// Uniformly samples up to n *distinct* configurations. If n >= size(),
  /// returns the entire space (restricted to feasible points when
  /// constraints are attached). With constraints the rejection loop is
  /// attempt-bounded, so fewer than n points may come back when the
  /// feasible region is small.
  std::vector<Config> sample_distinct(std::int64_t n, Rng& rng) const;

  /// Attaches the target's hardware-native constraints. Replaces any
  /// previous set and resets the pruning statistics.
  void set_constraints(std::vector<SpaceConstraint> constraints);

  const std::vector<SpaceConstraint>& constraints() const {
    return constraints_;
  }
  std::size_t num_constraints() const { return constraints_.size(); }

  /// True when `config` satisfies every attached constraint (trivially true
  /// with none attached). Updates the pruning statistics: one check, plus
  /// one prune when any predicate rejects. Thread-safe.
  bool feasible(const Config& config) const;

  /// Number of feasibility checks performed so far on this space.
  std::int64_t feasibility_checks() const {
    return stats_->checked.load(std::memory_order_relaxed);
  }

  /// Number of configurations rejected by constraints so far.
  std::int64_t pruned_count() const {
    return stats_->pruned.load(std::memory_order_relaxed);
  }

  /// Feature vector for ML models and the TED kernel: concatenated per-knob
  /// features (log2-encoded; see Knob::append_features).
  std::vector<double> features(const Config& config) const;

  /// Writes the feature vector into out[0..feature_dim) without allocating:
  /// each knob's precomputed feature row is copied at its fixed column
  /// offset. Values are bitwise-identical to features().
  void features_into(const Config& config, std::span<double> out) const;

  /// Featurizes a candidate block into one row-major matrix (rows ==
  /// configs.size(), cols == feature_dim()), the input shape the batched
  /// scoring engine consumes. Row i is bitwise features(configs[i]).
  dense::Matrix features_batch(std::span<const Config> configs) const;

  int feature_dim() const { return feature_dim_; }

  /// Squared Euclidean distance in choice space, the metric BAO's
  /// neighborhood radius R refers to.
  double choice_distance_sq(const Config& a, const Config& b) const;

  /// Collects up to max_points distinct configurations whose choice-space
  /// Euclidean distance from `center` is <= radius (the center itself is
  /// excluded). Small balls are enumerated exactly; large ones are sampled
  /// randomly but deterministically given rng. Always returns at least one
  /// point when the space has >= 2 points and radius >= 1.
  std::vector<Config> neighborhood(const Config& center, double radius,
                                   std::size_t max_points, Rng& rng) const;

  /// Squared Euclidean distance in *feature* space (the log2-factor
  /// encoding). The paper defines a configuration's point x as its feature
  /// vector, so this is the alternative reading of BAO's radius metric.
  double feature_distance_sq(const Config& a, const Config& b) const;

  /// Neighborhood under the feature-space metric: configurations within
  /// Euclidean feature distance `radius` of `center` (center excluded),
  /// generated by mutating 1-3 knobs and filtering. Deterministic given
  /// rng; falls back to one random distinct point if the ball is empty.
  std::vector<Config> feature_neighborhood(const Config& center, double radius,
                                           std::size_t max_points,
                                           Rng& rng) const;

  /// Human-readable rendering of a config, e.g.
  /// "#1234 tile_f=[2,4,8,1] tile_y=[1,1,7,8] ...".
  std::string to_string(const Config& config) const;

 private:
  void enumerate_ball(const Config& center, double radius,
                      std::size_t max_points,
                      std::vector<Config>& out) const;
  void sample_ball(const Config& center, double radius,
                   std::size_t max_points, Rng& rng,
                   std::vector<Config>& out) const;

  /// Pruning statistics live behind a shared_ptr so that copies of a space
  /// (ConfigSpace is a value type) keep one aggregate tally, and so const
  /// sampling methods can update it.
  struct ConstraintStats {
    std::atomic<std::int64_t> checked{0};
    std::atomic<std::int64_t> pruned{0};
  };

  std::vector<Knob> knobs_;
  std::int64_t size_ = 0;
  int feature_dim_ = 0;
  /// Column offset of each knob's features in the concatenated vector.
  std::vector<int> feature_offsets_;
  std::vector<SpaceConstraint> constraints_;
  std::shared_ptr<ConstraintStats> stats_ =
      std::make_shared<ConstraintStats>();
};

}  // namespace aal
