// Schedule templates: workload -> ConfigSpace, plus decoding of a Config
// into the semantic schedule the hardware model consumes.
//
// The templates mirror TVM's direct CUDA schedules:
//   conv2d:      tile_f/tile_y/tile_x are 4-way splits (block, vthread,
//                thread, inner), tile_rc/tile_ry/tile_rx are 2-way reduction
//                splits, plus auto_unroll_max_step and unroll_explicit.
//   depthwise:   tile_c/tile_y/tile_x 4-way, tile_ry/tile_rx 2-way, unroll.
//   dense:       tile_y 4-way over output features, tile_k 2-way over the
//                reduction, plus unroll knobs.
// With these definitions the first VGG-16 conv node has ~2.0x10^8 points and
// the 19 MobileNet-v1 tasks average tens of millions, matching the scales
// quoted in the paper.
#pragma once

#include <cstdint>

#include "ir/workload.hpp"
#include "space/config_space.hpp"

namespace aal {

/// Builds the tuning space for a workload. Knob order is part of the
/// contract with the decode functions below.
///
/// Deprecated: this is a compatibility shim that forwards to
/// `TemplateRegistry::instance().build(workload, TargetSpec{})` — the "cuda"
/// template on the default gpu-pascal target (space/template_registry.hpp).
/// New code should go through the registry so the target's native template
/// can be selected; the shim always yields the CUDA-shaped space.
ConfigSpace build_config_space(const Workload& workload);

/// Semantic view of a conv2d / depthwise-conv2d configuration.
/// A 4-way split (a, b, c, d) of an axis maps to: a = blockIdx extent,
/// b = virtual threads, c = threadIdx extent, d = per-thread serial extent.
struct ConvSchedule {
  // Output-channel axis (channel axis for depthwise).
  std::int64_t bf = 1, vf = 1, tf = 1, fi = 1;
  // Output row axis.
  std::int64_t by = 1, vy = 1, ty = 1, yi = 1;
  // Output column axis.
  std::int64_t bx = 1, vx = 1, tx = 1, xi = 1;
  // Reduction splits (rc* is 1/1 for depthwise).
  std::int64_t rco = 1, rci = 1;
  std::int64_t ryo = 1, ryi = 1;
  std::int64_t rxo = 1, rxi = 1;
  std::int64_t auto_unroll_max_step = 0;
  bool unroll_explicit = false;

  std::int64_t threads_per_block() const { return tf * ty * tx; }
  std::int64_t num_blocks() const { return bf * by * bx; }
  std::int64_t vthreads() const { return vf * vy * vx; }
  /// Output elements each thread computes (accumulator registers).
  std::int64_t per_thread_outputs() const {
    return vf * vy * vx * fi * yi * xi;
  }
  /// Output tile extents computed by one block.
  std::int64_t tile_f() const { return vf * tf * fi; }
  std::int64_t tile_y() const { return vy * ty * yi; }
  std::int64_t tile_x() const { return vx * tx * xi; }
};

/// Semantic view of a dense configuration. tile_y splits out_features,
/// tile_k splits the reduction.
struct DenseSchedule {
  std::int64_t bo = 1, vo = 1, to = 1, oi = 1;  // out_features split
  std::int64_t ko = 1, ki = 1;                  // reduction split
  std::int64_t auto_unroll_max_step = 0;
  bool unroll_explicit = false;

  std::int64_t threads_per_block() const { return to; }
  std::int64_t num_blocks() const { return bo; }
  std::int64_t per_thread_outputs() const { return vo * oi; }
};

/// Decodes a conv/depthwise config; requires the space built by
/// build_config_space for the same workload.
ConvSchedule decode_conv_schedule(const Workload& workload,
                                  const ConfigSpace& space,
                                  const Config& config);

/// Decodes a dense config.
DenseSchedule decode_dense_schedule(const Workload& workload,
                                    const ConfigSpace& space,
                                    const Config& config);

}  // namespace aal
