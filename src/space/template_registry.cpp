#include "space/template_registry.hpp"

#include <algorithm>

#include "support/common.hpp"
#include "support/math_util.hpp"

namespace aal {

namespace {

const std::vector<std::int64_t>& split_entity(const ConfigSpace& space,
                                              const Config& config,
                                              std::size_t knob_idx) {
  const SplitKnob& k = space.knob(knob_idx).as_split();
  return k.entities[static_cast<std::size_t>(config.choices[knob_idx])];
}

std::int64_t option_value(const ConfigSpace& space, const Config& config,
                          std::size_t knob_idx) {
  const OptionKnob& k = space.knob(knob_idx).as_option();
  return k.values[static_cast<std::size_t>(config.choices[knob_idx])];
}

// ---------------------------------------------------------------------------
// "cuda" — the original CUDA-shaped template. Builds the exact knob layouts
// build_config_space always produced (the shim forwards here), so spaces,
// flat indices and feature encodings are byte-identical to the pre-registry
// stack on every target.
// ---------------------------------------------------------------------------

class CudaTemplate final : public ScheduleTemplate {
 public:
  const std::string& name() const override {
    static const std::string n = kDefaultTemplateName;
    return n;
  }

  bool serves(TargetKind) const override { return true; }

  ConfigSpace build(const Workload& workload,
                    const TargetSpec& /*target*/) const override {
    switch (workload.kind()) {
      case WorkloadKind::kConv2d:
        return build_conv2d(workload.as_conv2d());
      case WorkloadKind::kDepthwiseConv2d:
        return build_depthwise(workload.as_conv2d());
      case WorkloadKind::kDense:
        return build_dense(workload.as_dense());
    }
    throw InternalError("unhandled workload kind");
  }

  ConvSchedule decode_conv(const Workload& workload, const ConfigSpace& space,
                           const Config& config) const override {
    return decode_conv_schedule(workload, space, config);
  }

  DenseSchedule decode_dense(const Workload& workload, const ConfigSpace& space,
                             const Config& config) const override {
    return decode_dense_schedule(workload, space, config);
  }

 private:
  static ConfigSpace build_conv2d(const Conv2dWorkload& w) {
    std::vector<Knob> knobs;
    knobs.push_back(Knob::split("tile_f", w.out_channels, 4));
    knobs.push_back(Knob::split("tile_y", w.out_height(), 4));
    knobs.push_back(Knob::split("tile_x", w.out_width(), 4));
    knobs.push_back(Knob::split("tile_rc", w.in_channels / w.groups, 2));
    knobs.push_back(Knob::split("tile_ry", w.kernel_h, 2));
    knobs.push_back(Knob::split("tile_rx", w.kernel_w, 2));
    knobs.push_back(Knob::option("auto_unroll_max_step", {0, 512, 1500}));
    knobs.push_back(Knob::option("unroll_explicit", {0, 1}));
    return ConfigSpace(std::move(knobs));
  }

  static ConfigSpace build_depthwise(const Conv2dWorkload& w) {
    std::vector<Knob> knobs;
    knobs.push_back(Knob::split("tile_c", w.out_channels, 4));
    knobs.push_back(Knob::split("tile_y", w.out_height(), 4));
    knobs.push_back(Knob::split("tile_x", w.out_width(), 4));
    knobs.push_back(Knob::split("tile_ry", w.kernel_h, 2));
    knobs.push_back(Knob::split("tile_rx", w.kernel_w, 2));
    knobs.push_back(Knob::option("auto_unroll_max_step", {0, 256, 1500}));
    knobs.push_back(Knob::option("unroll_explicit", {0, 1}));
    return ConfigSpace(std::move(knobs));
  }

  static ConfigSpace build_dense(const DenseWorkload& w) {
    std::vector<Knob> knobs;
    knobs.push_back(Knob::split("tile_y", w.out_features, 4));
    knobs.push_back(Knob::split("tile_k", w.in_features, 2));
    knobs.push_back(Knob::option("auto_unroll_max_step", {0, 512, 1500}));
    knobs.push_back(Knob::option("unroll_explicit", {0, 1}));
    return ConfigSpace(std::move(knobs));
  }
};

// ---------------------------------------------------------------------------
// "cpu-native" — cache-tile / vectorize / parallel-outer knobs sized from
// CpuSpec, shaped like a TVM x86 schedule rather than a CUDA one:
//   * spatial axes split 3-way (parallel-outer, serial-mid, inner) — there is
//     no vthread on a CPU, so the CUDA 4-way split's vthread slot is gone;
//   * the inner extents are capped so the accumulator tile fits the register
//     budget the CPU model spills past (register_tiles <= 4x vector
//     registers) and the innermost x extent matches the SIMD width;
//   * parallel-outer factors are capped at the core count so the task grain
//     stays inside the model's tasks-per-core bound;
//   * rci is capped at the SIMD width to bound the staged working set.
// With the registry's desktop CpuSpec every conv entity satisfies the CPU
// model's register and parallel-grain constraints by construction and the
// working-set bound holds for all layer shapes in the model zoo; the
// attached SpaceConstraints mop up degenerate shapes (see the fallback in
// Knob::split_capped).
// ---------------------------------------------------------------------------

class CpuNativeTemplate final : public ScheduleTemplate {
 public:
  const std::string& name() const override {
    static const std::string n = "cpu-native";
    return n;
  }

  bool serves(TargetKind kind) const override {
    return kind == TargetKind::kCpu;
  }

  ConfigSpace build(const Workload& workload,
                    const TargetSpec& target) const override {
    AAL_CHECK(target.kind == TargetKind::kCpu,
              "cpu-native template requires a CPU target, got '" << target.name
                                                                 << "'");
    const CpuSpec& spec = target.cpu;
    switch (workload.kind()) {
      case WorkloadKind::kConv2d:
      case WorkloadKind::kDepthwiseConv2d:
        return build_conv(workload.as_conv2d(), spec,
                          workload.kind() == WorkloadKind::kDepthwiseConv2d);
      case WorkloadKind::kDense:
        return build_dense(workload.as_dense(), spec);
    }
    throw InternalError("unhandled workload kind");
  }

  ConvSchedule decode_conv(const Workload& workload, const ConfigSpace& space,
                           const Config& config) const override {
    AAL_CHECK(workload.is_conv(), "decode_conv on non-conv workload");
    ConvSchedule s;
    const bool depthwise = workload.kind() == WorkloadKind::kDepthwiseConv2d;
    const auto& f = split_entity(space, config, 0);
    s.bf = f[0]; s.tf = f[1]; s.fi = f[2];  // vf stays 1: no vthread on CPU
    const auto& y = split_entity(space, config, 1);
    s.by = y[0]; s.ty = y[1]; s.yi = y[2];
    const auto& x = split_entity(space, config, 2);
    s.bx = x[0]; s.tx = x[1]; s.xi = x[2];
    std::size_t idx = 3;
    if (!depthwise) {
      const auto& rc = split_entity(space, config, idx++);
      s.rco = rc[0];
      s.rci = rc[1];
    }
    const auto& ry = split_entity(space, config, idx++);
    s.ryo = ry[0]; s.ryi = ry[1];
    const auto& rx = split_entity(space, config, idx++);
    s.rxo = rx[0]; s.rxi = rx[1];
    s.auto_unroll_max_step = option_value(space, config, idx++);
    s.unroll_explicit = option_value(space, config, idx++) != 0;
    AAL_ASSERT(idx == space.num_knobs(),
               "cpu-native template knob count mismatch");
    return s;
  }

  DenseSchedule decode_dense(const Workload& workload, const ConfigSpace& space,
                             const Config& config) const override {
    // Same 4-way y / 2-way k layout as the CUDA dense template (the vthread
    // slot maps to the CPU model's register-blocking factor vo), only the
    // factor caps differ — the shared decoder applies.
    return decode_dense_schedule(workload, space, config);
  }

 private:
  static ConfigSpace build_conv(const Conv2dWorkload& w, const CpuSpec& spec,
                                bool depthwise) {
    const std::int64_t simd = spec.simd_width;
    const std::int64_t cores = spec.cores;
    // Accumulator budget before the model's spill cliff: 4x the
    // architectural vector registers (cpu_model's kRegisterTileSlack).
    const std::int64_t reg_budget = 4LL * spec.vector_registers;
    const std::int64_t cap_fi = 2 * simd;
    const std::int64_t cap_yi = std::max<std::int64_t>(1, reg_budget / cap_fi);
    std::vector<Knob> knobs;
    knobs.push_back(Knob::split_capped(depthwise ? "tile_c" : "tile_f",
                                       w.out_channels, 3,
                                       {cores, 8, cap_fi}));
    knobs.push_back(
        Knob::split_capped("tile_y", w.out_height(), 3, {cores, 8, cap_yi}));
    knobs.push_back(
        Knob::split_capped("tile_x", w.out_width(), 3, {cores, 8, simd}));
    if (!depthwise) {
      knobs.push_back(Knob::split_capped("tile_rc", w.in_channels / w.groups,
                                         2, {0, simd}));
    }
    knobs.push_back(Knob::split("tile_ry", w.kernel_h, 2));
    knobs.push_back(Knob::split("tile_rx", w.kernel_w, 2));
    knobs.push_back(Knob::option("auto_unroll_max_step", {0, 64, 512}));
    knobs.push_back(Knob::option("unroll_explicit", {0, 1}));
    return ConfigSpace(std::move(knobs));
  }

  static ConfigSpace build_dense(const DenseWorkload& w, const CpuSpec& spec) {
    const std::int64_t simd = spec.simd_width;
    // vo * ceil(oi / simd) must stay under the register budget; capping
    // vo at 8 and oi at 8*simd pins the product at exactly the budget for
    // the desktop spec (8 * 8 = 64 = 4 * 16 registers).
    std::vector<Knob> knobs;
    knobs.push_back(
        Knob::split_capped("tile_y", w.out_features, 4, {0, 8, 16, 8 * simd}));
    knobs.push_back(
        Knob::split_capped("tile_k", w.in_features, 2, {0, 2 * simd}));
    knobs.push_back(Knob::option("auto_unroll_max_step", {0, 64, 512}));
    knobs.push_back(Knob::option("unroll_explicit", {0, 1}));
    return ConfigSpace(std::move(knobs));
  }
};

// ---------------------------------------------------------------------------
// "systolic" — PE-array tiling / dataflow / buffer-depth knobs sized from
// FpgaSpec, in the shape of an AutoSA mapping:
//   * tile_f's thread slot is the PE-row dimension (capped at pe_rows) and
//     its inner slot the per-PE SIMD vector (capped at simd_lanes), so
//     spatial_pes <= pe_rows * pe_cols and simd <= simd_lanes hold by
//     construction;
//   * tile_y's thread slot is the PE-column dimension (capped at pe_cols);
//   * the vthread slot on f doubles as the output-replication factor and is
//     capped at 2 to keep replicated output tiles inside the local buffer;
//   * x is a 2-way (invocation, inner) split and the reduction caps bound
//     the staged input/weight tiles, keeping the worst-case buffer
//     footprint well under local_buffer_bytes;
//   * no unroll knobs — the pipelined array has no unroll analogue, so the
//     decoded schedules carry auto_unroll_max_step = 0.
// With the registry's mid-range FpgaSpec every entity satisfies all four
// FPGA constraints for the model-zoo layer shapes, dropping the sampled
// infeasible rate from ~66% (CUDA-shaped space) to ~0%.
// ---------------------------------------------------------------------------

class SystolicTemplate final : public ScheduleTemplate {
 public:
  const std::string& name() const override {
    static const std::string n = "systolic";
    return n;
  }

  bool serves(TargetKind kind) const override {
    return kind == TargetKind::kFpga;
  }

  ConfigSpace build(const Workload& workload,
                    const TargetSpec& target) const override {
    AAL_CHECK(target.kind == TargetKind::kFpga,
              "systolic template requires an FPGA target, got '" << target.name
                                                                 << "'");
    const FpgaSpec& spec = target.fpga;
    switch (workload.kind()) {
      case WorkloadKind::kConv2d:
      case WorkloadKind::kDepthwiseConv2d:
        return build_conv(workload.as_conv2d(), spec,
                          workload.kind() == WorkloadKind::kDepthwiseConv2d);
      case WorkloadKind::kDense:
        return build_dense(workload.as_dense(), spec);
    }
    throw InternalError("unhandled workload kind");
  }

  ConvSchedule decode_conv(const Workload& workload, const ConfigSpace& space,
                           const Config& config) const override {
    AAL_CHECK(workload.is_conv(), "decode_conv on non-conv workload");
    ConvSchedule s;
    const bool depthwise = workload.kind() == WorkloadKind::kDepthwiseConv2d;
    const auto& f = split_entity(space, config, 0);
    s.bf = f[0]; s.vf = f[1]; s.tf = f[2]; s.fi = f[3];
    const auto& y = split_entity(space, config, 1);
    s.by = y[0]; s.ty = y[1]; s.yi = y[2];  // vy stays 1
    const auto& x = split_entity(space, config, 2);
    s.bx = x[0]; s.xi = x[1];  // vx, tx stay 1: columns stream through PEs
    std::size_t idx = 3;
    if (!depthwise) {
      const auto& rc = split_entity(space, config, idx++);
      s.rco = rc[0];
      s.rci = rc[1];
    }
    const auto& ry = split_entity(space, config, idx++);
    s.ryo = ry[0]; s.ryi = ry[1];
    const auto& rx = split_entity(space, config, idx++);
    s.rxo = rx[0]; s.rxi = rx[1];
    AAL_ASSERT(idx == space.num_knobs(),
               "systolic template knob count mismatch");
    return s;
  }

  DenseSchedule decode_dense(const Workload& workload, const ConfigSpace& space,
                             const Config& config) const override {
    AAL_CHECK(workload.kind() == WorkloadKind::kDense,
              "decode_dense on non-dense workload");
    DenseSchedule s;
    const auto& y = split_entity(space, config, 0);
    s.bo = y[0]; s.vo = y[1]; s.to = y[2]; s.oi = y[3];
    const auto& k = split_entity(space, config, 1);
    s.ko = k[0]; s.ki = k[1];
    AAL_ASSERT(space.num_knobs() == 2,
               "systolic dense template knob count mismatch");
    return s;
  }

 private:
  static ConfigSpace build_conv(const Conv2dWorkload& w, const FpgaSpec& spec,
                                bool depthwise) {
    const std::int64_t rows = spec.pe_rows;
    const std::int64_t cols = spec.pe_cols;
    const std::int64_t lanes = spec.simd_lanes;
    std::vector<Knob> knobs;
    knobs.push_back(Knob::split_capped(depthwise ? "tile_c" : "tile_f",
                                       w.out_channels, 4,
                                       {0, 2, rows, lanes}));
    knobs.push_back(
        Knob::split_capped("tile_y", w.out_height(), 3, {0, cols, 4}));
    knobs.push_back(Knob::split_capped("tile_x", w.out_width(), 2, {0, 8}));
    if (!depthwise) {
      knobs.push_back(
          Knob::split_capped("tile_rc", w.in_channels / w.groups, 2, {0, 4}));
    }
    knobs.push_back(Knob::split("tile_ry", w.kernel_h, 2));
    knobs.push_back(Knob::split("tile_rx", w.kernel_w, 2));
    return ConfigSpace(std::move(knobs));
  }

  static ConfigSpace build_dense(const DenseWorkload& w, const FpgaSpec& spec) {
    const std::int64_t pes = static_cast<std::int64_t>(spec.pe_rows) *
                             spec.pe_cols;
    std::vector<Knob> knobs;
    knobs.push_back(Knob::split_capped("tile_y", w.out_features, 4,
                                       {0, 2, pes, spec.simd_lanes}));
    knobs.push_back(Knob::split_capped("tile_k", w.in_features, 2, {0, 8}));
    return ConfigSpace(std::move(knobs));
  }
};

const CudaTemplate& cuda_template() {
  static const CudaTemplate t;
  return t;
}

const CpuNativeTemplate& cpu_native_template() {
  static const CpuNativeTemplate t;
  return t;
}

const SystolicTemplate& systolic_template() {
  static const SystolicTemplate t;
  return t;
}

}  // namespace

TemplateRegistry::TemplateRegistry()
    : templates_{&cuda_template(), &cpu_native_template(),
                 &systolic_template()} {}

const TemplateRegistry& TemplateRegistry::instance() {
  static const TemplateRegistry registry;
  return registry;
}

const char* TemplateRegistry::native_template_name(TargetKind kind) {
  switch (kind) {
    case TargetKind::kGpu:
      return kDefaultTemplateName;  // the CUDA space is GPU-native
    case TargetKind::kCpu:
      return "cpu-native";
    case TargetKind::kFpga:
      return "systolic";
  }
  throw InternalError("unhandled target kind");
}

const ScheduleTemplate& TemplateRegistry::get(const std::string& name) const {
  for (const ScheduleTemplate* t : templates_) {
    if (t->name() == name) return *t;
  }
  std::string valid;
  for (const ScheduleTemplate* t : templates_) {
    if (!valid.empty()) valid += ", ";
    valid += t->name();
  }
  throw InvalidArgument("unknown schedule template '" + name +
                        "' (valid: " + valid + ")");
}

const ScheduleTemplate& TemplateRegistry::resolve(
    const std::string& request, const TargetSpec& target) const {
  std::string name = request;
  if (name.empty() || name == "default") name = kDefaultTemplateName;
  if (name == "native") name = native_template_name(target.kind);
  const ScheduleTemplate& tmpl = get(name);
  if (!tmpl.serves(target.kind)) {
    std::string valid;
    for (const std::string& n : template_names_for(target.kind)) {
      if (!valid.empty()) valid += ", ";
      valid += n;
    }
    throw InvalidArgument("schedule template '" + name +
                          "' does not serve target '" + target.name +
                          "' (valid for this target: " + valid +
                          ", plus the aliases 'default' and 'native')");
  }
  return tmpl;
}

ConfigSpace TemplateRegistry::build(const Workload& workload,
                                    const TargetSpec& target,
                                    const std::string& request) const {
  return resolve(request, target).build(workload, target);
}

std::vector<std::string> TemplateRegistry::template_names() const {
  std::vector<std::string> out;
  out.reserve(templates_.size());
  for (const ScheduleTemplate* t : templates_) out.push_back(t->name());
  return out;
}

std::vector<std::string> TemplateRegistry::template_names_for(
    TargetKind kind) const {
  std::vector<std::string> out;
  for (const ScheduleTemplate* t : templates_) {
    if (t->serves(kind)) out.push_back(t->name());
  }
  return out;
}

}  // namespace aal
