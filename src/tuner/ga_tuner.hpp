// Genetic-algorithm tuner (AutoTVM ships one as a model-free baseline).
// Tournament selection over measured GFLOPS, one-point knob crossover,
// per-knob mutation. Included for tuner comparisons and the examples.
#pragma once

#include "tuner/tuner.hpp"

namespace aal {

struct GaTunerOptions {
  int population = 64;
  double mutation_prob = 0.1;  // per knob
  int elite = 8;               // survivors copied unchanged
};

class GaTuner final : public Tuner {
 public:
  explicit GaTuner(GaTunerOptions options = {}) : options_(options) {}

  std::string name() const override { return "ga"; }
  TuneResult tune(Measurer& measurer, const TuneOptions& options) override;

 private:
  GaTunerOptions options_;
};

}  // namespace aal
