// Genetic-algorithm tuner (AutoTVM ships one as a model-free baseline).
// Tournament selection over measured GFLOPS, one-point knob crossover,
// per-knob mutation. Included for tuner comparisons and the examples.
//
// Ask/tell policy: the population is seeded and evolved generation by
// generation; propose() hands out the individuals of the current
// generation that still need measuring, observe() resolves their fitness,
// and a generation completes once every member has a result (revisited
// configurations resolve for free from the memo cache).
#pragma once

#include "tuner/tuner.hpp"

namespace aal {

struct GaTunerOptions {
  int population = 64;
  double mutation_prob = 0.1;  // per knob
  int elite = 8;               // survivors copied unchanged
};

class GaTuner final : public Tuner {
 public:
  explicit GaTuner(GaTunerOptions options = {}) : options_(options) {}

  std::string name() const override { return "ga"; }

  void begin(const Measurer& measurer, const TuneOptions& options) override;
  std::vector<Config> propose(std::int64_t k) override;
  void observe(std::span<const MeasureResult> results) override;

 private:
  struct Individual {
    Config config;
    double fitness = 0.0;
  };

  /// Sorts the population, copies elites and queues a fresh offspring
  /// brood into pending_. Sets dead_ when the population collapses.
  void breed();

  /// Folds finished generations: when nothing is pending or in flight, the
  /// resolved individuals (plus elites) become the next population.
  void maybe_complete_generation();

  GaTunerOptions options_;
  const Measurer* measurer_ = nullptr;
  Rng rng_;
  int batch_size_ = 64;

  std::vector<Individual> population_;  // previous completed generation
  std::vector<Individual> elites_;      // carried into the forming generation
  std::vector<Individual> forming_;     // resolved members of this generation
  std::vector<Config> pending_;         // not yet proposed
  std::vector<Config> in_flight_;       // proposed, awaiting observe()
  bool dead_ = false;
};

}  // namespace aal
