#include "tuner/tuner.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace aal {

std::vector<double> TuneResult::best_curve() const {
  std::vector<double> curve;
  curve.reserve(history.size());
  double best = 0.0;
  for (const TunePoint& p : history) {
    if (p.ok) best = std::max(best, p.gflops);
    curve.push_back(best);
  }
  return curve;
}

InitSampler random_init_sampler() {
  return [](const TuningTask& task, int m, Rng& rng) {
    return task.space().sample_distinct(m, rng);
  };
}

TuneLoopState::TuneLoopState(Measurer& measurer, const TuneOptions& options)
    : measurer_(measurer), options_(options) {
  AAL_CHECK(options.budget >= 1, "budget must be >= 1");
  AAL_CHECK(options.batch_size >= 1, "batch_size must be >= 1");
}

bool TuneLoopState::measure(const Config& config) {
  if (should_stop()) return false;
  const std::int64_t before = measurer_.num_measured();
  const MeasureResult& r = measurer_.measure(config);
  if (measurer_.num_measured() == before) {
    // Memoized revisit: costs no budget and adds no history entry.
    return !should_stop();
  }
  history_.push_back(TunePoint{r.config.flat, r.ok, r.gflops});
  if (r.ok && r.gflops > best_gflops_) {
    best_gflops_ = r.gflops;
    best_flat_ = r.config.flat;
    since_improvement_ = 0;
  } else {
    ++since_improvement_;
  }
  return !should_stop();
}

bool TuneLoopState::measure_all(const std::vector<Config>& configs) {
  for (const Config& c : configs) {
    if (!measure(c)) return false;
  }
  return !should_stop();
}

bool TuneLoopState::should_stop() const {
  if (static_cast<std::int64_t>(history_.size()) >= options_.budget) {
    return true;
  }
  if (options_.early_stopping > 0 &&
      since_improvement_ >= options_.early_stopping) {
    return true;
  }
  return false;
}

TuneResult TuneLoopState::finish(std::string tuner_name) const {
  TuneResult result;
  result.tuner_name = std::move(tuner_name);
  result.history = history_;
  result.num_measured = static_cast<std::int64_t>(history_.size());
  result.best = measurer_.best();
  return result;
}

}  // namespace aal
