#include "tuner/tuner.hpp"

#include <algorithm>

#include "support/common.hpp"
#include "tuner/tuning_session.hpp"

namespace aal {

std::vector<double> TuneResult::best_curve() const {
  std::vector<double> curve;
  curve.reserve(history.size());
  double best = 0.0;
  for (const TunePoint& p : history) {
    if (p.ok) best = std::max(best, p.gflops);
    curve.push_back(best);
  }
  return curve;
}

void Tuner::begin(const Measurer& measurer, const TuneOptions& options) {
  (void)measurer;
  obs_ = options.effective_obs();
}

void Tuner::observe(std::span<const MeasureResult> results) { (void)results; }

void Tuner::finalize(const Measurer& measurer) { (void)measurer; }

TuneResult Tuner::tune(Measurer& measurer, const TuneOptions& options) {
  if (options.backend != nullptr) {
    TuningSession session(*this, measurer, options, *options.backend);
    return session.run();
  }
  TuningSession session(*this, measurer, options);
  return session.run();
}

InitSampler random_init_sampler() {
  return [](const TuningTask& task, int m, Rng& rng) {
    return task.space().sample_distinct(m, rng);
  };
}

}  // namespace aal
