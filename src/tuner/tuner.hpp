// Tuner interface and shared tuning types.
//
// Tuners are *proposal policies* in an ask/tell loop: a TuningSession (see
// tuner/tuning_session.hpp) owns budget and early-stopping accounting,
// repeatedly asks the policy to propose() candidate configurations, drives
// them through a MeasureBackend, and tells the policy the fresh results via
// observe(). Budget and early-stopping semantics follow AutoTVM: `budget`
// caps measured configs, `early_stopping` aborts when the best GFLOPS has
// not improved within that many consecutive measurements.
//
// The base class keeps a blocking tune() driver for compatibility: it runs
// a serial session to completion, which is what the CLI and benches use at
// jobs=1.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "measure/measure.hpp"
#include "obs/obs.hpp"
#include "support/rng.hpp"

namespace aal {

class MeasureBackend;
struct TransferPrior;  // src/transfer: cross-run warm-start prior

/// Policy-loop options. Composes the shared SessionOptions knobs — the
/// session honors `budget`, `early_stopping`, `seed` and `cancel`;
/// `device_seed`, `retry` and `faults` are inert here (they configure the
/// measurer the caller builds separately).
struct TuneOptions : SessionOptions {
  int batch_size = 64;   // configs measured per optimization round

  /// Number of initial samples (AutoTVM default: 64).
  int num_initial = 64;

  /// Measurement backend for the blocking tune() driver (non-owning; may be
  /// null = serial on the calling thread). Many sessions may share one
  /// backend — the serve daemon multiplexes every job's measurement batches
  /// over one ParallelBackend's lanes this way. Results and traces are
  /// backend-invariant (see DESIGN.md §3), so sharing lanes never changes
  /// what any session computes.
  MeasureBackend* backend = nullptr;

  /// Observability handle (trace sink + metrics registry + lane label).
  /// Inactive by default; the session forwards it to the measurer and the
  /// policy, so every layer of the run reports through one handle.
  Obs obs;

  /// The obs handle the session should actually use: `obs` when it carries
  /// any receiver, otherwise one assembled from the shared `trace` /
  /// `metrics` pointers — so embedders configuring only the SessionOptions
  /// base still get observability without touching the Obs type.
  Obs effective_obs() const {
    if (obs.active()) return obs;
    Obs out = obs;  // keeps the lane label
    out.trace = trace;
    out.metrics = metrics;
    return out;
  }
};

struct TunePoint {
  std::int64_t flat = -1;
  bool ok = false;
  double gflops = 0.0;
  /// Failure diagnostic for ok=false points (empty for successes); carried
  /// into persisted records so error causes survive save/resume.
  std::string error;
};

struct TuneResult {
  std::string tuner_name;
  std::vector<TunePoint> history;  // in measurement order
  std::optional<MeasureResult> best;
  std::int64_t num_measured = 0;

  double best_gflops() const { return best ? best->gflops : 0.0; }

  /// Running best GFLOPS after each measurement (the Fig. 4 curves).
  std::vector<double> best_curve() const;
};

class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;

  /// Called once by the session before the first propose(). The measurer
  /// reference stays valid for the whole session; policies may hold it to
  /// query measured state (all_results, is_cached, best) while proposing.
  virtual void begin(const Measurer& measurer, const TuneOptions& options);

  /// Asks the policy for the next batch of candidate configurations. At
  /// most `k` of them should be previously unmeasured (the session trims
  /// any overshoot before measuring); already-measured revisits are free.
  /// An empty return means the policy is exhausted and the session stops.
  virtual std::vector<Config> propose(std::int64_t k) = 0;

  /// Tells the policy the results that were freshly measured (and committed
  /// to history) this round. Memoized revisits are not repeated here.
  virtual void observe(std::span<const MeasureResult> results);

  /// Called once when the session finishes (budget, early stop or
  /// exhaustion) — e.g. to absorb results into a transfer-learning context.
  virtual void finalize(const Measurer& measurer);

  /// Compatibility driver: runs a serial TuningSession to completion.
  TuneResult tune(Measurer& measurer, const TuneOptions& options);

  /// Attaches a cross-run transfer prior (non-owning; must outlive the
  /// session; call before begin()). Policies that support warm starts seed
  /// their initialization stage from it and blend its meta-surrogate into
  /// scoring; policies that don't simply ignore it. Null detaches.
  void set_transfer_prior(const TransferPrior* prior) {
    transfer_prior_ = prior;
  }

 protected:
  /// Copied from options by the base begin(); subclasses that override
  /// begin() must call Tuner::begin() first to pick it up.
  Obs obs_;

  /// Cross-run prior attached via set_transfer_prior() (null = cold start).
  const TransferPrior* transfer_prior_ = nullptr;
};

/// Initial-set sampler signature: produces `m` distinct configurations to
/// bootstrap the search. The default is uniform random (AutoTVM); the
/// paper's BTED plugs in here.
using InitSampler = std::function<std::vector<Config>(
    const TuningTask& task, int m, Rng& rng)>;

/// Uniform-random initial sampler.
InitSampler random_init_sampler();

}  // namespace aal
