// Tuner interface and shared tuning-loop types.
//
// A Tuner consumes a Measurer (task + device + budget accounting) and
// produces a TuneResult: the measurement history (from which the paper's
// convergence plots are drawn), the best configuration, and the number of
// configurations spent. Budget and early-stopping semantics follow AutoTVM:
// `budget` caps measured configs, `early_stopping` aborts when the best
// GFLOPS has not improved within that many consecutive measurements.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "measure/measure.hpp"
#include "support/rng.hpp"

namespace aal {

struct TuneOptions {
  std::int64_t budget = 1024;
  std::int64_t early_stopping = 400;
  int batch_size = 64;   // configs measured per optimization round
  std::uint64_t seed = 1;

  /// Number of initial samples (AutoTVM default: 64).
  int num_initial = 64;
};

struct TunePoint {
  std::int64_t flat = -1;
  bool ok = false;
  double gflops = 0.0;
};

struct TuneResult {
  std::string tuner_name;
  std::vector<TunePoint> history;  // in measurement order
  std::optional<MeasureResult> best;
  std::int64_t num_measured = 0;

  double best_gflops() const { return best ? best->gflops : 0.0; }

  /// Running best GFLOPS after each measurement (the Fig. 4 curves).
  std::vector<double> best_curve() const;
};

class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;

  /// Runs the full tuning loop on one task.
  virtual TuneResult tune(Measurer& measurer, const TuneOptions& options) = 0;
};

/// Initial-set sampler signature: produces `m` distinct configurations to
/// bootstrap the search. The default is uniform random (AutoTVM); the
/// paper's BTED plugs in here.
using InitSampler = std::function<std::vector<Config>(
    const TuningTask& task, int m, Rng& rng)>;

/// Uniform-random initial sampler.
InitSampler random_init_sampler();

/// Book-keeping helper shared by tuner implementations: measures a batch,
/// appends to history, and reports whether budget/early-stop tripped.
class TuneLoopState {
 public:
  TuneLoopState(Measurer& measurer, const TuneOptions& options);

  /// Measures one config; returns false when the loop must stop.
  bool measure(const Config& config);

  /// Measures a batch in order; returns false when the loop must stop.
  bool measure_all(const std::vector<Config>& configs);

  bool should_stop() const;
  const std::vector<TunePoint>& history() const { return history_; }
  Measurer& measurer() { return measurer_; }

  /// Finalizes the result (best config, counts).
  TuneResult finish(std::string tuner_name) const;

  double best_gflops() const { return best_gflops_; }
  std::int64_t best_flat() const { return best_flat_; }

 private:
  Measurer& measurer_;
  const TuneOptions& options_;
  std::vector<TunePoint> history_;
  double best_gflops_ = 0.0;
  std::int64_t best_flat_ = -1;
  std::int64_t since_improvement_ = 0;
};

}  // namespace aal
