// TuningSession: the ask/tell engine that owns the tuning loop.
//
// One session drives one (policy, measurer) pair: each step() it computes
// the remaining budget, asks the policy for candidates, trims the plan so at
// most that many *fresh* configurations are measured, runs the batch through
// a MeasureBackend, commits fresh results to the history in plan order, and
// feeds them back to the policy. Centralizing the accounting here means no
// tuner carries a private budget/early-stop loop, and swapping the backend
// (serial vs thread pool) cannot change any decision the policy sees:
// per-config measurements are pure (counter-based device noise) and commits
// are serialized in plan order.
#pragma once

#include <string>
#include <vector>

#include "measure/backend.hpp"
#include "tuner/tuner.hpp"

namespace aal {

class TuningSession {
 public:
  /// Why the session stopped. kNone until done() turns true.
  enum class StopReason : int {
    kNone,             // still running (or finish() called mid-run)
    kBudget,           // measured-config budget spent
    kEarlyStop,        // early-stopping patience tripped
    kSpaceExhausted,   // every configuration in the space measured
    kPolicyExhausted,  // the policy proposed nothing fresh
    kBarren,           // too many consecutive zero-fresh rounds
    kCancelled,        // the cooperative cancel flag was raised
  };

  /// Stable wire name ("budget", "early_stop", ...), used in the
  /// session_end trace event.
  static const char* stop_reason_name(StopReason reason);

  /// Validates options (budget >= 1, batch_size >= 1; throws
  /// InvalidArgument). The session serializes all policy interaction; only
  /// the per-config measurement work inside a batch runs on `backend`.
  TuningSession(Tuner& tuner, Measurer& measurer, const TuneOptions& options,
                MeasureBackend& backend);

  /// Convenience: serial measurement on the calling thread.
  TuningSession(Tuner& tuner, Measurer& measurer, const TuneOptions& options);

  /// Runs one propose → measure → observe round. Returns false when the
  /// session is over (budget spent, early stopping tripped, space
  /// exhausted, or the policy returned no candidates).
  bool step();

  /// Drives step() to completion and returns finish().
  TuneResult run();

  /// Finalizes: notifies the policy once and packages the result.
  TuneResult finish();

  bool done() const { return done_; }
  StopReason stop_reason() const { return stop_reason_; }
  const std::vector<TunePoint>& history() const { return history_; }
  std::int64_t num_measured() const {
    return static_cast<std::int64_t>(history_.size());
  }
  double best_gflops() const { return best_gflops_; }
  std::int64_t best_flat() const { return best_flat_; }

 private:
  StopReason check_stop() const;
  void ensure_begun();
  /// Marks the session done with `reason`, emitting the early_stop trace
  /// event when the patience tripped. Always returns false (step()'s "over").
  bool stop(StopReason reason);

  Tuner& tuner_;
  Measurer& measurer_;
  TuneOptions options_;
  Obs obs_;
  SerialBackend serial_;  // fallback when no backend is supplied
  MeasureBackend* backend_;
  std::vector<TunePoint> history_;
  double best_gflops_ = 0.0;
  std::int64_t best_flat_ = -1;
  std::int64_t since_improvement_ = 0;
  std::int64_t round_ = 0;  // propose/measure/observe rounds so far
  int barren_rounds_ = 0;  // consecutive rounds with zero fresh measurements
  StopReason stop_reason_ = StopReason::kNone;
  bool begun_ = false;
  bool done_ = false;
  bool finalized_ = false;
  bool end_emitted_ = false;
};

}  // namespace aal
