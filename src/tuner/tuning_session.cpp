#include "tuner/tuning_session.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "support/common.hpp"

namespace aal {

namespace {
// A policy that keeps proposing only already-measured configurations makes
// no progress; cap such rounds so the session always terminates.
constexpr int kMaxBarrenRounds = 64;
}  // namespace

TuningSession::TuningSession(Tuner& tuner, Measurer& measurer,
                             const TuneOptions& options,
                             MeasureBackend& backend)
    : tuner_(tuner), measurer_(measurer), options_(options),
      backend_(&backend) {
  AAL_CHECK(options.budget >= 1, "budget must be >= 1");
  AAL_CHECK(options.batch_size >= 1, "batch_size must be >= 1");
}

TuningSession::TuningSession(Tuner& tuner, Measurer& measurer,
                             const TuneOptions& options)
    : TuningSession(tuner, measurer, options, serial_) {}

bool TuningSession::should_stop() const {
  if (static_cast<std::int64_t>(history_.size()) >= options_.budget) {
    return true;
  }
  if (options_.early_stopping > 0 &&
      since_improvement_ >= options_.early_stopping) {
    return true;
  }
  if (measurer_.num_measured() >= measurer_.task().space().size()) {
    return true;  // space exhausted
  }
  return false;
}

bool TuningSession::step() {
  if (done_) return false;
  if (!begun_) {
    tuner_.begin(measurer_, options_);
    begun_ = true;
  }
  if (should_stop()) {
    done_ = true;
    return false;
  }

  const std::int64_t remaining =
      options_.budget - static_cast<std::int64_t>(history_.size());
  const std::int64_t space_left =
      measurer_.task().space().size() - measurer_.num_measured();
  const std::int64_t k = std::min(remaining, space_left);

  std::vector<Config> plan = tuner_.propose(k);
  if (plan.empty()) {
    done_ = true;
    return false;
  }

  // Trim the plan so at most k configurations are fresh; revisits stay (they
  // are free) but everything past the k-th fresh candidate is dropped.
  // `fresh_flats` ends up holding exactly the flats this round will commit —
  // anything else in the plan (preloaded or session revisits) is free.
  std::unordered_set<std::int64_t> fresh_flats;
  {
    std::size_t keep = plan.size();
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const std::int64_t flat = plan[i].flat;
      if (measurer_.is_cached(flat)) continue;
      if (fresh_flats.contains(flat)) continue;
      if (static_cast<std::int64_t>(fresh_flats.size()) >= k) {
        keep = i;
        break;
      }
      fresh_flats.insert(flat);
    }
    plan.resize(keep);
  }
  if (plan.empty()) {
    done_ = true;
    return false;
  }

  const std::vector<MeasureResult> batch =
      measurer_.measure_batch(plan, *backend_);

  // Commit fresh results to the history in plan order. The batch aligns
  // with the plan, so taking the first occurrence of each fresh flat walks
  // exactly the points the measurer just committed, in the same order.
  std::vector<MeasureResult> fresh;
  fresh.reserve(fresh_flats.size());
  for (const MeasureResult& r : batch) {
    auto it = fresh_flats.find(r.config.flat);
    if (it == fresh_flats.end()) continue;
    fresh_flats.erase(it);  // first occurrence only
    fresh.push_back(r);
  }

  for (const MeasureResult& r : fresh) {
    history_.push_back(TunePoint{r.config.flat, r.ok, r.gflops});
    if (r.ok && r.gflops > best_gflops_) {
      best_gflops_ = r.gflops;
      best_flat_ = r.config.flat;
      since_improvement_ = 0;
    } else {
      ++since_improvement_;
    }
  }

  if (!fresh.empty()) {
    barren_rounds_ = 0;
    tuner_.observe(std::span<const MeasureResult>(fresh));
  } else if (++barren_rounds_ >= kMaxBarrenRounds) {
    done_ = true;
    return false;
  }

  if (should_stop()) {
    done_ = true;
    return false;
  }
  return true;
}

TuneResult TuningSession::run() {
  while (step()) {
  }
  return finish();
}

TuneResult TuningSession::finish() {
  done_ = true;
  if (!finalized_) {
    if (!begun_) {
      tuner_.begin(measurer_, options_);
      begun_ = true;
    }
    tuner_.finalize(measurer_);
    finalized_ = true;
  }
  TuneResult result;
  result.tuner_name = tuner_.name();
  result.history = history_;
  result.num_measured = static_cast<std::int64_t>(history_.size());
  result.best = measurer_.best();
  return result;
}

}  // namespace aal
