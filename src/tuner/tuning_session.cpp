#include "tuner/tuning_session.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "support/common.hpp"

namespace aal {

namespace {
// A policy that keeps proposing only already-measured configurations makes
// no progress; cap such rounds so the session always terminates.
constexpr int kMaxBarrenRounds = 64;
}  // namespace

TuningSession::TuningSession(Tuner& tuner, Measurer& measurer,
                             const TuneOptions& options,
                             MeasureBackend& backend)
    : tuner_(tuner), measurer_(measurer), options_(options),
      backend_(&backend) {
  AAL_CHECK(options.budget >= 1, "budget must be >= 1");
  AAL_CHECK(options.batch_size >= 1, "batch_size must be >= 1");
}

TuningSession::TuningSession(Tuner& tuner, Measurer& measurer,
                             const TuneOptions& options)
    : TuningSession(tuner, measurer, options, serial_) {}

const char* TuningSession::stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kBudget: return "budget";
    case StopReason::kEarlyStop: return "early_stop";
    case StopReason::kSpaceExhausted: return "space_exhausted";
    case StopReason::kPolicyExhausted: return "policy_exhausted";
    case StopReason::kBarren: return "barren";
    case StopReason::kCancelled: return "cancelled";
  }
  return "unknown";
}

TuningSession::StopReason TuningSession::check_stop() const {
  if (static_cast<std::int64_t>(history_.size()) >= options_.budget) {
    return StopReason::kBudget;
  }
  if (options_.early_stopping > 0 &&
      since_improvement_ >= options_.early_stopping) {
    return StopReason::kEarlyStop;
  }
  if (measurer_.num_measured() >= measurer_.task().space().size()) {
    return StopReason::kSpaceExhausted;
  }
  return StopReason::kNone;
}

void TuningSession::ensure_begun() {
  if (begun_) return;
  obs_ = options_.effective_obs();
  // Hand the shared handle to the measurer so batch events and measure.*
  // counters carry the session's lane. Left alone when observability is off
  // so an externally attached handle survives.
  if (obs_.active()) measurer_.set_obs(obs_);
  // Warm-start the improvement tracker from whatever the measurer already
  // holds (preloaded records, external measurements): a warm session only
  // counts *beating* the historical best as progress, so early stopping can
  // trip without re-spending the budget a prior run already spent. With an
  // empty measurer this is a no-op and the session behaves exactly as cold.
  if (const std::optional<MeasureResult> warm = measurer_.best()) {
    best_gflops_ = warm->gflops;
    best_flat_ = warm->config.flat;
  }
  tuner_.begin(measurer_, options_);
  begun_ = true;
  obs_.emit(TraceEventType::kSessionBegin,
            {{"tuner", TraceValue(tuner_.name())},
             {"budget", TraceValue(options_.budget)},
             {"early_stopping", TraceValue(options_.early_stopping)},
             {"batch_size", TraceValue(options_.batch_size)},
             {"num_initial", TraceValue(options_.num_initial)},
             {"seed", TraceValue(static_cast<std::int64_t>(options_.seed))},
             {"space_size", TraceValue(measurer_.task().space().size())},
             {"preloaded", TraceValue(measurer_.num_measured())}},
            {{"backend", TraceValue(backend_->name())}});
}

bool TuningSession::stop(StopReason reason) {
  done_ = true;
  if (stop_reason_ == StopReason::kNone) stop_reason_ = reason;
  if (reason == StopReason::kEarlyStop) {
    obs_.count("session.early_stops");
    obs_.emit(TraceEventType::kEarlyStop,
              {{"measured", TraceValue(num_measured())},
               {"since_improvement", TraceValue(since_improvement_)},
               {"patience", TraceValue(options_.early_stopping)}});
  }
  return false;
}

bool TuningSession::step() {
  if (done_) return false;
  ensure_begun();
  // Cooperative cancellation: checked once per round, so a raised flag stops
  // the session at the next round boundary. Already-committed history stays.
  if (options_.cancel != nullptr &&
      options_.cancel->load(std::memory_order_relaxed)) {
    return stop(StopReason::kCancelled);
  }
  if (const StopReason reason = check_stop(); reason != StopReason::kNone) {
    return stop(reason);
  }

  const std::int64_t remaining =
      options_.budget - static_cast<std::int64_t>(history_.size());
  const std::int64_t space_left =
      measurer_.task().space().size() - measurer_.num_measured();
  const std::int64_t k = std::min(remaining, space_left);

  std::vector<Config> plan = tuner_.propose(k);
  if (plan.empty()) {
    return stop(StopReason::kPolicyExhausted);
  }
  const std::int64_t proposed = static_cast<std::int64_t>(plan.size());

  // Trim the plan so at most k configurations are fresh; revisits stay (they
  // are free) but everything past the k-th fresh candidate is dropped.
  // `fresh_flats` ends up holding exactly the flats this round will commit —
  // anything else in the plan (preloaded or session revisits) is free.
  std::unordered_set<std::int64_t> fresh_flats;
  {
    std::size_t keep = plan.size();
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const std::int64_t flat = plan[i].flat;
      if (measurer_.is_cached(flat)) continue;
      if (fresh_flats.contains(flat)) continue;
      if (static_cast<std::int64_t>(fresh_flats.size()) >= k) {
        keep = i;
        break;
      }
      fresh_flats.insert(flat);
    }
    plan.resize(keep);
  }
  if (plan.empty()) {
    return stop(StopReason::kPolicyExhausted);
  }

  ++round_;
  obs_.count("session.rounds");
  obs_.count("session.proposed", proposed);
  obs_.emit(TraceEventType::kPropose,
            {{"round", TraceValue(round_)},
             {"requested", TraceValue(k)},
             {"proposed", TraceValue(proposed)},
             {"fresh", TraceValue(fresh_flats.size())}});

  const std::vector<MeasureResult> batch =
      measurer_.measure_batch(plan, *backend_);

  // Commit fresh results to the history in plan order. The batch aligns
  // with the plan, so taking the first occurrence of each fresh flat walks
  // exactly the points the measurer just committed, in the same order.
  std::vector<MeasureResult> fresh;
  fresh.reserve(fresh_flats.size());
  for (const MeasureResult& r : batch) {
    auto it = fresh_flats.find(r.config.flat);
    if (it == fresh_flats.end()) continue;
    fresh_flats.erase(it);  // first occurrence only
    fresh.push_back(r);
  }

  for (const MeasureResult& r : fresh) {
    history_.push_back(TunePoint{r.config.flat, r.ok, r.gflops, r.error});
    if (r.ok && r.gflops > best_gflops_) {
      best_gflops_ = r.gflops;
      best_flat_ = r.config.flat;
      since_improvement_ = 0;
    } else {
      ++since_improvement_;
    }
  }

  if (!fresh.empty()) {
    barren_rounds_ = 0;
    obs_.count("session.fresh_measured",
               static_cast<std::int64_t>(fresh.size()));
    tuner_.observe(std::span<const MeasureResult>(fresh));
    obs_.emit(TraceEventType::kObserve,
              {{"round", TraceValue(round_)},
               {"fresh", TraceValue(fresh.size())},
               {"best_gflops", TraceValue(best_gflops_)},
               {"best_flat", TraceValue(best_flat_)},
               {"since_improvement", TraceValue(since_improvement_)}});
  } else if (++barren_rounds_ >= kMaxBarrenRounds) {
    return stop(StopReason::kBarren);
  }

  if (const StopReason reason = check_stop(); reason != StopReason::kNone) {
    return stop(reason);
  }
  return true;
}

TuneResult TuningSession::run() {
  while (step()) {
  }
  return finish();
}

TuneResult TuningSession::finish() {
  done_ = true;
  if (!finalized_) {
    ensure_begun();
    tuner_.finalize(measurer_);
    finalized_ = true;
  }
  if (!end_emitted_) {
    end_emitted_ = true;
    obs_.emit(TraceEventType::kSessionEnd,
              {{"reason", TraceValue(stop_reason_name(stop_reason_))},
               {"measured", TraceValue(num_measured())},
               {"best_flat", TraceValue(best_flat_)},
               {"best_gflops", TraceValue(best_gflops_)}});
  }
  TuneResult result;
  result.tuner_name = tuner_.name();
  result.history = history_;
  result.num_measured = static_cast<std::int64_t>(history_.size());
  result.best = measurer_.best();
  return result;
}

}  // namespace aal
