// AutoTVM's model-based tuner (the paper's baseline).
//
// Reproduces the XGBTuner pipeline from "Learning to Optimize Tensor
// Programs" as shipped in TVM v0.6, restructured as an ask/tell policy:
//   1. the first propose() returns `num_initial` (64) seed configurations —
//      uniform random by default; the initial sampler is pluggable, which is
//      exactly where the paper's BTED slots in ("Embed BTED initialization
//      algorithm into AutoTVM");
//   2. each later propose() fits the cost model (GBDT standing in for
//      XGBoost) on all measurements so far — optionally warm-started with
//      transfer-learning rows from previously tuned tasks of the same kind —
//      and runs parallel simulated annealing on it to harvest the next
//      `batch_size` most promising unmeasured configurations,
//      ε-greedy-mixed with random exploration;
//   3. the TuningSession measures each batch and enforces budget / early
//      stopping (400); finalize() absorbs the task into the transfer
//      context.
#pragma once

#include <memory>

#include "ml/sa_optimizer.hpp"
#include "ml/surrogate.hpp"
#include "ml/transfer.hpp"
#include "tuner/tuner.hpp"

namespace aal {

struct XgbTunerOptions {
  SaParams sa;
  double epsilon_greedy = 0.05;  // fraction of each batch chosen at random
  /// Transfer-learning context shared across tasks (nullable).
  TransferContext* transfer = nullptr;
  /// Cap on transferred rows blended into each model fit.
  std::size_t max_transfer_rows = 256;
};

class XgbTuner final : public Tuner {
 public:
  explicit XgbTuner(std::shared_ptr<const SurrogateFactory> surrogate_factory =
                        std::make_shared<GbdtSurrogateFactory>(),
                    InitSampler init_sampler = random_init_sampler(),
                    XgbTunerOptions options = {});

  std::string name() const override { return name_; }

  void begin(const Measurer& measurer, const TuneOptions& options) override;
  std::vector<Config> propose(std::int64_t k) override;
  void finalize(const Measurer& measurer) override;

  /// Overrides the displayed name (used when BTED is plugged in, so results
  /// report "bted" rather than "xgb").
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::shared_ptr<const SurrogateFactory> surrogate_factory_;
  InitSampler init_sampler_;
  XgbTunerOptions xgb_options_;
  std::string name_ = "autotvm";

  const Measurer* measurer_ = nullptr;
  TuneOptions tune_options_;
  Rng rng_;
  std::unique_ptr<SaOptimizer> sa_;
  std::uint64_t round_ = 0;
  bool initialized_ = false;
};

}  // namespace aal
