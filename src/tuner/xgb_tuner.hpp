// AutoTVM's model-based tuner (the paper's baseline).
//
// Reproduces the XGBTuner pipeline from "Learning to Optimize Tensor
// Programs" as shipped in TVM v0.6:
//   1. measure `num_initial` (64) seed configurations — uniform random by
//      default; the initial sampler is pluggable, which is exactly where
//      the paper's BTED slots in ("Embed BTED initialization algorithm
//      into AutoTVM");
//   2. each round, fit the cost model (GBDT standing in for XGBoost) on all
//      measurements so far — optionally warm-started with transfer-learning
//      rows from previously tuned tasks of the same kind;
//   3. run parallel simulated annealing on the cost model to harvest the
//      next `batch_size` most promising unmeasured configurations,
//      ε-greedy-mixed with random exploration;
//   4. measure the batch; repeat until budget or early stopping (400).
#pragma once

#include <memory>

#include "ml/sa_optimizer.hpp"
#include "ml/surrogate.hpp"
#include "ml/transfer.hpp"
#include "tuner/tuner.hpp"

namespace aal {

struct XgbTunerOptions {
  SaParams sa;
  double epsilon_greedy = 0.05;  // fraction of each batch chosen at random
  /// Transfer-learning context shared across tasks (nullable).
  TransferContext* transfer = nullptr;
  /// Cap on transferred rows blended into each model fit.
  std::size_t max_transfer_rows = 256;
};

class XgbTuner final : public Tuner {
 public:
  explicit XgbTuner(std::shared_ptr<const SurrogateFactory> surrogate_factory =
                        std::make_shared<GbdtSurrogateFactory>(),
                    InitSampler init_sampler = random_init_sampler(),
                    XgbTunerOptions options = {});

  std::string name() const override { return name_; }
  TuneResult tune(Measurer& measurer, const TuneOptions& options) override;

  /// Overrides the displayed name (used when BTED is plugged in, so results
  /// report "bted" rather than "xgb").
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::shared_ptr<const SurrogateFactory> surrogate_factory_;
  InitSampler init_sampler_;
  XgbTunerOptions xgb_options_;
  std::string name_ = "autotvm";
};

}  // namespace aal
