#include "tuner/chameleon_tuner.hpp"

#include <unordered_set>
#include <utility>

#include "ml/kmeans.hpp"

namespace aal {

ChameleonTuner::ChameleonTuner(
    std::shared_ptr<const SurrogateFactory> surrogate_factory,
    ChameleonTunerOptions options)
    : surrogate_factory_(std::move(surrogate_factory)),
      chameleon_options_(options) {
  AAL_CHECK(chameleon_options_.oversample_factor >= 1,
            "oversample_factor must be >= 1");
}

void ChameleonTuner::begin(const Measurer& measurer,
                           const TuneOptions& options) {
  Tuner::begin(measurer, options);
  measurer_ = &measurer;
  tune_options_ = options;
  rng_.reseed(options.seed);
  sa_ = std::make_unique<SaOptimizer>(
      measurer.task().space(), chameleon_options_.sa.num_chains > 0
                                   ? chameleon_options_.sa
                                   : SaParams{});
  round_ = 0;
  initialized_ = false;
}

std::vector<Config> ChameleonTuner::propose(std::int64_t k) {
  const TuningTask& task = measurer_->task();
  const ConfigSpace& space = task.space();

  // Random initialization, as in AutoTVM/CHAMELEON.
  if (!initialized_) {
    initialized_ = true;
    return space.sample_distinct(tune_options_.num_initial, rng_);
  }

  // Cost model on everything measured so far.
  const std::vector<MeasureResult> measured = measurer_->all_results();
  Dataset data(static_cast<std::size_t>(space.feature_dim()));
  for (const auto& r : measured) {
    data.add_row(space.features(r.config), r.ok ? r.gflops : 0.0);
  }
  auto model = surrogate_factory_->create(tune_options_.seed * 6151 + ++round_);
  model->fit(data);
  obs_.count("tuner.surrogate_fits");
  obs_.emit(TraceEventType::kSurrogateFit,
            {{"model", TraceValue("gbdt")},
             {"round", TraceValue(round_)},
             {"rows", TraceValue(data.num_rows())}});

  std::unordered_set<std::int64_t> measured_flats;
  for (const auto& r : measured) measured_flats.insert(r.config.flat);

  // Over-provisioned proposal pool from SA.
  const auto score = [&](const Config& c) {
    return model->predict(space.features(c));
  };
  const int pool_size =
      tune_options_.batch_size * chameleon_options_.oversample_factor;
  std::vector<Config> pool =
      sa_->maximize(score, pool_size, rng_, measured_flats);
  if (pool.empty()) {
    // Tiny or nearly exhausted space: deterministic sweep for any
    // still-unmeasured point.
    for (std::int64_t flat = 0; flat < space.size(); ++flat) {
      if (!measurer_->is_cached(flat)) return {space.at(flat)};
    }
    return {};
  }

  // Adaptive sampling: cluster the pool, measure one medoid per cluster.
  std::vector<std::vector<double>> features;
  features.reserve(pool.size());
  for (const Config& c : pool) features.push_back(space.features(c));
  const KMeansResult clusters = kmeans(
      features, static_cast<std::size_t>(tune_options_.batch_size), rng_);

  std::vector<Config> plan;
  plan.reserve(clusters.medoids.size());
  std::unordered_set<std::int64_t> planned;
  for (std::size_t medoid : clusters.medoids) {
    const Config& c = pool[medoid];
    if (planned.insert(c.flat).second) plan.push_back(c);
  }
  (void)k;  // the session trims overshoot; a round never exceeds batch_size
  return plan;
}

}  // namespace aal
