#include "tuner/chameleon_tuner.hpp"

#include <unordered_set>

#include "ml/kmeans.hpp"

namespace aal {

ChameleonTuner::ChameleonTuner(
    std::shared_ptr<const SurrogateFactory> surrogate_factory,
    ChameleonTunerOptions options)
    : surrogate_factory_(std::move(surrogate_factory)),
      chameleon_options_(options) {
  AAL_CHECK(chameleon_options_.oversample_factor >= 1,
            "oversample_factor must be >= 1");
}

TuneResult ChameleonTuner::tune(Measurer& measurer,
                                const TuneOptions& options) {
  TuneLoopState state(measurer, options);
  Rng rng(options.seed);
  const TuningTask& task = measurer.task();
  const ConfigSpace& space = task.space();

  // Random initialization, as in AutoTVM/CHAMELEON.
  state.measure_all(space.sample_distinct(options.num_initial, rng));

  SaOptimizer sa(space, chameleon_options_.sa.num_chains > 0
                            ? chameleon_options_.sa
                            : SaParams{});
  std::uint64_t round = 0;
  while (!state.should_stop() && measurer.num_measured() < space.size()) {
    // Cost model on everything measured so far.
    const std::vector<MeasureResult> measured = measurer.all_results();
    Dataset data(static_cast<std::size_t>(space.feature_dim()));
    for (const auto& r : measured) {
      data.add_row(space.features(r.config), r.ok ? r.gflops : 0.0);
    }
    auto model = surrogate_factory_->create(options.seed * 6151 + ++round);
    model->fit(data);

    std::unordered_set<std::int64_t> measured_flats;
    for (const auto& r : measured) measured_flats.insert(r.config.flat);

    // Over-provisioned proposal pool from SA.
    const auto score = [&](const Config& c) {
      return model->predict(space.features(c));
    };
    const int pool_size =
        options.batch_size * chameleon_options_.oversample_factor;
    std::vector<Config> pool =
        sa.maximize(score, pool_size, rng, measured_flats);
    if (pool.empty()) {
      Config c = space.sample(rng);
      if (!measured_flats.contains(c.flat)) pool.push_back(std::move(c));
      if (pool.empty()) break;  // space exhausted
    }

    // Adaptive sampling: cluster the pool, measure one medoid per cluster.
    std::vector<std::vector<double>> features;
    features.reserve(pool.size());
    for (const Config& c : pool) features.push_back(space.features(c));
    const KMeansResult clusters = kmeans(
        features, static_cast<std::size_t>(options.batch_size), rng);

    std::vector<Config> plan;
    plan.reserve(clusters.medoids.size());
    std::unordered_set<std::int64_t> planned;
    for (std::size_t medoid : clusters.medoids) {
      const Config& c = pool[medoid];
      if (planned.insert(c.flat).second) plan.push_back(c);
    }
    if (!state.measure_all(plan)) break;
  }
  return state.finish(name());
}

}  // namespace aal
