#include "tuner/random_tuner.hpp"

namespace aal {

TuneResult RandomTuner::tune(Measurer& measurer, const TuneOptions& options) {
  TuneLoopState state(measurer, options);
  Rng rng(options.seed);
  const ConfigSpace& space = measurer.task().space();
  while (!state.should_stop() &&
         measurer.num_measured() < space.size()) {
    // Memoized duplicates cost nothing, so plain uniform draws are fine
    // even near space exhaustion (the loop guard handles full exhaustion).
    if (!state.measure(space.sample(rng))) break;
  }
  return state.finish(name());
}

}  // namespace aal
