#include "tuner/random_tuner.hpp"

#include <algorithm>
#include <unordered_set>

namespace aal {

void RandomTuner::begin(const Measurer& measurer, const TuneOptions& options) {
  Tuner::begin(measurer, options);
  measurer_ = &measurer;
  rng_.reseed(options.seed);
  batch_size_ = options.batch_size;
}

std::vector<Config> RandomTuner::propose(std::int64_t k) {
  const ConfigSpace& space = measurer_->task().space();
  const std::int64_t target =
      std::min<std::int64_t>(k, static_cast<std::int64_t>(batch_size_));
  std::vector<Config> plan;
  std::unordered_set<std::int64_t> planned;

  // Rejection-sample fresh configurations; duplicates of measured configs
  // are simply skipped (they would be free revisits anyway, but proposing
  // fresh points keeps the session making progress near exhaustion).
  const std::int64_t max_attempts = 64 * target + 256;
  for (std::int64_t attempt = 0;
       attempt < max_attempts &&
       static_cast<std::int64_t>(plan.size()) < target;
       ++attempt) {
    Config c = space.sample(rng_);
    if (measurer_->is_cached(c.flat) || planned.contains(c.flat)) continue;
    planned.insert(c.flat);
    plan.push_back(std::move(c));
  }

  // Near-exhaustion fallback: deterministic scan for whatever is left.
  if (plan.empty()) {
    for (std::int64_t flat = 0;
         flat < space.size() &&
         static_cast<std::int64_t>(plan.size()) < target;
         ++flat) {
      if (measurer_->is_cached(flat) || planned.contains(flat)) continue;
      planned.insert(flat);
      plan.push_back(space.at(flat));
    }
  }
  obs_.count("random.proposed", static_cast<std::int64_t>(plan.size()));
  return plan;
}

}  // namespace aal
