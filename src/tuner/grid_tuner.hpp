// Deterministic grid-scan baseline (AutoTVM's GridSearchTuner): walks the
// space in flat-index order with a fixed stride so a small budget still
// touches the whole range.
#pragma once

#include "tuner/tuner.hpp"

namespace aal {

class GridTuner final : public Tuner {
 public:
  std::string name() const override { return "grid"; }
  TuneResult tune(Measurer& measurer, const TuneOptions& options) override;
};

}  // namespace aal
