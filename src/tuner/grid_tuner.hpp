// Deterministic grid-scan baseline (AutoTVM's GridSearchTuner): walks the
// space in flat-index order with a fixed stride so a small budget still
// touches the whole range. Ask/tell policy: propose() advances the walk
// cursor, skipping configurations already measured.
#pragma once

#include "tuner/tuner.hpp"

namespace aal {

class GridTuner final : public Tuner {
 public:
  std::string name() const override { return "grid"; }

  void begin(const Measurer& measurer, const TuneOptions& options) override;
  std::vector<Config> propose(std::int64_t k) override;

 private:
  const Measurer* measurer_ = nullptr;
  int batch_size_ = 64;
  std::int64_t stride_ = 1;
  std::int64_t cursor_ = 0;
  std::int64_t visited_ = 0;  // walk positions consumed (<= space size)
};

}  // namespace aal
