#include "tuner/ga_tuner.hpp"

#include <algorithm>

namespace aal {

TuneResult GaTuner::tune(Measurer& measurer, const TuneOptions& options) {
  TuneLoopState state(measurer, options);
  Rng rng(options.seed);
  const ConfigSpace& space = measurer.task().space();

  struct Individual {
    Config config;
    double fitness = 0.0;
  };

  // Seed population.
  std::vector<Individual> population;
  for (const Config& c :
       space.sample_distinct(options_.population, rng)) {
    if (!state.measure(c)) return state.finish(name());
    population.push_back(
        Individual{c, measurer.measure(c).ok ? measurer.measure(c).gflops : 0.0});
  }

  auto tournament = [&]() -> const Individual& {
    const Individual& a =
        population[rng.next_index(population.size())];
    const Individual& b =
        population[rng.next_index(population.size())];
    return a.fitness >= b.fitness ? a : b;
  };

  while (!state.should_stop() &&
         measurer.num_measured() < space.size()) {
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness > b.fitness;
              });
    std::vector<Individual> next(
        population.begin(),
        population.begin() + std::min<std::ptrdiff_t>(
                                 options_.elite,
                                 static_cast<std::ptrdiff_t>(population.size())));
    while (next.size() < population.size() && !state.should_stop()) {
      const Individual& mom = tournament();
      const Individual& dad = tournament();
      // One-point crossover in knob order.
      std::vector<std::int32_t> child = mom.config.choices;
      const std::size_t cut = rng.next_index(child.size() + 1);
      for (std::size_t i = cut; i < child.size(); ++i) {
        child[i] = dad.config.choices[i];
      }
      // Mutation.
      for (std::size_t i = 0; i < child.size(); ++i) {
        if (rng.next_bernoulli(options_.mutation_prob)) {
          child[i] = static_cast<std::int32_t>(
              rng.next_index(static_cast<std::uint64_t>(space.knob(i).size())));
        }
      }
      Config config = space.make(std::move(child));
      if (!state.measure(config)) break;
      const MeasureResult& r = measurer.measure(config);
      next.push_back(Individual{config, r.ok ? r.gflops : 0.0});
    }
    if (next.size() < 2) break;
    population = std::move(next);
  }
  return state.finish(name());
}

}  // namespace aal
