#include "tuner/ga_tuner.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace aal {

void GaTuner::begin(const Measurer& measurer, const TuneOptions& options) {
  Tuner::begin(measurer, options);
  measurer_ = &measurer;
  rng_.reseed(options.seed);
  batch_size_ = options.batch_size;
  population_.clear();
  elites_.clear();
  forming_.clear();
  in_flight_.clear();
  dead_ = false;
  pending_ = measurer.task().space().sample_distinct(options_.population, rng_);
}

void GaTuner::breed() {
  if (population_.size() < 2) {
    dead_ = true;
    return;
  }
  obs_.count("ga.generations");
  std::sort(population_.begin(), population_.end(),
            [](const Individual& a, const Individual& b) {
              return a.fitness > b.fitness;
            });
  elites_.assign(population_.begin(),
                 population_.begin() +
                     std::min<std::ptrdiff_t>(
                         options_.elite,
                         static_cast<std::ptrdiff_t>(population_.size())));

  const ConfigSpace& space = measurer_->task().space();
  auto tournament = [&]() -> const Individual& {
    const Individual& a = population_[rng_.next_index(population_.size())];
    const Individual& b = population_[rng_.next_index(population_.size())];
    return a.fitness >= b.fitness ? a : b;
  };

  pending_.clear();
  while (elites_.size() + pending_.size() < population_.size()) {
    const Individual& mom = tournament();
    const Individual& dad = tournament();
    // One-point crossover in knob order.
    std::vector<std::int32_t> child = mom.config.choices;
    const std::size_t cut = rng_.next_index(child.size() + 1);
    for (std::size_t i = cut; i < child.size(); ++i) {
      child[i] = dad.config.choices[i];
    }
    // Mutation.
    for (std::size_t i = 0; i < child.size(); ++i) {
      if (rng_.next_bernoulli(options_.mutation_prob)) {
        child[i] = static_cast<std::int32_t>(
            rng_.next_index(static_cast<std::uint64_t>(space.knob(i).size())));
      }
    }
    pending_.push_back(space.make(std::move(child)));
  }
}

void GaTuner::maybe_complete_generation() {
  if (!pending_.empty() || !in_flight_.empty()) return;
  std::vector<Individual> next = elites_;
  next.insert(next.end(), forming_.begin(), forming_.end());
  elites_.clear();
  forming_.clear();
  population_ = std::move(next);
  if (population_.size() < 2) dead_ = true;
}

std::vector<Config> GaTuner::propose(std::int64_t k) {
  const std::int64_t target =
      std::min<std::int64_t>(k, static_cast<std::int64_t>(batch_size_));
  // A generation whose offspring are all revisits resolves without any
  // measurement; bound how many of those we fold per call so a converged
  // population on a tiny space terminates instead of spinning.
  int silent_generations = 0;
  while (!dead_ && silent_generations < 32) {
    std::vector<Config> plan;
    std::unordered_set<std::int64_t> planned;
    std::size_t i = 0;
    while (i < pending_.size() &&
           static_cast<std::int64_t>(plan.size()) < target) {
      Config& c = pending_[i];
      if (const MeasureResult* hit = measurer_->find(c.flat)) {
        // Already measured: resolve for free, no proposal needed.
        forming_.push_back(Individual{c, hit->ok ? hit->gflops : 0.0});
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (planned.contains(c.flat)) {
        // Duplicate offspring within one brood: defer to the next call,
        // by which time the first copy has a cached result.
        ++i;
        continue;
      }
      planned.insert(c.flat);
      plan.push_back(c);
      in_flight_.push_back(c);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (!plan.empty()) return plan;

    // Nothing proposable. If the generation is complete, fold it and breed
    // the next one; otherwise we are waiting on observe().
    if (pending_.empty() && in_flight_.empty()) {
      maybe_complete_generation();
      if (dead_) break;
      breed();
      ++silent_generations;
      continue;
    }
    break;
  }
  return {};
}

void GaTuner::observe(std::span<const MeasureResult> results) {
  (void)results;  // fitness is read back through the memo cache
  std::vector<Config> unresolved;
  for (Config& c : in_flight_) {
    if (const MeasureResult* hit = measurer_->find(c.flat)) {
      forming_.push_back(Individual{c, hit->ok ? hit->gflops : 0.0});
    } else {
      // The session trimmed this proposal (budget edge); try again later.
      unresolved.push_back(std::move(c));
    }
  }
  in_flight_.clear();
  pending_.insert(pending_.begin(), unresolved.begin(), unresolved.end());
  maybe_complete_generation();
}

}  // namespace aal
