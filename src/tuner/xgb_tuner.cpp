#include "tuner/xgb_tuner.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "support/logging.hpp"
#include "transfer/transfer_prior.hpp"

namespace aal {

XgbTuner::XgbTuner(std::shared_ptr<const SurrogateFactory> surrogate_factory,
                   InitSampler init_sampler, XgbTunerOptions options)
    : surrogate_factory_(std::move(surrogate_factory)),
      init_sampler_(std::move(init_sampler)),
      xgb_options_(options) {}

void XgbTuner::begin(const Measurer& measurer, const TuneOptions& options) {
  Tuner::begin(measurer, options);
  measurer_ = &measurer;
  tune_options_ = options;
  rng_.reseed(options.seed);
  sa_ = std::make_unique<SaOptimizer>(
      measurer.task().space(),
      xgb_options_.sa.num_chains > 0 ? xgb_options_.sa : SaParams{});
  round_ = 0;
  initialized_ = false;
}

std::vector<Config> XgbTuner::propose(std::int64_t k) {
  const TuningTask& task = measurer_->task();
  const ConfigSpace& space = task.space();

  // --- Stage 1: initialization -------------------------------------------
  if (!initialized_) {
    initialized_ = true;
    if (transfer_prior_ != nullptr && transfer_prior_->active()) {
      // Warm start from fleet history: the prior's seeds (prior-task bests
      // + HW-ranked feasible picks) replace most of the initial sweep,
      // capped at warm_num_initial; the regular init sampler tops up any
      // shortfall.
      int m = tune_options_.num_initial;
      if (transfer_prior_->warm_num_initial > 0) {
        m = std::min(m, transfer_prior_->warm_num_initial);
      }
      std::vector<Config> initial = transfer_prior_->seeds;
      if (initial.size() > static_cast<std::size_t>(m)) initial.resize(m);
      obs_.count("transfer.init_seeds",
                 static_cast<std::int64_t>(initial.size()));
      if (initial.size() < static_cast<std::size_t>(m)) {
        std::unordered_set<std::int64_t> taken;
        for (const Config& c : initial) taken.insert(c.flat);
        for (Config& c : init_sampler_(task, m, rng_)) {
          if (initial.size() >= static_cast<std::size_t>(m)) break;
          if (taken.insert(c.flat).second) initial.push_back(std::move(c));
        }
      }
      return initial;
    }
    return init_sampler_(task, tune_options_.num_initial, rng_);
  }

  // --- Stage 2: a model-guided round -------------------------------------
  // Fit the cost model on everything measured so far (failed configs train
  // at 0 GFLOPS — the model must learn to avoid them), plus transferred
  // rows from sibling tasks, score-scaled to this task.
  const std::vector<MeasureResult> measured = measurer_->all_results();
  const std::optional<MeasureResult> best_result = measurer_->best();
  const double best = best_result ? best_result->gflops : 0.0;
  Dataset data(static_cast<std::size_t>(space.feature_dim()));
  for (const auto& r : measured) {
    data.add_row(space.features(r.config), r.ok ? r.gflops : 0.0);
  }
  std::size_t transfer_rows = 0;
  if (xgb_options_.transfer != nullptr && best > 0.0) {
    const Dataset seed =
        xgb_options_.transfer->seed_for(task, xgb_options_.max_transfer_rows);
    transfer_rows = seed.num_rows();
    for (std::size_t i = 0; i < seed.num_rows(); ++i) {
      // Normalized [0,1] transfer scores rescaled into this task's GFLOPS
      // range so they blend with native rows.
      data.add_row(seed.row(i), seed.target(i) * best);
    }
  }
  if (transfer_prior_ != nullptr && best > 0.0 &&
      transfer_prior_->rows.num_features() == data.num_features()) {
    // Cross-run prior rows blend exactly like within-run transfer rows:
    // normalized scores rescaled by the live best. As live measurements
    // accumulate they outnumber the capped prior rows, so the prior's pull
    // fades naturally round over round.
    const Dataset& rows = transfer_prior_->rows;
    const std::size_t cap =
        std::min(rows.num_rows(), xgb_options_.max_transfer_rows);
    for (std::size_t i = 0; i < cap; ++i) {
      data.add_row(rows.row(i), rows.target(i) * best);
    }
    transfer_rows += cap;
  }

  auto model = surrogate_factory_->create(tune_options_.seed * 7919 + ++round_);
  model->fit(data);
  obs_.count("tuner.surrogate_fits");
  obs_.emit(TraceEventType::kSurrogateFit,
            {{"model", TraceValue("gbdt")},
             {"round", TraceValue(round_)},
             {"rows", TraceValue(data.num_rows())},
             {"transfer_rows", TraceValue(transfer_rows)}});

  std::unordered_set<std::int64_t> measured_flats;
  measured_flats.reserve(measured.size());
  for (const auto& r : measured) measured_flats.insert(r.config.flat);

  // SA revisits configurations across its sweeps; the surrogate is fixed
  // for the whole maximize() call, so each config's prediction is memoized
  // by flat index (same double either way — the model is pure).
  std::unordered_map<std::int64_t, double> score_memo;
  std::vector<double> feature_row(static_cast<std::size_t>(space.feature_dim()));
  std::int64_t memo_hits = 0, memo_misses = 0;
  const auto score = [&](const Config& c) {
    const auto it = score_memo.find(c.flat);
    if (it != score_memo.end()) {
      ++memo_hits;
      return it->second;
    }
    ++memo_misses;
    space.features_into(c, feature_row);
    const double s = model->predict(feature_row);
    score_memo.emplace(c.flat, s);
    return s;
  };
  std::vector<Config> plan =
      sa_->maximize(score, tune_options_.batch_size, rng_, measured_flats);
  obs_.count("surrogate.sa_memo_hits", memo_hits);
  obs_.count("surrogate.sa_memo_misses", memo_misses);

  // ε-greedy exploration: the tail of each batch is random instead of
  // model-chosen.
  const auto num_random = static_cast<std::size_t>(
      xgb_options_.epsilon_greedy *
      static_cast<double>(tune_options_.batch_size));
  const auto plan_quota =
      static_cast<std::size_t>(tune_options_.batch_size) - num_random;
  if (plan.size() > plan_quota) plan.resize(plan_quota);
  for (std::size_t i = 0; i < num_random; ++i) {
    Config c = space.sample(rng_);
    if (!measured_flats.contains(c.flat)) plan.push_back(std::move(c));
  }
  if (plan.empty()) {
    // Model found nothing new (tiny space): deterministic sweep for any
    // still-unmeasured point so the session keeps making progress.
    for (std::int64_t flat = 0; flat < space.size(); ++flat) {
      if (!measurer_->is_cached(flat)) {
        plan.push_back(space.at(flat));
        break;
      }
    }
  }

  AAL_LOG_DEBUG << name_ << " round " << round_ << ": best " << best
                << " GFLOPS after " << measured.size() << " configs";
  (void)k;  // the session trims overshoot; a round never exceeds batch_size
  return plan;
}

void XgbTuner::finalize(const Measurer& measurer) {
  if (xgb_options_.transfer != nullptr) {
    // Only this session's own measurements: preloaded rows (resume log or
    // RecordStore) were absorbed by whoever preloaded them, so absorbing
    // all_results() here would pool the same rows twice.
    xgb_options_.transfer->absorb(measurer.task(), measurer.fresh_results());
  }
}

}  // namespace aal
