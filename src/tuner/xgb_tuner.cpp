#include "tuner/xgb_tuner.hpp"

#include <unordered_set>
#include <utility>

#include "support/logging.hpp"

namespace aal {

XgbTuner::XgbTuner(std::shared_ptr<const SurrogateFactory> surrogate_factory,
                   InitSampler init_sampler, XgbTunerOptions options)
    : surrogate_factory_(std::move(surrogate_factory)),
      init_sampler_(std::move(init_sampler)),
      xgb_options_(options) {}

TuneResult XgbTuner::tune(Measurer& measurer, const TuneOptions& options) {
  TuneLoopState state(measurer, options);
  Rng rng(options.seed);
  const TuningTask& task = measurer.task();
  const ConfigSpace& space = task.space();

  // --- Stage 1: initialization -------------------------------------------
  const std::vector<Config> initial =
      init_sampler_(task, options.num_initial, rng);
  state.measure_all(initial);

  // --- Stage 2: model-guided rounds ---------------------------------------
  SaOptimizer sa(space, xgb_options_.sa.num_chains > 0 ? xgb_options_.sa
                                                       : SaParams{});
  std::uint64_t round = 0;
  while (!state.should_stop() && measurer.num_measured() < space.size()) {
    // Fit the cost model on everything measured so far (failed configs
    // train at 0 GFLOPS — the model must learn to avoid them), plus
    // transferred rows from sibling tasks, score-scaled to this task.
    const std::vector<MeasureResult> measured = measurer.all_results();
    double best = state.best_gflops();
    Dataset data(static_cast<std::size_t>(space.feature_dim()));
    for (const auto& r : measured) {
      data.add_row(space.features(r.config), r.ok ? r.gflops : 0.0);
    }
    if (xgb_options_.transfer != nullptr && best > 0.0) {
      const Dataset seed = xgb_options_.transfer->seed_for(
          task, xgb_options_.max_transfer_rows);
      for (std::size_t i = 0; i < seed.num_rows(); ++i) {
        // Normalized [0,1] transfer scores rescaled into this task's GFLOPS
        // range so they blend with native rows.
        data.add_row(seed.row(i), seed.target(i) * best);
      }
    }

    auto model = surrogate_factory_->create(options.seed * 7919 + ++round);
    model->fit(data);

    std::unordered_set<std::int64_t> measured_flats;
    measured_flats.reserve(measured.size());
    for (const auto& r : measured) measured_flats.insert(r.config.flat);

    const auto score = [&](const Config& c) {
      return model->predict(space.features(c));
    };
    std::vector<Config> plan =
        sa.maximize(score, options.batch_size, rng, measured_flats);

    // ε-greedy exploration: the tail of each batch is random instead of
    // model-chosen.
    const auto num_random = static_cast<std::size_t>(
        xgb_options_.epsilon_greedy * static_cast<double>(options.batch_size));
    const auto plan_quota =
        static_cast<std::size_t>(options.batch_size) - num_random;
    if (plan.size() > plan_quota) plan.resize(plan_quota);
    for (std::size_t i = 0; i < num_random; ++i) {
      Config c = space.sample(rng);
      if (!measured_flats.contains(c.flat)) plan.push_back(std::move(c));
    }
    if (plan.empty()) {
      // Model found nothing new (tiny space): fall back to random.
      plan.push_back(space.sample(rng));
    }

    if (!state.measure_all(plan)) break;
    AAL_LOG_DEBUG << name_ << " round " << round << ": best "
                  << state.best_gflops() << " GFLOPS after "
                  << state.history().size() << " configs";
  }

  TuneResult result = state.finish(name_);
  if (xgb_options_.transfer != nullptr) {
    xgb_options_.transfer->absorb(task, measurer.all_results());
  }
  return result;
}

}  // namespace aal
