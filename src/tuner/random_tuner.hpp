// Uniform-random search baseline (AutoTVM's RandomTuner).
#pragma once

#include "tuner/tuner.hpp"

namespace aal {

class RandomTuner final : public Tuner {
 public:
  std::string name() const override { return "random"; }
  TuneResult tune(Measurer& measurer, const TuneOptions& options) override;
};

}  // namespace aal
