// Uniform-random search baseline (AutoTVM's RandomTuner), as an ask/tell
// proposal policy.
#pragma once

#include "tuner/tuner.hpp"

namespace aal {

class RandomTuner final : public Tuner {
 public:
  std::string name() const override { return "random"; }

  void begin(const Measurer& measurer, const TuneOptions& options) override;
  std::vector<Config> propose(std::int64_t k) override;

 private:
  const Measurer* measurer_ = nullptr;
  Rng rng_;
  int batch_size_ = 64;
};

}  // namespace aal
