// CHAMELEON-inspired adaptive-sampling tuner.
//
// The paper's introduction discusses CHAMELEON (Ahn et al., ICLR 2020),
// which improves AutoTVM by (a) adapting the exploration step and (b)
// *adaptive sampling*: instead of measuring every candidate its search
// module proposes, it clusters the proposals and measures one
// representative per cluster, spending the on-chip budget on diverse
// configurations. This tuner reproduces that sampling idea on top of our
// XGB+SA machinery (the RL-learned proposal policy is out of scope — the
// paper itself notes it is "too difficult to implement and train"). As an
// ask/tell policy each propose() performs one adaptive-sampling round:
//   1. fit the cost model, run SA for an over-provisioned candidate pool
//      (oversample_factor x batch);
//   2. k-means the pool in feature space into `batch` clusters;
//   3. return the cluster medoids for measurement.
#pragma once

#include <memory>

#include "ml/sa_optimizer.hpp"
#include "ml/surrogate.hpp"
#include "tuner/tuner.hpp"

namespace aal {

struct ChameleonTunerOptions {
  SaParams sa;
  /// SA pool size as a multiple of the measurement batch.
  int oversample_factor = 4;
};

class ChameleonTuner final : public Tuner {
 public:
  explicit ChameleonTuner(
      std::shared_ptr<const SurrogateFactory> surrogate_factory =
          std::make_shared<GbdtSurrogateFactory>(),
      ChameleonTunerOptions options = {});

  std::string name() const override { return "chameleon"; }

  void begin(const Measurer& measurer, const TuneOptions& options) override;
  std::vector<Config> propose(std::int64_t k) override;

 private:
  std::shared_ptr<const SurrogateFactory> surrogate_factory_;
  ChameleonTunerOptions chameleon_options_;

  const Measurer* measurer_ = nullptr;
  TuneOptions tune_options_;
  Rng rng_;
  std::unique_ptr<SaOptimizer> sa_;
  std::uint64_t round_ = 0;
  bool initialized_ = false;
};

}  // namespace aal
