#include "tuner/grid_tuner.hpp"

#include <algorithm>
#include <numeric>

namespace aal {

TuneResult GridTuner::tune(Measurer& measurer, const TuneOptions& options) {
  TuneLoopState state(measurer, options);
  const ConfigSpace& space = measurer.task().space();
  const std::int64_t size = space.size();

  // Low-discrepancy scan: step by ~golden-ratio * size, made coprime with
  // the space size so every point is eventually visited. A naive stride of
  // size/budget aliases with the mixed-radix knob encoding (the stride can
  // be a multiple of a knob's radix product, freezing that knob — often on
  // an unbuildable choice).
  std::int64_t stride = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(0.6180339887498949 *
                                   static_cast<double>(size)));
  while (std::gcd(stride, size) != 1) ++stride;

  std::int64_t flat = 0;
  for (std::int64_t i = 0; i < size; ++i) {
    if (!state.measure(space.at(flat))) break;
    flat += stride;
    if (flat >= size) flat -= size;
  }
  return state.finish(name());
}

}  // namespace aal
