#include "tuner/grid_tuner.hpp"

#include <algorithm>
#include <numeric>

namespace aal {

void GridTuner::begin(const Measurer& measurer, const TuneOptions& options) {
  Tuner::begin(measurer, options);
  measurer_ = &measurer;
  batch_size_ = options.batch_size;
  const std::int64_t size = measurer.task().space().size();

  // Low-discrepancy scan: step by ~golden-ratio * size, made coprime with
  // the space size so every point is eventually visited. A naive stride of
  // size/budget aliases with the mixed-radix knob encoding (the stride can
  // be a multiple of a knob's radix product, freezing that knob — often on
  // an unbuildable choice).
  stride_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(0.6180339887498949 *
                                   static_cast<double>(size)));
  while (std::gcd(stride_, size) != 1) ++stride_;
  cursor_ = 0;
  visited_ = 0;
}

std::vector<Config> GridTuner::propose(std::int64_t k) {
  const ConfigSpace& space = measurer_->task().space();
  const std::int64_t size = space.size();
  const std::int64_t target =
      std::min<std::int64_t>(k, static_cast<std::int64_t>(batch_size_));
  std::vector<Config> plan;
  while (visited_ < size &&
         static_cast<std::int64_t>(plan.size()) < target) {
    const std::int64_t flat = cursor_;
    cursor_ += stride_;
    if (cursor_ >= size) cursor_ -= size;
    ++visited_;
    if (measurer_->is_cached(flat)) continue;  // resumed/revisited: free
    plan.push_back(space.at(flat));
  }
  obs_.count("grid.proposed", static_cast<std::int64_t>(plan.size()));
  return plan;  // empty once the walk has covered the whole space
}

}  // namespace aal
