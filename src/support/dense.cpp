#include "support/dense.hpp"

#include <algorithm>
#include <cmath>

namespace aal::dense {

namespace {

/// Row-tile edge for the blocked builders: two 48-row tiles of a d<=32
/// feature matrix stay comfortably inside L1 while the inner loops sweep
/// their cross product.
constexpr std::size_t kRowTile = 48;

}  // namespace

Matrix from_rows(const std::vector<std::vector<double>>& rows) {
  Matrix out;
  if (rows.empty()) return out;
  out.rows = rows.size();
  out.cols = rows[0].size();
  out.data.reserve(out.rows * out.cols);
  for (const auto& row : rows) {
    AAL_CHECK(row.size() == out.cols, "dense::from_rows: ragged rows ("
                                          << row.size() << " vs " << out.cols
                                          << ")");
    out.data.insert(out.data.end(), row.begin(), row.end());
  }
  return out;
}

double dot(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

void axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double sq_dist(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void gram_naive(const Matrix& x, std::vector<double>& out) {
  const std::size_t n = x.rows;
  out.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < x.cols; ++c) acc += x.at(i, c) * x.at(j, c);
      out[i * n + j] = acc;
    }
  }
}

void gram(const Matrix& x, std::vector<double>& out) {
  const std::size_t n = x.rows;
  const std::size_t d = x.cols;
  out.resize(n * n);
  // Raw restrict-qualified pointers: the compiler cannot otherwise prove the
  // result stores don't alias the feature loads, and keeps reloading them.
  double* __restrict o = out.data();
  const double* __restrict xd = x.data.data();
  for (std::size_t ib = 0; ib < n; ib += kRowTile) {
    const std::size_t ie = std::min(n, ib + kRowTile);
    for (std::size_t jb = ib; jb < n; jb += kRowTile) {
      const std::size_t je = std::min(n, jb + kRowTile);
      for (std::size_t i = ib; i < ie; ++i) {
        const double* xi = xd + i * d;
        for (std::size_t j = std::max(i, jb); j < je; ++j) {
          // Mirror inside the tile while its lines are cache-hot; a separate
          // mirror pass would re-stream the whole matrix.
          const double v = dot(xi, xd + j * d, d);
          o[i * n + j] = v;
          o[j * n + i] = v;
        }
      }
    }
  }
}

void pairwise_sq_dist_naive(const Matrix& x, std::vector<double>& out) {
  const std::size_t n = x.rows;
  out.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = sq_dist(x.row(i), x.row(j), x.cols);
      out[i * n + j] = d;
      out[j * n + i] = d;
    }
  }
}

void pairwise_sq_dist(const Matrix& x, std::vector<double>& out) {
  const std::size_t n = x.rows;
  const std::size_t d = x.cols;
  out.resize(n * n);
  std::vector<double> norms(n);
  const double* __restrict xd = x.data.data();
  for (std::size_t i = 0; i < n; ++i) norms[i] = dot(xd + i * d, xd + i * d, d);
  double* __restrict o = out.data();
  const double* __restrict nrm = norms.data();
  for (std::size_t ib = 0; ib < n; ib += kRowTile) {
    const std::size_t ie = std::min(n, ib + kRowTile);
    for (std::size_t jb = ib; jb < n; jb += kRowTile) {
      const std::size_t je = std::min(n, jb + kRowTile);
      for (std::size_t i = ib; i < ie; ++i) {
        if (jb <= i) o[i * n + i] = 0.0;  // exact-zero diagonal by fiat
        const double* xi = xd + i * d;
        for (std::size_t j = std::max(i + 1, jb); j < je; ++j) {
          const double sq = nrm[i] + nrm[j] - 2.0 * dot(xi, xd + j * d, d);
          const double clamped = std::max(sq, 0.0);
          o[i * n + j] = clamped;
          o[j * n + i] = clamped;
        }
      }
    }
  }
}

ColumnMoments standardize_columns(Matrix& x, double min_stddev) {
  ColumnMoments moments;
  moments.mean.assign(x.cols, 0.0);
  moments.stddev.assign(x.cols, 0.0);
  if (x.rows == 0 || x.cols == 0) return moments;

  // One Welford pass, row-major so the matrix streams through cache once.
  std::vector<double> m2(x.cols, 0.0);
  for (std::size_t r = 0; r < x.rows; ++r) {
    const double* row = x.row(r);
    const double inv_count = 1.0 / static_cast<double>(r + 1);
    for (std::size_t c = 0; c < x.cols; ++c) {
      const double delta = row[c] - moments.mean[c];
      moments.mean[c] += delta * inv_count;
      m2[c] += delta * (row[c] - moments.mean[c]);
    }
  }
  std::vector<double> scale(x.cols, 0.0);
  for (std::size_t c = 0; c < x.cols; ++c) {
    moments.stddev[c] = std::sqrt(m2[c] / static_cast<double>(x.rows));
    scale[c] = moments.stddev[c] < min_stddev ? 0.0 : 1.0 / moments.stddev[c];
  }
  for (std::size_t r = 0; r < x.rows; ++r) {
    double* row = x.row(r);
    for (std::size_t c = 0; c < x.cols; ++c) {
      row[c] = scale[c] == 0.0 ? 0.0 : (row[c] - moments.mean[c]) * scale[c];
    }
  }
  return moments;
}

void row_sq_norms(const double* k, std::size_t n, double* norm_sq) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = k + i * n;
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += row[j] * row[j];
    norm_sq[i] = acc;
  }
}

void deflate_rank_one(double* k, std::size_t n, const double* col,
                      double denom, double* norm_sq) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ci = col[i] / denom;
    if (ci == 0.0) continue;  // row untouched; its cached norm stays valid
    double* row = k + i * n;
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] -= ci * col[j];
      acc += row[j] * row[j];
    }
    norm_sq[i] = acc;
  }
}

}  // namespace aal::dense
