#include "support/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/common.hpp"

namespace aal {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_double_roundtrip(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value < 0.0 ? "-inf" : "inf";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  std::string out(buf, res.ptr);
  // Keep doubles visually distinct from integers ("1" -> "1.0") so parsers
  // can recover the original value type without a schema.
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::int64_t parse_int64_strict(std::string_view s) {
  std::int64_t value = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), value);
  AAL_CHECK(res.ec == std::errc{} && res.ptr == s.data() + s.size(),
            "not a valid integer: '" << s << "'");
  return value;
}

double parse_double_strict(std::string_view s) {
  // std::from_chars for doubles does not accept "nan"/"inf" uniformly across
  // standard libraries; strtod does, and the end-pointer check restores the
  // whole-string strictness from_chars would give.
  AAL_CHECK(!s.empty() && !std::isspace(static_cast<unsigned char>(s.front())),
            "not a valid double: '" << s << "'");
  const std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  // ERANGE on a finite result is subnormal underflow (e.g. "5e-324"), which
  // strtod still parses exactly; only overflow to +/-HUGE_VAL is an error.
  const bool overflow = errno == ERANGE && std::isinf(value);
  AAL_CHECK(end == buf.c_str() + buf.size() && end != buf.c_str() && !overflow,
            "not a valid double: '" << s << "'");
  return value;
}

bool parse_bool01_strict(std::string_view s) {
  AAL_CHECK(s == "0" || s == "1", "not a valid 0/1 boolean: '" << s << "'");
  return s == "1";
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string format_count(std::int64_t n) {
  const char* suffix = "";
  double v = static_cast<double>(n);
  if (n >= 1'000'000'000) {
    v /= 1e9;
    suffix = "B";
  } else if (n >= 1'000'000) {
    v /= 1e6;
    suffix = "M";
  } else if (n >= 1'000) {
    v /= 1e3;
    suffix = "K";
  } else {
    return std::to_string(n);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
  return buf;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::to_string() const {
  // Compute column widths over header and all rows.
  std::vector<std::size_t> widths;
  auto fit = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  fit(header_);
  for (const auto& row : rows_) {
    if (!row.separator) fit(row.cells);
  }

  std::ostringstream os;
  auto emit_rule = [&os, &widths]() {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  emit_rule();
  if (!header_.empty()) {
    emit_row(header_);
    emit_rule();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      emit_rule();
    } else {
      emit_row(row.cells);
    }
  }
  emit_rule();
  return os.str();
}

}  // namespace aal
