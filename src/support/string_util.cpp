#include "support/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace aal {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string format_count(std::int64_t n) {
  const char* suffix = "";
  double v = static_cast<double>(n);
  if (n >= 1'000'000'000) {
    v /= 1e9;
    suffix = "B";
  } else if (n >= 1'000'000) {
    v /= 1e6;
    suffix = "M";
  } else if (n >= 1'000) {
    v /= 1e3;
    suffix = "K";
  } else {
    return std::to_string(n);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
  return buf;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::to_string() const {
  // Compute column widths over header and all rows.
  std::vector<std::size_t> widths;
  auto fit = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  fit(header_);
  for (const auto& row : rows_) {
    if (!row.separator) fit(row.cells);
  }

  std::ostringstream os;
  auto emit_rule = [&os, &widths]() {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  emit_rule();
  if (!header_.empty()) {
    emit_row(header_);
    emit_rule();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      emit_rule();
    } else {
      emit_row(row.cells);
    }
  }
  emit_rule();
  return os.str();
}

}  // namespace aal
