// Fixed-size worker pool with a parallel_for helper.
//
// The batch-TED initialization and the batched measurement path are
// embarrassingly parallel; a simple queue-based pool is sufficient and avoids
// a dependency on TBB/OpenMP. Work items must not throw across the pool
// boundary: exceptions are captured and rethrown from wait points.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aal {

class ThreadPool {
 public:
  /// Creates `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Number of tasks currently waiting in the queue (diagnostic; the value
  /// is stale the moment it is read).
  std::size_t queue_depth() const;

  /// Largest queue depth observed since construction; feeds the
  /// `pool.queue_high_water` gauge of the observability layer.
  std::size_t queue_high_water() const;

  /// Enqueues a task; the returned future rethrows any exception.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
      high_water_ = std::max(high_water_, queue_.size());
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// Work is chunked to amortize queueing overhead. The first captured
  /// exception (if any) is rethrown in the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool for components that don't own one.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::size_t high_water_ = 0;
};

}  // namespace aal
