// Small descriptive-statistics helpers used by the measurement layer, the
// experiment harnesses and the tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace aal {

/// Streaming mean/variance accumulator (Welford's algorithm). Numerically
/// stable for the long (600-run) latency series the experiments produce.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (the paper reports variance over the 600 runs).
  double variance() const {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Unbiased sample variance.
  double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (Chan et al. parallel variant).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a span; 0 for empty input.
double mean(std::span<const double> xs);

/// Population variance of a span; 0 for fewer than one element.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Median (average of the two middle elements for even sizes). Copies.
double median(std::vector<double> xs);

/// Linear-interpolation percentile, p in [0, 100]. Copies.
double percentile(std::vector<double> xs, double p);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double pearson(std::span<const double> a, std::span<const double> b);

/// Spearman rank correlation; 0 if degenerate. Ties share averaged ranks.
double spearman(std::span<const double> a, std::span<const double> b);

/// Coefficient of determination of predictions vs. targets.
double r_squared(std::span<const double> pred, std::span<const double> truth);

/// Root-mean-square error.
double rmse(std::span<const double> pred, std::span<const double> truth);

/// Ranks with ties averaged, 1-based (helper exposed for tests).
std::vector<double> average_ranks(std::span<const double> xs);

/// Two-sided percentile-bootstrap confidence interval for the mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Resamples `xs` `resamples` times (with replacement) and returns the
/// [alpha/2, 1-alpha/2] percentile interval of the resampled means.
/// Deterministic given `seed`. Used by the experiment harnesses to decide
/// whether a tuner difference is real at the configured trial count.
ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs,
                                     double alpha = 0.05,
                                     int resamples = 2000,
                                     std::uint64_t seed = 1);

}  // namespace aal
