#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace aal {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::queue_high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = size();
  if (n == 1 || workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace aal
