#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/common.hpp"
#include "support/rng.hpp"

namespace aal {

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 1) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_value(std::span<const double> xs) {
  AAL_CHECK(!xs.empty(), "min_value of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  AAL_CHECK(!xs.empty(), "max_value of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::vector<double> xs) {
  AAL_CHECK(!xs.empty(), "median of empty vector");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> xs, double p) {
  AAL_CHECK(!xs.empty(), "percentile of empty vector");
  AAL_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]: " << p);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  AAL_CHECK(a.size() == b.size(), "pearson: size mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Tie block [i, j]: every member gets the average 1-based rank.
    const double avg = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  AAL_CHECK(a.size() == b.size(), "spearman: size mismatch");
  if (a.size() < 2) return 0.0;
  const auto ra = average_ranks(a);
  const auto rb = average_ranks(b);
  return pearson(ra, rb);
}

double r_squared(std::span<const double> pred, std::span<const double> truth) {
  AAL_CHECK(pred.size() == truth.size(), "r_squared: size mismatch");
  if (truth.empty()) return 0.0;
  const double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double rmse(std::span<const double> pred, std::span<const double> truth) {
  AAL_CHECK(pred.size() == truth.size(), "rmse: size mismatch");
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += (pred[i] - truth[i]) * (pred[i] - truth[i]);
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs,
                                     double alpha, int resamples,
                                     std::uint64_t seed) {
  AAL_CHECK(!xs.empty(), "bootstrap_mean_ci on empty data");
  AAL_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  AAL_CHECK(resamples >= 10, "need at least 10 resamples");

  ConfidenceInterval ci;
  ci.mean = mean(xs);
  if (xs.size() == 1) {
    ci.lo = ci.hi = xs[0];
    return ci;
  }

  Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      acc += xs[rng.next_index(xs.size())];
    }
    means.push_back(acc / static_cast<double>(xs.size()));
  }
  ci.lo = percentile(means, 100.0 * alpha / 2.0);
  ci.hi = percentile(std::move(means), 100.0 * (1.0 - alpha / 2.0));
  return ci;
}

}  // namespace aal
