#include "support/rng.hpp"

#include <unordered_set>

namespace aal {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  AAL_CHECK(k <= n, "cannot sample " << k << " distinct items from " << n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;

  // When k is a sizeable fraction of n, a partial Fisher–Yates over an
  // explicit index pool is cheapest. Otherwise rejection sampling with a
  // hash set avoids materializing n indices.
  if (k * 4 >= n) {
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + next_index(n - i);
      std::swap(pool[i], pool[j]);
      out.push_back(pool[i]);
    }
  } else {
    std::unordered_set<std::size_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      const std::size_t idx = next_index(n);
      if (seen.insert(idx).second) out.push_back(idx);
    }
  }
  return out;
}

std::vector<std::size_t> Rng::sample_with_replacement(std::size_t n,
                                                      std::size_t k) {
  AAL_CHECK(n > 0, "cannot resample from an empty set");
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(next_index(n));
  return out;
}

}  // namespace aal
