// Integer math helpers shared by the schedule-space generator and the
// hardware model: divisor enumeration, multi-way factorization counting,
// ceil-div / round-up, and power-of-two utilities.
#pragma once

#include <cstdint>
#include <vector>

namespace aal {

/// All positive divisors of n, ascending. n must be >= 1.
std::vector<std::int64_t> divisors(std::int64_t n);

/// Number of ordered k-tuples (f1,...,fk) with product n (all fi >= 1).
/// This is the size of a k-way tile-split knob over an axis of length n.
std::int64_t count_ordered_factorizations(std::int64_t n, int k);

/// All ordered k-way factorizations of n. Each entry has exactly k factors
/// whose product is n. Order of tuples is deterministic (lexicographic in
/// the divisor chain). Intended for knob materialization; the caller is
/// responsible for keeping n and k small enough that the result fits in
/// memory (the schedule generator always does).
std::vector<std::vector<std::int64_t>> ordered_factorizations(std::int64_t n,
                                                              int k);

/// ceil(a / b) for positive b.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Smallest multiple of b that is >= a (b > 0).
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

/// True iff n is a power of two (n >= 1).
constexpr bool is_power_of_two(std::int64_t n) {
  return n > 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n >= 1).
std::int64_t next_power_of_two(std::int64_t n);

/// Clamps x into [lo, hi].
template <typename T>
constexpr T clamp(T x, T lo, T hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace aal
