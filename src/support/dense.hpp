// Shared dense-kernel layer.
//
// The tuner's CPU time concentrates in a handful of dense linear-algebra
// shapes: the pairwise-distance/Gram matrices behind TED and BTED
// (Algorithms 1-2), the per-resample surrogate fits of BS/BAO (Algorithms
// 3-4), and the k-means / MLP inner loops of the auxiliary models. Those
// hot loops share this layer instead of each carrying its own scalar
// triple-loop: a flat row-major matrix, cache-blocked Gram / pairwise
// squared-distance builders, unrolled dot/axpy, a one-pass Welford column
// standardizer, and the rank-one-deflation step of TED.
//
// Every blocked kernel has a `*_naive` reference twin used by the unit
// tests (agreement within 1e-12) and by `bench/micro_kernels` as the
// baseline side of the BENCH_kernels.json speedup tables. See docs/PERF.md
// for the measured numbers and the benchmark methodology.
#pragma once

#include <cstddef>
#include <vector>

#include "support/common.hpp"

namespace aal::dense {

/// Minimal owning row-major matrix. No arithmetic of its own — it exists so
/// the kernels below (and their callers) agree on one contiguous layout
/// instead of vector<vector<double>>'s pointer-chased rows.
struct Matrix {
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows(rows), cols(cols), data(rows * cols, 0.0) {}

  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;

  double* row(std::size_t i) { return data.data() + i * cols; }
  const double* row(std::size_t i) const { return data.data() + i * cols; }
  double& at(std::size_t i, std::size_t j) { return data[i * cols + j]; }
  double at(std::size_t i, std::size_t j) const { return data[i * cols + j]; }
  bool empty() const { return rows == 0; }
};

/// Copies a vector-of-rows into a Matrix; throws InvalidArgument on ragged
/// input. Zero rows give an empty matrix.
Matrix from_rows(const std::vector<std::vector<double>>& rows);

/// Dot product with four independent accumulators (so the compiler can keep
/// four vector lanes busy without reassociating a single serial sum). The
/// summation order differs from a naive left-to-right loop; callers that
/// need bit-stable streaming sums (k-means) use sq_dist/axpy instead.
double dot(const double* a, const double* b, std::size_t n);

/// y += alpha * x, sequential order (bitwise equal to the scalar loop).
void axpy(double alpha, const double* x, double* y, std::size_t n);

/// Squared Euclidean distance, accumulated in index order — bitwise equal
/// to the classic scalar loop, so existing consumers (k-means) keep their
/// exact numerical behavior.
double sq_dist(const double* a, const double* b, std::size_t n);

/// Gram matrix out[i*n+j] = <x_i, x_j> for the n x d row-major `x`.
/// Cache-blocked over row tiles; only the upper triangle is computed and
/// mirrored. `out` is resized to n*n.
void gram(const Matrix& x, std::vector<double>& out);

/// Reference scalar Gram build (test oracle / bench baseline).
void gram_naive(const Matrix& x, std::vector<double>& out);

/// Pairwise squared Euclidean distances via the Gram identity
/// ||xi-xj||^2 = ||xi||^2 + ||xj||^2 - 2<xi,xj>, blocked like gram() and
/// clamped at zero (the identity can go ~1 ulp negative for near-duplicate
/// rows). Symmetric with a zero diagonal; `out` is resized to n*n.
void pairwise_sq_dist(const Matrix& x, std::vector<double>& out);

/// Reference scalar pairwise build: per-pair (a[c]-b[c])^2 accumulation.
void pairwise_sq_dist_naive(const Matrix& x, std::vector<double>& out);

struct ColumnMoments {
  std::vector<double> mean;
  std::vector<double> stddev;  // population, before the min_stddev floor
};

/// Z-scores the columns of `x` in place using a single Welford pass over
/// the rows (one streaming mean/M2 accumulator per column, row-major
/// traversal), replacing the old two-full-passes-per-column recomputation.
/// Columns whose standard deviation falls below `min_stddev` are constant
/// for all practical purposes and are zeroed. Returns the column moments.
ColumnMoments standardize_columns(Matrix& x, double min_stddev = 1e-12);

/// Sum of squares of each row of the n x n row-major `k` into norm_sq
/// (index-order accumulation).
void row_sq_norms(const double* k, std::size_t n, double* norm_sq);

/// TED's rank-one deflation, K <- K - col*col^T / denom, fused with the
/// row-norm refresh the selection loop needs next: norm_sq[i] is updated to
/// ||K'_i||^2 in the same pass (index-order accumulation, bitwise equal to
/// recomputing the norms afterwards). Rows with col[i] == 0 are untouched.
/// `col` must not alias rows of k being written (callers copy it first).
void deflate_rank_one(double* k, std::size_t n, const double* col,
                      double denom, double* norm_sq);

}  // namespace aal::dense
