// String formatting helpers for log lines, experiment reports and record
// serialization.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aal {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Fixed-precision double formatting ("%.4f" style) without locale issues.
std::string format_double(double value, int precision = 4);

/// Shortest decimal form that parses back to the exact same double (via
/// std::to_chars). Non-finite values render as "nan", "inf" and "-inf";
/// integral values keep a ".0" suffix so readers can tell doubles from
/// integers. Used by the trace/metrics JSON serializers, whose byte-exact
/// reproducibility golden tests rely on.
std::string format_double_roundtrip(double value);

/// Escapes a string for use inside a JSON string literal (the surrounding
/// quotes are not added): backslash, double quote and control characters.
std::string json_escape(std::string_view s);

/// Strict whole-string integer parse; throws InvalidArgument on empty input,
/// trailing characters or overflow (std::stoll silently accepts "12abc").
std::int64_t parse_int64_strict(std::string_view s);

/// Strict whole-string double parse; accepts "nan"/"inf"/"-inf". Throws
/// InvalidArgument on empty input or trailing characters.
double parse_double_strict(std::string_view s);

/// Strict "0"/"1" boolean field parse; throws InvalidArgument otherwise.
bool parse_bool01_strict(std::string_view s);

/// Formats a fraction as a signed percentage string, e.g. -0.1384 -> "-13.84%".
std::string format_percent(double fraction, int precision = 2);

/// Human-readable large count, e.g. 209715200 -> "209.7M".
std::string format_count(std::int64_t n);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Simple fixed-width text-table builder used by the bench harnesses to
/// print paper-style tables.
class TextTable {
 public:
  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);
  void add_separator();
  /// Renders with column widths fitted to content.
  std::string to_string() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace aal
