#include "support/math_util.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace aal {

std::vector<std::int64_t> divisors(std::int64_t n) {
  AAL_CHECK(n >= 1, "divisors requires n >= 1, got " << n);
  std::vector<std::int64_t> small, large;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      small.push_back(d);
      if (d != n / d) large.push_back(n / d);
    }
  }
  small.insert(small.end(), large.rbegin(), large.rend());
  return small;
}

namespace {

void factorize_rec(std::int64_t n, int k,
                   std::vector<std::int64_t>& current,
                   std::vector<std::vector<std::int64_t>>& out) {
  if (k == 1) {
    current.push_back(n);
    out.push_back(current);
    current.pop_back();
    return;
  }
  for (std::int64_t d : divisors(n)) {
    current.push_back(d);
    factorize_rec(n / d, k - 1, current, out);
    current.pop_back();
  }
}

std::int64_t count_rec(std::int64_t n, int k) {
  if (k == 1) return 1;
  std::int64_t total = 0;
  for (std::int64_t d : divisors(n)) total += count_rec(n / d, k - 1);
  return total;
}

}  // namespace

std::int64_t count_ordered_factorizations(std::int64_t n, int k) {
  AAL_CHECK(n >= 1, "n must be >= 1");
  AAL_CHECK(k >= 1, "k must be >= 1");
  return count_rec(n, k);
}

std::vector<std::vector<std::int64_t>> ordered_factorizations(std::int64_t n,
                                                              int k) {
  AAL_CHECK(n >= 1, "n must be >= 1");
  AAL_CHECK(k >= 1, "k must be >= 1");
  std::vector<std::vector<std::int64_t>> out;
  std::vector<std::int64_t> current;
  current.reserve(static_cast<std::size_t>(k));
  factorize_rec(n, k, current, out);
  return out;
}

std::int64_t next_power_of_two(std::int64_t n) {
  AAL_CHECK(n >= 1, "next_power_of_two requires n >= 1");
  std::int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace aal
