// Minimal command-line flag parser for the CLI tool and the experiment
// harnesses. Supports `--key value`, `--key=value`, boolean switches and
// positional arguments, with generated usage text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace aal {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Registers flags. `fallback` doubles as documentation of the default.
  void add_flag(const std::string& name, const std::string& help,
                std::string fallback);
  void add_int_flag(const std::string& name, const std::string& help,
                    std::int64_t fallback);
  void add_switch(const std::string& name, const std::string& help);
  /// Declares a named positional argument (consumed in declaration order).
  void add_positional(const std::string& name, const std::string& help,
                      bool required = true);

  /// Parses argv (excluding argv[0]); throws InvalidArgument on unknown
  /// flags, missing values or missing required positionals. `--help`
  /// short-circuits: help_requested() becomes true and parsing stops.
  void parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_switch(const std::string& name) const;
  std::optional<std::string> get_positional(const std::string& name) const;

  /// Generated usage text.
  std::string usage(const std::string& program_name) const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string value;
    bool is_switch = false;
    bool is_int = false;
    bool set = false;
  };
  struct Positional {
    std::string name;
    std::string help;
    bool required = true;
    std::optional<std::string> value;
  };

  Flag* find(const std::string& name);
  const Flag* find(const std::string& name) const;

  std::string description_;
  std::vector<Flag> flags_;
  std::vector<Positional> positionals_;
  bool help_requested_ = false;
};

}  // namespace aal
