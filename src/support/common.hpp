// Common error-handling and assertion utilities used across aaltune.
//
// The library uses exceptions (aal::Error) for recoverable API misuse and
// AAL_CHECK for precondition validation. Internal invariants that indicate a
// bug in the library itself use AAL_ASSERT, which is compiled in all build
// types: the tuning workloads are cheap relative to surrogate training, so
// keeping the checks in Release costs nothing measurable.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace aal {

/// Base exception type for all aaltune errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {

/// Accumulates a message via operator<< and throws E on destruction-free
/// finalization. Used by the AAL_CHECK / AAL_ASSERT macros.
template <typename E>
[[noreturn]] inline void throw_with_message(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: (" << expr << ')';
  if (!msg.empty()) os << " — " << msg;
  throw E(os.str());
}

}  // namespace detail

}  // namespace aal

/// Validates a documented precondition; throws aal::InvalidArgument.
#define AAL_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::aal::detail::throw_with_message<::aal::InvalidArgument>(          \
          #cond, __FILE__, __LINE__, (std::ostringstream{} << msg).str());\
    }                                                                     \
  } while (false)

/// Validates an internal invariant; throws aal::InternalError.
#define AAL_ASSERT(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::aal::detail::throw_with_message<::aal::InternalError>(            \
          #cond, __FILE__, __LINE__, (std::ostringstream{} << msg).str());\
    }                                                                     \
  } while (false)
