// Minimal leveled logger.
//
// The tuning loops emit progress at Info level; the experiment harnesses can
// raise the threshold to Warn to keep benchmark output clean. A global
// threshold plus stderr sink is all the project needs — pulling in a logging
// framework would be heavier than the rest of the support layer combined.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace aal {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the current global threshold (default Info).
LogLevel log_threshold();

/// Sets the global threshold. Thread-safe.
void set_log_threshold(LogLevel level);

/// RAII guard that restores the previous threshold on scope exit; used by
/// tests and benches to silence the library locally.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level);
  ~ScopedLogLevel();
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

namespace detail {

/// Builds one log line and writes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace aal

#define AAL_LOG(level)                                               \
  if (static_cast<int>(::aal::LogLevel::level) <                     \
      static_cast<int>(::aal::log_threshold())) {                    \
  } else                                                             \
    ::aal::detail::LogMessage(::aal::LogLevel::level, __FILE__, __LINE__)

#define AAL_LOG_DEBUG AAL_LOG(kDebug)
#define AAL_LOG_INFO AAL_LOG(kInfo)
#define AAL_LOG_WARN AAL_LOG(kWarn)
#define AAL_LOG_ERROR AAL_LOG(kError)
