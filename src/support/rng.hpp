// Deterministic pseudo-random number generation.
//
// All stochastic components of aaltune (samplers, the hardware noise model,
// simulated annealing, bootstrap resampling) draw from aal::Rng so that a
// single 64-bit seed reproduces an entire experiment. The generator is
// xoshiro256++ (Blackman & Vigna), which is fast, has a 256-bit state and
// passes BigCrush; std::mt19937_64 would also work but is slower and its
// seeding from a single word is notoriously weak.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "support/common.hpp"

namespace aal {

/// splitmix64 finalizer: bijectively scrambles a 64-bit word. Used both to
/// seed xoshiro streams and to derive *counter-based* per-call seeds (e.g.
/// hash of (device seed, config flat, repeat)) so that stochastic draws can
/// be made independent of evaluation order.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// xoshiro256++ generator satisfying std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via splitmix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64: recommended seeding procedure for the xoshiro family.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& w : state_) w = next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t next_index(std::uint64_t n) {
    AAL_CHECK(n > 0, "next_index requires n > 0");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    AAL_CHECK(lo <= hi, "next_int requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_index(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Marsaglia polar method (no caching to keep the
  /// stream position deterministic and easy to reason about).
  double next_gaussian() {
    for (;;) {
      const double u = next_double(-1.0, 1.0);
      const double v = next_double(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  /// Gaussian with the given mean and standard deviation.
  double next_gaussian(double mean, double stddev) {
    return mean + stddev * next_gaussian();
  }

  /// true with probability p.
  bool next_bernoulli(double p) { return next_double() < p; }

  /// Samples k distinct indices from [0, n) without replacement
  /// (Fisher–Yates over a candidate pool when k is a large fraction of n,
  /// rejection sampling otherwise). Result order is random.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Samples k indices from [0, n) *with* replacement (bootstrap resample).
  std::vector<std::size_t> sample_with_replacement(std::size_t n,
                                                   std::size_t k);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[next_index(i)]);
    }
  }

  /// Derives an independent child generator; used to give each parallel
  /// worker its own stream.
  Rng split() { return Rng((*this)() ^ 0xA3EC647659359ACDULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace aal
