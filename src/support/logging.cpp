#include "support/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace aal {

namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

ScopedLogLevel::ScopedLogLevel(LogLevel level) : previous_(log_threshold()) {
  set_log_threshold(level);
}

ScopedLogLevel::~ScopedLogLevel() { set_log_threshold(previous_); }

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories: the repo-relative basename is enough to locate a line.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << '[' << level_name(level) << "] " << base << ':' << line << ": ";
}

LogMessage::~LogMessage() {
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace aal
