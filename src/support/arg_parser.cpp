#include "support/arg_parser.hpp"

#include <sstream>

#include "support/common.hpp"
#include "support/string_util.hpp"

namespace aal {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         std::string fallback) {
  AAL_CHECK(find(name) == nullptr, "duplicate flag --" << name);
  flags_.push_back(Flag{name, help, std::move(fallback), false, false, false});
}

void ArgParser::add_int_flag(const std::string& name, const std::string& help,
                             std::int64_t fallback) {
  AAL_CHECK(find(name) == nullptr, "duplicate flag --" << name);
  flags_.push_back(
      Flag{name, help, std::to_string(fallback), false, true, false});
}

void ArgParser::add_switch(const std::string& name, const std::string& help) {
  AAL_CHECK(find(name) == nullptr, "duplicate flag --" << name);
  flags_.push_back(Flag{name, help, "0", true, false, false});
}

void ArgParser::add_positional(const std::string& name,
                               const std::string& help, bool required) {
  positionals_.push_back(Positional{name, help, required, std::nullopt});
}

ArgParser::Flag* ArgParser::find(const std::string& name) {
  for (Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const ArgParser::Flag* ArgParser::find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

void ArgParser::parse(int argc, const char* const* argv) {
  std::size_t next_positional = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return;
    }
    if (starts_with(arg, "--")) {
      std::string name = arg.substr(2);
      std::optional<std::string> inline_value;
      const std::size_t eq = name.find('=');
      if (eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name.erase(eq);
      }
      Flag* flag = find(name);
      AAL_CHECK(flag != nullptr, "unknown flag --" << name);
      if (flag->is_switch) {
        AAL_CHECK(!inline_value.has_value(),
                  "switch --" << name << " takes no value");
        flag->value = "1";
      } else if (inline_value) {
        flag->value = *inline_value;
      } else {
        AAL_CHECK(i + 1 < argc, "flag --" << name << " expects a value");
        flag->value = argv[++i];
      }
      if (flag->is_int) {
        // Validate eagerly so errors point at the offending flag.
        try {
          (void)std::stoll(flag->value);
        } catch (const std::exception&) {
          throw InvalidArgument("flag --" + name + " expects an integer, got '" +
                                flag->value + "'");
        }
      }
      flag->set = true;
    } else {
      AAL_CHECK(next_positional < positionals_.size(),
                "unexpected positional argument '" << arg << "'");
      positionals_[next_positional++].value = arg;
    }
  }
  for (const Positional& p : positionals_) {
    AAL_CHECK(!p.required || p.value.has_value(),
              "missing required argument <" << p.name << ">");
  }
}

std::string ArgParser::get(const std::string& name) const {
  const Flag* flag = find(name);
  AAL_CHECK(flag != nullptr, "unknown flag --" << name);
  return flag->value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const Flag* flag = find(name);
  AAL_CHECK(flag != nullptr && flag->is_int, "unknown int flag --" << name);
  return std::stoll(flag->value);
}

bool ArgParser::get_switch(const std::string& name) const {
  const Flag* flag = find(name);
  AAL_CHECK(flag != nullptr && flag->is_switch,
            "unknown switch --" << name);
  return flag->value == "1";
}

std::optional<std::string> ArgParser::get_positional(
    const std::string& name) const {
  for (const Positional& p : positionals_) {
    if (p.name == name) return p.value;
  }
  throw InvalidArgument("unknown positional <" + name + ">");
}

std::string ArgParser::usage(const std::string& program_name) const {
  std::ostringstream os;
  os << description_ << "\n\nusage: " << program_name;
  for (const Positional& p : positionals_) {
    os << (p.required ? " <" : " [") << p.name << (p.required ? ">" : "]");
  }
  os << " [flags]\n";
  if (!positionals_.empty()) {
    os << "\narguments:\n";
    for (const Positional& p : positionals_) {
      os << "  " << p.name << "  " << p.help << '\n';
    }
  }
  if (!flags_.empty()) {
    os << "\nflags:\n";
    for (const Flag& f : flags_) {
      os << "  --" << f.name;
      if (!f.is_switch) os << " <value>";
      os << "  " << f.help;
      if (!f.is_switch) os << " (default: " << f.value << ')';
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace aal
