// RecordStore: the persistent, sharded record substrate shared across runs.
//
// A RecordDatabase (measure/record.hpp) is a per-run artifact: one log file
// written by one tuning session. The RecordStore is the durable counterpart
// — a directory of append-only shard files that many runs (and many lanes of
// one run) read and extend, so a fleet tuning the same conv/dense shapes
// over and over pays for each measurement once. tune_model consults the
// store before measuring (store hits are free, like memo-cache hits), and
// flushes this session's fresh records back on completion.
//
// Layout (inside the store directory):
//   store.meta      "aaltune-store v1" + the shard count (fixed at creation)
//   shard-NNN.log   append-only record lines (measure/record.hpp format,
//                   tab-separated, escaped error column)
//   best.tsv        best-per-workload summary, rewritten by compact()
//
// A record lands in shard fnv1a(task_key) % num_shards, so all records of
// one workload key share a shard and cross-key traffic spreads out.
//
// Durability and crash safety: append() only buffers; flush() writes each
// shard's pending lines as one contiguous chunk ending in '\n'. A crash mid
// flush can therefore leave at most one partial line, and only at the very
// end of a shard file. load tolerates exactly that — an unterminated,
// unparseable final line is dropped (with a warning) — while a malformed
// line anywhere else, or a terminated-but-corrupt final line, throws
// InvalidArgument naming the file and line number: that is corruption, not
// an interrupted append, and silently skipping it would hide real damage.
//
// Concurrency: one RecordStore handle is thread-safe — the in-memory index
// and the append buffers live behind one mutex, so ModelTuneOptions::jobs
// lanes may query and append concurrently. Multiple *processes* opening the
// same directory are not coordinated (last flush wins per shard tail).
//
// Determinism: task_keys() iterates the index in sorted key order, and
// records_for() preserves per-key append order, so everything a tuning run
// reads from a fixed store snapshot is schedule-independent. tune_model
// appends in model order after its lanes join, so the files a run writes
// are byte-identical at any --jobs value.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "measure/record.hpp"

namespace aal {

struct RecordStoreOptions {
  /// Shard-file count, fixed when the directory is created (subsequent
  /// opens read it from store.meta and ignore this field).
  int num_shards = 16;

  /// Read-only handle: append() and flush() throw, the directory is never
  /// written. The CLI's --store-readonly maps here; it is what lets several
  /// warm runs share one snapshot and still produce identical traces.
  bool read_only = false;
};

class RecordStore {
 public:
  /// Opens (or, unless read_only, creates) the store at `dir` and loads
  /// every shard into the in-memory index. Throws InvalidArgument on an
  /// unreadable directory, a meta mismatch, or mid-file corruption.
  explicit RecordStore(std::string dir, RecordStoreOptions options = {});

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  const std::string& dir() const { return dir_; }
  bool read_only() const { return options_.read_only; }
  int num_shards() const { return options_.num_shards; }

  /// Total records in the index (loaded + appended, flushed or not).
  std::size_t size() const;

  /// Records dropped at load time as an interrupted final append.
  std::size_t truncated_tails() const;

  /// Workload keys present, in sorted order (deterministic iteration).
  std::vector<std::string> task_keys() const;

  /// All records for one workload key, in append order (empty if none).
  std::vector<TuningRecord> records_for(const std::string& task_key) const;

  /// Best successful record for a workload key, if any.
  std::optional<TuningRecord> best_for(const std::string& task_key) const;

  /// Buffers records for the next flush() and indexes them immediately
  /// (readers on other threads see them at once). Throws on a read-only
  /// store or a record without a task key.
  void append(const TuningRecord& record);
  void append(const std::vector<TuningRecord>& records);

  /// Number of appended records not yet flushed to disk.
  std::size_t pending() const;

  /// Writes every shard's pending lines (one contiguous '\n'-terminated
  /// chunk per shard) and syncs the streams. No-op when nothing is pending.
  void flush();

  /// Compacts the store in place: per workload key, deduplicates by config
  /// (the most recent record for a flat index wins), keeps the `top_k`
  /// best successful records plus every distinct failure (failures are what
  /// stop a warm run from re-measuring known-bad configs), rewrites each
  /// shard atomically (tmp + rename) and regenerates best.tsv. Requires all
  /// appends flushed. Returns the number of records dropped.
  std::size_t compact(int top_k = 8);

  /// Shard index a workload key routes to: fnv1a(task_key) % num_shards.
  static std::size_t shard_of(const std::string& task_key,
                              std::size_t num_shards);

 private:
  std::string shard_path(std::size_t shard) const;
  std::string meta_path() const;
  std::string best_path() const;
  void load_locked();
  void write_best_locked() const;

  std::string dir_;
  RecordStoreOptions options_;
  mutable std::mutex mutex_;
  /// std::map: sorted keys make every iteration order deterministic.
  std::map<std::string, std::vector<TuningRecord>> by_task_;
  std::vector<std::vector<std::string>> pending_lines_;  // per shard
  std::size_t total_ = 0;
  std::size_t pending_ = 0;
  std::size_t truncated_tails_ = 0;
};

}  // namespace aal
