#include "store/record_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/common.hpp"
#include "support/logging.hpp"
#include "support/string_util.hpp"

namespace aal {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMetaMagic = "aaltune-store v1";

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string shard_name(std::size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%03zu.log", shard);
  return buf;
}

}  // namespace

std::size_t RecordStore::shard_of(const std::string& task_key,
                                  std::size_t num_shards) {
  AAL_CHECK(num_shards > 0, "num_shards must be > 0");
  return static_cast<std::size_t>(fnv1a(task_key) % num_shards);
}

RecordStore::RecordStore(std::string dir, RecordStoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  AAL_CHECK(!dir_.empty(), "record store directory must not be empty");
  AAL_CHECK(options_.num_shards >= 1 && options_.num_shards <= 4096,
            "num_shards must be in [1, 4096], got " << options_.num_shards);

  std::lock_guard<std::mutex> lock(mutex_);
  const fs::path meta = meta_path();
  if (fs::exists(meta)) {
    std::ifstream is(meta);
    AAL_CHECK(is.good(), "cannot read store meta: " << meta.string());
    std::string magic;
    std::getline(is, magic);
    AAL_CHECK(trim(magic) == kMetaMagic,
              "not an aaltune record store (bad magic in "
                  << meta.string() << "): " << magic);
    std::string shards_line;
    std::getline(is, shards_line);
    const auto fields = split(trim(shards_line), ' ');
    AAL_CHECK(fields.size() == 2 && fields[0] == "shards",
              "malformed store meta line in " << meta.string() << ": "
                                              << shards_line);
    options_.num_shards = static_cast<int>(parse_int64_strict(fields[1]));
    AAL_CHECK(options_.num_shards >= 1,
              "store meta declares " << options_.num_shards << " shards");
  } else {
    AAL_CHECK(!options_.read_only,
              "read-only open of a store that does not exist: " << dir_);
    std::error_code ec;
    fs::create_directories(dir_, ec);
    AAL_CHECK(!ec, "cannot create store directory " << dir_ << ": "
                                                    << ec.message());
    std::ofstream os(meta);
    AAL_CHECK(os.good(), "cannot write store meta: " << meta.string());
    os << kMetaMagic << '\n' << "shards " << options_.num_shards << '\n';
    os.flush();
    AAL_CHECK(os.good(), "failed writing store meta: " << meta.string());
  }
  pending_lines_.resize(static_cast<std::size_t>(options_.num_shards));
  load_locked();
}

std::string RecordStore::shard_path(std::size_t shard) const {
  return (fs::path(dir_) / shard_name(shard)).string();
}

std::string RecordStore::meta_path() const {
  return (fs::path(dir_) / "store.meta").string();
}

std::string RecordStore::best_path() const {
  return (fs::path(dir_) / "best.tsv").string();
}

void RecordStore::load_locked() {
  by_task_.clear();
  total_ = 0;
  truncated_tails_ = 0;
  for (std::size_t shard = 0;
       shard < static_cast<std::size_t>(options_.num_shards); ++shard) {
    const std::string path = shard_path(shard);
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) continue;  // shard never written
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string content = buffer.str();

    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos < content.size()) {
      const std::size_t nl = content.find('\n', pos);
      const bool terminated = nl != std::string::npos;
      const std::string line =
          content.substr(pos, terminated ? nl - pos : std::string::npos);
      pos = terminated ? nl + 1 : content.size();
      ++line_no;
      if (trim(line).empty()) continue;
      TuningRecord record;
      try {
        record = TuningRecord::from_line(line);
      } catch (const Error& e) {
        if (!terminated) {
          // Unterminated, unparseable final line: the signature of a flush
          // interrupted mid-write. Drop it — the record was never durable.
          ++truncated_tails_;
          AAL_LOG_WARN << "record store: dropping truncated tail of " << path
                       << " (line " << line_no << ")";
          break;
        }
        // Anywhere else this is corruption, not an interrupted append.
        throw InvalidArgument(path + " line " + std::to_string(line_no) +
                              ": " + e.what());
      }
      AAL_CHECK(shard_of(record.task_key,
                         static_cast<std::size_t>(options_.num_shards)) ==
                    shard,
                path << " line " << line_no << ": record for task '"
                     << record.task_key << "' is in the wrong shard");
      by_task_[record.task_key].push_back(std::move(record));
      ++total_;
    }
  }
}

std::size_t RecordStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::size_t RecordStore::truncated_tails() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return truncated_tails_;
}

std::vector<std::string> RecordStore::task_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(by_task_.size());
  for (const auto& [key, records] : by_task_) keys.push_back(key);
  return keys;
}

std::vector<TuningRecord> RecordStore::records_for(
    const std::string& task_key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_task_.find(task_key);
  return it == by_task_.end() ? std::vector<TuningRecord>{} : it->second;
}

std::optional<TuningRecord> RecordStore::best_for(
    const std::string& task_key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_task_.find(task_key);
  if (it == by_task_.end()) return std::nullopt;
  std::optional<TuningRecord> best;
  for (const TuningRecord& r : it->second) {
    if (!r.ok) continue;
    if (!best || r.gflops > best->gflops) best = r;
  }
  return best;
}

void RecordStore::append(const TuningRecord& record) {
  AAL_CHECK(!options_.read_only,
            "append to read-only record store: " << dir_);
  AAL_CHECK(!record.task_key.empty(), "record store: record without task key");
  const std::size_t shard =
      shard_of(record.task_key, static_cast<std::size_t>(options_.num_shards));
  std::lock_guard<std::mutex> lock(mutex_);
  pending_lines_[shard].push_back(record.to_line());
  by_task_[record.task_key].push_back(record);
  ++total_;
  ++pending_;
}

void RecordStore::append(const std::vector<TuningRecord>& records) {
  for (const TuningRecord& r : records) append(r);
}

std::size_t RecordStore::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

void RecordStore::flush() {
  AAL_CHECK(!options_.read_only,
            "flush of read-only record store: " << dir_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_ == 0) return;
  for (std::size_t shard = 0; shard < pending_lines_.size(); ++shard) {
    std::vector<std::string>& lines = pending_lines_[shard];
    if (lines.empty()) continue;
    // One contiguous chunk per shard: a crash can truncate at most the very
    // last line of the file, which load_locked() tolerates.
    std::string chunk;
    for (const std::string& line : lines) {
      chunk += line;
      chunk += '\n';
    }
    std::ofstream os(shard_path(shard),
                     std::ios::binary | std::ios::app);
    AAL_CHECK(os.good(),
              "cannot open store shard for append: " << shard_path(shard));
    os.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    os.flush();
    AAL_CHECK(os.good(), "failed appending to store shard: "
                             << shard_path(shard));
    lines.clear();
  }
  pending_ = 0;
}

void RecordStore::write_best_locked() const {
  const std::string tmp = best_path() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    AAL_CHECK(os.good(), "cannot write store summary: " << tmp);
    for (const auto& [key, records] : by_task_) {
      const TuningRecord* best = nullptr;
      for (const TuningRecord& r : records) {
        if (!r.ok) continue;
        if (best == nullptr || r.gflops > best->gflops) best = &r;
      }
      if (best != nullptr) os << best->to_line() << '\n';
    }
    os.flush();
    AAL_CHECK(os.good(), "failed writing store summary: " << tmp);
  }
  std::error_code ec;
  fs::rename(tmp, best_path(), ec);
  AAL_CHECK(!ec, "cannot publish store summary " << best_path() << ": "
                                                 << ec.message());
}

std::size_t RecordStore::compact(int top_k) {
  AAL_CHECK(top_k >= 1, "compact top_k must be >= 1");
  AAL_CHECK(!options_.read_only,
            "compact of read-only record store: " << dir_);
  std::lock_guard<std::mutex> lock(mutex_);
  AAL_CHECK(pending_ == 0, "compact requires all appends flushed ("
                               << pending_ << " pending)");

  std::size_t dropped = 0;
  for (auto& [key, records] : by_task_) {
    // Deduplicate by config: the most recent record for a flat index wins
    // (it reflects the latest hardware/noise conditions).
    std::vector<TuningRecord> deduped;
    {
      std::vector<bool> keep(records.size(), false);
      std::unordered_map<std::int64_t, std::size_t> last;
      for (std::size_t i = 0; i < records.size(); ++i) {
        last[records[i].config_flat] = i;
      }
      for (const auto& [flat, idx] : last) keep[idx] = true;
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (keep[i]) deduped.push_back(records[i]);
      }
    }
    // Keep the top_k best successes (ties broken by flat index so the
    // outcome is deterministic) plus every failure — failures are what stop
    // a warm run from re-measuring known-bad configs.
    std::vector<TuningRecord> successes;
    std::vector<TuningRecord> kept;
    for (TuningRecord& r : deduped) {
      (r.ok ? successes : kept).push_back(std::move(r));
    }
    std::stable_sort(successes.begin(), successes.end(),
                     [](const TuningRecord& a, const TuningRecord& b) {
                       if (a.gflops != b.gflops) return a.gflops > b.gflops;
                       return a.config_flat < b.config_flat;
                     });
    if (static_cast<int>(successes.size()) > top_k) {
      successes.resize(static_cast<std::size_t>(top_k));
    }
    for (TuningRecord& r : successes) kept.push_back(std::move(r));
    // Canonical flat-index order within the key: compacting an already
    // compacted store rewrites byte-identical shard files.
    std::stable_sort(kept.begin(), kept.end(),
                     [](const TuningRecord& a, const TuningRecord& b) {
                       return a.config_flat < b.config_flat;
                     });
    dropped += records.size() - kept.size();
    records = std::move(kept);
  }
  total_ -= dropped;

  // Rewrite every shard atomically: tmp + rename, keys in sorted order.
  for (std::size_t shard = 0;
       shard < static_cast<std::size_t>(options_.num_shards); ++shard) {
    std::string chunk;
    for (const auto& [key, records] : by_task_) {
      if (shard_of(key, static_cast<std::size_t>(options_.num_shards)) !=
          shard) {
        continue;
      }
      for (const TuningRecord& r : records) {
        chunk += r.to_line();
        chunk += '\n';
      }
    }
    const std::string path = shard_path(shard);
    if (chunk.empty() && !fs::exists(path)) continue;
    const std::string tmp = path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      AAL_CHECK(os.good(), "cannot write compacted shard: " << tmp);
      os.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      os.flush();
      AAL_CHECK(os.good(), "failed writing compacted shard: " << tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    AAL_CHECK(!ec, "cannot publish compacted shard " << path << ": "
                                                     << ec.message());
  }
  write_best_locked();
  return dropped;
}

}  // namespace aal
