// Measurement execution backends.
//
// A MeasureBackend decides *where* the per-configuration measurement work of
// a batch runs: SerialBackend executes items in order on the caller's
// thread (the historical behavior), ParallelBackend fans them out over a
// ThreadPool. Backends only schedule pure per-item work — all shared-state
// mutation (memo cache, best tracking, history) is committed serially by the
// Measurer afterwards, which is why results are bitwise-identical across
// backends and thread counts.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "support/thread_pool.hpp"

namespace aal {

class MeasureBackend {
 public:
  virtual ~MeasureBackend() = default;

  virtual const char* name() const = 0;

  /// Runs fn(i) for every i in [0, n) and returns when all are done. fn must
  /// be safe to call concurrently; implementations choose the schedule.
  virtual void dispatch(std::size_t n,
                        const std::function<void(std::size_t)>& fn) = 0;

  /// High-water mark of the underlying work queue, if any (feeds the
  /// `pool.queue_high_water` gauge). 0 for backends without a queue.
  virtual std::size_t queue_high_water() const { return 0; }
};

/// Runs every item in order on the calling thread.
class SerialBackend final : public MeasureBackend {
 public:
  const char* name() const override { return "serial"; }
  void dispatch(std::size_t n,
                const std::function<void(std::size_t)>& fn) override;
};

/// Fans items out over a ThreadPool. With `threads` == 0 the process-wide
/// shared pool is used; otherwise the backend owns a pool of that size.
class ParallelBackend final : public MeasureBackend {
 public:
  explicit ParallelBackend(std::size_t threads = 0);

  const char* name() const override { return "parallel"; }
  std::size_t threads() const;
  void dispatch(std::size_t n,
                const std::function<void(std::size_t)>& fn) override;
  std::size_t queue_high_water() const override;

 private:
  std::unique_ptr<ThreadPool> owned_;  // null when borrowing shared()
  ThreadPool* pool_;
};

}  // namespace aal
