#include "measure/backend.hpp"

namespace aal {

void SerialBackend::dispatch(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

ParallelBackend::ParallelBackend(std::size_t threads) {
  if (threads > 0) {
    owned_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_.get();
  } else {
    pool_ = &ThreadPool::shared();
  }
}

std::size_t ParallelBackend::threads() const { return pool_->size(); }

std::size_t ParallelBackend::queue_high_water() const {
  return pool_->queue_high_water();
}

void ParallelBackend::dispatch(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  pool_->parallel_for(n, fn);
}

}  // namespace aal
