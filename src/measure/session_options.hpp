// SessionOptions: the knobs every tuning layer shares.
//
// Three option structs configure a run — TuneOptions (the policy loop),
// MeasureOptions (the measurement layer) and ModelTuneOptions (the node-wise
// pipeline) — and before this header they each re-declared the same knobs:
// seeds, budget/early-stopping, retry and fault injection, and the obs
// sinks. SessionOptions declares each knob exactly once; the three structs
// compose it as a base so every historical field name keeps working
// (`options.budget`, `options.device_seed`, `options.trace`, ...) while new
// code can treat any of them as a SessionOptions.
//
// Each composing struct documents which of the shared knobs it honors; a
// knob that a layer does not read is simply inert there (e.g. the Measurer
// ignores `budget` — budget accounting lives in the TuningSession).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "hwsim/fault.hpp"
#include "obs/obs.hpp"

namespace aal {

/// How many device attempts a single configuration's measurement may
/// consume, and how failures are classified along the way.
struct RetryPolicy {
  /// Total device attempts per config (1 = no retries, the historical
  /// behavior). Transient failures retry until this cap.
  int max_attempts = 1;
  /// How many *permanent* failures (build errors) are observed before the
  /// config is given up. 1 = trust the permanent classification (default);
  /// larger values re-check — a config failing permanently that many times
  /// is quarantined ("repeated permanents").
  int permanent_tolerance = 1;
  /// Simulated backoff before retry k (zero-based): base * 2^k microseconds.
  /// Pure arithmetic — never wall-clock — so backoff accounting is
  /// deterministic at any thread count.
  double backoff_base_us = 100.0;

  bool retries_enabled() const {
    return max_attempts > 1 || permanent_tolerance > 1;
  }

  double backoff_us(int attempt) const {
    return backoff_base_us * static_cast<double>(1LL << std::min(attempt, 40));
  }
};

/// The shared knob vocabulary, composed (as a base) by TuneOptions,
/// MeasureOptions and ModelTuneOptions.
struct SessionOptions {
  /// Policy randomness stream (samplers, SA, bootstrap draws). Honored by
  /// TuneOptions; ModelTuneOptions derives per-task seeds from `tune.seed`.
  std::uint64_t seed = 1;

  /// Measurement-noise stream. Honored by ModelTuneOptions (per-task device
  /// seeds are derived from it) and by the tune_workload() overload that
  /// takes no explicit device seed.
  std::uint64_t device_seed = 1234;

  /// Measured-config budget and early-stopping patience (AutoTVM
  /// semantics: budget caps distinct measured configs, early stopping
  /// aborts after that many consecutive non-improving measurements).
  /// Honored by TuneOptions; the model pipeline reads `tune.budget`.
  std::int64_t budget = 1024;
  std::int64_t early_stopping = 400;

  /// Measurement retry knobs. Honored by MeasureOptions; the model
  /// pipeline reads `measure.retry`.
  RetryPolicy retry;

  /// Fault-injection plan (inactive by default). Honored by
  /// ModelTuneOptions, which derives per-task fault seeds from it.
  FaultPlan faults;

  /// Observability sinks. Honored by TuneOptions (folded into the session's
  /// Obs handle when no explicit handle was attached — see
  /// TuneOptions::effective_obs) and by ModelTuneOptions (the historical
  /// `trace` / `metrics` fields). Non-owning; may be null.
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  /// Cooperative cancellation flag (non-owning; may be null). Honored by
  /// TuningSession — checked once per propose/measure/observe round, so a
  /// raised flag stops the session at the next round boundary with
  /// StopReason::kCancelled — and by tune_model, which additionally skips
  /// every task that has not started yet. Cancellation is cooperative and
  /// clean: completed measurements stay committed, the session_end event is
  /// still emitted, and a writable store still receives the records measured
  /// before the flag was raised. A session that never observes a raised flag
  /// behaves (and traces) exactly as if the field were null.
  const std::atomic<bool>* cancel = nullptr;
};

}  // namespace aal
