// Measurement layer: deploys configurations on the (simulated) device and
// returns GFLOPS, the optimization objective of Problem 1 in the paper.
//
// Counting semantics match AutoTVM: each *configuration* measured counts one
// unit of tuning budget regardless of timing repeats; failed builds count
// too (the time was spent). The measurer memoizes by flat index so a tuner
// re-visiting a config does not consume extra budget — and per the paper's
// Fig. 5(a) we report the number of distinct measured configurations.
//
// Transient-fault robustness: a RetryPolicy lets a measurement consume up to
// `max_attempts` device attempts. Transient failures (injected timeouts,
// flaky launches, dead workers — see hwsim/fault.hpp) are retried with
// deterministic exponential backoff accounted in *simulated* time; permanent
// failures (build errors) are re-checked only up to `permanent_tolerance`
// observations. A config whose retry budget runs dry is *quarantined*:
// committed to the memo cache as failed and never dispatched to the device
// again. Budget is charged once per config — retries are free but traced
// (measure_retry / fault_injected / quarantine events, measure.retries /
// measure.transient_faults / measure.quarantined counters).
//
// The measurer is thread-safe. Batch measurement follows a
// "parallel compute, serial commit" protocol: the per-config device runs of
// a batch are pure (counter-based noise and counter-based fault draws, see
// hwsim/device.hpp and hwsim/fault.hpp) and may be scheduled concurrently by
// a MeasureBackend; the results are then committed to the memo cache
// strictly in input order, and all retry/fault/quarantine trace events are
// emitted during that serial commit. Cache contents, commit order, emitted
// events and best-so-far tracking are therefore identical for every backend
// and thread count — with or without fault injection.
#pragma once

#include <algorithm>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hwsim/device.hpp"
#include "measure/backend.hpp"
#include "measure/record.hpp"
#include "measure/session_options.hpp"
#include "measure/tuning_task.hpp"
#include "obs/obs.hpp"

namespace aal {

/// Measurement-layer options. Composes the shared SessionOptions knobs
/// (the Measurer honors `retry`; the other shared fields are inert here —
/// budget accounting lives in the TuningSession, seeds in the Device).
struct MeasureOptions : SessionOptions {
  /// Timing runs averaged per measurement (AutoTVM default-ish).
  int repeats = 3;
};

/// One transient fault observed while measuring a config, recorded so the
/// serial commit phase can emit deterministic fault_injected events.
struct FaultObservation {
  int attempt = 0;     // zero-based attempt index that faulted
  std::string kind;    // fault kind wire name ("timeout", ...)
};

struct MeasureResult {
  Config config;
  bool ok = false;
  std::string error;
  double gflops = 0.0;        // 0 for failed configs
  double mean_time_us = 0.0;  // 0 for failed configs

  // Retry provenance (diagnostics; budget is charged once regardless).
  int attempts = 1;             // device attempts consumed
  double backoff_us = 0.0;      // simulated backoff time spent
  bool quarantined = false;     // retry budget ran dry on this config
  std::vector<FaultObservation> faults;  // transient faults survived

  /// True when this result was adopted from persisted records (resume log
  /// or RecordStore) instead of being measured in this session.
  bool preloaded = false;
};

/// Where preloaded records came from — the distinction only affects which
/// metric the adoption counts under (and whether a store_hit trace event is
/// emitted): resume logs count `measure.preloaded`, RecordStore rows count
/// `store.hits`. Cache semantics are identical.
enum class PreloadSource : int { kResumeLog, kStore };

class Measurer {
 public:
  /// Validates options (repeats >= 1, max_attempts >= 1,
  /// permanent_tolerance >= 1, backoff_base_us >= 0; throws
  /// InvalidArgument). The device is borrowed and must outlive the
  /// measurer; wrap it in a FaultyDevice to inject faults.
  Measurer(const TuningTask& task, const Device& device,
           MeasureOptions options = MeasureOptions{});

  /// Convenience: `repeats` timing runs, no retries.
  Measurer(const TuningTask& task, const Device& device, int repeats);

  const TuningTask& task() const { return task_; }
  const RetryPolicy& retry_policy() const { return options_.retry; }

  /// Attaches an observability handle. Batch measurement then emits
  /// measure_batch_begin/end trace events (plus measure_retry /
  /// fault_injected / quarantine when the retry machinery engages) and
  /// maintains the measure.* counters (configs_measured, cache_hits,
  /// failures, batches, preloaded, retries, transient_faults, quarantined).
  /// Preloaded records count `measure.preloaded`, never
  /// `measure.configs_measured` — resuming a session is free.
  void set_obs(Obs obs) { obs_ = std::move(obs); }
  const Obs& obs() const { return obs_; }

  /// Measures one configuration (memoized by flat index). The returned
  /// reference stays valid for the measurer's lifetime (node-based cache).
  const MeasureResult& measure(const Config& config);

  /// True if this flat index is already in the memo cache.
  bool is_cached(std::int64_t flat) const;

  /// True if this flat index was quarantined (its retry budget ran dry).
  /// Quarantined configs live in the memo cache as failed results, so they
  /// are never dispatched to the device again.
  bool is_quarantined(std::int64_t flat) const;

  /// Number of quarantined configurations so far.
  std::int64_t num_quarantined() const;

  /// Cached result for a flat index, or nullptr if it has not been measured.
  /// The pointer stays valid for the measurer's lifetime (node-based cache).
  const MeasureResult* find(std::int64_t flat) const;

  /// Seeds the memo cache from previously persisted records of *this* task
  /// (records for other task keys are ignored). Resuming an interrupted
  /// tuning session this way makes historical measurements free: revisits
  /// hit the cache and consume no budget. Failed records keep their
  /// persisted error string. Returns the number of records adopted.
  ///
  /// `source` picks the metric the adoption counts under: resume logs bump
  /// `measure.preloaded`, RecordStore rows bump `store.hits` and emit a
  /// store_hit trace event (only when at least one record was adopted, so
  /// an empty store leaves the trace byte-identical to a storeless run).
  std::size_t preload(const std::vector<TuningRecord>& records,
                      PreloadSource source = PreloadSource::kResumeLog);

  /// Measures a batch serially; results align with the input order.
  std::vector<MeasureResult> measure_batch(std::span<const Config> configs);

  /// Measures a batch through the given backend. Uncached configurations are
  /// computed (possibly concurrently) and committed to the cache in input
  /// order; results align with the input order and are bitwise-identical to
  /// the serial path.
  std::vector<MeasureResult> measure_batch(std::span<const Config> configs,
                                           MeasureBackend& backend);

  /// Number of distinct configurations measured so far.
  std::int64_t num_measured() const;

  /// Best successful result so far, if any.
  std::optional<MeasureResult> best() const;

  /// All measured results, in the order they were committed to the cache
  /// (deterministic: preload order, then measurement commit order).
  std::vector<MeasureResult> all_results() const;

  /// Results measured in *this* session (all_results minus preloads), in
  /// commit order. This is what flushes back to a RecordStore — re-appending
  /// rows that came from the store would duplicate them on every run.
  std::vector<MeasureResult> fresh_results() const;

  /// Results adopted from persisted records, in commit order.
  std::vector<MeasureResult> preloaded_results() const;

 private:
  /// Pure per-config measurement incl. the retry loop: no shared-state
  /// mutation besides the device's diagnostic run counter (atomic).
  MeasureResult compute(const Config& config) const;

  /// Inserts a freshly computed result; caller must hold mutex_.
  const MeasureResult& commit_locked(MeasureResult result);

  /// Bumps retry/fault/quarantine counters for a freshly computed result.
  void count_retry_metrics(const MeasureResult& result) const;

  /// Emits the deterministic per-config retry trace events (fault_injected,
  /// measure_retry, quarantine) for a freshly committed result. Must be
  /// called in commit order, outside mutex_.
  void emit_retry_events(const MeasureResult& result) const;

  const TuningTask& task_;
  const Device& device_;
  MeasureOptions options_;
  Obs obs_;
  mutable std::mutex mutex_;
  std::unordered_map<std::int64_t, MeasureResult> cache_;
  std::vector<std::int64_t> order_;  // flats in commit order
  std::unordered_set<std::int64_t> quarantined_;
  std::int64_t best_flat_ = -1;
  double best_gflops_ = 0.0;
};

}  // namespace aal
