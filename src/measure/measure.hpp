// Measurement layer: deploys configurations on the (simulated) device and
// returns GFLOPS, the optimization objective of Problem 1 in the paper.
//
// Counting semantics match AutoTVM: each *configuration* measured counts one
// unit of tuning budget regardless of timing repeats; failed builds count
// too (the time was spent). The measurer memoizes by flat index so a tuner
// re-visiting a config does not consume extra budget — and per the paper's
// Fig. 5(a) we report the number of distinct measured configurations.
//
// The measurer is thread-safe. Batch measurement follows a
// "parallel compute, serial commit" protocol: the per-config device runs of
// a batch are pure (counter-based noise, see hwsim/device.hpp) and may be
// scheduled concurrently by a MeasureBackend; the results are then committed
// to the memo cache strictly in input order. Cache contents, commit order
// and best-so-far tracking are therefore identical for every backend and
// thread count.
#pragma once

#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hwsim/device.hpp"
#include "measure/backend.hpp"
#include "measure/record.hpp"
#include "measure/tuning_task.hpp"
#include "obs/obs.hpp"

namespace aal {

struct MeasureResult {
  Config config;
  bool ok = false;
  std::string error;
  double gflops = 0.0;        // 0 for failed configs
  double mean_time_us = 0.0;  // 0 for failed configs
};

class Measurer {
 public:
  /// `repeats` timing runs are averaged per measurement (AutoTVM default-ish).
  Measurer(const TuningTask& task, SimulatedDevice& device, int repeats = 3);

  const TuningTask& task() const { return task_; }

  /// Attaches an observability handle. Batch measurement then emits
  /// measure_batch_begin/end trace events and maintains the measure.*
  /// counters (configs_measured, cache_hits, failures, batches, preloaded).
  /// Preloaded records count `measure.preloaded`, never
  /// `measure.configs_measured` — resuming a session is free.
  void set_obs(Obs obs) { obs_ = std::move(obs); }
  const Obs& obs() const { return obs_; }

  /// Measures one configuration (memoized by flat index). The returned
  /// reference stays valid for the measurer's lifetime (node-based cache).
  const MeasureResult& measure(const Config& config);

  /// True if this flat index is already in the memo cache.
  bool is_cached(std::int64_t flat) const;

  /// Cached result for a flat index, or nullptr if it has not been measured.
  /// The pointer stays valid for the measurer's lifetime (node-based cache).
  const MeasureResult* find(std::int64_t flat) const;

  /// Seeds the memo cache from previously persisted records of *this* task
  /// (records for other task keys are ignored). Resuming an interrupted
  /// tuning session this way makes historical measurements free: revisits
  /// hit the cache and consume no budget. Returns the number of records
  /// adopted.
  std::size_t preload(const std::vector<TuningRecord>& records);

  /// Measures a batch serially; results align with the input order.
  std::vector<MeasureResult> measure_batch(std::span<const Config> configs);

  /// Measures a batch through the given backend. Uncached configurations are
  /// computed (possibly concurrently) and committed to the cache in input
  /// order; results align with the input order and are bitwise-identical to
  /// the serial path.
  std::vector<MeasureResult> measure_batch(std::span<const Config> configs,
                                           MeasureBackend& backend);

  /// Number of distinct configurations measured so far.
  std::int64_t num_measured() const;

  /// Best successful result so far, if any.
  std::optional<MeasureResult> best() const;

  /// All measured results, in the order they were committed to the cache
  /// (deterministic: preload order, then measurement commit order).
  std::vector<MeasureResult> all_results() const;

 private:
  /// Pure per-config measurement: no shared-state mutation besides the
  /// device's diagnostic run counter (atomic).
  MeasureResult compute(const Config& config) const;

  /// Inserts a freshly computed result; caller must hold mutex_.
  const MeasureResult& commit_locked(MeasureResult result);

  const TuningTask& task_;
  SimulatedDevice& device_;
  int repeats_;
  Obs obs_;
  mutable std::mutex mutex_;
  std::unordered_map<std::int64_t, MeasureResult> cache_;
  std::vector<std::int64_t> order_;  // flats in commit order
  std::int64_t best_flat_ = -1;
  double best_gflops_ = 0.0;
};

}  // namespace aal
