// Measurement layer: deploys configurations on the (simulated) device and
// returns GFLOPS, the optimization objective of Problem 1 in the paper.
//
// Counting semantics match AutoTVM: each *configuration* measured counts one
// unit of tuning budget regardless of timing repeats; failed builds count
// too (the time was spent). The measurer memoizes by flat index so a tuner
// re-visiting a config does not consume extra budget — and per the paper's
// Fig. 5(a) we report the number of distinct measured configurations.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hwsim/device.hpp"
#include "measure/record.hpp"
#include "measure/tuning_task.hpp"

namespace aal {

struct MeasureResult {
  Config config;
  bool ok = false;
  std::string error;
  double gflops = 0.0;        // 0 for failed configs
  double mean_time_us = 0.0;  // 0 for failed configs
};

class Measurer {
 public:
  /// `repeats` timing runs are averaged per measurement (AutoTVM default-ish).
  Measurer(const TuningTask& task, SimulatedDevice& device, int repeats = 3);

  const TuningTask& task() const { return task_; }

  /// Measures one configuration (memoized by flat index).
  const MeasureResult& measure(const Config& config);

  /// Seeds the memo cache from previously persisted records of *this* task
  /// (records for other task keys are ignored). Resuming an interrupted
  /// tuning session this way makes historical measurements free: revisits
  /// hit the cache and consume no budget. Returns the number of records
  /// adopted.
  std::size_t preload(const std::vector<TuningRecord>& records);

  /// Measures a batch; results align with the input order.
  std::vector<MeasureResult> measure_batch(std::span<const Config> configs);

  /// Number of distinct configurations measured so far.
  std::int64_t num_measured() const {
    return static_cast<std::int64_t>(cache_.size());
  }

  /// Best successful result so far, if any.
  std::optional<MeasureResult> best() const;

  /// All measured results (unspecified order).
  std::vector<MeasureResult> all_results() const;

 private:
  const TuningTask& task_;
  SimulatedDevice& device_;
  int repeats_;
  std::unordered_map<std::int64_t, MeasureResult> cache_;
  std::int64_t best_flat_ = -1;
  double best_gflops_ = 0.0;
};

}  // namespace aal
