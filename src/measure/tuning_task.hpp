// A tuning task: one workload bound to its configuration space and the
// hardware model that evaluates it. This is the object every tuner consumes
// (AutoTVM's `Task`), and it is deliberately measurement-free: the Measurer
// owns the (stateful, noisy) device.
#pragma once

#include <memory>

#include "hwsim/kernel_model.hpp"
#include "ir/workload.hpp"
#include "space/config_space.hpp"
#include "space/schedule_template.hpp"

namespace aal {

class TuningTask {
 public:
  TuningTask(Workload workload, GpuSpec spec)
      : workload_(std::move(workload)),
        space_(build_config_space(workload_)),
        model_(workload_, spec) {}

  const Workload& workload() const { return workload_; }
  const ConfigSpace& space() const { return space_; }
  const KernelModel& model() const { return model_; }

  /// Deterministic profile of one configuration (no measurement noise).
  KernelProfile profile(const Config& config) const {
    return model_.profile(space_, config);
  }

  /// Task identity key (the workload key).
  std::string key() const { return workload_.key(); }

 private:
  Workload workload_;
  ConfigSpace space_;
  KernelModel model_;
};

}  // namespace aal
