// A tuning task: one workload bound to its configuration space and the
// hardware model that evaluates it. This is the object every tuner consumes
// (AutoTVM's `Task`), and it is deliberately measurement-free: the Measurer
// owns the (stateful, noisy) device.
//
// The task is target-aware: it builds the backend's DeviceModel for the
// workload and attaches the model's hardware-native constraints to its
// config space, so every sampling path (initial pools, neighborhoods,
// mutation proposals) prunes infeasible configs before they reach a tuner.
// GPU targets attach zero constraints — the default landscape is untouched.
#pragma once

#include <memory>

#include "hwsim/device_model.hpp"
#include "hwsim/target.hpp"
#include "ir/workload.hpp"
#include "space/config_space.hpp"
#include "space/schedule_template.hpp"

namespace aal {

class TuningTask {
 public:
  TuningTask(Workload workload, TargetSpec target)
      : workload_(std::move(workload)),
        space_(build_config_space(workload_)),
        model_(make_device_model(workload_, std::move(target))) {
    space_.set_constraints(model_->constraints());
  }

  /// Compatibility: binds the workload to a raw GpuSpec (the historical
  /// single-backend spelling).
  TuningTask(Workload workload, const GpuSpec& spec)
      : TuningTask(std::move(workload), TargetSpec::from_gpu(spec)) {}

  const Workload& workload() const { return workload_; }
  const ConfigSpace& space() const { return space_; }
  const TargetSpec& target() const { return model_->target(); }
  const DeviceModel& model() const { return *model_; }

  /// Deterministic profile of one configuration (no measurement noise).
  KernelProfile profile(const Config& config) const {
    return model_->profile(space_, config);
  }

  /// Task identity key. The default target keeps the bare workload key, so
  /// historical record logs and stores keep resolving; other targets
  /// qualify the key with the target name — records measured on one
  /// backend must never warm-start another.
  std::string key() const { return key_for(workload_, model_->target()); }

  /// The key a task built from (workload, target) would report, without
  /// building the task (callers that only need the identity).
  static std::string key_for(const Workload& workload,
                             const TargetSpec& target) {
    if (target.name == "gpu-pascal") return workload.key();
    return workload.key() + "@" + target.name;
  }

 private:
  Workload workload_;
  ConfigSpace space_;
  std::unique_ptr<DeviceModel> model_;
};

}  // namespace aal
