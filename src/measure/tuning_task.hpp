// A tuning task: one workload bound to its configuration space and the
// hardware model that evaluates it. This is the object every tuner consumes
// (AutoTVM's `Task`), and it is deliberately measurement-free: the Measurer
// owns the (stateful, noisy) device.
//
// The task is target- and template-aware: it resolves a schedule-template
// request through the TemplateRegistry, builds the space with that template,
// builds the backend's DeviceModel decoding through the same template, and
// attaches the model's hardware-native constraints to the space, so every
// sampling path (initial pools, neighborhoods, mutation proposals) prunes
// infeasible configs before they reach a tuner. GPU targets attach zero
// constraints — the default landscape is untouched.
#pragma once

#include <memory>
#include <string>

#include "hwsim/device_model.hpp"
#include "hwsim/target.hpp"
#include "ir/workload.hpp"
#include "space/config_space.hpp"
#include "space/schedule_template.hpp"
#include "space/template_registry.hpp"

namespace aal {

class TuningTask {
 public:
  /// `template_request` uses the registry vocabulary: "" / "default" for the
  /// CUDA-shaped space, "native" for the target family's native template, or
  /// an exact template name. Invalid requests throw InvalidArgument.
  explicit TuningTask(Workload workload, TargetSpec target,
                      const std::string& template_request = std::string())
      : workload_(std::move(workload)),
        template_(&TemplateRegistry::instance().resolve(template_request,
                                                        target)),
        space_(template_->build(workload_, target)),
        model_(make_device_model(workload_, std::move(target), template_)) {
    space_.set_constraints(model_->constraints());
  }

  /// Compatibility: binds the workload to a raw GpuSpec (the historical
  /// single-backend spelling).
  TuningTask(Workload workload, const GpuSpec& spec)
      : TuningTask(std::move(workload), TargetSpec::from_gpu(spec)) {}

  const Workload& workload() const { return workload_; }
  const ConfigSpace& space() const { return space_; }
  const TargetSpec& target() const { return model_->target(); }
  const DeviceModel& model() const { return *model_; }

  /// The schedule template that built (and decodes) this task's space.
  const ScheduleTemplate& schedule_template() const { return *template_; }

  /// Resolved template name ("cuda", "cpu-native", "systolic").
  const std::string& template_name() const { return template_->name(); }

  /// Deterministic profile of one configuration (no measurement noise).
  KernelProfile profile(const Config& config) const {
    return model_->profile(space_, config);
  }

  /// Task identity key: `<workload>[@<target>][#<template>]`. The default
  /// target keeps the bare workload key and the default template omits the
  /// suffix, so historical record logs and stores keep resolving; other
  /// targets/templates qualify the key — records measured on one backend
  /// (or drawn from one space shape) must never warm-start another.
  std::string key() const {
    return key_for(workload_, model_->target(), template_->name());
  }

  /// The key a task built from (workload, target, template request) would
  /// report, without building the task (callers that only need the
  /// identity). The request is resolved through the registry, so "native"
  /// and "" yield the same keys the constructed task would.
  static std::string key_for(const Workload& workload,
                             const TargetSpec& target,
                             const std::string& template_request =
                                 std::string()) {
    std::string key = workload.key();
    if (target.name != "gpu-pascal") key += "@" + target.name;
    const std::string& resolved =
        TemplateRegistry::instance().resolve(template_request, target).name();
    if (resolved != kDefaultTemplateName) key += "#" + resolved;
    return key;
  }

 private:
  Workload workload_;
  const ScheduleTemplate* template_;  // registry singleton, never null
  ConfigSpace space_;
  std::unique_ptr<DeviceModel> model_;
};

}  // namespace aal
