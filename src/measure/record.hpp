// Tuning records: the persistent history of measured configurations.
//
// AutoTVM appends one log line per measurement and reuses logs both to apply
// the best schedule at build time and as the transfer-learning corpus. The
// RecordDatabase plays the same role here: it stores results per task key,
// serves best-config queries for the deployment pipeline, and feeds the
// transfer-learning warm start. A simple line-oriented text format keeps it
// diff-able and dependency-free.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace aal {

struct TuningRecord {
  std::string task_key;
  std::int64_t config_flat = -1;
  bool ok = false;
  double gflops = 0.0;
  double mean_time_us = 0.0;
  /// Failure diagnostic for ok=0 records (empty for successes). Persisted,
  /// so a resumed session reports the original error instead of a generic
  /// placeholder.
  std::string error;

  /// Serialized single-line form:
  /// "task_key<TAB>flat<TAB>ok<TAB>gflops<TAB>time_us<TAB>error"
  /// The error column is backslash-escaped (\\, \t, \n, \r) and omitted
  /// when empty, so success lines match the historical 5-column format.
  std::string to_line() const;
  /// Accepts both 5-column (legacy) and 6-column lines.
  static TuningRecord from_line(const std::string& line);
};

class RecordDatabase {
 public:
  void add(TuningRecord record);

  std::size_t size() const { return total_; }

  /// Records for one task (empty vector if none).
  const std::vector<TuningRecord>& records_for(const std::string& task_key) const;

  /// Best successful record for a task, if any.
  std::optional<TuningRecord> best_for(const std::string& task_key) const;

  /// Task keys present, in insertion order of first record.
  const std::vector<std::string>& task_keys() const { return keys_; }

  void save(std::ostream& os) const;
  /// Loads record lines from a stream. A malformed line throws
  /// InvalidArgument naming `source` (file path or stream label) and the
  /// 1-based line number — corrupt logs are rejected, never silently
  /// skipped.
  void load(std::istream& is, const std::string& source = "");

  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

 private:
  std::unordered_map<std::string, std::vector<TuningRecord>> by_task_;
  std::vector<std::string> keys_;
  std::size_t total_ = 0;
};

}  // namespace aal
