#include "measure/record.hpp"

#include <fstream>
#include <sstream>

#include "support/common.hpp"
#include "support/string_util.hpp"

namespace aal {

namespace {

// The error column rides in a tab-separated line, so the three separators
// (tab, newline, carriage return) and the escape character itself are
// backslash-escaped.
std::string escape_error(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_error(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    AAL_CHECK(i + 1 < text.size(),
              "dangling escape in record error column: " << text);
    const char next = text[++i];
    switch (next) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default:
        AAL_CHECK(false, "unknown escape '\\" << next
                                              << "' in record error column");
    }
  }
  return out;
}

}  // namespace

std::string TuningRecord::to_line() const {
  std::ostringstream os;
  os << task_key << '\t' << config_flat << '\t' << (ok ? 1 : 0) << '\t'
     << format_double(gflops, 6) << '\t' << format_double(mean_time_us, 6);
  if (!error.empty()) os << '\t' << escape_error(error);
  return os.str();
}

TuningRecord TuningRecord::from_line(const std::string& line) {
  const auto fields = split(line, '\t');
  AAL_CHECK(fields.size() == 5 || fields.size() == 6,
            "malformed record line: expected 5 (legacy) or 6 tab-separated "
            "columns, got " << fields.size() << ": " << line);
  TuningRecord r;
  r.task_key = fields[0];
  // Strict field parses: "12abc" or ok="2" means a corrupt or foreign log,
  // better rejected at load time than adopted as silently-wrong history.
  r.config_flat = parse_int64_strict(fields[1]);
  r.ok = parse_bool01_strict(fields[2]);
  r.gflops = parse_double_strict(fields[3]);
  r.mean_time_us = parse_double_strict(fields[4]);
  if (fields.size() == 6) r.error = unescape_error(fields[5]);
  return r;
}

void RecordDatabase::add(TuningRecord record) {
  auto it = by_task_.find(record.task_key);
  if (it == by_task_.end()) {
    keys_.push_back(record.task_key);
    it = by_task_.emplace(record.task_key, std::vector<TuningRecord>{}).first;
  }
  it->second.push_back(std::move(record));
  ++total_;
}

const std::vector<TuningRecord>& RecordDatabase::records_for(
    const std::string& task_key) const {
  static const std::vector<TuningRecord> kEmpty;
  auto it = by_task_.find(task_key);
  return it == by_task_.end() ? kEmpty : it->second;
}

std::optional<TuningRecord> RecordDatabase::best_for(
    const std::string& task_key) const {
  const auto& records = records_for(task_key);
  std::optional<TuningRecord> best;
  for (const auto& r : records) {
    if (!r.ok) continue;
    if (!best || r.gflops > best->gflops) best = r;
  }
  return best;
}

void RecordDatabase::save(std::ostream& os) const {
  for (const auto& key : keys_) {
    for (const auto& r : by_task_.at(key)) os << r.to_line() << '\n';
  }
}

void RecordDatabase::load(std::istream& is, const std::string& source) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    // Rejecting — not skipping — a corrupt line matters: a silently dropped
    // record would resurface as a re-measured config and a quietly different
    // run. Name the offending line so the log can actually be repaired.
    try {
      add(TuningRecord::from_line(line));
    } catch (const Error& e) {
      const std::string where = source.empty() ? "record log" : source;
      throw InvalidArgument(where + " line " + std::to_string(line_no) +
                            ": " + e.what());
    }
  }
}

void RecordDatabase::save_file(const std::string& path) const {
  std::ofstream os(path);
  AAL_CHECK(os.good(), "cannot open record file for writing: " << path);
  save(os);
}

void RecordDatabase::load_file(const std::string& path) {
  std::ifstream is(path);
  AAL_CHECK(is.good(), "cannot open record file for reading: " << path);
  load(is, path);
}

}  // namespace aal
