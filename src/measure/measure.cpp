#include "measure/measure.hpp"

#include "support/common.hpp"

namespace aal {

Measurer::Measurer(const TuningTask& task, SimulatedDevice& device,
                   int repeats)
    : task_(task), device_(device), repeats_(repeats) {
  AAL_CHECK(repeats >= 1, "repeats must be >= 1");
}

const MeasureResult& Measurer::measure(const Config& config) {
  auto it = cache_.find(config.flat);
  if (it != cache_.end()) return it->second;

  const KernelProfile profile = task_.profile(config);
  const MeasureOutcome outcome =
      device_.run(profile, task_.workload().flops(), repeats_);

  MeasureResult result;
  result.config = config;
  result.ok = outcome.ok;
  result.error = outcome.error;
  result.gflops = outcome.gflops;
  result.mean_time_us = outcome.mean_time_us;

  auto [pos, inserted] = cache_.emplace(config.flat, std::move(result));
  AAL_ASSERT(inserted, "measure cache collision");
  if (pos->second.ok && pos->second.gflops > best_gflops_) {
    best_gflops_ = pos->second.gflops;
    best_flat_ = config.flat;
  }
  return pos->second;
}

std::size_t Measurer::preload(const std::vector<TuningRecord>& records) {
  const std::string key = task_.key();
  std::size_t adopted = 0;
  for (const TuningRecord& r : records) {
    if (r.task_key != key) continue;
    if (r.config_flat < 0 || r.config_flat >= task_.space().size()) continue;
    if (cache_.contains(r.config_flat)) continue;
    MeasureResult result;
    result.config = task_.space().at(r.config_flat);
    result.ok = r.ok;
    result.gflops = r.gflops;
    result.mean_time_us = r.mean_time_us;
    if (!r.ok) result.error = "failed in a previous session";
    cache_.emplace(r.config_flat, std::move(result));
    if (r.ok && r.gflops > best_gflops_) {
      best_gflops_ = r.gflops;
      best_flat_ = r.config_flat;
    }
    ++adopted;
  }
  return adopted;
}

std::vector<MeasureResult> Measurer::measure_batch(
    std::span<const Config> configs) {
  std::vector<MeasureResult> out;
  out.reserve(configs.size());
  for (const Config& c : configs) out.push_back(measure(c));
  return out;
}

std::optional<MeasureResult> Measurer::best() const {
  if (best_flat_ < 0) return std::nullopt;
  return cache_.at(best_flat_);
}

std::vector<MeasureResult> Measurer::all_results() const {
  std::vector<MeasureResult> out;
  out.reserve(cache_.size());
  for (const auto& [flat, result] : cache_) out.push_back(result);
  return out;
}

}  // namespace aal
