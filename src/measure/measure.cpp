#include "measure/measure.hpp"

#include <utility>

#include "support/common.hpp"

namespace aal {

Measurer::Measurer(const TuningTask& task, const Device& device,
                   MeasureOptions options)
    : task_(task), device_(device), options_(std::move(options)) {
  AAL_CHECK(options_.repeats >= 1, "repeats must be >= 1");
  AAL_CHECK(options_.retry.max_attempts >= 1, "max_attempts must be >= 1");
  AAL_CHECK(options_.retry.permanent_tolerance >= 1,
            "permanent_tolerance must be >= 1");
  AAL_CHECK(options_.retry.backoff_base_us >= 0.0,
            "backoff_base_us must be >= 0");
}

namespace {

MeasureOptions repeats_only(int repeats) {
  MeasureOptions options;
  options.repeats = repeats;
  return options;
}

}  // namespace

Measurer::Measurer(const TuningTask& task, const Device& device, int repeats)
    : Measurer(task, device, repeats_only(repeats)) {}

MeasureResult Measurer::compute(const Config& config) const {
  const KernelProfile profile = task_.profile(config);
  const RetryPolicy& policy = options_.retry;

  MeasureResult result;
  result.config = config;

  // Retry loop. Every branch in here depends only on (config, attempt index)
  // — the device outcome is a pure counter-based function of both — so the
  // attempt trail, backoff total and final outcome are identical no matter
  // which thread runs this or in what order.
  int attempt = 0;
  int permanents = 0;
  MeasureOutcome outcome;
  while (true) {
    outcome = device_.run(profile, task_.workload().flops(), options_.repeats,
                          config.flat, attempt);
    ++attempt;
    if (outcome.ok) break;
    if (outcome.transient) {
      result.faults.push_back(FaultObservation{attempt - 1, outcome.fault});
    } else {
      // Permanent (build) failures are only re-checked while the tolerance
      // allows; the default tolerance of 1 trusts the classification.
      ++permanents;
      if (permanents >= policy.permanent_tolerance) break;
    }
    if (attempt >= policy.max_attempts) break;
    // Backoff is accounted in simulated time (pure arithmetic), never slept.
    result.backoff_us += policy.backoff_us(attempt - 1);
  }

  result.ok = outcome.ok;
  result.error = outcome.error;
  result.gflops = outcome.gflops;
  result.mean_time_us = outcome.mean_time_us;
  result.attempts = attempt;
  // Quarantine only configs on which the retry machinery actually engaged
  // and still lost: a plain first-attempt build error is a normal failed
  // measurement (the historical behavior), not a quarantine.
  result.quarantined =
      !outcome.ok && (!result.faults.empty() || attempt > 1);
  return result;
}

const MeasureResult& Measurer::commit_locked(MeasureResult result) {
  const std::int64_t flat = result.config.flat;
  auto [pos, inserted] = cache_.emplace(flat, std::move(result));
  AAL_ASSERT(inserted, "measure cache collision");
  order_.push_back(flat);
  if (pos->second.quarantined) quarantined_.insert(flat);
  if (pos->second.ok && pos->second.gflops > best_gflops_) {
    best_gflops_ = pos->second.gflops;
    best_flat_ = flat;
  }
  return pos->second;
}

void Measurer::count_retry_metrics(const MeasureResult& result) const {
  // Guarded so fault-free runs create no zero-valued retry counters and
  // their metrics snapshots stay byte-identical to pre-retry builds.
  if (result.attempts > 1) {
    obs_.count("measure.retries", result.attempts - 1);
  }
  if (!result.faults.empty()) {
    obs_.count("measure.transient_faults",
               static_cast<std::int64_t>(result.faults.size()));
  }
  if (result.quarantined) obs_.count("measure.quarantined");
}

void Measurer::emit_retry_events(const MeasureResult& result) const {
  const std::int64_t flat = result.config.flat;
  for (const FaultObservation& f : result.faults) {
    obs_.emit(TraceEventType::kFaultInjected,
              {{"flat", TraceValue(flat)},
               {"attempt", TraceValue(f.attempt)},
               {"kind", TraceValue(f.kind)}});
  }
  if (result.attempts > 1) {
    obs_.emit(TraceEventType::kMeasureRetry,
              {{"flat", TraceValue(flat)},
               {"attempts", TraceValue(result.attempts)},
               {"faults", TraceValue(result.faults.size())},
               {"backoff_us", TraceValue(result.backoff_us)},
               {"ok", TraceValue(result.ok)}});
  }
  if (result.quarantined) {
    obs_.emit(TraceEventType::kQuarantine,
              {{"flat", TraceValue(flat)},
               {"attempts", TraceValue(result.attempts)},
               {"cause", TraceValue(result.faults.empty() ? "permanent"
                                                          : "transient")}});
  }
}

const MeasureResult& Measurer::measure(const Config& config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(config.flat);
    if (it != cache_.end()) {
      obs_.count("measure.cache_hits");
      return it->second;
    }
  }
  // Compute outside the lock: the device draw is a pure function of
  // (seed, flat, repeat), so a concurrent racer would compute the identical
  // result — whichever commits first wins and the other copy is dropped.
  MeasureResult result = compute(config);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(config.flat);
  if (it != cache_.end()) {
    obs_.count("measure.cache_hits");
    return it->second;
  }
  obs_.count("measure.configs_measured");
  if (!result.ok) obs_.count("measure.failures");
  count_retry_metrics(result);
  return commit_locked(std::move(result));
}

bool Measurer::is_cached(std::int64_t flat) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.contains(flat);
}

bool Measurer::is_quarantined(std::int64_t flat) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_.contains(flat);
}

std::int64_t Measurer::num_quarantined() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(quarantined_.size());
}

const MeasureResult* Measurer::find(std::int64_t flat) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(flat);
  return it == cache_.end() ? nullptr : &it->second;
}

std::size_t Measurer::preload(const std::vector<TuningRecord>& records,
                              PreloadSource source) {
  const std::string key = task_.key();
  std::size_t adopted = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const TuningRecord& r : records) {
      if (r.task_key != key) continue;
      if (r.config_flat < 0 || r.config_flat >= task_.space().size()) continue;
      if (cache_.contains(r.config_flat)) continue;
      MeasureResult result;
      result.config = task_.space().at(r.config_flat);
      result.ok = r.ok;
      result.gflops = r.gflops;
      result.mean_time_us = r.mean_time_us;
      result.preloaded = true;
      if (!r.ok) {
        // Records written before the error column existed load with an empty
        // error string; keep the historical placeholder for those.
        result.error =
            r.error.empty() ? "failed in a previous session" : r.error;
      }
      commit_locked(std::move(result));
      ++adopted;
    }
  }
  // Preloaded configs are budget-free: they count their own metric, not
  // measure.configs_measured, and later revisits count as cache hits.
  if (source == PreloadSource::kStore) {
    // Counted and emitted only when the store actually contributed, so a run
    // against an empty store stays byte-identical (trace and metrics) to a
    // storeless run.
    if (adopted > 0) {
      obs_.count("store.hits", static_cast<std::int64_t>(adopted));
      obs_.emit(TraceEventType::kStoreHit,
                {{"offered", TraceValue(records.size())},
                 {"hits", TraceValue(adopted)}});
    }
  } else {
    obs_.count("measure.preloaded", static_cast<std::int64_t>(adopted));
  }
  return adopted;
}

std::vector<MeasureResult> Measurer::fresh_results() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MeasureResult> out;
  for (const std::int64_t flat : order_) {
    const MeasureResult& r = cache_.at(flat);
    if (!r.preloaded) out.push_back(r);
  }
  return out;
}

std::vector<MeasureResult> Measurer::preloaded_results() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MeasureResult> out;
  for (const std::int64_t flat : order_) {
    const MeasureResult& r = cache_.at(flat);
    if (r.preloaded) out.push_back(r);
  }
  return out;
}

std::vector<MeasureResult> Measurer::measure_batch(
    std::span<const Config> configs) {
  // Route through a local SerialBackend so the serial path emits the same
  // batch events and metrics as the parallel one — which is also what lets
  // the golden-trace test compare them byte for byte.
  SerialBackend backend;
  return measure_batch(configs, backend);
}

std::vector<MeasureResult> Measurer::measure_batch(
    std::span<const Config> configs, MeasureBackend& backend) {
  // Phase 1: pick the first occurrence of every uncached flat, in input
  // order. This is the only order that matters — phase 3 commits in exactly
  // this order regardless of how phase 2 schedules the computation.
  std::vector<std::size_t> fresh_index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unordered_map<std::int64_t, bool> seen;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const std::int64_t flat = configs[i].flat;
      if (cache_.contains(flat)) continue;
      if (!seen.emplace(flat, true).second) continue;
      fresh_index.push_back(i);
    }
  }

  const std::int64_t cached =
      static_cast<std::int64_t>(configs.size() - fresh_index.size());
  obs_.count("measure.batches");
  obs_.count("measure.cache_hits", cached);
  obs_.emit(TraceEventType::kMeasureBatchBegin,
            {{"batch", TraceValue(configs.size())},
             {"fresh", TraceValue(fresh_index.size())},
             {"cached", TraceValue(cached)}},
            {{"backend", TraceValue(backend.name())}});

  // Phase 2: compute fresh results, possibly concurrently. compute() is
  // pure — including its retry loop and fault draws — so the schedule
  // cannot affect any value.
  std::vector<MeasureResult> fresh(fresh_index.size());
  backend.dispatch(fresh_index.size(), [&](std::size_t j) {
    fresh[j] = compute(configs[fresh_index[j]]);
  });
  obs_.gauge_max("pool.queue_high_water",
                 static_cast<std::int64_t>(backend.queue_high_water()));

  // Phase 3: serial commit in input order. Committed results are collected
  // (cache nodes are pointer-stable) so the retry/fault/quarantine events
  // can be emitted after the lock drops, still in commit order — the trace
  // is identical for every backend.
  std::int64_t committed = 0;
  std::int64_t failures = 0;
  std::vector<const MeasureResult*> committed_results;
  committed_results.reserve(fresh.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (MeasureResult& r : fresh) {
      if (cache_.contains(r.config.flat)) continue;  // raced external caller
      if (!r.ok) ++failures;
      committed_results.push_back(&commit_locked(std::move(r)));
      ++committed;
    }
  }
  obs_.count("measure.configs_measured", committed);
  obs_.count("measure.failures", failures);
  for (const MeasureResult* r : committed_results) {
    count_retry_metrics(*r);
    emit_retry_events(*r);
  }
  obs_.emit(TraceEventType::kMeasureBatchEnd,
            {{"batch", TraceValue(configs.size())},
             {"measured", TraceValue(committed)},
             {"cache_hits", TraceValue(cached)},
             {"failures", TraceValue(failures)}});

  // Phase 4: aligned output from the cache.
  std::vector<MeasureResult> out;
  out.reserve(configs.size());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Config& c : configs) {
    auto it = cache_.find(c.flat);
    AAL_ASSERT(it != cache_.end(), "batch result missing from cache");
    out.push_back(it->second);
  }
  return out;
}

std::int64_t Measurer::num_measured() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(cache_.size());
}

std::optional<MeasureResult> Measurer::best() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (best_flat_ < 0) return std::nullopt;
  return cache_.at(best_flat_);
}

std::vector<MeasureResult> Measurer::all_results() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MeasureResult> out;
  out.reserve(order_.size());
  for (const std::int64_t flat : order_) out.push_back(cache_.at(flat));
  return out;
}

}  // namespace aal
