#include "measure/measure.hpp"

#include <utility>

#include "support/common.hpp"

namespace aal {

Measurer::Measurer(const TuningTask& task, SimulatedDevice& device,
                   int repeats)
    : task_(task), device_(device), repeats_(repeats) {
  AAL_CHECK(repeats >= 1, "repeats must be >= 1");
}

MeasureResult Measurer::compute(const Config& config) const {
  const KernelProfile profile = task_.profile(config);
  const MeasureOutcome outcome =
      device_.run(profile, task_.workload().flops(), repeats_, config.flat);

  MeasureResult result;
  result.config = config;
  result.ok = outcome.ok;
  result.error = outcome.error;
  result.gflops = outcome.gflops;
  result.mean_time_us = outcome.mean_time_us;
  return result;
}

const MeasureResult& Measurer::commit_locked(MeasureResult result) {
  const std::int64_t flat = result.config.flat;
  auto [pos, inserted] = cache_.emplace(flat, std::move(result));
  AAL_ASSERT(inserted, "measure cache collision");
  order_.push_back(flat);
  if (pos->second.ok && pos->second.gflops > best_gflops_) {
    best_gflops_ = pos->second.gflops;
    best_flat_ = flat;
  }
  return pos->second;
}

const MeasureResult& Measurer::measure(const Config& config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(config.flat);
    if (it != cache_.end()) {
      obs_.count("measure.cache_hits");
      return it->second;
    }
  }
  // Compute outside the lock: the device draw is a pure function of
  // (seed, flat, repeat), so a concurrent racer would compute the identical
  // result — whichever commits first wins and the other copy is dropped.
  MeasureResult result = compute(config);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(config.flat);
  if (it != cache_.end()) {
    obs_.count("measure.cache_hits");
    return it->second;
  }
  obs_.count("measure.configs_measured");
  if (!result.ok) obs_.count("measure.failures");
  return commit_locked(std::move(result));
}

bool Measurer::is_cached(std::int64_t flat) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.contains(flat);
}

const MeasureResult* Measurer::find(std::int64_t flat) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(flat);
  return it == cache_.end() ? nullptr : &it->second;
}

std::size_t Measurer::preload(const std::vector<TuningRecord>& records) {
  const std::string key = task_.key();
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t adopted = 0;
  for (const TuningRecord& r : records) {
    if (r.task_key != key) continue;
    if (r.config_flat < 0 || r.config_flat >= task_.space().size()) continue;
    if (cache_.contains(r.config_flat)) continue;
    MeasureResult result;
    result.config = task_.space().at(r.config_flat);
    result.ok = r.ok;
    result.gflops = r.gflops;
    result.mean_time_us = r.mean_time_us;
    if (!r.ok) result.error = "failed in a previous session";
    commit_locked(std::move(result));
    ++adopted;
  }
  // Preloaded configs are budget-free: they count their own metric, not
  // measure.configs_measured, and later revisits count as cache hits.
  obs_.count("measure.preloaded", static_cast<std::int64_t>(adopted));
  return adopted;
}

std::vector<MeasureResult> Measurer::measure_batch(
    std::span<const Config> configs) {
  // Route through a local SerialBackend so the serial path emits the same
  // batch events and metrics as the parallel one — which is also what lets
  // the golden-trace test compare them byte for byte.
  SerialBackend backend;
  return measure_batch(configs, backend);
}

std::vector<MeasureResult> Measurer::measure_batch(
    std::span<const Config> configs, MeasureBackend& backend) {
  // Phase 1: pick the first occurrence of every uncached flat, in input
  // order. This is the only order that matters — phase 3 commits in exactly
  // this order regardless of how phase 2 schedules the computation.
  std::vector<std::size_t> fresh_index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unordered_map<std::int64_t, bool> seen;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const std::int64_t flat = configs[i].flat;
      if (cache_.contains(flat)) continue;
      if (!seen.emplace(flat, true).second) continue;
      fresh_index.push_back(i);
    }
  }

  const std::int64_t cached =
      static_cast<std::int64_t>(configs.size() - fresh_index.size());
  obs_.count("measure.batches");
  obs_.count("measure.cache_hits", cached);
  obs_.emit(TraceEventType::kMeasureBatchBegin,
            {{"batch", TraceValue(configs.size())},
             {"fresh", TraceValue(fresh_index.size())},
             {"cached", TraceValue(cached)}},
            {{"backend", TraceValue(backend.name())}});

  // Phase 2: compute fresh results, possibly concurrently. compute() is
  // pure, so the schedule cannot affect any value.
  std::vector<MeasureResult> fresh(fresh_index.size());
  backend.dispatch(fresh_index.size(), [&](std::size_t j) {
    fresh[j] = compute(configs[fresh_index[j]]);
  });
  obs_.gauge_max("pool.queue_high_water",
                 static_cast<std::int64_t>(backend.queue_high_water()));

  // Phase 3: serial commit in input order.
  std::int64_t committed = 0;
  std::int64_t failures = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (MeasureResult& r : fresh) {
      if (cache_.contains(r.config.flat)) continue;  // raced external caller
      if (!r.ok) ++failures;
      commit_locked(std::move(r));
      ++committed;
    }
  }
  obs_.count("measure.configs_measured", committed);
  obs_.count("measure.failures", failures);
  obs_.emit(TraceEventType::kMeasureBatchEnd,
            {{"batch", TraceValue(configs.size())},
             {"measured", TraceValue(committed)},
             {"cache_hits", TraceValue(cached)},
             {"failures", TraceValue(failures)}});

  // Phase 4: aligned output from the cache.
  std::vector<MeasureResult> out;
  out.reserve(configs.size());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Config& c : configs) {
    auto it = cache_.find(c.flat);
    AAL_ASSERT(it != cache_.end(), "batch result missing from cache");
    out.push_back(it->second);
  }
  return out;
}

std::int64_t Measurer::num_measured() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(cache_.size());
}

std::optional<MeasureResult> Measurer::best() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (best_flat_ < 0) return std::nullopt;
  return cache_.at(best_flat_);
}

std::vector<MeasureResult> Measurer::all_results() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MeasureResult> out;
  out.reserve(order_.size());
  for (const std::int64_t flat : order_) out.push_back(cache_.at(flat));
  return out;
}

}  // namespace aal
