// Scalar data types carried by tensors. The deployment experiments in the
// paper run fp32 inference; int8/fp16 are modeled so the simulator can be
// exercised with quantized workloads as an extension.
#pragma once

#include <cstdint>
#include <string>

namespace aal {

enum class DType : std::uint8_t {
  kFloat32,
  kFloat16,
  kInt8,
  kInt32,
};

/// Size of one element in bytes.
constexpr std::int64_t dtype_bytes(DType t) {
  switch (t) {
    case DType::kFloat32: return 4;
    case DType::kFloat16: return 2;
    case DType::kInt8: return 1;
    case DType::kInt32: return 4;
  }
  return 4;
}

std::string dtype_name(DType t);

/// Parses "float32" etc.; throws InvalidArgument on unknown names.
DType dtype_from_name(const std::string& name);

}  // namespace aal
