// Tensor shapes. Layout convention throughout the library is NCHW for
// activations and OIHW for convolution weights, matching the TVM CUDA
// templates the paper tunes.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/common.hpp"
#include "tensor/dtype.hpp"

namespace aal {

/// Immutable-by-convention dimension vector with element/byte accounting.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  std::size_t rank() const { return dims_.size(); }
  std::int64_t operator[](std::size_t i) const {
    AAL_CHECK(i < dims_.size(), "shape index " << i << " out of rank "
                                               << dims_.size());
    return dims_[i];
  }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Product of all dimensions; 1 for a scalar (rank 0).
  std::int64_t num_elements() const;

  std::int64_t num_bytes(DType t) const {
    return num_elements() * dtype_bytes(t);
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[1, 3, 224, 224]"
  std::string to_string() const;

 private:
  void validate() const {
    for (std::int64_t d : dims_) {
      AAL_CHECK(d >= 1, "shape dimensions must be >= 1, got " << d);
    }
  }

  std::vector<std::int64_t> dims_;
};

/// A typed tensor signature (shape + dtype); the graph IR stores these on
/// every edge. No data buffer: the simulator is analytical.
struct TensorType {
  Shape shape;
  DType dtype = DType::kFloat32;

  std::int64_t num_bytes() const { return shape.num_bytes(dtype); }
  bool operator==(const TensorType& other) const {
    return shape == other.shape && dtype == other.dtype;
  }
  std::string to_string() const {
    return shape.to_string() + ":" + dtype_name(dtype);
  }
};

}  // namespace aal
