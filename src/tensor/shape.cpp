#include "tensor/shape.hpp"

#include <sstream>

namespace aal {

std::int64_t Shape::num_elements() const {
  std::int64_t n = 1;
  for (std::int64_t d : dims_) {
    AAL_ASSERT(n <= (std::int64_t{1} << 62) / d,
               "shape element count overflow");
    n *= d;
  }
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace aal
