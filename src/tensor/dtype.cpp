#include "tensor/dtype.hpp"

#include "support/common.hpp"

namespace aal {

std::string dtype_name(DType t) {
  switch (t) {
    case DType::kFloat32: return "float32";
    case DType::kFloat16: return "float16";
    case DType::kInt8: return "int8";
    case DType::kInt32: return "int32";
  }
  return "unknown";
}

DType dtype_from_name(const std::string& name) {
  if (name == "float32") return DType::kFloat32;
  if (name == "float16") return DType::kFloat16;
  if (name == "int8") return DType::kInt8;
  if (name == "int32") return DType::kInt32;
  throw InvalidArgument("unknown dtype name: " + name);
}

}  // namespace aal
