#include "pipeline/model_tuner.hpp"

#include "core/advanced_tuner.hpp"
#include "core/bted.hpp"
#include "support/logging.hpp"
#include "tuner/ga_tuner.hpp"
#include "tuner/random_tuner.hpp"
#include "tuner/xgb_tuner.hpp"

namespace aal {

TunerFactory autotvm_tuner_factory() {
  return [](TransferContext* transfer) -> std::unique_ptr<Tuner> {
    XgbTunerOptions opts;
    opts.transfer = transfer;
    auto tuner = std::make_unique<XgbTuner>(
        std::make_shared<GbdtSurrogateFactory>(), random_init_sampler(), opts);
    tuner->set_name("autotvm");
    return tuner;
  };
}

TunerFactory bted_tuner_factory() {
  return [](TransferContext* transfer) -> std::unique_ptr<Tuner> {
    XgbTunerOptions opts;
    opts.transfer = transfer;
    auto tuner = std::make_unique<XgbTuner>(
        std::make_shared<GbdtSurrogateFactory>(), bted_init_sampler(), opts);
    tuner->set_name("bted");
    return tuner;
  };
}

TunerFactory bted_bao_tuner_factory() {
  return [](TransferContext*) -> std::unique_ptr<Tuner> {
    // BAO replaces the XGB+SA machinery wholesale; the transfer context is
    // not part of the paper's advanced framework.
    return std::make_unique<AdvancedActiveLearningTuner>();
  };
}

TunerFactory random_tuner_factory() {
  return [](TransferContext*) -> std::unique_ptr<Tuner> {
    return std::make_unique<RandomTuner>();
  };
}

TunerFactory ga_tuner_factory() {
  return [](TransferContext*) -> std::unique_ptr<Tuner> {
    return std::make_unique<GaTuner>();
  };
}

std::int64_t ModelTuneReport::total_measured() const {
  std::int64_t total = 0;
  for (const auto& t : tasks) total += t.result.num_measured;
  return total;
}

std::unordered_map<std::string, std::int64_t>
ModelTuneReport::best_flat_by_task() const {
  std::unordered_map<std::string, std::int64_t> out;
  for (const auto& t : tasks) {
    if (t.result.best) out.emplace(t.task_key, t.result.best->config.flat);
  }
  return out;
}

ModelTuneReport tune_model(const Graph& graph, const GpuSpec& spec,
                           const TunerFactory& factory,
                           const ModelTuneOptions& options) {
  const FusedGraph fused = fuse(graph);
  const std::vector<Task> tasks = extract_tasks(fused);

  ModelTuneReport report;
  report.model_name = graph.name();

  TransferContext transfer;
  TransferContext* transfer_ptr = options.use_transfer ? &transfer : nullptr;

  std::uint64_t task_index = 0;
  for (const Task& task : tasks) {
    ++task_index;
    TuningTask tuning_task(task.workload, spec);
    SimulatedDevice device(spec, options.device_seed * 1000003 + task_index);
    Measurer measurer(tuning_task, device);
    if (options.resume_from != nullptr) {
      const std::size_t adopted =
          measurer.preload(options.resume_from->records_for(tuning_task.key()));
      if (adopted > 0) {
        AAL_LOG_INFO << graph.name() << ": resumed " << adopted
                     << " records for " << task.workload.brief();
      }
    }

    auto tuner = factory(transfer_ptr);
    TuneOptions tune_options = options.tune;
    tune_options.seed = options.tune.seed * 7907 + task_index;
    TuneResult result = tuner->tune(measurer, tune_options);
    if (report.tuner_name.empty()) report.tuner_name = result.tuner_name;

    AAL_LOG_INFO << graph.name() << " [" << task_index << '/' << tasks.size()
                 << "] " << task.workload.brief() << ": best "
                 << result.best_gflops() << " GFLOPS in "
                 << result.num_measured << " configs ("
                 << result.tuner_name << ')';

    report.tasks.push_back(TaskTuneReport{task.workload.key(), task.workload,
                                          task.count(), std::move(result)});
  }
  return report;
}

TuneResult tune_workload(const Workload& workload, const GpuSpec& spec,
                         Tuner& tuner, const TuneOptions& options,
                         std::uint64_t device_seed) {
  TuningTask task(workload, spec);
  SimulatedDevice device(spec, device_seed);
  Measurer measurer(task, device);
  return tuner.tune(measurer, options);
}

}  // namespace aal
