#include "pipeline/model_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <optional>

#include "core/advanced_tuner.hpp"
#include "core/bted.hpp"
#include "support/common.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"
#include "tuner/ga_tuner.hpp"
#include "tuner/random_tuner.hpp"
#include "tuner/xgb_tuner.hpp"

namespace aal {

TunerFactory autotvm_tuner_factory() {
  return [](TransferContext* transfer) -> std::unique_ptr<Tuner> {
    XgbTunerOptions opts;
    opts.transfer = transfer;
    auto tuner = std::make_unique<XgbTuner>(
        std::make_shared<GbdtSurrogateFactory>(), random_init_sampler(), opts);
    tuner->set_name("autotvm");
    return tuner;
  };
}

TunerFactory bted_tuner_factory() {
  return [](TransferContext* transfer) -> std::unique_ptr<Tuner> {
    XgbTunerOptions opts;
    opts.transfer = transfer;
    auto tuner = std::make_unique<XgbTuner>(
        std::make_shared<GbdtSurrogateFactory>(), bted_init_sampler(), opts);
    tuner->set_name("bted");
    return tuner;
  };
}

TunerFactory bted_bao_tuner_factory() {
  return [](TransferContext*) -> std::unique_ptr<Tuner> {
    // BAO replaces the XGB+SA machinery wholesale; the transfer context is
    // not part of the paper's advanced framework.
    return std::make_unique<AdvancedActiveLearningTuner>();
  };
}

TunerFactory random_tuner_factory() {
  return [](TransferContext*) -> std::unique_ptr<Tuner> {
    return std::make_unique<RandomTuner>();
  };
}

TunerFactory ga_tuner_factory() {
  return [](TransferContext*) -> std::unique_ptr<Tuner> {
    return std::make_unique<GaTuner>();
  };
}

namespace {

struct NamedTunerFactory {
  const char* name;
  TunerFactory (*make)();
};

constexpr NamedTunerFactory kTunerRegistry[] = {
    {"autotvm", autotvm_tuner_factory},
    {"bted", bted_tuner_factory},
    {"bted+bao", bted_bao_tuner_factory},
    {"random", random_tuner_factory},
    {"ga", ga_tuner_factory},
};

}  // namespace

std::vector<std::string> tuner_factory_names() {
  std::vector<std::string> names;
  for (const NamedTunerFactory& f : kTunerRegistry) names.emplace_back(f.name);
  return names;
}

TunerFactory tuner_factory_by_name(const std::string& name) {
  for (const NamedTunerFactory& f : kTunerRegistry) {
    if (name == f.name) return f.make();
  }
  std::string valid;
  for (const NamedTunerFactory& f : kTunerRegistry) {
    if (!valid.empty()) valid += ", ";
    valid += f.name;
  }
  throw InvalidArgument("unknown tuner '" + name + "' (expected " + valid +
                        ")");
}

std::int64_t ModelTuneReport::total_measured() const {
  std::int64_t total = 0;
  for (const auto& t : tasks) total += t.result.num_measured;
  return total;
}

std::unordered_map<std::string, std::int64_t>
ModelTuneReport::best_flat_by_task() const {
  std::unordered_map<std::string, std::int64_t> out;
  for (const auto& t : tasks) {
    if (t.result.best) out.emplace(t.task_key, t.result.best->config.flat);
  }
  return out;
}

ModelTuneReport tune_model(const Graph& graph, const TargetSpec& target,
                           const TunerFactory& factory,
                           const ModelTuneOptions& options) {
  const FusedGraph fused = fuse(graph);
  const std::vector<Task> tasks = extract_tasks(fused);

  ModelTuneReport report;
  report.model_name = graph.name();
  report.tasks.reserve(tasks.size());
  for (const Task& task : tasks) {
    report.tasks.push_back(TaskTuneReport{
        TuningTask::key_for(task.workload, target, options.schedule_template),
        task.workload, task.count(), TuneResult{}});
  }

  // Lane decomposition (computed up front so the serial path can map each
  // task to its lane's transfer context). The transfer pool is keyed by
  // workload kind and seed_for() only reads same-kind rows, so giving each
  // kind its own lane (and its own TransferContext) yields exactly the
  // state the serial run's shared context would expose to every task.
  // Without transfer, every task is independent and becomes its own lane.
  std::vector<std::vector<std::size_t>> lanes;
  if (options.use_transfer) {
    std::unordered_map<int, std::size_t> lane_of_kind;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const int kind = static_cast<int>(tasks[i].workload.kind());
      auto [it, inserted] = lane_of_kind.emplace(kind, lanes.size());
      if (inserted) lanes.emplace_back();
      lanes[it->second].push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < tasks.size(); ++i) lanes.push_back({i});
  }
  const bool parallel = options.jobs > 1 && lanes.size() > 1;

  // Per-task trace buffers, parallel runs only: lanes may interleave
  // arbitrarily, so each task writes to its own MemoryTraceSink and the
  // buffers are replayed into options.trace in model order after the lanes
  // join. Serial runs execute tasks in model order (see below) and emit
  // into options.trace directly — same bytes, since replay preserves event
  // order and re-stamps steps into the same consecutive sequence — which
  // gives live consumers (the serve daemon's stream op) events as they
  // happen instead of at the end of the run.
  std::vector<std::unique_ptr<MemoryTraceSink>> task_traces;
  if (options.trace != nullptr && parallel) {
    task_traces.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      auto sink = std::make_unique<MemoryTraceSink>();
      sink->set_capture_execution(options.trace->capture_execution());
      task_traces.push_back(std::move(sink));
    }
  }

  // Per-task staging for records flushing back to the store after the lanes
  // join (empty when no writable store is attached).
  std::vector<std::vector<TuningRecord>> task_records(tasks.size());

  // Tunes the task at position `i` (0-based model order) and writes its
  // report slot. Seeds depend only on the position, never on the schedule.
  const auto tune_one = [&](std::size_t i, TransferContext* transfer_ptr) {
    const Task& task = tasks[i];
    const std::uint64_t task_index = static_cast<std::uint64_t>(i) + 1;
    TuningTask tuning_task(task.workload, target, options.schedule_template);
    SimulatedDevice device(target, options.device_seed * 1000003 + task_index);
    // The fault plan gets a per-task seed the same way the device does, so
    // fault draws are pure in (plan seed, task position, flat, attempt) and
    // the chaos schedule is identical at any jobs value.
    std::optional<FaultyDevice> faulty;
    if (options.faults.active()) {
      FaultPlan task_plan = options.faults;
      task_plan.seed = splitmix64(options.faults.seed * 1000003 + task_index);
      faulty.emplace(device, task_plan);
    }
    const Device& measured_device =
        faulty.has_value() ? static_cast<const Device&>(*faulty) : device;
    Measurer measurer(tuning_task, measured_device, options.measure);
    Obs obs;
    obs.trace = options.trace == nullptr ? nullptr
                : parallel              ? task_traces[i].get()
                                        : options.trace;
    obs.metrics = options.metrics;
    obs.lane = task.workload.key();
    // Attach before preload so resumed records count measure.preloaded.
    if (obs.active()) measurer.set_obs(obs);
    // Template identity, announced before any preload/transfer event so a
    // trace reader knows which space shape the task's records refer to.
    // Default-template runs emit nothing — traces and metrics stay
    // byte-identical to pre-registry builds.
    if (tuning_task.template_name() != kDefaultTemplateName) {
      obs.gauge_set("space.native_template", 1);
      obs.emit(TraceEventType::kTemplateSelect,
               {{"template", TraceValue(tuning_task.template_name())},
                {"target", TraceValue(tuning_task.target().name)},
                {"knobs", TraceValue(tuning_task.space().num_knobs())},
                {"log2_size",
                 TraceValue(std::log2(
                     static_cast<double>(tuning_task.space().size())))}});
    }
    if (options.resume_from != nullptr) {
      const std::size_t adopted =
          measurer.preload(options.resume_from->records_for(tuning_task.key()));
      if (adopted > 0) {
        AAL_LOG_INFO << graph.name() << ": resumed " << adopted
                     << " records for " << task.workload.brief();
      }
    }
    if (options.store != nullptr) {
      // Store rows are free like memo-cache hits: they count store.hits and
      // emit a store_hit event (in this task's buffered trace, so commit
      // order is deterministic at any jobs value).
      const std::size_t adopted = measurer.preload(
          options.store->records_for(tuning_task.key()), PreloadSource::kStore);
      if (adopted > 0) {
        AAL_LOG_INFO << graph.name() << ": warm-started " << adopted
                     << " store records for " << task.workload.brief();
      }
    }
    // Preloaded rows (resume log or store) warm-start the lane's transfer
    // pool here, and only here: XgbTuner::finalize absorbs fresh_results()
    // only, so every row is pooled exactly once however it entered the
    // cache. seed_for() excludes the task's own key, so this benefits the
    // lane's *other* tasks of the same workload kind.
    if (transfer_ptr != nullptr) {
      const std::vector<MeasureResult> preloaded = measurer.preloaded_results();
      if (!preloaded.empty()) transfer_ptr->absorb(tuning_task, preloaded);
    }

    // Cross-run transfer prior, built against the store snapshot this run
    // started from (fresh records append only after the lanes join, so the
    // snapshot — and the prior — is identical at any jobs value). The
    // builder emits transfer_seed/meta_fit events into this task's obs
    // handle; when the store offers nothing usable it bumps only
    // transfer.skipped and the run stays bitwise on the cold-start path.
    TransferPrior prior;
    if (options.transfer.enabled && options.store != nullptr) {
      prior = build_transfer_prior(tuning_task, *options.store,
                                   options.transfer,
                                   options.tune.seed * 6151 + task_index, obs);
    }

    auto tuner = factory(transfer_ptr);
    if (prior.active()) tuner->set_transfer_prior(&prior);
    TuneOptions tune_options = options.tune;
    tune_options.seed = options.tune.seed * 7907 + task_index;
    tune_options.obs = obs;
    if (options.cancel != nullptr) tune_options.cancel = options.cancel;
    if (options.measure_backend != nullptr) {
      tune_options.backend = options.measure_backend;
    }
    TuneResult result = tuner->tune(measurer, tune_options);

    // Constraint-pruning tally for this task's space. GPU targets attach no
    // constraints, so default runs emit nothing and traces stay identical to
    // the single-backend pipeline. The counts are pure functions of the
    // task's seeds, so the event is byte-identical at any jobs value.
    if (tuning_task.space().num_constraints() > 0) {
      const std::int64_t checked = tuning_task.space().feasibility_checks();
      const std::int64_t pruned = tuning_task.space().pruned_count();
      obs.count("space.constraint_checked", checked);
      obs.count("space.constraint_pruned", pruned);
      obs.emit(TraceEventType::kConstraintPrune,
               {{"target", TraceValue(tuning_task.target().name)},
                {"constraints",
                 TraceValue(tuning_task.space().num_constraints())},
                {"checked", TraceValue(checked)},
                {"pruned", TraceValue(pruned)}});
    }

    if (options.store != nullptr && !options.store->read_only()) {
      // Only this session's own measurements flush back; re-appending rows
      // that came from the store would duplicate them on every run. Records
      // are staged per task and appended after the lanes join, in model
      // order, so the store files are byte-identical at any jobs value.
      const std::vector<MeasureResult> fresh = measurer.fresh_results();
      std::vector<TuningRecord>& staged = task_records[i];
      staged.reserve(fresh.size());
      for (const MeasureResult& r : fresh) {
        staged.push_back(TuningRecord{tuning_task.key(), r.config.flat, r.ok,
                                      r.gflops, r.mean_time_us, r.error});
      }
    }

    AAL_LOG_INFO << graph.name() << " [" << task_index << '/' << tasks.size()
                 << "] " << task.workload.brief() << ": best "
                 << result.best_gflops() << " GFLOPS in "
                 << result.num_measured << " configs ("
                 << result.tuner_name << ')';

    report.tasks[i].result = std::move(result);
  };

  // Cooperative cancellation: a task that has not started when the flag is
  // raised is skipped (its report slot stays empty); the in-flight session
  // stops itself at its next round boundary via SessionOptions::cancel.
  const auto cancelled = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  if (!parallel) {
    // Serial runs execute tasks in model order, not lane order. Each task
    // only ever reads its own lane's transfer context, so the state every
    // task sees is identical either way — but model order means trace
    // events reach options.trace already in their final order (no buffer /
    // replay), so a live sink streams the run as it happens.
    std::vector<TransferContext> contexts(lanes.size());
    std::vector<std::size_t> lane_of_task(tasks.size(), 0);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      for (const std::size_t i : lanes[l]) lane_of_task[i] = l;
    }
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (cancelled()) break;
      tune_one(i, options.use_transfer ? &contexts[lane_of_task[i]] : nullptr);
    }
  } else {
    const auto run_lane = [&](const std::vector<std::size_t>& lane) {
      TransferContext transfer;
      TransferContext* transfer_ptr =
          options.use_transfer ? &transfer : nullptr;
      for (const std::size_t i : lane) {
        if (cancelled()) return;
        tune_one(i, transfer_ptr);
      }
    };
    // A dedicated pool, NOT ThreadPool::shared(): lane bodies block on BTED
    // and batched measurement which fan out over the shared pool — waiting
    // on it from inside it would deadlock.
    ThreadPool pool(std::min<std::size_t>(
        static_cast<std::size_t>(options.jobs), lanes.size()));
    std::vector<std::future<void>> futures;
    futures.reserve(lanes.size());
    for (const auto& lane : lanes) {
      futures.push_back(pool.submit([&run_lane, &lane] { run_lane(lane); }));
    }
    for (auto& f : futures) f.get();  // rethrows lane failures

    // Replay per-task buffers into the model sink in model order; the
    // target re-stamps the step counters into one consecutive sequence.
    if (options.trace != nullptr) {
      for (const auto& sink : task_traces) sink->replay_into(*options.trace);
    }
  }

  // Flush this run's fresh records back to the store, in model order.
  if (options.store != nullptr && !options.store->read_only()) {
    std::size_t appended = 0;
    for (const auto& staged : task_records) {
      options.store->append(staged);
      appended += staged.size();
    }
    if (appended > 0) {
      options.store->flush();
      Obs obs;
      obs.metrics = options.metrics;
      obs.count("store.appends", static_cast<std::int64_t>(appended));
      AAL_LOG_INFO << graph.name() << ": flushed " << appended
                   << " records to store " << options.store->dir();
    }
  }

  for (const auto& t : report.tasks) {
    if (!t.result.tuner_name.empty()) {
      report.tuner_name = t.result.tuner_name;
      break;
    }
  }
  return report;
}

ModelTuneReport tune_model(const Graph& graph, const GpuSpec& spec,
                           const TunerFactory& factory,
                           const ModelTuneOptions& options) {
  return tune_model(graph, TargetSpec::from_gpu(spec), factory, options);
}

TuneResult tune_workload(const Workload& workload, const TargetSpec& target,
                         Tuner& tuner, const TuneOptions& options,
                         std::uint64_t device_seed,
                         const std::string& template_request) {
  TuningTask task(workload, target, template_request);
  SimulatedDevice device(target, device_seed);
  Measurer measurer(task, device);
  return tuner.tune(measurer, options);
}

TuneResult tune_workload(const Workload& workload, const GpuSpec& spec,
                         Tuner& tuner, const TuneOptions& options,
                         std::uint64_t device_seed) {
  return tune_workload(workload, TargetSpec::from_gpu(spec), tuner, options,
                       device_seed);
}

TuneResult tune_workload(const Workload& workload, const TargetSpec& target,
                         Tuner& tuner, const TuneOptions& options) {
  return tune_workload(workload, target, tuner, options, options.device_seed);
}

TuneResult tune_workload(const Workload& workload, const GpuSpec& spec,
                         Tuner& tuner, const TuneOptions& options) {
  return tune_workload(workload, spec, tuner, options, options.device_seed);
}

}  // namespace aal
