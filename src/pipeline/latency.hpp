// End-to-end inference latency simulation (Table I's metric).
//
// Deploys a tuned model: every fused tunable group executes its task's best
// configuration, every fixed-function group its default kernel, and one
// inference latency is the sum of noisy per-kernel times. The paper runs
// each deployed model 600 times and reports the mean latency and the
// variance of those runs; LatencyEvaluator::run reproduces that protocol.
//
// Run-to-run noise has three components, all tied to the chosen configs:
//   * per-kernel log-normal noise with the profile's noise_sigma,
//   * a small correlated whole-run factor (clock/thermal drift),
//   * occasional straggler spikes whose probability and size grow with a
//     kernel's fragility (noise_sigma) — the heavy tail that dominates the
//     variance column and that better-tuned (stabler) configs avoid.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/fusion.hpp"
#include "graph/graph.hpp"
#include "hwsim/device.hpp"

namespace aal {

struct LatencyReport {
  double mean_ms = 0.0;
  double variance = 0.0;  // population variance of the run latencies (ms^2)
  double min_ms = 0.0;
  double max_ms = 0.0;
  std::size_t runs = 0;
  std::vector<double> samples_ms;  // every run, in order
};

class LatencyEvaluator {
 public:
  /// Binds the evaluator to a model and a deployment target. The graph must
  /// outlive the evaluator. `template_request` selects the schedule template
  /// (TemplateRegistry vocabulary, "" = default) and must match the template
  /// the configs in `best_flat_by_task` were tuned with — tune reports key
  /// tasks with the template-qualified TuningTask::key(), so deploying a
  /// native-template record log requires the same request here.
  explicit LatencyEvaluator(const Graph& graph, TargetSpec target,
                            std::string template_request = std::string());

  /// Compatibility: deploys to a raw GpuSpec (the historical single-backend
  /// spelling).
  LatencyEvaluator(const Graph& graph, const GpuSpec& spec);

  /// Deterministic (noise-free) latency with the given per-task configs.
  /// Tasks missing from the map fall back to the task-space default
  /// (flat 0) — mirroring TVM's untuned fallback schedule; invalid
  /// fallbacks raise InvalidArgument.
  double deterministic_latency_ms(
      const std::unordered_map<std::string, std::int64_t>& best_flat_by_task)
      const;

  /// Simulates `runs` end-to-end inferences (paper: 600).
  LatencyReport run(const std::unordered_map<std::string, std::int64_t>&
                        best_flat_by_task,
                    int runs, std::uint64_t seed) const;

  /// Per-kernel breakdown (base time and noise sigma), for docs and tests.
  struct KernelEntry {
    std::string label;
    double base_time_us = 0.0;
    double noise_sigma = 0.0;
    bool tunable = false;
  };
  std::vector<KernelEntry> kernel_breakdown(
      const std::unordered_map<std::string, std::int64_t>& best_flat_by_task)
      const;

  const TargetSpec& target() const { return target_; }

 private:
  const Graph& graph_;
  TargetSpec target_;
  std::string template_request_;
  FusedGraph fused_;
};

}  // namespace aal
