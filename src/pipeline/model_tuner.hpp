// Node-wise model tuning — the outer loop of the paper's Fig. 1.
//
// Lowers a model graph through fusion, extracts the deduplicated tuning
// tasks, runs the chosen tuner on every task against a per-task simulated
// device, and collects per-task results plus the best configuration per
// task for the deployment/latency stage. AutoTVM-style transfer learning is
// threaded through tasks of the same model in tuning order.
//
// With ModelTuneOptions::jobs > 1 independent tasks tune concurrently: the
// transfer pool is keyed by workload kind and a task only ever reads rows of
// its own kind, so tasks are grouped into per-kind *lanes*. Within a lane
// tasks run sequentially in model order (preserving the serial transfer
// chain exactly); lanes run in parallel. Device and tuner seeds are derived
// from the task's position in model order, so every per-task result is
// bitwise-identical to the jobs=1 run.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/fusion.hpp"
#include "graph/graph.hpp"
#include "hwsim/device.hpp"
#include "hwsim/fault.hpp"
#include "measure/measure.hpp"
#include "measure/record.hpp"
#include "measure/tuning_task.hpp"
#include "ml/transfer.hpp"
#include "obs/obs.hpp"
#include "store/record_store.hpp"
#include "transfer/transfer_prior.hpp"
#include "tuner/tuner.hpp"

namespace aal {

/// Creates a fresh Tuner per task. The TransferContext pointer is shared
/// across the model's tasks (null when the tuner kind doesn't use it).
using TunerFactory =
    std::function<std::unique_ptr<Tuner>(TransferContext* transfer)>;

/// Factories for the three experiment arms plus baselines.
TunerFactory autotvm_tuner_factory();          // AutoTVM (XGB+SA+transfer)
TunerFactory bted_tuner_factory();             // AutoTVM with BTED init
TunerFactory bted_bao_tuner_factory();         // full advanced framework
TunerFactory random_tuner_factory();
TunerFactory ga_tuner_factory();

/// The stable tuner names the CLI's --tuner flag and the serve protocol's
/// "tuner" field accept, in registry order.
std::vector<std::string> tuner_factory_names();

/// Factory for a registry name; throws InvalidArgument (naming the valid
/// set) on an unknown name.
TunerFactory tuner_factory_by_name(const std::string& name);

struct TaskTuneReport {
  std::string task_key;
  Workload workload;
  int group_count = 0;  // fused groups sharing this task in the model
  TuneResult result;
};

struct ModelTuneReport {
  std::string model_name;
  std::string tuner_name;
  std::vector<TaskTuneReport> tasks;

  std::int64_t total_measured() const;
  /// Best config flat index per task key (only tasks with a valid best).
  std::unordered_map<std::string, std::int64_t> best_flat_by_task() const;
};

/// Model-pipeline options. Composes the shared SessionOptions knobs: the
/// pipeline honors `device_seed` (per-task noise seeds are derived from it),
/// `faults` (per-task fault seeds likewise) and the `trace` / `metrics`
/// sinks; the base's `seed`, `budget`, `early_stopping` and `retry` are
/// inert here — per-task policy knobs come from `tune`, measurement knobs
/// from `measure`.
struct ModelTuneOptions : SessionOptions {
  TuneOptions tune;                  // per-task budget / early stopping
  bool use_transfer = true;          // share records across the model's tasks
  /// Optional tuning log from a previous session: each task's measurer is
  /// preloaded with its matching records, so historical configurations are
  /// revisited for free (resume semantics). Non-owning; may be null.
  const RecordDatabase* resume_from = nullptr;
  /// Optional cross-run record store. Before tuning, each task preloads the
  /// store's records for its workload key (free, counted as `store.hits`
  /// with a `store_hit` trace event) and, with use_transfer, prior-run rows
  /// warm-start the lane's TransferContext; after the lanes join, this
  /// run's fresh records are appended back in model order and flushed
  /// (skipped when the store is read-only). Non-owning; may be null.
  RecordStore* store = nullptr;
  /// Cross-run transfer priors (src/transfer). With `transfer.enabled` and
  /// a store attached, each task builds a prior from the store's *other*
  /// tasks (nearest by embedding, same kind, same target): warm seeds +
  /// HW-aware picks shrink the initialization sweep and a meta-surrogate
  /// blends into BAO scoring with a decaying weight. The prior reads the
  /// store snapshot taken at run start (fresh records append only after the
  /// lanes join), so warm runs are deterministic at any jobs value.
  /// Default-off: without the flag, runs are byte-identical to pre-transfer
  /// builds.
  TransferParams transfer;
  /// Task-level parallelism: number of tuning lanes running concurrently.
  /// Tasks are grouped into lanes by workload kind so the transfer-learning
  /// chain within a kind is preserved — results are bitwise-identical for
  /// every jobs value (see DESIGN.md). 1 = serial (default).
  int jobs = 1;
  /// Per-task measurement options (timing repeats, retry policy). The
  /// defaults reproduce the historical single-attempt behavior.
  MeasureOptions measure;
  /// Schedule-template request, in the TemplateRegistry vocabulary: "" or
  /// "default" for the CUDA-shaped space (byte-identical to pre-registry
  /// runs), "native" for the target family's native template, or an exact
  /// template name. Non-default templates qualify every task key with
  /// "#<template>" and emit a `template_select` trace event per task.
  std::string schedule_template;
  /// Shared measurement backend for every task's session (non-owning; may
  /// be null = serial per-config measurement). The serve daemon points all
  /// concurrent jobs at one ParallelBackend so measurement work multiplexes
  /// over shared lanes; results and traces are backend-invariant, so this
  /// never changes what a run computes.
  MeasureBackend* measure_backend = nullptr;

  // Inherited from SessionOptions (historical field names unchanged):
  //   device_seed — measurement-noise stream
  //   faults      — fault-injection plan: when active, every task's device
  //                 is wrapped in a FaultyDevice with a per-task seed
  //                 derived from faults.seed and the task's model-order
  //                 position, deterministic at any jobs value
  //   trace       — whole-run trace sink: with jobs > 1 each task buffers
  //                 its events in a private MemoryTraceSink replayed in
  //                 model order after the lanes join; serial runs execute
  //                 tasks in model order and emit directly, so the sink sees
  //                 live events and the final bytes are identical for every
  //                 jobs value (non-owning; may be null)
  //   metrics     — metrics registry shared by every task (may be null)
  //   cancel      — cooperative cancellation flag: tasks not yet started are
  //                 skipped, the running session stops at its next round
  //                 boundary, and records measured so far still flush to a
  //                 writable store (non-owning; may be null)
};

/// Tunes every task of `graph` with tuners from `factory` against `target`.
/// Each task attaches the target's hardware-native constraints to its config
/// space; tasks with constraints emit a `constraint_prune` trace event and
/// bump `space.constraint_checked` / `space.constraint_pruned` metrics.
ModelTuneReport tune_model(const Graph& graph, const TargetSpec& target,
                           const TunerFactory& factory,
                           const ModelTuneOptions& options);

/// Compatibility: tunes against a raw GpuSpec (the historical single-backend
/// spelling; identical to passing TargetSpec::from_gpu(spec)).
ModelTuneReport tune_model(const Graph& graph, const GpuSpec& spec,
                           const TunerFactory& factory,
                           const ModelTuneOptions& options);

/// Tunes a single workload (used by the per-layer figures). Returns the
/// tuner's result; `device_seed` controls the measurement noise stream and
/// `options.seed` the tuner's own randomness. `template_request` selects the
/// schedule template in the TemplateRegistry vocabulary ("" = default).
TuneResult tune_workload(const Workload& workload, const TargetSpec& target,
                         Tuner& tuner, const TuneOptions& options,
                         std::uint64_t device_seed,
                         const std::string& template_request = std::string());

TuneResult tune_workload(const Workload& workload, const GpuSpec& spec,
                         Tuner& tuner, const TuneOptions& options,
                         std::uint64_t device_seed);

/// Same, with the noise stream taken from the shared options
/// (`options.device_seed`) — the natural spelling for SessionOptions-style
/// callers.
TuneResult tune_workload(const Workload& workload, const TargetSpec& target,
                         Tuner& tuner, const TuneOptions& options);

TuneResult tune_workload(const Workload& workload, const GpuSpec& spec,
                         Tuner& tuner, const TuneOptions& options);

}  // namespace aal
