#include "pipeline/latency.hpp"

#include <cmath>
#include <memory>

#include "hwsim/fixed_ops.hpp"
#include "measure/tuning_task.hpp"
#include "support/math_util.hpp"
#include "support/stats.hpp"

namespace aal {

namespace {

/// Deterministic fallback schedule for untuned tasks: the first deployable
/// configuration found by a fixed-seed scan (TVM's untuned default is
/// likewise a conservative valid schedule, not flat index 0 — which is the
/// degenerate one-thread tiling and usually unbuildable).
Config fallback_config(const TuningTask& task) {
  Rng rng(0xFA11BACC);
  for (int attempt = 0; attempt < 100000; ++attempt) {
    Config c = task.space().sample(rng);
    if (task.profile(c).valid) return c;
  }
  throw InvalidArgument("no deployable fallback configuration for task " +
                        task.key());
}

}  // namespace

LatencyEvaluator::LatencyEvaluator(const Graph& graph, TargetSpec target,
                                   std::string template_request)
    : graph_(graph),
      target_(std::move(target)),
      template_request_(std::move(template_request)),
      fused_(fuse(graph)) {}

LatencyEvaluator::LatencyEvaluator(const Graph& graph, const GpuSpec& spec)
    : LatencyEvaluator(graph, TargetSpec::from_gpu(spec)) {}

std::vector<LatencyEvaluator::KernelEntry> LatencyEvaluator::kernel_breakdown(
    const std::unordered_map<std::string, std::int64_t>& best_flat_by_task)
    const {
  std::vector<KernelEntry> entries;
  entries.reserve(fused_.groups.size());

  // One TuningTask (space + model) per distinct workload key.
  std::unordered_map<std::string, std::unique_ptr<TuningTask>> tasks;

  for (const FusedGroup& group : fused_.groups) {
    const Node& anchor = graph_.node(group.anchor);
    KernelEntry entry;
    entry.label = anchor.name;

    if (group.workload) {
      entry.tunable = true;
      const std::string key = group.workload->key();
      auto it = tasks.find(key);
      if (it == tasks.end()) {
        it = tasks.emplace(key,
                           std::make_unique<TuningTask>(
                               *group.workload, target_, template_request_))
                 .first;
      }
      const TuningTask& task = *it->second;
      // Tune reports key tasks by TuningTask::key(), which is target- and
      // template-qualified for non-default targets/templates — match on
      // that, not the bare workload key.
      const auto flat_it = best_flat_by_task.find(task.key());
      const Config config = flat_it != best_flat_by_task.end()
                                ? task.space().at(flat_it->second)
                                : fallback_config(task);
      const KernelProfile profile = task.profile(config);
      AAL_CHECK(profile.valid, "config " << config.flat << " for task " << key
                                         << " is not deployable: "
                                         << profile.error);
      entry.base_time_us = profile.base_time_us;
      entry.noise_sigma = profile.noise_sigma;
      // Fused element-wise epilogue rides in the same kernel: charge its
      // extra arithmetic at peak rate (it is negligible next to the conv).
      entry.base_time_us += static_cast<double>(group.epilogue_flops) /
                            (target_.peak_gflops() * 1e3);
    } else {
      entry.base_time_us = fixed_op_latency_us(
          anchor.op, graph_.input_types(anchor.id), target_);
      entry.noise_sigma = fixed_op_noise_sigma();
      if (entry.base_time_us <= 0.0) continue;  // no runtime kernel
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

double LatencyEvaluator::deterministic_latency_ms(
    const std::unordered_map<std::string, std::int64_t>& best_flat_by_task)
    const {
  double total_us = 0.0;
  for (const auto& entry : kernel_breakdown(best_flat_by_task)) {
    total_us += entry.base_time_us;
  }
  return total_us / 1e3;
}

LatencyReport LatencyEvaluator::run(
    const std::unordered_map<std::string, std::int64_t>& best_flat_by_task,
    int runs, std::uint64_t seed) const {
  AAL_CHECK(runs >= 1, "latency evaluation needs at least one run");
  const std::vector<KernelEntry> kernels =
      kernel_breakdown(best_flat_by_task);

  Rng rng(seed);
  LatencyReport report;
  report.samples_ms.reserve(static_cast<std::size_t>(runs));
  RunningStats stats;

  for (int r = 0; r < runs; ++r) {
    // Correlated whole-run drift (clock/thermal): ~0.8% sigma.
    const double drift = std::exp(rng.next_gaussian(0.0, 0.008));
    double total_us = 0.0;
    for (const auto& k : kernels) {
      const double sigma = k.noise_sigma;
      double t = k.base_time_us *
                 std::exp(rng.next_gaussian(-0.5 * sigma * sigma, sigma));
      // Straggler spikes: fragile kernels occasionally hit contention and
      // take several times longer. Probability and size both scale with
      // the kernel's noise sigma, so schedules that are stable per-run are
      // also stable in the tail — the effect behind Table I's variance
      // column.
      const double spike_prob = 4.0 * sigma * sigma / (0.01 + sigma);
      if (rng.next_bernoulli(clamp(spike_prob, 0.0, 0.25))) {
        t *= 1.0 + rng.next_double(5.0, 30.0) * sigma;
      }
      total_us += t;
    }
    const double sample_ms = total_us * drift / 1e3;
    report.samples_ms.push_back(sample_ms);
    stats.add(sample_ms);
  }

  report.mean_ms = stats.mean();
  report.variance = stats.variance();
  report.min_ms = stats.min();
  report.max_ms = stats.max();
  report.runs = static_cast<std::size_t>(runs);
  return report;
}

}  // namespace aal
