#include "ml/sa_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/common.hpp"

namespace aal {

Config SaOptimizer::mutate(const Config& config, Rng& rng) const {
  // Resample one knob (retry if the knob has a single entity).
  std::vector<std::int32_t> choices = config.choices;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const auto knob_idx =
        static_cast<std::size_t>(rng.next_index(space_.num_knobs()));
    const std::int64_t size = space_.knob(knob_idx).size();
    if (size <= 1) continue;
    auto v = static_cast<std::int32_t>(rng.next_index(
        static_cast<std::uint64_t>(size)));
    if (v == choices[knob_idx]) v = (v + 1) % static_cast<std::int32_t>(size);
    choices[knob_idx] = v;
    return space_.make(std::move(choices));
  }
  return config;  // fully degenerate space
}

std::vector<Config> SaOptimizer::maximize(
    const std::function<double(const Config&)>& score, int k, Rng& rng,
    const std::unordered_set<std::int64_t>& exclude) const {
  AAL_CHECK(k >= 1, "k must be >= 1");

  struct Chain {
    Config state;
    double energy;
  };
  std::vector<Chain> chains;
  chains.reserve(static_cast<std::size_t>(params_.num_chains));
  for (int i = 0; i < params_.num_chains; ++i) {
    Config c = space_.sample(rng);
    const double e = score(c);
    chains.push_back(Chain{std::move(c), e});
  }

  // Top-k distinct candidates by score; std::map keyed by (-score, flat)
  // for deterministic ordering.
  std::map<std::pair<double, std::int64_t>, Config> top;
  auto offer = [&](const Config& c, double e) {
    if (exclude.contains(c.flat)) return;
    const std::pair<double, std::int64_t> key{-e, c.flat};
    if (top.contains(key)) return;
    top.emplace(key, c);
    if (top.size() > static_cast<std::size_t>(k)) {
      top.erase(std::prev(top.end()));
    }
  };
  for (const Chain& c : chains) offer(c.state, c.energy);

  // Temperature scale: energies are surrogate scores whose magnitude varies
  // by task, so normalize the acceptance test by a running score spread.
  double spread = 1e-9;
  for (const Chain& c : chains) {
    spread = std::max(spread, std::abs(c.energy));
  }

  for (int iter = 0; iter < params_.iterations; ++iter) {
    const double progress =
        params_.iterations <= 1
            ? 1.0
            : static_cast<double>(iter) / (params_.iterations - 1);
    const double temp =
        params_.temp_start + (params_.temp_end - params_.temp_start) * progress;
    for (Chain& chain : chains) {
      Config proposal = mutate(chain.state, rng);
      if (proposal.flat == chain.state.flat) continue;
      const double e = score(proposal);
      offer(proposal, e);
      const double delta = (e - chain.energy) / (spread * std::max(temp, 1e-6));
      if (delta >= 0.0 || rng.next_double() < std::exp(delta)) {
        chain.state = std::move(proposal);
        chain.energy = e;
      }
    }
  }

  std::vector<Config> out;
  out.reserve(top.size());
  for (auto& [key, config] : top) out.push_back(std::move(config));
  return out;
}

}  // namespace aal
