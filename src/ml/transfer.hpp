// Transfer learning across tuning tasks.
//
// AutoTVM warm-starts a task's cost model with measurements from previously
// tuned tasks. Our feature encoding is width-compatible within a workload
// kind (all conv2d spaces emit the same 20 columns, etc.), so transfer pools
// (features, normalized-score) rows per kind; scores are normalized by each
// source task's best GFLOPS so targets are comparable across layers whose
// absolute throughputs differ by an order of magnitude.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/workload.hpp"
#include "measure/measure.hpp"
#include "measure/tuning_task.hpp"
#include "ml/dataset.hpp"

namespace aal {

class TransferContext {
 public:
  /// Ingests a finished task's measurements.
  void absorb(const TuningTask& task, const std::vector<MeasureResult>& results);

  /// Rows transferable to `task` (from *other* tasks of the same kind and
  /// feature width), capped at `max_rows` most recent. Targets are in
  /// normalized [0, 1]-ish score space.
  Dataset seed_for(const TuningTask& task, std::size_t max_rows = 512) const;

  /// Number of pooled rows for a kind.
  std::size_t pool_size(WorkloadKind kind) const;

 private:
  struct PooledRow {
    std::string source_key;
    std::vector<double> features;
    double normalized_score;
  };
  std::unordered_map<int, std::vector<PooledRow>> pools_;  // by kind
};

}  // namespace aal
