// Small fully-connected neural network regressor.
//
// The paper's discussion notes the framework "can be integrated with more
// optimization methods, e.g., deep learning algorithms"; this is that
// integration path: a from-scratch MLP (Adam, ReLU hidden layers, mini-batch
// SGD, input/target standardization) exposed through the Surrogate
// interface so it drops into AutoTVM's cost-model slot or BAO's bootstrap
// ensemble unchanged. Sized for tuning-scale data — hundreds of rows, ~20
// features — where a [64, 32] network trains in milliseconds.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/surrogate.hpp"
#include "support/rng.hpp"

namespace aal {

struct MlpParams {
  std::vector<int> hidden = {64, 32};
  int epochs = 120;
  int batch_size = 32;
  double learning_rate = 3e-3;
  double weight_decay = 1e-5;
  std::uint64_t seed = 0x51C0FFEEULL;
};

class Mlp {
 public:
  void fit(const Dataset& data, const MlpParams& params);
  double predict(std::span<const double> features) const;
  bool fitted() const { return fitted_; }

 private:
  struct Layer {
    int in = 0, out = 0;
    std::vector<double> weights;  // out x in, row-major
    std::vector<double> bias;     // out
  };

  std::vector<Layer> layers_;
  // Input standardization (column mean/std) and target scaling.
  std::vector<double> feat_mean_, feat_std_;
  double target_mean_ = 0.0, target_std_ = 1.0;
  bool fitted_ = false;
};

class MlpSurrogate final : public Surrogate {
 public:
  explicit MlpSurrogate(MlpParams params) : params_(params) {}
  void fit(const Dataset& data) override { model_.fit(data, params_); }
  double predict(std::span<const double> features) const override {
    return model_.predict(features);
  }
  bool fitted() const override { return model_.fitted(); }
  std::string name() const override { return "mlp"; }

 private:
  MlpParams params_;
  Mlp model_;
};

class MlpSurrogateFactory final : public SurrogateFactory {
 public:
  explicit MlpSurrogateFactory(MlpParams params = {}) : params_(params) {}
  std::unique_ptr<Surrogate> create(std::uint64_t seed) const override {
    MlpParams p = params_;
    p.seed = seed;
    return std::make_unique<MlpSurrogate>(p);
  }
  std::string name() const override { return "mlp"; }

 private:
  MlpParams params_;
};

}  // namespace aal
