// Surrogate (evaluation-function) abstraction.
//
// The paper stresses that BAO "is general enough to handle various types of
// evaluation function f"; this interface is that extension point. The GBDT
// surrogate is the default (AutoTVM's XGBoost role); ridge regression and
// k-nearest-neighbours are provided both as cheap alternatives and for the
// surrogate ablation bench.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"

namespace aal {

class Surrogate {
 public:
  virtual ~Surrogate() = default;

  virtual void fit(const Dataset& data) = 0;
  virtual double predict(std::span<const double> features) const = 0;

  /// Batched prediction over a row-major feature matrix (features.size() ==
  /// rows * width): out[i] = predict(row i), bitwise. The default walks the
  /// rows through predict() — fanning large batches across the shared pool —
  /// so every surrogate family gets the batch API; models with a native
  /// batch engine (GBDT) override it.
  virtual void predict_batch(std::span<const double> features,
                             std::size_t rows, std::span<double> out) const;

  virtual bool fitted() const = 0;
  virtual std::string name() const = 0;
};

/// Factory so tuners can spawn fresh per-bootstrap models; seed gives each
/// model an independent stochastic stream.
class SurrogateFactory {
 public:
  virtual ~SurrogateFactory() = default;
  virtual std::unique_ptr<Surrogate> create(std::uint64_t seed) const = 0;
  virtual std::string name() const = 0;
};

// --- GBDT -------------------------------------------------------------------

class GbdtSurrogate final : public Surrogate {
 public:
  explicit GbdtSurrogate(GbdtParams params) : params_(params) {}
  void fit(const Dataset& data) override { model_.fit(data, params_); }
  double predict(std::span<const double> features) const override {
    return model_.predict(features);
  }
  void predict_batch(std::span<const double> features, std::size_t rows,
                     std::span<double> out) const override {
    model_.predict_batch(features, rows, out);
  }
  bool fitted() const override { return model_.fitted(); }
  const Gbdt& model() const { return model_; }
  std::string name() const override { return "gbdt"; }

 private:
  GbdtParams params_;
  Gbdt model_;
};

class GbdtSurrogateFactory final : public SurrogateFactory {
 public:
  explicit GbdtSurrogateFactory(GbdtParams params = {}) : params_(params) {}
  std::unique_ptr<Surrogate> create(std::uint64_t seed) const override {
    GbdtParams p = params_;
    p.seed = seed;
    return std::make_unique<GbdtSurrogate>(p);
  }
  std::string name() const override { return "gbdt"; }

 private:
  GbdtParams params_;
};

// --- Ridge linear regression -------------------------------------------------

class RidgeSurrogate final : public Surrogate {
 public:
  explicit RidgeSurrogate(double lambda = 1e-2) : lambda_(lambda) {}
  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;
  bool fitted() const override { return fitted_; }
  std::string name() const override { return "ridge"; }

 private:
  double lambda_;
  std::vector<double> weights_;  // includes bias as last entry
  bool fitted_ = false;
};

class RidgeSurrogateFactory final : public SurrogateFactory {
 public:
  explicit RidgeSurrogateFactory(double lambda = 1e-2) : lambda_(lambda) {}
  std::unique_ptr<Surrogate> create(std::uint64_t) const override {
    return std::make_unique<RidgeSurrogate>(lambda_);
  }
  std::string name() const override { return "ridge"; }

 private:
  double lambda_;
};

// --- k-nearest-neighbours -----------------------------------------------------

class KnnSurrogate final : public Surrogate {
 public:
  explicit KnnSurrogate(int k = 5) : k_(k) {}
  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;
  bool fitted() const override { return fitted_; }
  std::string name() const override { return "knn"; }

 private:
  int k_;
  Dataset data_;
  bool fitted_ = false;
};

class KnnSurrogateFactory final : public SurrogateFactory {
 public:
  explicit KnnSurrogateFactory(int k = 5) : k_(k) {}
  std::unique_ptr<Surrogate> create(std::uint64_t) const override {
    return std::make_unique<KnnSurrogate>(k_);
  }
  std::string name() const override { return "knn"; }

 private:
  int k_;
};

}  // namespace aal
