#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/common.hpp"

namespace aal {

namespace {

double distance_sq(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// k-means++ seeding: first center uniform, then proportional to D^2.
std::vector<std::vector<double>> seed_centers(
    const std::vector<std::vector<double>>& points, std::size_t k, Rng& rng) {
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  centers.push_back(points[rng.next_index(points.size())]);
  std::vector<double> dist(points.size(),
                           std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      dist[i] = std::min(dist[i], distance_sq(points[i], centers.back()));
      total += dist[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a center; duplicate one.
      centers.push_back(points[rng.next_index(points.size())]);
      continue;
    }
    double target = rng.next_double() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= dist[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, Rng& rng, const KMeansParams& params) {
  AAL_CHECK(!points.empty(), "kmeans on an empty point set");
  const std::size_t dim = points[0].size();
  for (const auto& p : points) {
    AAL_CHECK(p.size() == dim, "kmeans: ragged point matrix");
  }
  k = std::min(k, points.size());
  AAL_CHECK(k >= 1, "kmeans needs k >= 1");

  KMeansResult result;
  result.centers = seed_centers(points, k, rng);
  result.assignment.assign(points.size(), 0);

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    ++result.iterations;
    // Assignment step.
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = distance_sq(points[i], result.centers[c]);
        if (d < best) {
          best = d;
          result.assignment[i] = static_cast<int>(c);
        }
      }
    }
    // Update step.
    std::vector<std::vector<double>> next(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      for (std::size_t d = 0; d < dim; ++d) next[c][d] += points[i][d];
      ++counts[c];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster on the point farthest from its center.
        std::size_t farthest = 0;
        double worst = -1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d = distance_sq(
              points[i],
              result.centers[static_cast<std::size_t>(result.assignment[i])]);
          if (d > worst) {
            worst = d;
            farthest = i;
          }
        }
        next[c] = points[farthest];
      } else {
        for (std::size_t d = 0; d < dim; ++d) {
          next[c][d] /= static_cast<double>(counts[c]);
        }
      }
      movement += distance_sq(next[c], result.centers[c]);
      result.centers[c] = std::move(next[c]);
    }
    if (movement < params.tolerance) break;
  }

  // Medoids: nearest input point per center.
  result.medoids.assign(k, 0);
  std::vector<double> best(k, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto c = static_cast<std::size_t>(result.assignment[i]);
    const double d = distance_sq(points[i], result.centers[c]);
    if (d < best[c]) {
      best[c] = d;
      result.medoids[c] = i;
    }
  }
  return result;
}

}  // namespace aal
