#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/common.hpp"
#include "support/dense.hpp"

namespace aal {

namespace {

/// k-means++ seeding: first center uniform, then proportional to D^2.
/// Operates on the flattened point matrix; centers land in the row-major
/// `centers` (k x d).
void seed_centers(const dense::Matrix& points, dense::Matrix& centers,
                  Rng& rng) {
  const std::size_t d = points.cols;
  std::size_t filled = 0;
  std::copy_n(points.row(rng.next_index(points.rows)), d, centers.row(0));
  ++filled;
  std::vector<double> dist(points.rows,
                           std::numeric_limits<double>::infinity());
  while (filled < centers.rows) {
    const double* last = centers.row(filled - 1);
    double total = 0.0;
    for (std::size_t i = 0; i < points.rows; ++i) {
      dist[i] = std::min(dist[i], dense::sq_dist(points.row(i), last, d));
      total += dist[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a center; duplicate one.
      std::copy_n(points.row(rng.next_index(points.rows)), d,
                  centers.row(filled));
      ++filled;
      continue;
    }
    double target = rng.next_double() * total;
    std::size_t chosen = points.rows - 1;
    for (std::size_t i = 0; i < points.rows; ++i) {
      target -= dist[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    std::copy_n(points.row(chosen), d, centers.row(filled));
    ++filled;
  }
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, Rng& rng, const KMeansParams& params) {
  AAL_CHECK(!points.empty(), "kmeans on an empty point set");
  const std::size_t dim = points[0].size();
  for (const auto& p : points) {
    AAL_CHECK(p.size() == dim, "kmeans: ragged point matrix");
  }
  k = std::min(k, points.size());
  AAL_CHECK(k >= 1, "kmeans needs k >= 1");

  // Flatten once: the assignment step sweeps points x centers every
  // iteration, and the contiguous layout keeps it streaming instead of
  // pointer-chasing vector<vector> rows.
  const dense::Matrix x = dense::from_rows(points);
  const std::size_t n = x.rows;

  KMeansResult result;
  dense::Matrix centers(k, dim);
  seed_centers(x, centers, rng);
  result.assignment.assign(n, 0);

  dense::Matrix next(k, dim);
  std::vector<std::size_t> counts(k);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    ++result.iterations;
    // Assignment step.
    for (std::size_t i = 0; i < n; ++i) {
      const double* xi = x.row(i);
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = dense::sq_dist(xi, centers.row(c), dim);
        if (d < best) {
          best = d;
          result.assignment[i] = static_cast<int>(c);
        }
      }
    }
    // Update step.
    std::fill(next.data.begin(), next.data.end(), 0.0);
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      dense::axpy(1.0, x.row(i), next.row(c), dim);
      ++counts[c];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster on the point farthest from its center.
        std::size_t farthest = 0;
        double worst = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = dense::sq_dist(
              x.row(i),
              centers.row(static_cast<std::size_t>(result.assignment[i])),
              dim);
          if (d > worst) {
            worst = d;
            farthest = i;
          }
        }
        std::copy_n(x.row(farthest), dim, next.row(c));
      } else {
        for (std::size_t d = 0; d < dim; ++d) {
          next.row(c)[d] /= static_cast<double>(counts[c]);
        }
      }
      movement += dense::sq_dist(next.row(c), centers.row(c), dim);
      std::copy_n(next.row(c), dim, centers.row(c));
    }
    if (movement < params.tolerance) break;
  }

  // Medoids: nearest input point per center.
  result.medoids.assign(k, 0);
  std::vector<double> best(k, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(result.assignment[i]);
    const double d = dense::sq_dist(x.row(i), centers.row(c), dim);
    if (d < best[c]) {
      best[c] = d;
      result.medoids[c] = i;
    }
  }
  result.centers.assign(k, std::vector<double>(dim));
  for (std::size_t c = 0; c < k; ++c) {
    std::copy_n(centers.row(c), dim, result.centers[c].begin());
  }
  return result;
}

}  // namespace aal
