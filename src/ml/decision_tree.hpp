// CART regression tree with histogram-based greedy splits.
//
// Base learner for the gradient-boosted ensemble (the XGBoost stand-in).
// Splits are searched over quantile-binned features (BinnedMatrix), making
// each node an O(rows + bins) scan — the same 'hist' strategy XGBoost and
// LightGBM use — which keeps BAO's per-iteration bootstrap refits cheap.
// Learned thresholds are real feature values, so prediction runs directly
// on raw feature vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/binned.hpp"
#include "ml/dataset.hpp"
#include "support/rng.hpp"

namespace aal {

struct DecisionTreeParams {
  int max_depth = 6;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  /// Fraction of features considered per split; 1.0 = all (deterministic).
  double feature_fraction = 1.0;
  /// Minimum variance-gain to accept a split (guards against noise chasing).
  double min_gain = 1e-12;
};

class DecisionTree {
 public:
  /// Convenience fit: bins `data` internally.
  void fit(const Dataset& data, const DecisionTreeParams& params, Rng& rng);

  /// Fits on pre-binned features (shared across an ensemble) with explicit
  /// per-row targets and a row subset. `rows` is consumed as working
  /// storage (reordered in place).
  void fit_binned(const BinnedMatrix& binned, std::span<const double> targets,
                  std::vector<std::size_t> rows,
                  const DecisionTreeParams& params, Rng& rng);

  double predict(std::span<const double> features) const;

  /// Adds 1 per split node to counts[feature]. counts must be wide enough
  /// for every feature the tree was trained on.
  void accumulate_split_counts(std::span<double> counts) const;

  bool fitted() const { return !nodes_.empty(); }
  std::size_t num_nodes() const { return nodes_.size(); }
  int depth() const;

 private:
  struct TreeNode {
    int feature = -1;          // -1 for leaves
    double threshold = 0.0;    // go left if x[feature] <= threshold
    std::uint8_t bin_threshold = 0;  // split bin during construction
    double value = 0.0;        // leaf prediction
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  struct BuildScratch {
    std::vector<double> hist_sum;
    std::vector<std::int32_t> hist_count;
  };

  std::int32_t build(const BinnedMatrix& binned,
                     std::span<const double> targets,
                     std::vector<std::size_t>& rows, std::size_t begin,
                     std::size_t end, int depth,
                     const DecisionTreeParams& params, Rng& rng,
                     BuildScratch& scratch);

  std::vector<TreeNode> nodes_;
};

}  // namespace aal
