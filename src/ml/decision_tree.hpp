// CART regression tree with histogram-based greedy splits.
//
// Base learner for the gradient-boosted ensemble (the XGBoost stand-in).
// Splits are searched over quantile-binned features (BinnedMatrix), making
// each node an O(rows + bins) scan — the same 'hist' strategy XGBoost and
// LightGBM use — which keeps BAO's per-iteration bootstrap refits cheap.
// Learned thresholds are real feature values, so prediction runs directly
// on raw feature vectors.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ml/binned.hpp"
#include "ml/dataset.hpp"
#include "support/rng.hpp"

namespace aal {

/// Public view/spec of one tree node, used by the flattened scoring engine
/// (ml/flat_forest.hpp) and by tests that synthesize trees directly. Leaves
/// have feature == -1 and left == right == -1.
struct TreeNodeSpec {
  int feature = -1;
  double threshold = 0.0;  // go left if x[feature] <= threshold
  double value = 0.0;      // leaf prediction
  std::int32_t left = -1;
  std::int32_t right = -1;
};

struct DecisionTreeParams {
  int max_depth = 6;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  /// Fraction of features considered per split; 1.0 = all (deterministic).
  double feature_fraction = 1.0;
  /// Minimum variance-gain to accept a split (guards against noise chasing).
  double min_gain = 1e-12;
};

class DecisionTree {
 public:
  /// Convenience fit: bins `data` internally.
  void fit(const Dataset& data, const DecisionTreeParams& params, Rng& rng);

  /// Fits on pre-binned features (shared across an ensemble) with explicit
  /// per-row targets and a row subset. `rows` is consumed as working
  /// storage (reordered in place). When `row_leaf` is non-null, every
  /// (row, leaf value) pair of the training subset is appended to it as
  /// leaves are created — the boosting round-update fast path (rows must be
  /// duplicate-free for the recorded pairs to be meaningful).
  void fit_binned(const BinnedMatrix& binned, std::span<const double> targets,
                  std::vector<std::size_t> rows,
                  const DecisionTreeParams& params, Rng& rng,
                  std::vector<std::pair<std::size_t, double>>* row_leaf =
                      nullptr);

  double predict(std::span<const double> features) const;

  /// Prediction for row `row` of the matrix the tree was fitted on, routed
  /// by the stored bin thresholds (no raw-feature comparison). Only valid
  /// on trees produced by fit/fit_binned against this `binned`; bitwise
  /// equal to predict(raw row) whenever binned.strict_edges() holds.
  double predict_binned(const BinnedMatrix& binned, std::size_t row) const;

  /// Node accessor for the flattened engine; index < num_nodes(). Node 0 is
  /// the root and nodes are stored in DFS preorder.
  TreeNodeSpec node_spec(std::size_t index) const;

  /// Rebuilds a tree from explicit node specs (node 0 is the root; children
  /// must form a valid tree over the given indices). Used by
  /// FlatTree::unflatten and by tests that synthesize adversarial trees.
  /// Construction-time bin thresholds are not representable in specs, so
  /// predict_binned is not valid on the result.
  static DecisionTree from_node_specs(std::span<const TreeNodeSpec> specs);

  /// Adds 1 per split node to counts[feature]. counts must be wide enough
  /// for every feature the tree was trained on.
  void accumulate_split_counts(std::span<double> counts) const;

  bool fitted() const { return !nodes_.empty(); }
  std::size_t num_nodes() const { return nodes_.size(); }
  int depth() const;

 private:
  struct TreeNode {
    int feature = -1;          // -1 for leaves
    double threshold = 0.0;    // go left if x[feature] <= threshold
    std::uint8_t bin_threshold = 0;  // split bin during construction
    double value = 0.0;        // leaf prediction
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  struct BuildScratch {
    std::vector<double> hist_sum;        // all-feature histogram target sums
    std::vector<std::int32_t> hist_cnt;  // all-feature histogram row counts
    std::vector<int> features;           // candidate features per node
    std::vector<int> pool;               // feature-shuffle working storage
    std::vector<std::uint8_t> dropped;   // feature-subsample bitmap
    std::vector<std::pair<std::size_t, double>>* row_leaf = nullptr;
  };

  std::int32_t build(const BinnedMatrix& binned,
                     std::span<const double> targets,
                     std::vector<std::size_t>& rows, std::size_t begin,
                     std::size_t end, int depth,
                     const DecisionTreeParams& params, Rng& rng,
                     BuildScratch& scratch);

  std::vector<TreeNode> nodes_;
};

}  // namespace aal
