#include "ml/flat_forest.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "support/thread_pool.hpp"

namespace aal {

namespace {

/// Rows walked in lockstep per tree visit. The block's compare-and-step
/// chains are independent, so a larger block gives the out-of-order core
/// more latency to hide; 64 is past the knee on current x86 (the cursor
/// and accumulator arrays still fit comfortably in L1).
constexpr std::size_t kRowBlock = 64;

/// Below this many rows the pool's queueing overhead beats the fan-out;
/// thresholds affect wall-clock only, never results (rows are independent).
constexpr std::size_t kParallelMinRows = 4 * kRowBlock;

/// Lockstep walk of `nr` rows (nr <= NB, NB a compile-time constant so the
/// arrays sit on the stack and the inner loops have vectorizer-friendly
/// bounds) against every tree of the forest.
///
/// The step is branchless on purpose: `right + (left - right) * (v <= thr)`
/// selects the child with integer arithmetic instead of a data-dependent
/// branch, which at ~50% split entropy would mispredict constantly and
/// serialize the walk (measured 2x on the full engine). The select is
/// decision-identical to the scalar `v <= thr ? left : right`: for splits
/// the flag picks left/right exactly (NaN compares false -> right, same as
/// the ternary), and for leaves left == right collapses the product to the
/// self-loop regardless of the flag.
template <std::size_t NB>
void walk_block(const FlatNode* nodes, const std::int32_t* roots,
                const std::int32_t* depths, std::size_t num_trees,
                const double* x, std::size_t cols, double lr, double base,
                double scale, std::size_t begin, std::size_t nr,
                double* out) {
  double acc[NB];
  std::int32_t idx[NB];
  std::fill(acc, acc + nr, 0.0);
  const double* const xb = x + begin * cols;
  for (std::size_t t = 0; t < num_trees; ++t) {
    const std::int32_t root = roots[t];
    const int levels = depths[t];
    std::fill(idx, idx + nr, root);
    for (int level = 0; level < levels; ++level) {
      for (std::size_t r = 0; r < nr; ++r) {
        const FlatNode& n = nodes[static_cast<std::size_t>(idx[r])];
        const double v = xb[r * cols + static_cast<std::size_t>(n.feature)];
        const auto le = static_cast<std::int32_t>(v <= n.thr_or_value);
        idx[r] = n.right + (n.left - n.right) * le;
      }
    }
    for (std::size_t r = 0; r < nr; ++r) {
      // Same expression shape as the scalar reference: acc += lr * leaf.
      acc[r] += lr * nodes[static_cast<std::size_t>(idx[r])].thr_or_value;
    }
  }
  for (std::size_t r = 0; r < nr; ++r) out[begin + r] = base + scale * acc[r];
}

bool initial_batch_enabled() {
  const char* env = std::getenv("AAL_SCALAR_SCORING");
  return !(env != nullptr && env[0] == '1');
}

std::atomic<bool> g_batch_enabled{initial_batch_enabled()};

}  // namespace

bool batch_scoring_enabled() {
  return g_batch_enabled.load(std::memory_order_relaxed);
}

void set_batch_scoring_enabled(bool enabled) {
  g_batch_enabled.store(enabled, std::memory_order_relaxed);
}

FlatTree FlatTree::flatten(const DecisionTree& tree) {
  AAL_CHECK(tree.fitted(), "cannot flatten an unfitted tree");
  FlatTree out;
  out.nodes_.resize(tree.num_nodes());

  // BFS from the DFS root; enqueuing left then right makes both children of
  // every split adjacent (right == left + 1).
  std::vector<std::int32_t> src;     // src[i] = DFS index of flat node i
  std::vector<std::int32_t> level;   // BFS depth of flat node i
  src.reserve(tree.num_nodes());
  level.reserve(tree.num_nodes());
  src.push_back(0);
  level.push_back(0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const TreeNodeSpec n = tree.node_spec(static_cast<std::size_t>(src[i]));
    out.depth_ = std::max(out.depth_, level[i]);
    if (n.feature < 0) {
      const auto self = static_cast<std::int32_t>(i);
      out.nodes_[i] = FlatNode{n.value, 0, self, self};
    } else {
      const auto left = static_cast<std::int32_t>(src.size());
      src.push_back(n.left);
      level.push_back(level[i] + 1);
      src.push_back(n.right);
      level.push_back(level[i] + 1);
      out.nodes_[i] = FlatNode{n.threshold, n.feature, left, left + 1};
      out.min_width_ = std::max(out.min_width_, n.feature + 1);
    }
  }
  AAL_ASSERT(src.size() == tree.num_nodes(),
             "flatten visited a different node count than the source tree");
  return out;
}

DecisionTree FlatTree::unflatten() const {
  AAL_CHECK(!nodes_.empty(), "cannot unflatten an empty FlatTree");
  // Rebuild in DFS preorder, the layout fit_binned produces.
  std::vector<TreeNodeSpec> specs;
  specs.reserve(nodes_.size());
  auto rec = [&](auto&& self, std::int32_t flat_idx) -> std::int32_t {
    const FlatNode& n = nodes_[static_cast<std::size_t>(flat_idx)];
    const auto id = static_cast<std::int32_t>(specs.size());
    specs.push_back(TreeNodeSpec{});
    if (n.left == flat_idx) {  // leaf (self-loop)
      specs[static_cast<std::size_t>(id)] =
          TreeNodeSpec{-1, 0.0, n.thr_or_value, -1, -1};
    } else {
      const std::int32_t left = self(self, n.left);
      const std::int32_t right = self(self, n.right);
      specs[static_cast<std::size_t>(id)] =
          TreeNodeSpec{n.feature, n.thr_or_value, 0.0, left, right};
    }
    return id;
  };
  rec(rec, 0);
  return DecisionTree::from_node_specs(specs);
}

double FlatTree::predict(std::span<const double> features) const {
  AAL_CHECK(!nodes_.empty(), "predict on an empty FlatTree");
  std::int32_t idx = 0;
  for (;;) {
    const FlatNode& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.left == idx) return n.thr_or_value;
    AAL_CHECK(static_cast<std::size_t>(n.feature) < features.size(),
              "feature vector narrower than the tree's feature space");
    idx = features[static_cast<std::size_t>(n.feature)] <= n.thr_or_value
              ? n.left
              : n.right;
  }
}

FlatForest FlatForest::build(std::span<const DecisionTree> trees, double base,
                             double scale, double learning_rate) {
  FlatForest out;
  out.base_ = base;
  out.scale_ = scale;
  out.learning_rate_ = learning_rate;
  std::size_t total_nodes = 0;
  for (const DecisionTree& t : trees) total_nodes += t.num_nodes();
  out.nodes_.reserve(total_nodes);
  out.roots_.reserve(trees.size());
  out.depths_.reserve(trees.size());

  for (const DecisionTree& t : trees) {
    const FlatTree flat = FlatTree::flatten(t);
    const auto offset = static_cast<std::int32_t>(out.nodes_.size());
    out.roots_.push_back(offset);
    out.depths_.push_back(flat.depth_);
    for (FlatNode n : flat.nodes_) {
      n.left += offset;  // leaf self-loops shift with the node itself
      n.right += offset;
      out.nodes_.push_back(n);
    }
    out.min_width_ = std::max(out.min_width_, flat.min_width_);
  }
  return out;
}

double FlatForest::predict(std::span<const double> features) const {
  double acc = 0.0;
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    std::int32_t idx = roots_[t];
    for (;;) {
      const FlatNode& n = nodes_[static_cast<std::size_t>(idx)];
      if (n.left == idx) {
        acc += learning_rate_ * n.thr_or_value;
        break;
      }
      AAL_CHECK(static_cast<std::size_t>(n.feature) < features.size(),
                "feature vector narrower than the forest's feature space");
      idx = features[static_cast<std::size_t>(n.feature)] <= n.thr_or_value
                ? n.left
                : n.right;
    }
  }
  return base_ + scale_ * acc;
}

void FlatForest::predict_batch(std::span<const double> features,
                               std::size_t rows,
                               std::span<double> out) const {
  AAL_CHECK(out.size() >= rows, "output span narrower than the batch");
  if (rows == 0) return;
  AAL_CHECK(features.size() % rows == 0,
            "feature span is not a whole number of rows");
  const std::size_t cols = features.size() / rows;
  AAL_CHECK(cols >= static_cast<std::size_t>(min_width_),
            "feature matrix narrower than the forest's feature space");

  // Hoist everything the kernel touches into locals: the walk stores into a
  // cursor array every step, and letting the compiler prove those stores
  // cannot alias the member vectors' data pointers is what keeps the loads
  // hoisted out of the inner loop.
  const FlatNode* const nodes = nodes_.data();
  const std::int32_t* const roots = roots_.data();
  const std::int32_t* const depths = depths_.data();
  const std::size_t num_trees = roots_.size();
  const double* const x = features.data();
  const double lr = learning_rate_;
  const double base = base_;
  const double scale = scale_;
  double* const o = out.data();

  const std::size_t num_blocks = (rows + kRowBlock - 1) / kRowBlock;
  const auto run_one = [=](std::size_t blk) {
    const std::size_t begin = blk * kRowBlock;
    walk_block<kRowBlock>(nodes, roots, depths, num_trees, x, cols, lr, base,
                          scale, begin, std::min(kRowBlock, rows - begin), o);
  };
  if (rows >= kParallelMinRows && ThreadPool::shared().size() > 1) {
    ThreadPool::shared().parallel_for(num_blocks, run_one);
  } else {
    for (std::size_t blk = 0; blk < num_blocks; ++blk) run_one(blk);
  }
}

}  // namespace aal
