#include "ml/binned.hpp"

#include <algorithm>
#include <cmath>

namespace aal {

BinnedMatrix BinnedMatrix::build(const Dataset& data, int max_bins) {
  AAL_CHECK(max_bins >= 2 && max_bins <= 256, "max_bins out of range");
  BinnedMatrix m;
  m.num_rows_ = data.num_rows();
  m.num_features_ = data.num_features();
  m.bins_.assign(m.num_rows_ * m.num_features_, 0);
  m.edges_.resize(m.num_features_);

  std::vector<double> column(m.num_rows_);
  for (std::size_t f = 0; f < m.num_features_; ++f) {
    for (std::size_t r = 0; r < m.num_rows_; ++r) column[r] = data.row(r)[f];
    std::vector<double> sorted = column;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    std::vector<double>& edges = m.edges_[f];
    if (sorted.size() <= static_cast<std::size_t>(max_bins)) {
      // One bin per distinct value; edges at midpoints.
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        edges.push_back(0.5 * (sorted[i] + sorted[i + 1]));
      }
    } else {
      // Quantile edges over distinct values.
      for (int b = 1; b < max_bins; ++b) {
        const double pos = static_cast<double>(b) *
                           static_cast<double>(sorted.size() - 1) /
                           static_cast<double>(max_bins);
        const auto lo = static_cast<std::size_t>(pos);
        const double edge = 0.5 * (sorted[lo] +
                                   sorted[std::min(lo + 1, sorted.size() - 1)]);
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }

    for (std::size_t r = 0; r < m.num_rows_; ++r) {
      const auto it =
          std::upper_bound(edges.begin(), edges.end(), column[r]);
      m.bins_[r * m.num_features_ + f] =
          static_cast<std::uint8_t>(it - edges.begin());
    }
  }
  return m;
}

}  // namespace aal
