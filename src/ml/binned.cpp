#include "ml/binned.hpp"

#include <algorithm>
#include <cmath>

namespace aal {

BinnedMatrix BinnedMatrix::build(const Dataset& data, int max_bins) {
  AAL_CHECK(max_bins >= 2 && max_bins <= 256, "max_bins out of range");
  BinnedMatrix m;
  m.num_rows_ = data.num_rows();
  m.num_features_ = data.num_features();
  m.bins_.assign(m.num_rows_ * m.num_features_, 0);
  m.edges_.resize(m.num_features_);

  std::vector<double> column(m.num_rows_);
  for (std::size_t f = 0; f < m.num_features_; ++f) {
    for (std::size_t r = 0; r < m.num_rows_; ++r) column[r] = data.row(r)[f];
    std::vector<double> sorted = column;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    std::vector<double>& edges = m.edges_[f];
    // An edge is "strict" when it falls strictly between the two distinct
    // values whose midpoint it is; see strict_edges(). The check is purely
    // observational — edge construction is unchanged.
    const auto check_strict = [&](double lo_v, double edge, double hi_v) {
      if (!(lo_v < edge && edge < hi_v)) m.strict_edges_ = false;
    };
    if (sorted.size() <= static_cast<std::size_t>(max_bins)) {
      // One bin per distinct value; edges at midpoints.
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        const double edge = 0.5 * (sorted[i] + sorted[i + 1]);
        check_strict(sorted[i], edge, sorted[i + 1]);
        edges.push_back(edge);
      }
    } else {
      // Quantile edges over distinct values.
      for (int b = 1; b < max_bins; ++b) {
        const double pos = static_cast<double>(b) *
                           static_cast<double>(sorted.size() - 1) /
                           static_cast<double>(max_bins);
        const auto lo = static_cast<std::size_t>(pos);
        const double hi_v = sorted[std::min(lo + 1, sorted.size() - 1)];
        const double edge = 0.5 * (sorted[lo] + hi_v);
        check_strict(sorted[lo], edge, hi_v);
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }

    for (std::size_t r = 0; r < m.num_rows_; ++r) {
      const auto it =
          std::upper_bound(edges.begin(), edges.end(), column[r]);
      m.bins_[r * m.num_features_ + f] =
          static_cast<std::uint8_t>(it - edges.begin());
    }
  }

  // Derived lookup structure for split search: all-feature histogram cell
  // offsets, precomputed per-(row, feature) cell indices and a feature-major
  // transpose of the bin matrix (see the accessors in binned.hpp).
  m.full_offsets_.resize(m.num_features_ + 1);
  for (std::size_t f = 0; f < m.num_features_; ++f) {
    m.full_offsets_[f] = m.total_bins_;
    m.total_bins_ += m.bin_count(f);
  }
  m.full_offsets_[m.num_features_] = m.total_bins_;
  m.cells_.resize(m.num_rows_ * m.num_features_);
  m.bins_t_.resize(m.num_rows_ * m.num_features_);
  for (std::size_t r = 0; r < m.num_rows_; ++r) {
    for (std::size_t f = 0; f < m.num_features_; ++f) {
      const std::uint8_t b = m.bins_[r * m.num_features_ + f];
      m.cells_[r * m.num_features_ + f] =
          static_cast<std::uint32_t>(m.full_offsets_[f]) + b;
      m.bins_t_[f * m.num_rows_ + r] = b;
    }
  }
  return m;
}

}  // namespace aal
