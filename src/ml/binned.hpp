// Feature binning for histogram-based tree learning (the same trick XGBoost
// 'hist' / LightGBM use). Quantizing each feature into <= 64 bins once per
// ensemble fit turns every split search into an O(rows + bins) histogram
// scan, which is what makes BAO's per-iteration bootstrap refits affordable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace aal {

class BinnedMatrix {
 public:
  static constexpr int kMaxBins = 64;

  BinnedMatrix() = default;

  /// Quantizes `data` column-wise into at most max_bins quantile bins.
  static BinnedMatrix build(const Dataset& data, int max_bins = kMaxBins);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_features() const { return num_features_; }

  /// Bin index of (row, feature).
  std::uint8_t bin(std::size_t row, std::size_t feature) const {
    return bins_[row * num_features_ + feature];
  }

  /// Contiguous bin column of one feature (indexed by row). Split
  /// partitioning tests one feature across many rows; the transposed copy
  /// turns that into a unit-stride scan.
  const std::uint8_t* feature_bins(std::size_t feature) const {
    return bins_t_.data() + feature * num_rows_;
  }

  /// Total histogram cells across all features (sum of bin_count).
  std::int32_t total_bins() const { return total_bins_; }

  /// First histogram cell of a feature in the all-feature layout.
  std::int32_t full_offset(std::size_t feature) const {
    return full_offsets_[feature];
  }

  /// Row-major precomputed histogram cell indices: cell_row(r)[f] ==
  /// full_offset(f) + bin(r, f). Lets split search accumulate every
  /// feature's histogram with one indexed add per (row, feature).
  const std::uint32_t* cell_row(std::size_t row) const {
    return cells_.data() + row * num_features_;
  }

  /// Number of bins actually used for a feature (>= 1).
  int bin_count(std::size_t feature) const {
    return static_cast<int>(edges_[feature].size()) + 1;
  }

  /// Real-valued threshold separating bin b from bin b+1 of a feature
  /// (midpoint of the quantile edge), so trained trees predict directly on
  /// raw feature vectors.
  double threshold_after_bin(std::size_t feature, int b) const {
    return edges_[feature][static_cast<std::size_t>(b)];
  }

  /// True when every edge lies strictly between its two generating data
  /// values. Then no data value in this matrix equals any edge, which makes
  /// bin routing (bin(x) <= b) and threshold routing (x <= edge[b]) agree
  /// on every row — the precondition for the boosting round-update fast
  /// path in Gbdt::fit. A midpoint of two adjacent doubles can round onto
  /// one of them (or hit a non-finite value), in which case this is false
  /// and callers must route by raw thresholds.
  bool strict_edges() const { return strict_edges_; }

 private:
  std::size_t num_rows_ = 0;
  std::size_t num_features_ = 0;
  std::vector<std::uint8_t> bins_;            // row-major
  std::vector<std::uint8_t> bins_t_;          // feature-major transpose
  std::vector<std::uint32_t> cells_;          // row-major all-feature cells
  std::vector<std::int32_t> full_offsets_;    // per feature, + total sentinel
  std::int32_t total_bins_ = 0;
  std::vector<std::vector<double>> edges_;    // per feature, ascending
  bool strict_edges_ = true;
};

}  // namespace aal
