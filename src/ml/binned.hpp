// Feature binning for histogram-based tree learning (the same trick XGBoost
// 'hist' / LightGBM use). Quantizing each feature into <= 64 bins once per
// ensemble fit turns every split search into an O(rows + bins) histogram
// scan, which is what makes BAO's per-iteration bootstrap refits affordable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace aal {

class BinnedMatrix {
 public:
  static constexpr int kMaxBins = 64;

  BinnedMatrix() = default;

  /// Quantizes `data` column-wise into at most max_bins quantile bins.
  static BinnedMatrix build(const Dataset& data, int max_bins = kMaxBins);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_features() const { return num_features_; }

  /// Bin index of (row, feature).
  std::uint8_t bin(std::size_t row, std::size_t feature) const {
    return bins_[row * num_features_ + feature];
  }

  /// Number of bins actually used for a feature (>= 1).
  int bin_count(std::size_t feature) const {
    return static_cast<int>(edges_[feature].size()) + 1;
  }

  /// Real-valued threshold separating bin b from bin b+1 of a feature
  /// (midpoint of the quantile edge), so trained trees predict directly on
  /// raw feature vectors.
  double threshold_after_bin(std::size_t feature, int b) const {
    return edges_[feature][static_cast<std::size_t>(b)];
  }

 private:
  std::size_t num_rows_ = 0;
  std::size_t num_features_ = 0;
  std::vector<std::uint8_t> bins_;            // row-major
  std::vector<std::vector<double>> edges_;    // per feature, ascending
};

}  // namespace aal
