#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace aal {

namespace {

struct SplitResult {
  int feature = -1;
  std::uint8_t bin = 0;   // go left if bin(x) <= bin
  double gain = 0.0;
  bool found() const { return feature >= 0; }
};

/// Histogram split search over rows[begin,end). Histograms for every
/// candidate feature are accumulated in one row-major pass (the bin matrix
/// is row-major, so this streams memory instead of striding per feature).
SplitResult find_best_split(const BinnedMatrix& binned,
                            std::span<const double> targets,
                            std::span<const std::size_t> rows,
                            const std::vector<int>& features,
                            int min_samples_leaf,
                            std::vector<double>& hist_sum,
                            std::vector<std::int32_t>& hist_count) {
  const std::size_t n = rows.size();
  SplitResult best;

  double total_sum = 0.0;
  for (std::size_t r : rows) total_sum += targets[r];
  const double parent_term =
      total_sum * total_sum / static_cast<double>(n);

  constexpr int kBins = BinnedMatrix::kMaxBins;
  hist_sum.assign(features.size() * kBins, 0.0);
  hist_count.assign(features.size() * kBins, 0);

  for (std::size_t r : rows) {
    const double y = targets[r];
    for (std::size_t fi = 0; fi < features.size(); ++fi) {
      const auto f = static_cast<std::size_t>(features[fi]);
      const std::uint8_t b = binned.bin(r, f);
      hist_sum[fi * kBins + b] += y;
      ++hist_count[fi * kBins + b];
    }
  }

  for (std::size_t fi = 0; fi < features.size(); ++fi) {
    const int f = features[fi];
    const int num_bins = binned.bin_count(static_cast<std::size_t>(f));
    if (num_bins < 2) continue;
    double left_sum = 0.0;
    std::int64_t left_n = 0;
    for (int b = 0; b + 1 < num_bins; ++b) {
      left_sum += hist_sum[fi * kBins + b];
      left_n += hist_count[fi * kBins + b];
      if (left_n < min_samples_leaf) continue;
      const std::int64_t right_n = static_cast<std::int64_t>(n) - left_n;
      if (right_n < min_samples_leaf) break;
      const double right_sum = total_sum - left_sum;
      // Variance-reduction gain (up to constants).
      const double gain = left_sum * left_sum / static_cast<double>(left_n) +
                          right_sum * right_sum / static_cast<double>(right_n) -
                          parent_term;
      if (gain > best.gain) {
        best.feature = f;
        best.bin = static_cast<std::uint8_t>(b);
        best.gain = gain;
      }
    }
  }
  return best;
}

}  // namespace

void DecisionTree::fit(const Dataset& data, const DecisionTreeParams& params,
                       Rng& rng) {
  AAL_CHECK(!data.empty(), "cannot fit a tree on an empty dataset");
  const BinnedMatrix binned = BinnedMatrix::build(data);
  std::vector<std::size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  std::vector<double> targets(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) targets[i] = data.target(i);
  fit_binned(binned, targets, std::move(rows), params, rng);
}

void DecisionTree::fit_binned(const BinnedMatrix& binned,
                              std::span<const double> targets,
                              std::vector<std::size_t> rows,
                              const DecisionTreeParams& params, Rng& rng) {
  AAL_CHECK(!rows.empty(), "cannot fit a tree on zero rows");
  AAL_CHECK(targets.size() == binned.num_rows(),
            "target vector size mismatch");
  nodes_.clear();
  BuildScratch scratch;
  build(binned, targets, rows, 0, rows.size(), 0, params, rng, scratch);
}

std::int32_t DecisionTree::build(const BinnedMatrix& binned,
                                 std::span<const double> targets,
                                 std::vector<std::size_t>& rows,
                                 std::size_t begin, std::size_t end, int depth,
                                 const DecisionTreeParams& params, Rng& rng,
                                 BuildScratch& scratch) {
  const std::size_t n = end - begin;
  AAL_ASSERT(n > 0, "empty node in tree build");

  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += targets[rows[i]];
  const double mean = sum / static_cast<double>(n);

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(TreeNode{-1, 0.0, 0, mean, -1, -1});

  if (depth >= params.max_depth ||
      n < static_cast<std::size_t>(params.min_samples_split)) {
    return node_id;
  }

  std::vector<int> features(binned.num_features());
  std::iota(features.begin(), features.end(), 0);
  if (params.feature_fraction < 1.0) {
    const auto keep = static_cast<std::size_t>(std::max(
        1.0, std::ceil(params.feature_fraction *
                       static_cast<double>(features.size()))));
    rng.shuffle(features);
    features.resize(keep);
    std::sort(features.begin(), features.end());
  }

  const SplitResult split = find_best_split(
      binned, targets, std::span<const std::size_t>(rows).subspan(begin, n),
      features, params.min_samples_leaf, scratch.hist_sum, scratch.hist_count);
  if (!split.found() || split.gain < params.min_gain) return node_id;

  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
        return binned.bin(r, static_cast<std::size_t>(split.feature)) <=
               split.bin;
      });
  const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
  AAL_ASSERT(mid > begin && mid < end, "degenerate partition in tree build");

  nodes_[static_cast<std::size_t>(node_id)].feature = split.feature;
  nodes_[static_cast<std::size_t>(node_id)].bin_threshold = split.bin;
  nodes_[static_cast<std::size_t>(node_id)].threshold =
      binned.threshold_after_bin(static_cast<std::size_t>(split.feature),
                                 split.bin);
  const std::int32_t left =
      build(binned, targets, rows, begin, mid, depth + 1, params, rng, scratch);
  const std::int32_t right =
      build(binned, targets, rows, mid, end, depth + 1, params, rng, scratch);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::predict(std::span<const double> features) const {
  AAL_CHECK(fitted(), "predict on an unfitted tree");
  std::int32_t node = 0;
  for (;;) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature < 0) return n.value;
    AAL_CHECK(static_cast<std::size_t>(n.feature) < features.size(),
              "feature vector narrower than training data");
    node = features[static_cast<std::size_t>(n.feature)] <= n.threshold
               ? n.left
               : n.right;
  }
}

void DecisionTree::accumulate_split_counts(std::span<double> counts) const {
  for (const TreeNode& n : nodes_) {
    if (n.feature < 0) continue;
    AAL_CHECK(static_cast<std::size_t>(n.feature) < counts.size(),
              "split-count buffer narrower than the tree's feature space");
    counts[static_cast<std::size_t>(n.feature)] += 1.0;
  }
}

int DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::int32_t, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const TreeNode& n = nodes_[static_cast<std::size_t>(id)];
    if (n.feature >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

}  // namespace aal
