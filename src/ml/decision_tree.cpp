#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace aal {

namespace {

struct SplitResult {
  int feature = -1;
  std::uint8_t bin = 0;   // go left if bin(x) <= bin
  double gain = 0.0;
  bool found() const { return feature >= 0; }
};

}  // namespace

/// Histogram split search over rows[begin,end). One row-major pass
/// accumulates the target-sum and row-count histograms of EVERY feature
/// through the binned matrix's precomputed all-feature cell indices (split
/// sum/count arrays keep the serial floating-point add chain short); the
/// scan then walks only the candidate features at their fixed offsets.
/// Cells owned by non-candidate features are accumulated but never read —
/// each scanned cell still receives exactly the adds it received under the
/// per-candidate layout, in the same row order, so the chosen split is
/// bitwise-unchanged. `total_sum` is the node's target sum, accumulated by
/// the caller over the same rows in the same order.
static SplitResult find_best_split(const BinnedMatrix& binned,
                                   std::span<const double> targets,
                                   std::span<const std::size_t> rows,
                                   const std::vector<int>& features,
                                   int min_samples_leaf, double total_sum,
                                   std::vector<double>& hist_sum,
                                   std::vector<std::int32_t>& hist_cnt) {
  const std::size_t n = rows.size();
  const std::size_t num_features = binned.num_features();
  SplitResult best;
  const double parent_term =
      total_sum * total_sum / static_cast<double>(n);

  hist_sum.assign(static_cast<std::size_t>(binned.total_bins()), 0.0);
  hist_cnt.assign(static_cast<std::size_t>(binned.total_bins()), 0);

  for (std::size_t r : rows) {
    const double y = targets[r];
    const std::uint32_t* cells = binned.cell_row(r);
    for (std::size_t f = 0; f < num_features; ++f) {
      const std::uint32_t c = cells[f];
      hist_sum[c] += y;
      ++hist_cnt[c];
    }
  }

  for (const int f : features) {
    const int num_bins = binned.bin_count(static_cast<std::size_t>(f));
    if (num_bins < 2) continue;
    const auto base =
        static_cast<std::size_t>(binned.full_offset(static_cast<std::size_t>(f)));
    const double* sums = hist_sum.data() + base;
    const std::int32_t* counts = hist_cnt.data() + base;
    double left_sum = 0.0;
    std::int64_t left_n = 0;
    for (int b = 0; b + 1 < num_bins; ++b) {
      const std::int32_t cnt = counts[b];
      // An empty bin leaves the left accumulators untouched (its sum is
      // exactly +0.0 and left_sum never holds -0.0), so its boundary's gain
      // equals the previous boundary's and `>` keeps the earlier argmax —
      // skipping it cannot change the selected split.
      if (cnt == 0) continue;
      left_sum += sums[b];
      left_n += cnt;
      if (left_n < min_samples_leaf) continue;
      const std::int64_t right_n = static_cast<std::int64_t>(n) - left_n;
      if (right_n < min_samples_leaf) break;
      const double right_sum = total_sum - left_sum;
      // Variance-reduction gain (up to constants).
      const double gain = left_sum * left_sum / static_cast<double>(left_n) +
                          right_sum * right_sum / static_cast<double>(right_n) -
                          parent_term;
      if (gain > best.gain) {
        best.feature = f;
        best.bin = static_cast<std::uint8_t>(b);
        best.gain = gain;
      }
    }
  }
  return best;
}

void DecisionTree::fit(const Dataset& data, const DecisionTreeParams& params,
                       Rng& rng) {
  AAL_CHECK(!data.empty(), "cannot fit a tree on an empty dataset");
  const BinnedMatrix binned = BinnedMatrix::build(data);
  std::vector<std::size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  std::vector<double> targets(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) targets[i] = data.target(i);
  fit_binned(binned, targets, std::move(rows), params, rng);
}

void DecisionTree::fit_binned(
    const BinnedMatrix& binned, std::span<const double> targets,
    std::vector<std::size_t> rows, const DecisionTreeParams& params, Rng& rng,
    std::vector<std::pair<std::size_t, double>>* row_leaf) {
  AAL_CHECK(!rows.empty(), "cannot fit a tree on zero rows");
  AAL_CHECK(targets.size() == binned.num_rows(),
            "target vector size mismatch");
  nodes_.clear();
  nodes_.reserve(std::min<std::size_t>(2 * rows.size(), 512));
  // Reused across the many per-round fits of an ensemble; thread_local so
  // pool workers fitting bootstrap members in parallel do not share it.
  thread_local BuildScratch scratch;
  scratch.row_leaf = row_leaf;
  if (row_leaf != nullptr) {
    row_leaf->clear();
    row_leaf->reserve(rows.size());
  }
  build(binned, targets, rows, 0, rows.size(), 0, params, rng, scratch);
}

std::int32_t DecisionTree::build(const BinnedMatrix& binned,
                                 std::span<const double> targets,
                                 std::vector<std::size_t>& rows,
                                 std::size_t begin, std::size_t end, int depth,
                                 const DecisionTreeParams& params, Rng& rng,
                                 BuildScratch& scratch) {
  const std::size_t n = end - begin;
  AAL_ASSERT(n > 0, "empty node in tree build");

  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += targets[rows[i]];
  const double mean = sum / static_cast<double>(n);

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(TreeNode{-1, 0.0, 0, mean, -1, -1});

  const auto record_leaf = [&] {
    if (scratch.row_leaf == nullptr) return;
    for (std::size_t i = begin; i < end; ++i) {
      scratch.row_leaf->emplace_back(rows[i], mean);
    }
  };

  if (depth >= params.max_depth ||
      n < static_cast<std::size_t>(params.min_samples_split)) {
    record_leaf();
    return node_id;
  }

  std::vector<int>& features = scratch.features;
  const std::size_t num_features = binned.num_features();
  if (params.feature_fraction < 1.0) {
    const auto keep = static_cast<std::size_t>(std::max(
        1.0, std::ceil(params.feature_fraction *
                       static_cast<double>(num_features))));
    // Fisher–Yates over the full feature list (the same RNG draws as a
    // plain shuffle), then rebuild the kept prefix in ascending order by
    // scanning a dropped-feature bitmap — equivalent to sorting the kept
    // prefix, without the per-node std::sort.
    std::vector<int>& pool = scratch.pool;
    pool.resize(num_features);
    std::iota(pool.begin(), pool.end(), 0);
    rng.shuffle(pool);
    std::vector<std::uint8_t>& dropped = scratch.dropped;
    dropped.assign(num_features, 0);
    for (std::size_t i = keep; i < num_features; ++i) {
      dropped[static_cast<std::size_t>(pool[i])] = 1;
    }
    features.clear();
    for (std::size_t f = 0; f < num_features; ++f) {
      if (!dropped[f]) features.push_back(static_cast<int>(f));
    }
  } else {
    features.resize(num_features);
    std::iota(features.begin(), features.end(), 0);
  }

  const SplitResult split = find_best_split(
      binned, targets, std::span<const std::size_t>(rows).subspan(begin, n),
      features, params.min_samples_leaf, sum, scratch.hist_sum,
      scratch.hist_cnt);
  if (!split.found() || split.gain < params.min_gain) {
    record_leaf();
    return node_id;
  }

  // Unit-stride partition over the transposed bin column (same predicate
  // values as bin(r, f), so the resulting row order is unchanged).
  const std::uint8_t* split_bins =
      binned.feature_bins(static_cast<std::size_t>(split.feature));
  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t r) { return split_bins[r] <= split.bin; });
  const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
  AAL_ASSERT(mid > begin && mid < end, "degenerate partition in tree build");

  nodes_[static_cast<std::size_t>(node_id)].feature = split.feature;
  nodes_[static_cast<std::size_t>(node_id)].bin_threshold = split.bin;
  nodes_[static_cast<std::size_t>(node_id)].threshold =
      binned.threshold_after_bin(static_cast<std::size_t>(split.feature),
                                 split.bin);
  const std::int32_t left =
      build(binned, targets, rows, begin, mid, depth + 1, params, rng, scratch);
  const std::int32_t right =
      build(binned, targets, rows, mid, end, depth + 1, params, rng, scratch);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::predict(std::span<const double> features) const {
  AAL_CHECK(fitted(), "predict on an unfitted tree");
  std::int32_t node = 0;
  for (;;) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature < 0) return n.value;
    AAL_CHECK(static_cast<std::size_t>(n.feature) < features.size(),
              "feature vector narrower than training data");
    node = features[static_cast<std::size_t>(n.feature)] <= n.threshold
               ? n.left
               : n.right;
  }
}

double DecisionTree::predict_binned(const BinnedMatrix& binned,
                                    std::size_t row) const {
  AAL_CHECK(fitted(), "predict_binned on an unfitted tree");
  AAL_CHECK(row < binned.num_rows(), "row out of range in predict_binned");
  std::int32_t node = 0;
  for (;;) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature < 0) return n.value;
    node = binned.bin(row, static_cast<std::size_t>(n.feature)) <=
                   n.bin_threshold
               ? n.left
               : n.right;
  }
}

TreeNodeSpec DecisionTree::node_spec(std::size_t index) const {
  AAL_CHECK(index < nodes_.size(), "node index out of range");
  const TreeNode& n = nodes_[index];
  return TreeNodeSpec{n.feature, n.threshold, n.value, n.left, n.right};
}

DecisionTree DecisionTree::from_node_specs(
    std::span<const TreeNodeSpec> specs) {
  AAL_CHECK(!specs.empty(), "a tree needs at least one node");
  DecisionTree out;
  out.nodes_.reserve(specs.size());
  std::vector<int> referenced(specs.size(), 0);
  for (const TreeNodeSpec& s : specs) {
    if (s.feature < 0) {
      AAL_CHECK(s.left == -1 && s.right == -1,
                "leaf spec must have no children");
    } else {
      const auto size = static_cast<std::int32_t>(specs.size());
      AAL_CHECK(s.left >= 0 && s.left < size && s.right >= 0 &&
                    s.right < size && s.left != s.right,
                "split spec children out of range");
      ++referenced[static_cast<std::size_t>(s.left)];
      ++referenced[static_cast<std::size_t>(s.right)];
    }
    out.nodes_.push_back(
        TreeNode{s.feature, s.threshold, 0, s.value, s.left, s.right});
  }
  AAL_CHECK(referenced[0] == 0, "node 0 must be the root");
  for (std::size_t i = 1; i < specs.size(); ++i) {
    AAL_CHECK(referenced[i] == 1,
              "every non-root node must have exactly one parent");
  }
  // Reachability from the root (one-parent counting alone admits cycles in
  // disconnected components).
  std::size_t visited = 0;
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const TreeNodeSpec& s = specs[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    ++visited;
    if (s.feature >= 0) {
      stack.push_back(s.left);
      stack.push_back(s.right);
    }
  }
  AAL_CHECK(visited == specs.size(),
            "node specs contain nodes unreachable from the root");
  return out;
}

void DecisionTree::accumulate_split_counts(std::span<double> counts) const {
  for (const TreeNode& n : nodes_) {
    if (n.feature < 0) continue;
    AAL_CHECK(static_cast<std::size_t>(n.feature) < counts.size(),
              "split-count buffer narrower than the tree's feature space");
    counts[static_cast<std::size_t>(n.feature)] += 1.0;
  }
}

int DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::int32_t, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const TreeNode& n = nodes_[static_cast<std::size_t>(id)];
    if (n.feature >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

}  // namespace aal
