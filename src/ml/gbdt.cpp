#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/stats.hpp"

namespace aal {

void Gbdt::fit(const Dataset& data, const GbdtParams& params) {
  AAL_CHECK(!data.empty(), "cannot fit GBDT on an empty dataset");
  trees_.clear();
  learning_rate_ = params.learning_rate;

  base_ = mean(data.targets());
  scale_ = std::max(stddev(data.targets()), 1e-9);

  const std::size_t n = data.num_rows();
  // Bin once; every boosting round reuses the quantized features.
  const BinnedMatrix binned = BinnedMatrix::build(data);

  // Residuals in normalized target space.
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) {
    residual[i] = (data.target(i) - base_) / scale_;
  }
  std::vector<double> prediction(n, 0.0);
  std::vector<double> gradient(n, 0.0);

  Rng rng(params.seed);
  DecisionTreeParams tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.min_samples_leaf = params.min_samples_leaf;
  tree_params.feature_fraction = params.feature_fraction;

  for (int t = 0; t < params.num_trees; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      gradient[i] = residual[i] - prediction[i];
    }

    // Rows for this round (without replacement — stochastic boosting).
    std::vector<std::size_t> rows;
    if (params.row_subsample < 1.0 && n > 8) {
      const auto k = static_cast<std::size_t>(std::max(
          4.0, std::floor(params.row_subsample * static_cast<double>(n))));
      rows = rng.sample_without_replacement(n, k);
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), std::size_t{0});
    }

    DecisionTree tree;
    tree.fit_binned(binned, gradient, std::move(rows), tree_params, rng);

    for (std::size_t i = 0; i < n; ++i) {
      prediction[i] += learning_rate_ * tree.predict(data.row(i));
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double Gbdt::predict(std::span<const double> features) const {
  AAL_CHECK(fitted_, "predict on an unfitted GBDT");
  double acc = 0.0;
  for (const DecisionTree& tree : trees_) {
    acc += learning_rate_ * tree.predict(features);
  }
  return base_ + scale_ * acc;
}

std::vector<double> Gbdt::predict_many(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    out.push_back(predict(data.row(i)));
  }
  return out;
}

std::vector<double> Gbdt::feature_importance(
    std::size_t num_features) const {
  AAL_CHECK(fitted_, "feature_importance on an unfitted GBDT");
  std::vector<double> counts(num_features, 0.0);
  for (const DecisionTree& tree : trees_) {
    tree.accumulate_split_counts(counts);
  }
  double total = 0.0;
  for (double c : counts) total += c;
  if (total > 0.0) {
    for (double& c : counts) c /= total;
  }
  return counts;
}

}  // namespace aal
