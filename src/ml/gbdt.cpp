#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/stats.hpp"

namespace aal {

void Gbdt::fit(const Dataset& data, const GbdtParams& params) {
  AAL_CHECK(!data.empty(), "cannot fit GBDT on an empty dataset");
  trees_.clear();
  learning_rate_ = params.learning_rate;

  base_ = mean(data.targets());
  scale_ = std::max(stddev(data.targets()), 1e-9);

  const std::size_t n = data.num_rows();
  // Bin once; every boosting round reuses the quantized features.
  const BinnedMatrix binned = BinnedMatrix::build(data);

  // Residuals in normalized target space.
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) {
    residual[i] = (data.target(i) - base_) / scale_;
  }
  std::vector<double> prediction(n, 0.0);
  std::vector<double> gradient(n, 0.0);

  Rng rng(params.seed);
  DecisionTreeParams tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.min_samples_leaf = params.min_samples_leaf;
  tree_params.feature_fraction = params.feature_fraction;

  // Round-update fast path: training rows land in the leaf the build
  // partition assigned them to, so their contribution is the recorded leaf
  // value, and out-of-sample rows route by bin thresholds. Both shortcuts
  // equal raw-threshold traversal only when no data value sits exactly on a
  // bin edge (strict_edges) — otherwise, or with the scalar fallback
  // forced, every row walks the tree on raw features as before.
  const bool fast_update = binned.strict_edges() && batch_scoring_enabled();
  std::vector<std::pair<std::size_t, double>> leaf_rows;
  std::vector<std::uint8_t> covered;

  for (int t = 0; t < params.num_trees; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      gradient[i] = residual[i] - prediction[i];
    }

    // Rows for this round (without replacement — stochastic boosting).
    std::vector<std::size_t> rows;
    if (params.row_subsample < 1.0 && n > 8) {
      const auto k = static_cast<std::size_t>(std::max(
          4.0, std::floor(params.row_subsample * static_cast<double>(n))));
      rows = rng.sample_without_replacement(n, k);
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), std::size_t{0});
    }

    DecisionTree tree;
    tree.fit_binned(binned, gradient, std::move(rows), tree_params, rng,
                    fast_update ? &leaf_rows : nullptr);

    if (fast_update) {
      covered.assign(n, 0);
      for (const auto& [r, leaf] : leaf_rows) {
        prediction[r] += learning_rate_ * leaf;
        covered[r] = 1;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (!covered[i]) {
          prediction[i] += learning_rate_ * tree.predict_binned(binned, i);
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        prediction[i] += learning_rate_ * tree.predict(data.row(i));
      }
    }
    trees_.push_back(std::move(tree));
  }
  flat_ = FlatForest::build(trees_, base_, scale_, learning_rate_);
  fitted_ = true;
}

double Gbdt::predict(std::span<const double> features) const {
  AAL_CHECK(fitted_, "predict on an unfitted GBDT");
  double acc = 0.0;
  for (const DecisionTree& tree : trees_) {
    acc += learning_rate_ * tree.predict(features);
  }
  return base_ + scale_ * acc;
}

void Gbdt::predict_batch(std::span<const double> features, std::size_t rows,
                         std::span<double> out) const {
  AAL_CHECK(fitted_, "predict_batch on an unfitted GBDT");
  AAL_CHECK(out.size() >= rows, "output span narrower than the batch");
  if (rows == 0) return;
  AAL_CHECK(features.size() % rows == 0,
            "feature span is not a whole number of rows");
  if (batch_scoring_enabled()) {
    flat_.predict_batch(features, rows, out);
    return;
  }
  // Scalar fallback: per-row reference path.
  const std::size_t cols = features.size() / rows;
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = predict(features.subspan(r * cols, cols));
  }
}

std::vector<double> Gbdt::predict_many(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    out.push_back(predict(data.row(i)));
  }
  return out;
}

std::vector<double> Gbdt::feature_importance(
    std::size_t num_features) const {
  AAL_CHECK(fitted_, "feature_importance on an unfitted GBDT");
  std::vector<double> counts(num_features, 0.0);
  for (const DecisionTree& tree : trees_) {
    tree.accumulate_split_counts(counts);
  }
  double total = 0.0;
  for (double c : counts) total += c;
  if (total > 0.0) {
    for (double& c : counts) c /= total;
  } else if (num_features > 0) {
    // Zero splits anywhere (every tree a single leaf): no feature carries
    // information, so the importance is uniform — keeping the length and
    // the sum-to-1 contract instead of an all-zero vector.
    const double uniform = 1.0 / static_cast<double>(num_features);
    for (double& c : counts) c = uniform;
  }
  return counts;
}

}  // namespace aal
