// Parallel simulated annealing over a configuration space.
//
// AutoTVM's model-based tuner does not argmax its cost model over the whole
// space (impossible at 10^8 points); it runs batched simulated-annealing
// chains whose energy is the surrogate score and harvests the best distinct
// states. This is that component. Chains mutate one knob at a time and
// accept via Metropolis with a linearly decaying temperature.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "space/config_space.hpp"
#include "support/rng.hpp"

namespace aal {

struct SaParams {
  int num_chains = 64;
  int iterations = 120;
  double temp_start = 1.0;
  double temp_end = 0.02;
};

class SaOptimizer {
 public:
  SaOptimizer(const ConfigSpace& space, SaParams params)
      : space_(space), params_(params) {}

  /// Returns up to k distinct configurations with the highest score found,
  /// best first, skipping flats in `exclude` (already-measured configs).
  /// `score` must be cheap — it is called O(chains * iterations) times.
  std::vector<Config> maximize(
      const std::function<double(const Config&)>& score, int k, Rng& rng,
      const std::unordered_set<std::int64_t>& exclude = {}) const;

 private:
  Config mutate(const Config& config, Rng& rng) const;

  const ConfigSpace& space_;
  SaParams params_;
};

}  // namespace aal
