#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/dense.hpp"

namespace aal {

namespace {

/// Per-layer Adam state.
struct AdamState {
  std::vector<double> m_w, v_w, m_b, v_b;
};

}  // namespace

void Mlp::fit(const Dataset& data, const MlpParams& params) {
  AAL_CHECK(!data.empty(), "cannot fit MLP on an empty dataset");
  AAL_CHECK(!params.hidden.empty(), "MLP needs at least one hidden layer");
  const std::size_t n = data.num_rows();
  const int d = static_cast<int>(data.num_features());

  // Standardize inputs and targets.
  feat_mean_.assign(static_cast<std::size_t>(d), 0.0);
  feat_std_.assign(static_cast<std::size_t>(d), 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    for (int c = 0; c < d; ++c) feat_mean_[static_cast<std::size_t>(c)] += row[static_cast<std::size_t>(c)];
  }
  for (double& m : feat_mean_) m /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    for (int c = 0; c < d; ++c) {
      const double delta = row[static_cast<std::size_t>(c)] - feat_mean_[static_cast<std::size_t>(c)];
      feat_std_[static_cast<std::size_t>(c)] += delta * delta;
    }
  }
  for (double& s : feat_std_) {
    s = std::max(std::sqrt(s / static_cast<double>(n)), 1e-9);
  }
  target_mean_ = 0.0;
  for (std::size_t r = 0; r < n; ++r) target_mean_ += data.target(r);
  target_mean_ /= static_cast<double>(n);
  target_std_ = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double delta = data.target(r) - target_mean_;
    target_std_ += delta * delta;
  }
  target_std_ = std::max(std::sqrt(target_std_ / static_cast<double>(n)), 1e-9);

  // Build layers: d -> hidden... -> 1, He initialization.
  Rng rng(params.seed);
  layers_.clear();
  std::vector<int> widths{d};
  widths.insert(widths.end(), params.hidden.begin(), params.hidden.end());
  widths.push_back(1);
  for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
    Layer layer;
    layer.in = widths[l];
    layer.out = widths[l + 1];
    const double scale = std::sqrt(2.0 / layer.in);
    layer.weights.resize(static_cast<std::size_t>(layer.in) * layer.out);
    for (double& w : layer.weights) w = rng.next_gaussian(0.0, scale);
    layer.bias.assign(static_cast<std::size_t>(layer.out), 0.0);
    layers_.push_back(std::move(layer));
  }

  std::vector<AdamState> adam(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    adam[l].m_w.assign(layers_[l].weights.size(), 0.0);
    adam[l].v_w.assign(layers_[l].weights.size(), 0.0);
    adam[l].m_b.assign(layers_[l].bias.size(), 0.0);
    adam[l].v_b.assign(layers_[l].bias.size(), 0.0);
  }
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  std::int64_t step = 0;

  // Pre-standardized inputs/targets.
  std::vector<std::vector<double>> x(n);
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    x[r].resize(static_cast<std::size_t>(d));
    for (int c = 0; c < d; ++c) {
      x[r][static_cast<std::size_t>(c)] =
          (row[static_cast<std::size_t>(c)] - feat_mean_[static_cast<std::size_t>(c)]) /
          feat_std_[static_cast<std::size_t>(c)];
    }
    y[r] = (data.target(r) - target_mean_) / target_std_;
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  // Per-layer activation and delta buffers (reused across samples).
  std::vector<std::vector<double>> act(layers_.size() + 1);
  std::vector<std::vector<double>> delta(layers_.size());
  // Per-batch gradient accumulators.
  std::vector<std::vector<double>> grad_w(layers_.size()), grad_b(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    grad_w[l].resize(layers_[l].weights.size());
    grad_b[l].resize(layers_[l].bias.size());
  }

  for (int epoch = 0; epoch < params.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(params.batch_size)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(params.batch_size));
      const double batch_n = static_cast<double>(end - start);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        std::fill(grad_w[l].begin(), grad_w[l].end(), 0.0);
        std::fill(grad_b[l].begin(), grad_b[l].end(), 0.0);
      }

      for (std::size_t i = start; i < end; ++i) {
        const std::size_t r = order[i];
        // Forward.
        act[0] = x[r];
        for (std::size_t l = 0; l < layers_.size(); ++l) {
          const Layer& layer = layers_[l];
          act[l + 1].assign(static_cast<std::size_t>(layer.out), 0.0);
          for (int o = 0; o < layer.out; ++o) {
            const double* w =
                &layer.weights[static_cast<std::size_t>(o) * layer.in];
            const double acc =
                layer.bias[static_cast<std::size_t>(o)] +
                dense::dot(w, act[l].data(),
                           static_cast<std::size_t>(layer.in));
            const bool is_output = l + 1 == layers_.size();
            act[l + 1][static_cast<std::size_t>(o)] =
                is_output ? acc : std::max(0.0, acc);
          }
        }
        // Backward (squared error).
        const double err = act.back()[0] - y[r];
        delta.back().assign(1, err);
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          // Accumulate gradients for this layer.
          for (int o = 0; o < layer.out; ++o) {
            const double dv = delta[l][static_cast<std::size_t>(o)];
            if (dv == 0.0) continue;
            double* gw = &grad_w[l][static_cast<std::size_t>(o) * layer.in];
            dense::axpy(dv, act[l].data(), gw,
                        static_cast<std::size_t>(layer.in));
            grad_b[l][static_cast<std::size_t>(o)] += dv;
          }
          if (l == 0) break;
          // Propagate through the layer and the previous ReLU.
          delta[l - 1].assign(static_cast<std::size_t>(layer.in), 0.0);
          for (int o = 0; o < layer.out; ++o) {
            const double dv = delta[l][static_cast<std::size_t>(o)];
            if (dv == 0.0) continue;
            const double* w =
                &layer.weights[static_cast<std::size_t>(o) * layer.in];
            for (int c = 0; c < layer.in; ++c) {
              if (act[l][static_cast<std::size_t>(c)] > 0.0) {
                delta[l - 1][static_cast<std::size_t>(c)] += dv * w[c];
              }
            }
          }
        }
      }

      // Adam update.
      ++step;
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(step));
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        AdamState& state = adam[l];
        for (std::size_t i = 0; i < layer.weights.size(); ++i) {
          const double g = grad_w[l][i] / batch_n +
                           params.weight_decay * layer.weights[i];
          state.m_w[i] = kBeta1 * state.m_w[i] + (1.0 - kBeta1) * g;
          state.v_w[i] = kBeta2 * state.v_w[i] + (1.0 - kBeta2) * g * g;
          layer.weights[i] -= params.learning_rate * (state.m_w[i] / bc1) /
                              (std::sqrt(state.v_w[i] / bc2) + kEps);
        }
        for (std::size_t i = 0; i < layer.bias.size(); ++i) {
          const double g = grad_b[l][i] / batch_n;
          state.m_b[i] = kBeta1 * state.m_b[i] + (1.0 - kBeta1) * g;
          state.v_b[i] = kBeta2 * state.v_b[i] + (1.0 - kBeta2) * g * g;
          layer.bias[i] -= params.learning_rate * (state.m_b[i] / bc1) /
                           (std::sqrt(state.v_b[i] / bc2) + kEps);
        }
      }
    }
  }
  fitted_ = true;
}

double Mlp::predict(std::span<const double> features) const {
  AAL_CHECK(fitted_, "predict on an unfitted MLP");
  AAL_CHECK(features.size() == feat_mean_.size(),
            "feature width mismatch in MLP predict");
  std::vector<double> current(features.size());
  for (std::size_t c = 0; c < features.size(); ++c) {
    current[c] = (features[c] - feat_mean_[c]) / feat_std_[c];
  }
  std::vector<double> next;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    next.assign(static_cast<std::size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      const double* w = &layer.weights[static_cast<std::size_t>(o) * layer.in];
      const double acc =
          layer.bias[static_cast<std::size_t>(o)] +
          dense::dot(w, current.data(), static_cast<std::size_t>(layer.in));
      const bool is_output = l + 1 == layers_.size();
      next[static_cast<std::size_t>(o)] = is_output ? acc : std::max(0.0, acc);
    }
    current.swap(next);
  }
  return target_mean_ + target_std_ * current[0];
}

}  // namespace aal
