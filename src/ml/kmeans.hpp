// Lloyd's k-means with k-means++ seeding.
//
// Substrate for the CHAMELEON-style adaptive-sampling baseline: that work
// reduces each batch of proposed candidates to k cluster representatives so
// expensive on-chip measurements are spent on *diverse* configurations.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace aal {

struct KMeansResult {
  /// Cluster centers, centers[c] is a feature vector.
  std::vector<std::vector<double>> centers;
  /// Per-point cluster assignment, aligned with the input rows.
  std::vector<int> assignment;
  /// Index of the input point closest to each center (a "medoid"),
  /// usable when representatives must be actual candidates.
  std::vector<std::size_t> medoids;
  int iterations = 0;
};

struct KMeansParams {
  int max_iterations = 50;
  /// Convergence threshold on total center movement (squared L2).
  double tolerance = 1e-8;
};

/// Clusters `points` into k groups (k is clamped to the number of points).
/// Deterministic given `rng`. Empty clusters are re-seeded from the point
/// farthest from its center.
KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, Rng& rng, const KMeansParams& params = {});

}  // namespace aal
