// Gradient-boosted regression trees — the from-scratch XGBoost stand-in used
// as AutoTVM's cost model and as the paper's bootstrap evaluation functions.
//
// Squared-error boosting with shrinkage, optional row subsampling and
// feature subsampling. Targets are internally normalized (mean/std) so the
// learning rate behaves uniformly across tasks whose GFLOPS scales differ
// by orders of magnitude.
#pragma once

#include <span>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/flat_forest.hpp"

namespace aal {

struct GbdtParams {
  int num_trees = 60;
  double learning_rate = 0.15;
  int max_depth = 5;
  int min_samples_leaf = 2;
  double row_subsample = 0.85;     // stochastic gradient boosting
  double feature_fraction = 0.9;
  std::uint64_t seed = 0xC0FFEE;
};

class Gbdt {
 public:
  void fit(const Dataset& data, const GbdtParams& params);

  double predict(std::span<const double> features) const;

  /// Batched prediction over a row-major feature matrix: out[i] receives
  /// the prediction for row i (features.size() must be rows * width, width
  /// >= the widest feature any tree splits on; out.size() >= rows). Routed
  /// through the flattened level-order engine (ml/flat_forest.hpp) unless
  /// the scalar fallback is forced; both paths are bitwise-identical to
  /// per-row predict (pinned by tests/ml/test_batch_predict.cpp).
  void predict_batch(std::span<const double> features, std::size_t rows,
                     std::span<double> out) const;

  /// Batch prediction convenience.
  std::vector<double> predict_many(const Dataset& data) const;

  /// Split-count feature importance: how often each feature was chosen as a
  /// split across the ensemble, normalized to sum to 1. An ensemble with no
  /// splits at all (every tree a single leaf — e.g. a constant target)
  /// carries no preference, reported as the uniform distribution so the
  /// sum-to-1 contract holds for every fitted model.
  std::vector<double> feature_importance(std::size_t num_features) const;

  bool fitted() const { return fitted_; }
  std::size_t num_trees() const { return trees_.size(); }
  const std::vector<DecisionTree>& trees() const { return trees_; }

  /// The flattened scoring engine built at the end of fit().
  const FlatForest& flat_forest() const { return flat_; }

 private:
  std::vector<DecisionTree> trees_;
  FlatForest flat_;
  double base_ = 0.0;      // target mean
  double scale_ = 1.0;     // target std (>= epsilon)
  double learning_rate_ = 0.1;
  bool fitted_ = false;
};

}  // namespace aal
