#include "ml/surrogate.hpp"

#include <algorithm>
#include <cmath>

#include "support/thread_pool.hpp"

namespace aal {

void Surrogate::predict_batch(std::span<const double> features,
                              std::size_t rows, std::span<double> out) const {
  AAL_CHECK(out.size() >= rows, "output span narrower than the batch");
  if (rows == 0) return;
  AAL_CHECK(features.size() % rows == 0,
            "feature span is not a whole number of rows");
  const std::size_t cols = features.size() / rows;
  const auto predict_row = [&](std::size_t r) {
    out[r] = predict(features.subspan(r * cols, cols));
  };
  // Rows are independent, so the fan-out cannot change any value; the
  // threshold only balances pool overhead against per-row model cost.
  constexpr std::size_t kParallelMinRows = 256;
  if (rows >= kParallelMinRows && ThreadPool::shared().size() > 1) {
    ThreadPool::shared().parallel_for(rows, predict_row);
  } else {
    for (std::size_t r = 0; r < rows; ++r) predict_row(r);
  }
}

namespace {

/// Solves (A + lambda*I) w = b by Gaussian elimination with partial
/// pivoting. A is symmetric positive semi-definite (normal equations), so
/// this is stable enough at surrogate scale (d ~ 21).
std::vector<double> solve_ridge(std::vector<std::vector<double>> a,
                                std::vector<double> b, double lambda) {
  const std::size_t d = b.size();
  for (std::size_t i = 0; i < d; ++i) a[i][i] += lambda;

  for (std::size_t col = 0; col < d; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < d; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    if (std::abs(diag) < 1e-12) continue;  // degenerate column -> weight 0
    for (std::size_t r = col + 1; r < d; ++r) {
      const double factor = a[r][col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < d; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> w(d, 0.0);
  for (std::size_t i = d; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < d; ++c) acc -= a[i][c] * w[c];
    w[i] = std::abs(a[i][i]) < 1e-12 ? 0.0 : acc / a[i][i];
  }
  return w;
}

}  // namespace

void RidgeSurrogate::fit(const Dataset& data) {
  AAL_CHECK(!data.empty(), "cannot fit ridge on an empty dataset");
  const std::size_t d = data.num_features() + 1;  // + bias
  std::vector<std::vector<double>> gram(d, std::vector<double>(d, 0.0));
  std::vector<double> rhs(d, 0.0);

  std::vector<double> x(d, 1.0);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const auto row = data.row(i);
    std::copy(row.begin(), row.end(), x.begin());
    x[d - 1] = 1.0;
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) gram[r][c] += x[r] * x[c];
      rhs[r] += x[r] * data.target(i);
    }
  }
  weights_ = solve_ridge(std::move(gram), std::move(rhs), lambda_);
  fitted_ = true;
}

double RidgeSurrogate::predict(std::span<const double> features) const {
  AAL_CHECK(fitted_, "predict on an unfitted ridge model");
  AAL_CHECK(features.size() + 1 == weights_.size(),
            "feature width mismatch in ridge predict");
  double acc = weights_.back();
  for (std::size_t i = 0; i < features.size(); ++i) {
    acc += weights_[i] * features[i];
  }
  return acc;
}

void KnnSurrogate::fit(const Dataset& data) {
  AAL_CHECK(!data.empty(), "cannot fit kNN on an empty dataset");
  data_ = data;
  fitted_ = true;
}

double KnnSurrogate::predict(std::span<const double> features) const {
  AAL_CHECK(fitted_, "predict on an unfitted kNN model");
  const std::size_t n = data_.num_rows();
  const auto k = static_cast<std::size_t>(
      std::min<std::size_t>(static_cast<std::size_t>(k_), n));

  // (distance^2, target) partial selection of the k nearest.
  std::vector<std::pair<double, double>> dist;
  dist.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = data_.row(i);
    double acc = 0.0;
    for (std::size_t f = 0; f < row.size(); ++f) {
      const double delta = row[f] - features[f];
      acc += delta * delta;
    }
    dist.emplace_back(acc, data_.target(i));
  }
  std::nth_element(dist.begin(),
                   dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());
  // Inverse-distance weighting over the k nearest.
  double weight_sum = 0.0, value_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (1e-9 + std::sqrt(dist[i].first));
    weight_sum += w;
    value_sum += w * dist[i].second;
  }
  return value_sum / weight_sum;
}

}  // namespace aal
