// Flat row-major dataset for the surrogate models. Sized for tuning-scale
// data (tens to low thousands of rows, ~20 features), so simplicity beats
// cleverness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/common.hpp"

namespace aal {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t num_features) : num_features_(num_features) {}

  std::size_t num_rows() const { return targets_.size(); }
  std::size_t num_features() const { return num_features_; }
  bool empty() const { return targets_.empty(); }

  void add_row(std::span<const double> features, double target) {
    AAL_CHECK(features.size() == num_features_,
              "feature width mismatch: " << features.size() << " vs "
                                         << num_features_);
    data_.insert(data_.end(), features.begin(), features.end());
    targets_.push_back(target);
  }

  std::span<const double> row(std::size_t i) const {
    AAL_CHECK(i < num_rows(), "row index out of range");
    return {data_.data() + i * num_features_, num_features_};
  }

  double target(std::size_t i) const {
    AAL_CHECK(i < num_rows(), "row index out of range");
    return targets_[i];
  }

  std::span<const double> targets() const { return targets_; }

  /// Row subset (with repetition allowed — used by bootstrap resampling).
  Dataset subset(std::span<const std::size_t> indices) const {
    Dataset out(num_features_);
    for (std::size_t idx : indices) out.add_row(row(idx), target(idx));
    return out;
  }

 private:
  std::size_t num_features_ = 0;
  std::vector<double> data_;
  std::vector<double> targets_;
};

}  // namespace aal
