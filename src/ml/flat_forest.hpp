// Flattened, batch-oriented GBT scoring engine.
//
// A fitted DecisionTree stores its nodes in DFS order behind pointer-ish
// int32 links; fine for one prediction, hostile to scoring 512 candidates
// against a 60-tree ensemble every BAO iteration. FlatTree re-lays a tree
// out in level order (BFS) over contiguous 24-byte nodes — both children of
// a split are adjacent, leaves self-loop — so a whole ensemble walks blocks
// of rows tree-by-tree in lockstep with branchless arithmetic-select steps
// (`idx = right + (left - right) * (x <= thr)`) and the node array resident
// in cache.
//
// The engine is pinned bitwise-identical to the scalar reference: per row
// the leaf values are accumulated in tree order as `acc += lr * leaf` and
// finished as `base + scale * acc`, exactly the expression sequence
// Gbdt::predict evaluates (tests/ml/test_batch_predict.cpp). The process-
// wide scalar fallback (AAL_SCALAR_SCORING=1 or set_batch_scoring_enabled)
// routes every batched call back through per-row predict for A/B debugging.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"

namespace aal {

/// True (default) when batched scoring may use the flattened engine; false
/// forces the scalar per-row fallback everywhere (set at startup with
/// AAL_SCALAR_SCORING=1, or per-test via set_batch_scoring_enabled). Both
/// paths produce bitwise-identical results; the switch exists so the
/// equivalence can be audited on any end-to-end run.
bool batch_scoring_enabled();
void set_batch_scoring_enabled(bool enabled);

/// One level-order node. Splits: go to `left` when x[feature] <=
/// thr_or_value, else `right` (right == left + 1 by construction). Leaves:
/// thr_or_value is the prediction, feature is 0 (a safe dummy load) and
/// left == right == the node's own index, so a lockstep walk may keep
/// stepping past a shallow leaf without branching on depth.
struct FlatNode {
  double thr_or_value = 0.0;
  std::int32_t feature = 0;
  std::int32_t left = 0;
  std::int32_t right = 0;
};
static_assert(sizeof(FlatNode) == 24, "FlatNode layout must stay compact");

/// A single regression tree in level-order layout.
class FlatTree {
 public:
  FlatTree() = default;

  /// Level-order copy of a fitted tree (node count preserved).
  static FlatTree flatten(const DecisionTree& tree);

  /// Inverse of flatten: rebuilds a DecisionTree in its canonical DFS
  /// preorder layout. flatten(unflatten(t)) reproduces t exactly.
  DecisionTree unflatten() const;

  /// Scalar reference walk, bitwise-identical to DecisionTree::predict.
  double predict(std::span<const double> features) const;

  const std::vector<FlatNode>& nodes() const { return nodes_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Edges on the longest root-to-leaf path (0 for a single-leaf tree).
  int depth() const { return depth_; }
  /// Minimum feature-vector width this tree can route (max feature + 1).
  std::int32_t min_feature_width() const { return min_width_; }

 private:
  friend class FlatForest;
  std::vector<FlatNode> nodes_;
  int depth_ = 0;
  std::int32_t min_width_ = 0;
};

/// A boosted ensemble flattened into one contiguous node array (per-tree
/// roots/depths kept alongside), scoring blocks of rows tree-by-tree.
class FlatForest {
 public:
  FlatForest() = default;

  /// Flattens `trees` with the GBDT output transform
  /// y = base + scale * sum_t(learning_rate * leaf_t).
  static FlatForest build(std::span<const DecisionTree> trees, double base,
                          double scale, double learning_rate);

  bool empty() const { return roots_.empty(); }
  std::size_t num_trees() const { return roots_.size(); }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::int32_t min_feature_width() const { return min_width_; }

  /// Scalar reference walk over all trees (same FP order as predict_batch).
  double predict(std::span<const double> features) const;

  /// out[i] = prediction for row i of the row-major `features` matrix
  /// (features.size() must be a multiple of rows; the row width must be
  /// >= min_feature_width()). Large batches fan out over the shared thread
  /// pool; rows are independent, so results are schedule-invariant.
  void predict_batch(std::span<const double> features, std::size_t rows,
                     std::span<double> out) const;

 private:
  std::vector<FlatNode> nodes_;        // all trees, concatenated
  std::vector<std::int32_t> roots_;    // per-tree root index into nodes_
  std::vector<std::int32_t> depths_;   // per-tree level count (edges)
  double base_ = 0.0;
  double scale_ = 1.0;
  double learning_rate_ = 0.0;
  std::int32_t min_width_ = 0;
};

}  // namespace aal
