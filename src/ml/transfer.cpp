#include "ml/transfer.hpp"

#include <algorithm>

namespace aal {

void TransferContext::absorb(const TuningTask& task,
                             const std::vector<MeasureResult>& results) {
  double best = 0.0;
  for (const auto& r : results) best = std::max(best, r.gflops);
  if (best <= 0.0) return;  // nothing informative to transfer

  auto& pool = pools_[static_cast<int>(task.workload().kind())];
  for (const auto& r : results) {
    PooledRow row;
    row.source_key = task.key();
    row.features = task.space().features(r.config);
    row.normalized_score = r.ok ? r.gflops / best : 0.0;
    pool.push_back(std::move(row));
  }
}

Dataset TransferContext::seed_for(const TuningTask& task,
                                  std::size_t max_rows) const {
  const auto it = pools_.find(static_cast<int>(task.workload().kind()));
  const int width = task.space().feature_dim();
  Dataset out(static_cast<std::size_t>(width));
  if (it == pools_.end()) return out;

  const std::string self_key = task.key();
  // Take the most recent compatible rows (later tasks first).
  std::size_t taken = 0;
  for (auto row = it->second.rbegin();
       row != it->second.rend() && taken < max_rows; ++row) {
    if (row->source_key == self_key) continue;
    if (row->features.size() != static_cast<std::size_t>(width)) continue;
    out.add_row(row->features, row->normalized_score);
    ++taken;
  }
  return out;
}

std::size_t TransferContext::pool_size(WorkloadKind kind) const {
  const auto it = pools_.find(static_cast<int>(kind));
  return it == pools_.end() ? 0 : it->second.size();
}

}  // namespace aal
