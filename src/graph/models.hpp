// Model zoo: the five CNNs the paper evaluates, lowered to the Graph IR at
// inference time (batch 1, 3x224x224 input, fp32), following the torchvision
// reference topologies. These generate the tuning tasks; MobileNet-v1 yields
// the 19 unique conv/depthwise tasks T1..T19 used in Fig. 4 and Fig. 5.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace aal {

/// AlexNet (Krizhevsky et al., 2012), torchvision layout: 5 convs + 3 FC.
Graph make_alexnet(std::int64_t batch = 1);

/// ResNet-18 (He et al., 2016): 7x7 stem + 4 stages x 2 basic blocks + FC.
Graph make_resnet18(std::int64_t batch = 1);

/// VGG-16 (Simonyan & Zisserman, 2015): 13 convs + 3 FC.
Graph make_vgg16(std::int64_t batch = 1);

/// MobileNet-v1 (Howard et al., 2017): 3x3 stem + 13 depthwise-separable
/// blocks + FC.
Graph make_mobilenet_v1(std::int64_t batch = 1);

/// SqueezeNet-v1.1 (Iandola et al., 2016): stem + 8 fire modules + 1x1
/// classifier conv.
Graph make_squeezenet_v11(std::int64_t batch = 1);

/// Builds a model by name ("alexnet", "resnet18", "vgg16", "mobilenet_v1",
/// "squeezenet_v11"); throws InvalidArgument for unknown names.
Graph make_model(const std::string& name, std::int64_t batch = 1);

/// Names of all models in the zoo, in the order Table I reports them.
std::vector<std::string> model_zoo_names();

/// Display names as printed in the paper's Table I.
std::string model_display_name(const std::string& zoo_name);

}  // namespace aal
