#include "graph/model_parser.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "support/common.hpp"
#include "support/string_util.hpp"

namespace aal {

namespace {

/// Minimal recursive-descent tokenizer for one statement line.
class LineParser {
 public:
  LineParser(std::string_view text, int line_number)
      : text_(text), line_(line_number) {}

  [[noreturn]] void fail(const std::string& message) const {
    throw InvalidArgument("model parse error at line " +
                          std::to_string(line_) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eof() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// [A-Za-z_][A-Za-z0-9_]* — op names, keys and (after %) node names.
  std::string identifier() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected an identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::int64_t integer() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected an integer");
    return std::stoll(std::string(text_.substr(start, pos_ - start)));
  }

  std::vector<std::int64_t> integer_list() {
    expect('[');
    std::vector<std::int64_t> values;
    if (!accept(']')) {
      do {
        values.push_back(integer());
      } while (accept(','));
      expect(']');
    }
    return values;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
};

struct Argument {
  bool is_ref = false;
  std::string ref;                    // %name operand
  std::string key;                    // key= for attributes
  std::vector<std::int64_t> values;   // value or list
};

struct Statement {
  std::string result;
  std::string op;
  std::vector<std::string> operands;                      // %refs in order
  std::unordered_map<std::string, std::vector<std::int64_t>> attrs;
  int line = 0;
};

Statement parse_statement(std::string_view text, int line_number) {
  LineParser p(text, line_number);
  Statement s;
  s.line = line_number;
  p.expect('%');
  s.result = p.identifier();
  p.expect('=');
  s.op = p.identifier();
  p.expect('(');
  if (!p.accept(')')) {
    do {
      if (p.accept('%')) {
        s.operands.push_back(p.identifier());
      } else {
        const std::string key = p.identifier();
        p.expect('=');
        std::vector<std::int64_t> values;
        if (p.peek() == '[') {
          values = p.integer_list();
        } else {
          values.push_back(p.integer());
        }
        if (!s.attrs.emplace(key, std::move(values)).second) {
          p.fail("duplicate attribute '" + key + "'");
        }
      }
    } while (p.accept(','));
    p.expect(')');
  }
  if (!p.eof()) p.fail("trailing characters after statement");
  return s;
}

class GraphBuilder {
 public:
  explicit GraphBuilder(std::string name) : graph_(std::move(name)) {}

  void add(const Statement& s) {
    AAL_CHECK(!ids_.contains(s.result),
              "model parse error at line " << s.line << ": node '%"
                                           << s.result << "' redefined");
    const NodeId id = build_node(s);
    ids_.emplace(s.result, id);
  }

  Graph finish() {
    graph_.validate();
    return std::move(graph_);
  }

 private:
  [[noreturn]] void fail(const Statement& s, const std::string& msg) const {
    throw InvalidArgument("model parse error at line " +
                          std::to_string(s.line) + ": " + msg);
  }

  NodeId ref(const Statement& s, std::size_t i) const {
    if (i >= s.operands.size()) {
      fail(s, "op '" + s.op + "' needs an input operand");
    }
    const auto it = ids_.find(s.operands[i]);
    if (it == ids_.end()) fail(s, "unknown node '%" + s.operands[i] + "'");
    return it->second;
  }

  std::int64_t attr(const Statement& s, const std::string& key,
                    std::int64_t fallback, bool required = false) const {
    const auto it = s.attrs.find(key);
    if (it == s.attrs.end()) {
      if (required) fail(s, "op '" + s.op + "' requires attribute '" + key + "'");
      return fallback;
    }
    if (it->second.size() != 1) fail(s, "attribute '" + key + "' must be scalar");
    return it->second[0];
  }

  NodeId build_node(const Statement& s) {
    const std::string& name = s.result;
    if (s.op == "input") {
      const auto it = s.attrs.find("shape");
      if (it == s.attrs.end()) fail(s, "input requires shape=[...]");
      return graph_.add_input(name, {Shape(it->second), DType::kFloat32});
    }
    if (s.op == "conv2d") {
      return graph_.conv2d(name, ref(s, 0), attr(s, "channels", 0, true),
                           attr(s, "kernel", 0, true), attr(s, "stride", 1),
                           attr(s, "pad", 0), attr(s, "groups", 1));
    }
    if (s.op == "depthwise_conv2d") {
      return graph_.depthwise_conv2d(name, ref(s, 0),
                                     attr(s, "kernel", 0, true),
                                     attr(s, "stride", 1), attr(s, "pad", 0));
    }
    if (s.op == "dense") {
      return graph_.dense(name, ref(s, 0), attr(s, "units", 0, true));
    }
    if (s.op == "max_pool2d" || s.op == "avg_pool2d") {
      const std::int64_t kernel = attr(s, "kernel", 0, true);
      const std::int64_t stride = attr(s, "stride", kernel);
      const std::int64_t pad = attr(s, "pad", 0);
      if (s.op == "max_pool2d") {
        return graph_.max_pool2d(name, ref(s, 0), kernel, stride, pad,
                                 attr(s, "ceil", 0) != 0);
      }
      return graph_.avg_pool2d(name, ref(s, 0), kernel, stride, pad);
    }
    if (s.op == "global_avg_pool2d") {
      return graph_.global_avg_pool2d(name, ref(s, 0));
    }
    if (s.op == "relu") return graph_.relu(name, ref(s, 0));
    if (s.op == "batch_norm") return graph_.batch_norm(name, ref(s, 0));
    if (s.op == "softmax") return graph_.softmax(name, ref(s, 0));
    if (s.op == "flatten") return graph_.flatten(name, ref(s, 0));
    if (s.op == "dropout") return graph_.dropout(name, ref(s, 0));
    if (s.op == "lrn") return graph_.lrn(name, ref(s, 0));
    if (s.op == "add") return graph_.add_op(name, ref(s, 0), ref(s, 1));
    if (s.op == "concat") {
      if (s.operands.size() < 2) fail(s, "concat needs >= 2 operands");
      std::vector<NodeId> inputs;
      for (std::size_t i = 0; i < s.operands.size(); ++i) {
        inputs.push_back(ref(s, i));
      }
      return graph_.concat(name, std::move(inputs),
                           static_cast<int>(attr(s, "axis", 1)));
    }
    fail(s, "unknown op '" + s.op + "'");
  }

  Graph graph_;
  std::unordered_map<std::string, NodeId> ids_;
};

}  // namespace

Graph parse_model(std::istream& is, const std::string& graph_name) {
  GraphBuilder builder(graph_name);
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    // Strip comments and whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (trim(line).empty()) continue;
    builder.add(parse_statement(line, line_number));
  }
  return builder.finish();
}

Graph parse_model_string(const std::string& text,
                         const std::string& graph_name) {
  std::istringstream is(text);
  return parse_model(is, graph_name);
}

Graph parse_model_file(const std::string& path) {
  std::ifstream is(path);
  AAL_CHECK(is.good(), "cannot open model file: " << path);
  return parse_model(is, std::filesystem::path(path).stem().string());
}

}  // namespace aal
