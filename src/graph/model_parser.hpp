// Text-format model importer.
//
// Lets users describe a network in a small line-oriented format and tune it
// without writing C++ — the aaltune CLI consumes this. One op per line,
// `%name = op(arg, key=value, ...)`; inputs are referenced by `%name`.
//
//   # LeNet-ish example
//   %data  = input(shape=[1,1,28,28])
//   %c1    = conv2d(%data, channels=6, kernel=5, stride=1, pad=2)
//   %r1    = relu(%c1)
//   %p1    = max_pool2d(%r1, kernel=2, stride=2)
//   %f     = flatten(%p1)
//   %fc1   = dense(%f, units=84)
//   %out   = softmax(%fc1)
//
// Supported ops: input, conv2d, depthwise_conv2d, dense, max_pool2d,
// avg_pool2d, global_avg_pool2d, relu, batch_norm, add, concat, softmax,
// flatten, dropout, lrn. Comments start with '#'. Errors carry line numbers.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace aal {

/// Parses a model description; throws InvalidArgument with a line-numbered
/// message on malformed input.
Graph parse_model(std::istream& is, const std::string& graph_name = "model");

/// Parses from a string.
Graph parse_model_string(const std::string& text,
                         const std::string& graph_name = "model");

/// Parses from a file; the graph is named after the file's stem.
Graph parse_model_file(const std::string& path);

}  // namespace aal
