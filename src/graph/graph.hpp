// Computational-graph IR.
//
// A Graph is a DAG of operator nodes with statically inferred tensor types
// on every edge (shape inference runs at insertion). This mirrors the
// "high-level computation graph" of the paper's Fig. 1: models from the zoo
// are lowered to this IR, the fusion pass groups nodes into kernels, and
// node-wise optimization then tunes one task per fused tunable kernel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/op.hpp"
#include "tensor/shape.hpp"

namespace aal {

using NodeId = std::int32_t;

struct Node {
  NodeId id = -1;
  std::string name;
  Op op;
  std::vector<NodeId> inputs;
  TensorType output;  // inferred at insertion
};

class Graph {
 public:
  explicit Graph(std::string name = "graph") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a graph input placeholder.
  NodeId add_input(std::string name, TensorType type);

  /// Adds an operator node consuming existing nodes; runs shape inference
  /// and returns the new node's id.
  NodeId add(std::string name, Op op, std::vector<NodeId> inputs);

  // Convenience builders used by the model zoo. All return the new NodeId.
  NodeId conv2d(const std::string& name, NodeId data, std::int64_t out_channels,
                std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                std::int64_t groups = 1);
  NodeId depthwise_conv2d(const std::string& name, NodeId data,
                          std::int64_t kernel, std::int64_t stride,
                          std::int64_t pad);
  NodeId dense(const std::string& name, NodeId data, std::int64_t out_features);
  NodeId max_pool2d(const std::string& name, NodeId data, std::int64_t kernel,
                    std::int64_t stride, std::int64_t pad = 0,
                    bool ceil_mode = false);
  NodeId avg_pool2d(const std::string& name, NodeId data, std::int64_t kernel,
                    std::int64_t stride, std::int64_t pad = 0);
  NodeId global_avg_pool2d(const std::string& name, NodeId data);
  NodeId relu(const std::string& name, NodeId data);
  NodeId batch_norm(const std::string& name, NodeId data);
  NodeId add_op(const std::string& name, NodeId lhs, NodeId rhs);
  NodeId concat(const std::string& name, std::vector<NodeId> inputs,
                int axis = 1);
  NodeId softmax(const std::string& name, NodeId data);
  NodeId flatten(const std::string& name, NodeId data);
  NodeId dropout(const std::string& name, NodeId data);
  NodeId lrn(const std::string& name, NodeId data);

  std::size_t size() const { return nodes_.size(); }
  const Node& node(NodeId id) const;
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Input types of a node, in input order.
  std::vector<TensorType> input_types(NodeId id) const;

  /// Node ids in a valid topological order (Kahn's algorithm). Insertion
  /// order is already topological by construction; this recomputes
  /// independently and is used by validation and tests.
  std::vector<NodeId> topo_order() const;

  /// Number of consumers of each node.
  std::vector<int> consumer_counts() const;

  /// Total FLOPs of one inference.
  std::int64_t total_flops() const;

  /// Ids of nodes with tunable ops, in topological order.
  std::vector<NodeId> tunable_nodes() const;

  /// Checks DAG well-formedness (ids in range, acyclic, inputs precede
  /// consumers); throws InternalError on violation.
  void validate() const;

  /// Multi-line structural dump for debugging and docs.
  std::string to_string() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
};

}  // namespace aal
