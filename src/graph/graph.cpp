#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "support/common.hpp"

namespace aal {

NodeId Graph::add_input(std::string name, TensorType type) {
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.name = std::move(name);
  n.op.type = OpType::kInput;
  n.output = std::move(type);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

NodeId Graph::add(std::string name, Op op, std::vector<NodeId> inputs) {
  AAL_CHECK(op.type != OpType::kInput,
            "use add_input for input placeholders");
  std::vector<TensorType> in_types;
  in_types.reserve(inputs.size());
  for (NodeId id : inputs) {
    AAL_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
              "node '" << name << "' references unknown input id " << id);
    in_types.push_back(nodes_[static_cast<std::size_t>(id)].output);
  }
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.name = std::move(name);
  n.op = op;
  n.inputs = std::move(inputs);
  n.output = infer_output_type(op, in_types);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

NodeId Graph::conv2d(const std::string& name, NodeId data,
                     std::int64_t out_channels, std::int64_t kernel,
                     std::int64_t stride, std::int64_t pad,
                     std::int64_t groups) {
  Op op;
  op.type = OpType::kConv2d;
  op.conv = {out_channels, kernel, kernel, stride, stride, pad, pad, groups};
  return add(name, op, {data});
}

NodeId Graph::depthwise_conv2d(const std::string& name, NodeId data,
                               std::int64_t kernel, std::int64_t stride,
                               std::int64_t pad) {
  const std::int64_t channels = node(data).output.shape[1];
  Op op;
  op.type = OpType::kDepthwiseConv2d;
  op.conv = {channels, kernel, kernel, stride, stride, pad, pad, channels};
  return add(name, op, {data});
}

NodeId Graph::dense(const std::string& name, NodeId data,
                    std::int64_t out_features) {
  Op op;
  op.type = OpType::kDense;
  op.dense.out_features = out_features;
  return add(name, op, {data});
}

NodeId Graph::max_pool2d(const std::string& name, NodeId data,
                         std::int64_t kernel, std::int64_t stride,
                         std::int64_t pad, bool ceil_mode) {
  Op op;
  op.type = OpType::kMaxPool2d;
  op.pool = {kernel, kernel, stride, stride, pad, pad, ceil_mode};
  return add(name, op, {data});
}

NodeId Graph::avg_pool2d(const std::string& name, NodeId data,
                         std::int64_t kernel, std::int64_t stride,
                         std::int64_t pad) {
  Op op;
  op.type = OpType::kAvgPool2d;
  op.pool = {kernel, kernel, stride, stride, pad, pad, false};
  return add(name, op, {data});
}

NodeId Graph::global_avg_pool2d(const std::string& name, NodeId data) {
  Op op;
  op.type = OpType::kGlobalAvgPool2d;
  return add(name, op, {data});
}

NodeId Graph::relu(const std::string& name, NodeId data) {
  Op op;
  op.type = OpType::kRelu;
  return add(name, op, {data});
}

NodeId Graph::batch_norm(const std::string& name, NodeId data) {
  Op op;
  op.type = OpType::kBatchNorm;
  return add(name, op, {data});
}

NodeId Graph::add_op(const std::string& name, NodeId lhs, NodeId rhs) {
  Op op;
  op.type = OpType::kAdd;
  return add(name, op, {lhs, rhs});
}

NodeId Graph::concat(const std::string& name, std::vector<NodeId> inputs,
                     int axis) {
  Op op;
  op.type = OpType::kConcat;
  op.concat.axis = axis;
  return add(name, op, std::move(inputs));
}

NodeId Graph::softmax(const std::string& name, NodeId data) {
  Op op;
  op.type = OpType::kSoftmax;
  return add(name, op, {data});
}

NodeId Graph::flatten(const std::string& name, NodeId data) {
  Op op;
  op.type = OpType::kFlatten;
  return add(name, op, {data});
}

NodeId Graph::dropout(const std::string& name, NodeId data) {
  Op op;
  op.type = OpType::kDropout;
  return add(name, op, {data});
}

NodeId Graph::lrn(const std::string& name, NodeId data) {
  Op op;
  op.type = OpType::kLRN;
  return add(name, op, {data});
}

const Node& Graph::node(NodeId id) const {
  AAL_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
            "unknown node id " << id);
  return nodes_[static_cast<std::size_t>(id)];
}

std::vector<TensorType> Graph::input_types(NodeId id) const {
  const Node& n = node(id);
  std::vector<TensorType> types;
  types.reserve(n.inputs.size());
  for (NodeId in : n.inputs) types.push_back(node(in).output);
  return types;
}

std::vector<NodeId> Graph::topo_order() const {
  std::vector<int> in_degree(nodes_.size(), 0);
  for (const Node& n : nodes_) {
    in_degree[static_cast<std::size_t>(n.id)] =
        static_cast<int>(n.inputs.size());
  }
  // Consumers adjacency.
  std::vector<std::vector<NodeId>> consumers(nodes_.size());
  for (const Node& n : nodes_) {
    for (NodeId in : n.inputs) {
      consumers[static_cast<std::size_t>(in)].push_back(n.id);
    }
  }
  std::queue<NodeId> ready;
  for (const Node& n : nodes_) {
    if (n.inputs.empty()) ready.push(n.id);
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (NodeId c : consumers[static_cast<std::size_t>(id)]) {
      if (--in_degree[static_cast<std::size_t>(c)] == 0) ready.push(c);
    }
  }
  AAL_ASSERT(order.size() == nodes_.size(), "graph contains a cycle");
  return order;
}

std::vector<int> Graph::consumer_counts() const {
  std::vector<int> counts(nodes_.size(), 0);
  for (const Node& n : nodes_) {
    for (NodeId in : n.inputs) ++counts[static_cast<std::size_t>(in)];
  }
  return counts;
}

std::int64_t Graph::total_flops() const {
  std::int64_t total = 0;
  for (const Node& n : nodes_) {
    if (n.op.type == OpType::kInput) continue;
    total += op_flops(n.op, input_types(n.id));
  }
  return total;
}

std::vector<NodeId> Graph::tunable_nodes() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (is_tunable(n.op.type)) out.push_back(n.id);
  }
  return out;
}

void Graph::validate() const {
  for (const Node& n : nodes_) {
    AAL_ASSERT(n.id >= 0 && static_cast<std::size_t>(n.id) < nodes_.size(),
               "node id out of range");
    for (NodeId in : n.inputs) {
      AAL_ASSERT(in >= 0 && in < n.id,
                 "node '" << n.name << "' consumes a later node " << in
                          << " (insertion order must be topological)");
    }
  }
  // topo_order throws if a cycle exists.
  (void)topo_order();
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "graph " << name_ << " (" << nodes_.size() << " nodes, "
     << total_flops() << " flops)\n";
  for (const Node& n : nodes_) {
    os << "  %" << n.id << " = " << op_type_name(n.op.type) << "(";
    for (std::size_t i = 0; i < n.inputs.size(); ++i) {
      if (i > 0) os << ", ";
      os << '%' << n.inputs[i];
    }
    os << ") -> " << n.output.to_string() << "  // " << n.name << '\n';
  }
  return os.str();
}

}  // namespace aal
