// Operator-fusion pass.
//
// Mirrors the graph-level optimization stage in the paper's Fig. 1: cheap
// element-wise operators (relu, batch_norm, dropout, residual add) are fused
// into the preceding heavy kernel, so a fused group maps to one launched
// kernel. Tunable groups (anchored by conv2d / depthwise_conv2d / dense)
// produce one tuning task each; the remaining groups are charged the
// simulator's fixed-function cost.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "ir/workload.hpp"

namespace aal {

struct FusedGroup {
  /// Node executing the group's dominant computation (the tunable node for
  /// tunable groups; the sole node otherwise).
  NodeId anchor = -1;
  /// All member node ids in topological order (anchor first for tunable
  /// groups, then fused epilogue ops).
  std::vector<NodeId> nodes;
  /// The tuning workload; nullopt for non-tunable groups.
  std::optional<Workload> workload;
  /// Extra element-wise FLOPs fused into the kernel epilogue.
  std::int64_t epilogue_flops = 0;
};

struct FusedGraph {
  const Graph* graph = nullptr;  // non-owning; must outlive this object
  std::vector<FusedGroup> groups;

  std::size_t num_tunable() const;
  std::string to_string() const;
};

/// Greedy epilogue fusion: starting from each tunable node in topological
/// order, absorbs successor chains of fusable element-wise ops whose
/// producer is consumed exclusively inside the chain. Every node lands in
/// exactly one group.
FusedGraph fuse(const Graph& graph);

/// One deduplicated tuning task: a workload plus the fused groups that will
/// reuse its best configuration (AutoTVM deduplicates identical layer
/// shapes the same way).
struct Task {
  Workload workload;
  std::vector<std::size_t> group_indices;  // indices into FusedGraph::groups
  int count() const { return static_cast<int>(group_indices.size()); }
};

/// Extracts unique tasks from a fused graph, ordered by first appearance.
std::vector<Task> extract_tasks(const FusedGraph& fused);

}  // namespace aal
