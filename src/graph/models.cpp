#include "graph/models.hpp"

#include "support/common.hpp"

namespace aal {

namespace {

NodeId image_input(Graph& g, std::int64_t batch) {
  return g.add_input("data", {Shape{batch, 3, 224, 224}, DType::kFloat32});
}

/// conv -> batch_norm -> relu, the standard modern conv block.
NodeId conv_bn_relu(Graph& g, const std::string& name, NodeId data,
                    std::int64_t out_channels, std::int64_t kernel,
                    std::int64_t stride, std::int64_t pad) {
  NodeId x = g.conv2d(name, data, out_channels, kernel, stride, pad);
  x = g.batch_norm(name + "_bn", x);
  return g.relu(name + "_relu", x);
}

NodeId dw_bn_relu(Graph& g, const std::string& name, NodeId data,
                  std::int64_t kernel, std::int64_t stride, std::int64_t pad) {
  NodeId x = g.depthwise_conv2d(name, data, kernel, stride, pad);
  x = g.batch_norm(name + "_bn", x);
  return g.relu(name + "_relu", x);
}

}  // namespace

Graph make_alexnet(std::int64_t batch) {
  Graph g("alexnet");
  NodeId x = image_input(g, batch);
  x = g.conv2d("conv1", x, 64, 11, 4, 2);
  x = g.relu("relu1", x);
  x = g.lrn("lrn1", x);
  x = g.max_pool2d("pool1", x, 3, 2);
  x = g.conv2d("conv2", x, 192, 5, 1, 2);
  x = g.relu("relu2", x);
  x = g.lrn("lrn2", x);
  x = g.max_pool2d("pool2", x, 3, 2);
  x = g.conv2d("conv3", x, 384, 3, 1, 1);
  x = g.relu("relu3", x);
  x = g.conv2d("conv4", x, 256, 3, 1, 1);
  x = g.relu("relu4", x);
  x = g.conv2d("conv5", x, 256, 3, 1, 1);
  x = g.relu("relu5", x);
  x = g.max_pool2d("pool5", x, 3, 2);
  x = g.flatten("flatten", x);
  x = g.dropout("drop6", x);
  x = g.dense("fc6", x, 4096);
  x = g.relu("relu6", x);
  x = g.dropout("drop7", x);
  x = g.dense("fc7", x, 4096);
  x = g.relu("relu7", x);
  x = g.dense("fc8", x, 1000);
  g.softmax("prob", x);
  g.validate();
  return g;
}

Graph make_resnet18(std::int64_t batch) {
  Graph g("resnet18");
  NodeId x = image_input(g, batch);
  x = conv_bn_relu(g, "conv1", x, 64, 7, 2, 3);
  x = g.max_pool2d("pool1", x, 3, 2, 1);

  struct StageSpec {
    std::int64_t channels;
    std::int64_t stride;  // stride of the first block
  };
  const StageSpec stages[] = {{64, 1}, {128, 2}, {256, 2}, {512, 2}};

  int block_id = 0;
  for (const auto& stage : stages) {
    for (int block = 0; block < 2; ++block) {
      const std::string base = "layer" + std::to_string(block_id++);
      const std::int64_t stride = block == 0 ? stage.stride : 1;
      NodeId identity = x;
      NodeId y = conv_bn_relu(g, base + "_conv1", x, stage.channels, 3, stride, 1);
      y = g.conv2d(base + "_conv2", y, stage.channels, 3, 1, 1);
      y = g.batch_norm(base + "_conv2_bn", y);
      const bool needs_projection =
          stride != 1 || g.node(identity).output.shape[1] != stage.channels;
      if (needs_projection) {
        identity = g.conv2d(base + "_down", identity, stage.channels, 1, stride, 0);
        identity = g.batch_norm(base + "_down_bn", identity);
      }
      y = g.add_op(base + "_add", y, identity);
      x = g.relu(base + "_relu", y);
    }
  }

  x = g.global_avg_pool2d("gap", x);
  x = g.flatten("flatten", x);
  x = g.dense("fc", x, 1000);
  g.softmax("prob", x);
  g.validate();
  return g;
}

Graph make_vgg16(std::int64_t batch) {
  Graph g("vgg16");
  NodeId x = image_input(g, batch);
  const struct {
    int convs;
    std::int64_t channels;
  } blocks[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};
  int conv_id = 0;
  for (int b = 0; b < 5; ++b) {
    for (int c = 0; c < blocks[b].convs; ++c) {
      const std::string name = "conv" + std::to_string(++conv_id);
      x = g.conv2d(name, x, blocks[b].channels, 3, 1, 1);
      x = g.relu(name + "_relu", x);
    }
    x = g.max_pool2d("pool" + std::to_string(b + 1), x, 2, 2);
  }
  x = g.flatten("flatten", x);
  x = g.dense("fc6", x, 4096);
  x = g.relu("relu6", x);
  x = g.dropout("drop6", x);
  x = g.dense("fc7", x, 4096);
  x = g.relu("relu7", x);
  x = g.dropout("drop7", x);
  x = g.dense("fc8", x, 1000);
  g.softmax("prob", x);
  g.validate();
  return g;
}

Graph make_mobilenet_v1(std::int64_t batch) {
  Graph g("mobilenet_v1");
  NodeId x = image_input(g, batch);
  x = conv_bn_relu(g, "conv1", x, 32, 3, 2, 1);

  // (pointwise output channels, depthwise stride) per separable block.
  const struct {
    std::int64_t channels;
    std::int64_t stride;
  } blocks[] = {
      {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},  {512, 2}, {512, 1},
      {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
  };
  int id = 0;
  for (const auto& b : blocks) {
    const std::string base = "block" + std::to_string(++id);
    x = dw_bn_relu(g, base + "_dw", x, 3, b.stride, 1);
    x = conv_bn_relu(g, base + "_pw", x, b.channels, 1, 1, 0);
  }

  x = g.global_avg_pool2d("gap", x);
  x = g.flatten("flatten", x);
  x = g.dense("fc", x, 1000);
  g.softmax("prob", x);
  g.validate();
  return g;
}

Graph make_squeezenet_v11(std::int64_t batch) {
  Graph g("squeezenet_v11");

  auto fire = [&g](const std::string& name, NodeId data, std::int64_t squeeze,
                   std::int64_t expand) {
    NodeId s = g.conv2d(name + "_squeeze", data, squeeze, 1, 1, 0);
    s = g.relu(name + "_squeeze_relu", s);
    NodeId e1 = g.conv2d(name + "_expand1x1", s, expand, 1, 1, 0);
    e1 = g.relu(name + "_expand1x1_relu", e1);
    NodeId e3 = g.conv2d(name + "_expand3x3", s, expand, 3, 1, 1);
    e3 = g.relu(name + "_expand3x3_relu", e3);
    return g.concat(name + "_concat", {e1, e3});
  };

  NodeId x = image_input(g, batch);
  x = g.conv2d("conv1", x, 64, 3, 2, 0);
  x = g.relu("conv1_relu", x);
  x = g.max_pool2d("pool1", x, 3, 2, 0, /*ceil_mode=*/true);
  x = fire("fire2", x, 16, 64);
  x = fire("fire3", x, 16, 64);
  x = g.max_pool2d("pool3", x, 3, 2, 0, /*ceil_mode=*/true);
  x = fire("fire4", x, 32, 128);
  x = fire("fire5", x, 32, 128);
  x = g.max_pool2d("pool5", x, 3, 2, 0, /*ceil_mode=*/true);
  x = fire("fire6", x, 48, 192);
  x = fire("fire7", x, 48, 192);
  x = fire("fire8", x, 64, 256);
  x = fire("fire9", x, 64, 256);
  x = g.dropout("drop9", x);
  x = g.conv2d("conv10", x, 1000, 1, 1, 0);
  x = g.relu("conv10_relu", x);
  x = g.global_avg_pool2d("gap", x);
  x = g.flatten("flatten", x);
  g.softmax("prob", x);
  g.validate();
  return g;
}

Graph make_model(const std::string& name, std::int64_t batch) {
  if (name == "alexnet") return make_alexnet(batch);
  if (name == "resnet18") return make_resnet18(batch);
  if (name == "vgg16") return make_vgg16(batch);
  if (name == "mobilenet_v1") return make_mobilenet_v1(batch);
  if (name == "squeezenet_v11") return make_squeezenet_v11(batch);
  throw InvalidArgument("unknown model name: " + name);
}

std::vector<std::string> model_zoo_names() {
  return {"alexnet", "resnet18", "vgg16", "mobilenet_v1", "squeezenet_v11"};
}

std::string model_display_name(const std::string& zoo_name) {
  if (zoo_name == "alexnet") return "AlexNet";
  if (zoo_name == "resnet18") return "ResNet-18";
  if (zoo_name == "vgg16") return "VGG-16";
  if (zoo_name == "mobilenet_v1") return "MobileNet-v1";
  if (zoo_name == "squeezenet_v11") return "SqueezeNet-v1.1";
  throw InvalidArgument("unknown model name: " + zoo_name);
}

}  // namespace aal
