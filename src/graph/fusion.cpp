#include "graph/fusion.hpp"

#include <sstream>
#include <unordered_map>

#include "support/common.hpp"

namespace aal {

std::size_t FusedGraph::num_tunable() const {
  std::size_t n = 0;
  for (const auto& g : groups) {
    if (g.workload.has_value()) ++n;
  }
  return n;
}

std::string FusedGraph::to_string() const {
  std::ostringstream os;
  os << "fused graph: " << groups.size() << " groups, " << num_tunable()
     << " tunable\n";
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const auto& g = groups[i];
    os << "  group " << i << " [";
    for (std::size_t j = 0; j < g.nodes.size(); ++j) {
      if (j > 0) os << ' ';
      os << '%' << g.nodes[j];
    }
    os << ']';
    if (g.workload) os << " task=" << g.workload->brief();
    os << '\n';
  }
  return os.str();
}

FusedGraph fuse(const Graph& graph) {
  graph.validate();
  const std::vector<NodeId> order = graph.topo_order();
  const std::vector<int> consumers = graph.consumer_counts();

  // successor[v] lists direct consumers of v.
  std::vector<std::vector<NodeId>> succ(graph.size());
  for (const Node& n : graph.nodes()) {
    for (NodeId in : n.inputs) {
      succ[static_cast<std::size_t>(in)].push_back(n.id);
    }
  }

  std::vector<bool> assigned(graph.size(), false);
  FusedGraph fused;
  fused.graph = &graph;

  // Pass 1: tunable anchors absorb their exclusive element-wise epilogues.
  for (NodeId id : order) {
    const Node& n = graph.node(id);
    if (!is_tunable(n.op.type)) continue;

    FusedGroup group;
    group.anchor = id;
    group.nodes.push_back(id);
    group.workload = make_workload(n.op, graph.input_types(id));
    assigned[static_cast<std::size_t>(id)] = true;

    // Follow the single-consumer chain of fusable element-wise ops. An Add
    // is fusable as the residual epilogue: its *other* operand comes from
    // outside the group, which is fine — the kernel reads it as a second
    // input.
    NodeId tail = id;
    for (;;) {
      const auto& tail_succ = succ[static_cast<std::size_t>(tail)];
      if (consumers[static_cast<std::size_t>(tail)] != 1) break;
      const NodeId next = tail_succ.front();
      const Node& next_node = graph.node(next);
      if (!is_fusable_elemwise(next_node.op.type)) break;
      if (assigned[static_cast<std::size_t>(next)]) break;
      group.nodes.push_back(next);
      group.epilogue_flops +=
          op_flops(next_node.op, graph.input_types(next));
      assigned[static_cast<std::size_t>(next)] = true;
      tail = next;
    }
    fused.groups.push_back(std::move(group));
  }

  // Pass 2: every remaining node becomes its own group, in topo order.
  for (NodeId id : order) {
    if (assigned[static_cast<std::size_t>(id)]) continue;
    FusedGroup group;
    group.anchor = id;
    group.nodes.push_back(id);
    assigned[static_cast<std::size_t>(id)] = true;
    fused.groups.push_back(std::move(group));
  }

  return fused;
}

std::vector<Task> extract_tasks(const FusedGraph& fused) {
  std::vector<Task> tasks;
  std::unordered_map<std::string, std::size_t> index_by_key;
  for (std::size_t i = 0; i < fused.groups.size(); ++i) {
    const auto& g = fused.groups[i];
    if (!g.workload) continue;
    const std::string key = g.workload->key();
    auto it = index_by_key.find(key);
    if (it == index_by_key.end()) {
      index_by_key.emplace(key, tasks.size());
      tasks.push_back(Task{*g.workload, {i}});
    } else {
      tasks[it->second].group_indices.push_back(i);
    }
  }
  return tasks;
}

}  // namespace aal
