// TuneServer: the transport-independent core of the tuning daemon.
//
// The server multiplexes many concurrent tuning jobs over shared
// infrastructure: one RecordStore (so every job pays for each measurement
// once, fleet-wide), one ParallelBackend whose measurement lanes all
// sessions share, and a pool of worker threads draining a priority queue
// (higher `priority` first, submit order within a priority). Admission
// control is per-tenant: a tenant may hold at most `tenant_quota`
// queued+running jobs, and the whole queue is bounded by `max_queued`.
//
// Every job gets its own trace sink, metrics registry and cooperative
// cancel flag. Jobs run with the exact option derivations of the CLI's
// `tune` subcommand at jobs=1, so a job's trace is byte-identical to the
// standalone run of the same spec (the determinism contract the serve
// tests and the CI smoke job pin). Streaming is cursor-based fan-out over
// the job's buffered events: any number of subscribers replay the trace
// live without perturbing it.
//
// Transports sit on top: handle_line() serves every one-shot op;
// stream_lines()/wait_progress() give transports (and in-process tests)
// incremental access to a job's trace. socket.hpp adds the Unix-domain
// socket front end the aaltune_serve tool runs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "measure/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "store/record_store.hpp"

namespace aal {

/// Job lifecycle: kQueued -> kRunning -> one of the terminal states.
enum class JobState : int { kQueued, kRunning, kDone, kFailed, kCancelled };

/// Stable wire name ("queued", ...). A running job whose cancel flag is
/// already raised reports "cancelling".
const char* job_state_name(JobState state, bool cancelling = false);

/// Per-job trace buffer: MemoryTraceSink semantics plus an atomic event
/// count and ranged snapshots, so stream subscribers poll with a cursor
/// instead of copying the whole trace each round.
class JobTraceSink final : public TraceSink {
 public:
  std::int64_t count() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Events with index >= cursor, in emission order.
  std::vector<TraceEvent> events_from(std::int64_t cursor) const;

 protected:
  void write(const TraceEvent& event) override;

 private:
  mutable std::mutex events_mutex_;
  std::vector<TraceEvent> events_;
  std::atomic<std::int64_t> count_{0};
};

/// Point-in-time job snapshot, as returned by status() and list().
struct JobInfo {
  std::int64_t id = -1;
  JobSpec spec;
  JobState state = JobState::kQueued;
  bool cancelling = false;       // running with the cancel flag raised
  std::int64_t trace_steps = 0;  // events emitted so far
  std::int64_t measured = 0;     // fresh configs measured so far
  double best_gflops = 0.0;      // filled when the job finishes
  std::string error;             // non-empty iff state == kFailed

  const char* state_name() const { return job_state_name(state, cancelling); }
};

struct TuneServerOptions {
  int workers = 2;          // concurrent tuning jobs
  int measure_threads = 0;  // >0: shared ParallelBackend with that many lanes
  std::size_t max_queued = 256;   // server-wide queued-job bound
  int tenant_quota = 8;           // queued+running jobs per tenant
  std::int64_t max_budget = 1 << 20;  // per-job budget ceiling
  std::string store_dir;    // empty = no shared record store
  bool store_readonly = false;
};

class TuneServer {
 public:
  explicit TuneServer(TuneServerOptions options = {});

  TuneServer(const TuneServer&) = delete;
  TuneServer& operator=(const TuneServer&) = delete;

  /// Cancels queued jobs, raises the cancel flag of running ones, joins
  /// the workers. Records measured before the flag landed are already
  /// flushed to the store by each job's own run.
  ~TuneServer();

  const TuneServerOptions& options() const { return options_; }
  RecordStore* store() { return store_.get(); }
  MetricsRegistry& metrics() { return metrics_; }

  /// Admits a job; returns its id. Throws ServeError with kShuttingDown /
  /// kQueueFull / kQuotaExceeded / kBadModel / kBadTarget / kBadTuner /
  /// kBadRequest on rejection (every rejection also bumps the
  /// serve.rejected counter and its per-code sibling).
  std::int64_t submit(const JobSpec& spec);

  /// Snapshot of one job; throws ServeError(kUnknownJob).
  JobInfo status(std::int64_t job) const;

  /// Snapshots of every job, in id (= submit) order.
  std::vector<JobInfo> list() const;

  /// Cancels a job: a queued job goes terminal immediately, a running one
  /// gets its cooperative flag raised and stops at the session's next
  /// round boundary. Returns true if this call changed anything, false if
  /// the job was already terminal or already cancelling (idempotent).
  /// Throws ServeError(kUnknownJob).
  bool cancel(std::int64_t job);

  /// Trace lines of `job` with step >= *cursor, serialized exactly as a
  /// JsonlTraceSink would write them (no trailing newline); advances
  /// *cursor. Sets *finished once the job is terminal and fully drained.
  /// Throws ServeError(kUnknownJob).
  std::vector<std::string> stream_lines(std::int64_t job,
                                        std::int64_t* cursor,
                                        bool* finished) const;

  /// Blocks until `job` is terminal or has events past `cursor`, or the
  /// timeout elapses. Throws ServeError(kUnknownJob).
  void wait_progress(std::int64_t job, std::int64_t cursor,
                     std::chrono::milliseconds timeout) const;

  /// Blocks until `job` is terminal; returns its final snapshot.
  JobInfo wait_job(std::int64_t job);

  /// Blocks until no job is queued or running.
  void wait_idle() const;

  /// Stops admitting jobs (submit -> kShuttingDown); queued and running
  /// jobs still drain. The daemon exits via wait_idle() afterwards.
  void begin_shutdown();
  bool shutting_down() const;

  /// Serves one request line: parse, dispatch, serialize. Returns the
  /// response frames (one line each, no trailing newline). Never throws —
  /// failures become typed error frames echoing the request id (or -1
  /// when the id itself was unparseable). The stream op is the one
  /// exception handled by transports via stream_lines(); here it yields a
  /// bad_request error.
  std::vector<std::string> handle_line(const std::string& line);

  /// Dispatches an already-parsed request; throws ServeError on failure.
  std::vector<std::string> handle_request(const ServeRequest& req);

 private:
  struct Job {
    std::int64_t id = -1;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::atomic<bool> cancel{false};
    JobTraceSink trace;
    MetricsRegistry job_metrics;
    std::string error;
    double best_gflops = 0.0;
    std::int64_t measured = 0;  // final count, set at completion
  };

  void worker_loop();
  void run_job(Job& job);
  Job& find_job_locked(std::int64_t id) const;
  JobInfo snapshot_locked(const Job& job) const;
  void finish_locked(Job& job, JobState state);
  void reject(ServeErrorCode code, const std::string& message);

  TuneServerOptions options_;
  std::unique_ptr<RecordStore> store_;
  std::unique_ptr<ParallelBackend> backend_;
  MetricsRegistry metrics_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;              // workers: work available
  mutable std::condition_variable progress_cv_;   // watchers: state changed
  std::map<std::int64_t, std::unique_ptr<Job>> jobs_;
  /// (-priority, submit id): lexicographically first = next to run.
  std::set<std::tuple<std::int64_t, std::int64_t>> queue_;
  std::map<std::string, int> tenant_active_;      // queued + running
  std::int64_t next_id_ = 1;
  int running_ = 0;
  bool shutting_down_ = false;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace aal
