// Unix-domain socket transport for the serve protocol.
//
// The daemon side (ServeSocketServer) accepts connections on a filesystem
// socket path and services each connection on its own thread: every
// request line is answered through TuneServer::handle_line, except the
// `stream` op, which the connection thread serves incrementally —
// stream_lines() drains new trace events into "frame":"trace" response
// lines as they appear, wait_progress() blocks between drains, and a
// "frame":"end" line closes the stream once the job is terminal.
//
// The client side (ServeClient) is the blocking convenience the CLI's
// `serve` subcommand and the tests use: connect, send a request line,
// read response frames.
//
// Unix-domain sockets (not TCP) on purpose: the daemon is a host-local
// tool, filesystem permissions are the access control, and tests get
// collision-free endpoints from temp directories.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace aal {

/// Blocking '\n'-delimited line channel over a connected socket fd. Owns
/// the fd; movable, not copyable.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel();

  LineChannel(LineChannel&& other) noexcept;
  LineChannel& operator=(LineChannel&&) = delete;
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Sends `line` plus '\n'. Returns false once the peer is gone.
  bool send_line(const std::string& line);

  /// Next line without its '\n'; nullopt on EOF/reset.
  std::optional<std::string> recv_line();

  void close();
  bool open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// The daemon's accept loop: one service thread per connection.
class ServeSocketServer {
 public:
  /// Binds and listens on `socket_path` (an existing socket file there is
  /// replaced). Throws InvalidArgument when the path cannot be bound.
  ServeSocketServer(TuneServer& server, std::string socket_path);
  ~ServeSocketServer();

  const std::string& socket_path() const { return path_; }

  /// Accepts and services connections until stop() is called or the
  /// TuneServer begins shutdown; then drains running jobs (wait_idle) and
  /// joins the connection threads before returning.
  void serve_forever();

  /// Async stop: makes serve_forever return without draining jobs.
  void stop();

 private:
  void handle_connection(int fd);

  TuneServer& server_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
};

/// Blocking protocol client over one connection.
class ServeClient {
 public:
  /// Connects to `socket_path`, retrying until `connect_timeout` elapses
  /// (0 = single attempt) — the retry window covers "daemon still
  /// binding" races in scripted use. Throws InvalidArgument on failure.
  explicit ServeClient(
      const std::string& socket_path,
      std::chrono::milliseconds connect_timeout = std::chrono::milliseconds(0));

  /// Sends the request, returns the single response frame.
  ServeResponse call(const ServeRequest& req);

  /// Sends the request, collects frames through the "end" frame (single-
  /// frame responses and error frames return one element).
  std::vector<ServeResponse> call_frames(const ServeRequest& req);

  /// Streams job `job`'s trace into `out` as raw JSONL (byte-identical to
  /// the standalone run's trace file) and returns the "end" frame.
  /// Throws ServeError when the server answers with an error frame.
  ServeResponse stream(std::int64_t job, std::ostream& out,
                       std::int64_t request_id = 0);

 private:
  ServeResponse recv_response();

  LineChannel channel_;
};

}  // namespace aal
