#include "serve/protocol.hpp"

#include <utility>

namespace aal {

namespace {

struct OpName {
  ServeOp op;
  const char* name;
};

constexpr OpName kOpNames[] = {
    {ServeOp::kHello, "hello"},       {ServeOp::kSubmit, "submit"},
    {ServeOp::kStatus, "status"},     {ServeOp::kCancel, "cancel"},
    {ServeOp::kList, "list"},         {ServeOp::kStream, "stream"},
    {ServeOp::kStats, "stats"},       {ServeOp::kShutdown, "shutdown"},
};

struct CodeName {
  ServeErrorCode code;
  const char* name;
};

constexpr CodeName kCodeNames[] = {
    {ServeErrorCode::kParseError, "parse_error"},
    {ServeErrorCode::kBadRequest, "bad_request"},
    {ServeErrorCode::kUnknownOp, "unknown_op"},
    {ServeErrorCode::kVersionMismatch, "version_mismatch"},
    {ServeErrorCode::kUnknownJob, "unknown_job"},
    {ServeErrorCode::kQuotaExceeded, "quota_exceeded"},
    {ServeErrorCode::kQueueFull, "queue_full"},
    {ServeErrorCode::kBadModel, "bad_model"},
    {ServeErrorCode::kBadTarget, "bad_target"},
    {ServeErrorCode::kBadTuner, "bad_tuner"},
    {ServeErrorCode::kShuttingDown, "shutting_down"},
    {ServeErrorCode::kInternalError, "internal_error"},
};

std::int64_t expect_int(const TraceField& f) {
  if (f.value.kind() != TraceValue::Kind::kInt) {
    throw ServeError(ServeErrorCode::kBadRequest,
                     "field \"" + f.key + "\" must be an integer");
  }
  return f.value.as_int();
}

const std::string& expect_string(const TraceField& f) {
  if (f.value.kind() != TraceValue::Kind::kString) {
    throw ServeError(ServeErrorCode::kBadRequest,
                     "field \"" + f.key + "\" must be a string");
  }
  return f.value.as_string();
}

bool expect_bool(const TraceField& f) {
  if (f.value.kind() != TraceValue::Kind::kBool) {
    throw ServeError(ServeErrorCode::kBadRequest,
                     "field \"" + f.key + "\" must be a boolean");
  }
  return f.value.as_bool();
}

}  // namespace

const char* serve_op_name(ServeOp op) {
  for (const OpName& o : kOpNames) {
    if (o.op == op) return o.name;
  }
  return "unknown";
}

std::optional<ServeOp> serve_op_from_name(std::string_view name) {
  for (const OpName& o : kOpNames) {
    if (name == o.name) return o.op;
  }
  return std::nullopt;
}

const char* serve_error_code_name(ServeErrorCode code) {
  for (const CodeName& c : kCodeNames) {
    if (c.code == code) return c.name;
  }
  return "internal_error";
}

std::optional<ServeErrorCode> serve_error_code_from_name(
    std::string_view name) {
  for (const CodeName& c : kCodeNames) {
    if (name == c.name) return c.code;
  }
  return std::nullopt;
}

std::vector<TraceField> JobSpec::to_fields() const {
  std::vector<TraceField> fields = {
      {"model", TraceValue(model)},
      {"target", TraceValue(target)},
      {"tuner", TraceValue(tuner)},
      {"budget", TraceValue(budget)},
      {"early_stop", TraceValue(early_stop)},
      {"seed", TraceValue(seed)},
      {"tenant", TraceValue(tenant)},
      {"priority", TraceValue(priority)},
  };
  // Optional additive fields (aaltune-serve/v1 unchanged): omitted when at
  // their defaults so pre-transfer and pre-template clients and pinned wire
  // examples still see byte-identical canonical lines.
  if (transfer) fields.push_back({"transfer", TraceValue(true)});
  if (!schedule_template.empty()) {
    fields.push_back({"template", TraceValue(schedule_template)});
  }
  return fields;
}

void JobSpec::validate() const {
  if (model.empty()) {
    throw ServeError(ServeErrorCode::kBadRequest,
                     "submit requires a non-empty \"model\"");
  }
  if (budget < 1) {
    throw ServeError(ServeErrorCode::kBadRequest, "\"budget\" must be >= 1");
  }
  if (early_stop < 0) {
    throw ServeError(ServeErrorCode::kBadRequest,
                     "\"early_stop\" must be >= 0");
  }
  if (seed < 0) {
    throw ServeError(ServeErrorCode::kBadRequest, "\"seed\" must be >= 0");
  }
  if (tenant.empty()) {
    throw ServeError(ServeErrorCode::kBadRequest,
                     "\"tenant\" must be non-empty");
  }
}

std::string ServeRequest::to_line() const {
  std::vector<TraceField> fields;
  fields.push_back({"id", TraceValue(id)});
  fields.push_back({"op", TraceValue(serve_op_name(op))});
  if (op == ServeOp::kHello) {
    fields.push_back(
        {"version",
         TraceValue(version.empty() ? kServeProtocolVersion : version)});
  } else if (!version.empty()) {
    fields.push_back({"version", TraceValue(version)});
  }
  switch (op) {
    case ServeOp::kSubmit: {
      for (TraceField& f : spec.to_fields()) fields.push_back(std::move(f));
      break;
    }
    case ServeOp::kStatus:
    case ServeOp::kCancel:
      fields.push_back({"job", TraceValue(job)});
      break;
    case ServeOp::kStream:
      fields.push_back({"job", TraceValue(job)});
      fields.push_back({"from", TraceValue(from)});
      break;
    case ServeOp::kHello:
    case ServeOp::kList:
    case ServeOp::kStats:
    case ServeOp::kShutdown:
      break;
  }
  return to_json_object_line(fields);
}

ServeRequest ServeRequest::parse(std::string_view line,
                                 std::int64_t* id_out) {
  std::vector<TraceField> fields;
  try {
    fields = fields_from_json_object_line(line);
  } catch (const std::exception& e) {
    throw ServeError(ServeErrorCode::kParseError, e.what());
  }
  if (fields.empty() || fields[0].key != "id" ||
      fields[0].value.kind() != TraceValue::Kind::kInt) {
    throw ServeError(ServeErrorCode::kBadRequest,
                     "request must start with an integer \"id\" field");
  }
  ServeRequest req;
  req.id = fields[0].value.as_int();
  if (id_out != nullptr) *id_out = req.id;
  if (req.id < 0) {
    throw ServeError(ServeErrorCode::kBadRequest, "\"id\" must be >= 0");
  }
  if (fields.size() < 2 || fields[1].key != "op" ||
      fields[1].value.kind() != TraceValue::Kind::kString) {
    throw ServeError(ServeErrorCode::kBadRequest,
                     "\"id\" must be followed by a string \"op\" field");
  }
  const std::optional<ServeOp> op = serve_op_from_name(
      fields[1].value.as_string());
  if (!op.has_value()) {
    throw ServeError(ServeErrorCode::kUnknownOp,
                     "unknown op \"" + fields[1].value.as_string() + "\"");
  }
  req.op = *op;

  bool saw_job = false;
  for (std::size_t i = 2; i < fields.size(); ++i) {
    const TraceField& f = fields[i];
    if (f.key == "version") {
      req.version = expect_string(f);
      continue;
    }
    switch (req.op) {
      case ServeOp::kSubmit:
        if (f.key == "model") { req.spec.model = expect_string(f); continue; }
        if (f.key == "target") { req.spec.target = expect_string(f); continue; }
        if (f.key == "tuner") { req.spec.tuner = expect_string(f); continue; }
        if (f.key == "budget") { req.spec.budget = expect_int(f); continue; }
        if (f.key == "early_stop") {
          req.spec.early_stop = expect_int(f);
          continue;
        }
        if (f.key == "seed") { req.spec.seed = expect_int(f); continue; }
        if (f.key == "tenant") { req.spec.tenant = expect_string(f); continue; }
        if (f.key == "priority") {
          req.spec.priority = expect_int(f);
          continue;
        }
        if (f.key == "transfer") {
          req.spec.transfer = expect_bool(f);
          continue;
        }
        if (f.key == "template") {
          req.spec.schedule_template = expect_string(f);
          continue;
        }
        break;
      case ServeOp::kStatus:
      case ServeOp::kCancel:
        if (f.key == "job") { req.job = expect_int(f); saw_job = true;
          continue; }
        break;
      case ServeOp::kStream:
        if (f.key == "job") { req.job = expect_int(f); saw_job = true;
          continue; }
        if (f.key == "from") { req.from = expect_int(f); continue; }
        break;
      case ServeOp::kHello:
      case ServeOp::kList:
      case ServeOp::kStats:
      case ServeOp::kShutdown:
        break;
    }
    throw ServeError(ServeErrorCode::kBadRequest,
                     "op \"" + std::string(serve_op_name(req.op)) +
                         "\" does not take a \"" + f.key + "\" field");
  }

  if (!req.version.empty() && req.version != kServeProtocolVersion) {
    throw ServeError(ServeErrorCode::kVersionMismatch,
                     "server speaks " + std::string(kServeProtocolVersion) +
                         ", client sent \"" + req.version + "\"");
  }
  switch (req.op) {
    case ServeOp::kSubmit:
      req.spec.validate();
      break;
    case ServeOp::kStatus:
    case ServeOp::kCancel:
    case ServeOp::kStream:
      if (!saw_job || req.job < 0) {
        throw ServeError(ServeErrorCode::kBadRequest,
                         "op \"" + std::string(serve_op_name(req.op)) +
                             "\" requires a \"job\" field >= 0");
      }
      if (req.from < 0) {
        throw ServeError(ServeErrorCode::kBadRequest,
                         "\"from\" must be >= 0");
      }
      break;
    case ServeOp::kHello:
    case ServeOp::kList:
    case ServeOp::kStats:
    case ServeOp::kShutdown:
      break;
  }
  return req;
}

const TraceValue* ServeResponse::find(std::string_view key) const {
  for (const TraceField& f : fields) {
    if (f.key == key) return &f.value;
  }
  return nullptr;
}

ServeResponse ServeResponse::parse(std::string_view line) {
  std::vector<TraceField> fields = fields_from_json_object_line(line);
  AAL_CHECK(fields.size() >= 2 && fields[0].key == "id" &&
                fields[0].value.kind() == TraceValue::Kind::kInt &&
                fields[1].key == "ok" &&
                fields[1].value.kind() == TraceValue::Kind::kBool,
            "response must start with integer \"id\" and bool \"ok\": "
                << line);
  ServeResponse resp;
  resp.id = fields[0].value.as_int();
  resp.ok = fields[1].value.as_bool();
  resp.fields.assign(fields.begin() + 2, fields.end());
  if (!resp.ok) {
    const TraceValue* code = resp.find("error");
    const TraceValue* message = resp.find("message");
    AAL_CHECK(code != nullptr &&
                  code->kind() == TraceValue::Kind::kString &&
                  message != nullptr &&
                  message->kind() == TraceValue::Kind::kString,
              "error response must carry string \"error\" and \"message\": "
                  << line);
    const auto parsed = serve_error_code_from_name(code->as_string());
    AAL_CHECK(parsed.has_value(),
              "unknown error code '" << code->as_string() << "'");
    resp.error = *parsed;
    resp.message = message->as_string();
  }
  if (const TraceValue* frame = resp.find("frame");
      frame != nullptr && frame->kind() == TraceValue::Kind::kString) {
    resp.frame = frame->as_string();
  }
  return resp;
}

std::string serve_ok_line(std::int64_t id,
                          const std::vector<TraceField>& fields) {
  std::vector<TraceField> all;
  all.reserve(fields.size() + 2);
  all.push_back({"id", TraceValue(id)});
  all.push_back({"ok", TraceValue(true)});
  for (const TraceField& f : fields) all.push_back(f);
  return to_json_object_line(all);
}

std::string serve_error_line(std::int64_t id, ServeErrorCode code,
                             const std::string& message) {
  return to_json_object_line({
      {"id", TraceValue(id)},
      {"ok", TraceValue(false)},
      {"error", TraceValue(serve_error_code_name(code))},
      {"message", TraceValue(message)},
  });
}

}  // namespace aal
