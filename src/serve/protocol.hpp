// Wire protocol of the tuning-as-a-service daemon (aaltune_serve).
//
// The protocol is line-delimited: every request and every response frame is
// one flat JSON object on one line, serialized with the trace codec
// (obs/trace.hpp — keys in wire order, minimal escaping, shortest
// round-trip doubles), so protocol lines and trace lines share one strict
// parser. docs/SERVING.md is the normative reference; a docs-coverage test
// round-trips every example line in that document through this codec.
//
// Requests carry `{"id":N,"op":"<name>",...}`. Responses echo the id:
// `{"id":N,"ok":true,...}` on success, `{"id":N,"ok":false,"error":
// "<code>","message":"..."}` on failure. Multi-frame responses (list,
// stream) tag continuation frames with a "frame" field and terminate with
// `"frame":"end"`.
//
// Versioning: kServeProtocolVersion names the current revision. A client
// may attach `"version"` to `hello` (or any request); a mismatch is
// rejected with the `version_mismatch` error code. Additive changes (new
// ops, new optional request fields, new response fields) keep the version;
// renames, removals and semantic changes bump it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "support/common.hpp"

namespace aal {

/// Current protocol revision, echoed by `hello`.
inline constexpr const char* kServeProtocolVersion = "aaltune-serve/v1";

/// The request vocabulary. Wire names via serve_op_name().
enum class ServeOp : int {
  kHello,     // version handshake
  kSubmit,    // enqueue a tuning job
  kStatus,    // one job's state snapshot
  kCancel,    // raise a job's cooperative cancel flag
  kList,      // every job the daemon knows, one frame per job
  kStream,    // live trace lines of one job until it finishes
  kStats,     // server-wide counters (admission, queue, store)
  kShutdown,  // stop admitting, drain, exit
};

/// Typed protocol error codes. Wire names via serve_error_code_name().
enum class ServeErrorCode : int {
  kParseError,       // request line is not a valid flat JSON object
  kBadRequest,       // valid JSON, invalid request (fields, types, ranges)
  kUnknownOp,        // unrecognized "op"
  kVersionMismatch,  // client "version" != kServeProtocolVersion
  kUnknownJob,       // "job" does not name a submitted job
  kQuotaExceeded,    // tenant has too many queued+running jobs
  kQueueFull,        // server-wide queue bound reached
  kBadModel,         // submit "model" is neither a zoo name nor a model file
  kBadTarget,        // submit "target" is not a known target name
  kBadTuner,         // submit "tuner" is not a registered tuner name
  kShuttingDown,     // submit after shutdown began
  kInternalError,    // unexpected server-side failure
};

/// Stable wire name of an op ("submit", ...).
const char* serve_op_name(ServeOp op);

/// Inverse of serve_op_name; nullopt for unknown names.
std::optional<ServeOp> serve_op_from_name(std::string_view name);

/// Stable wire name of an error code ("quota_exceeded", ...).
const char* serve_error_code_name(ServeErrorCode code);

/// Inverse of serve_error_code_name; nullopt for unknown names.
std::optional<ServeErrorCode> serve_error_code_from_name(
    std::string_view name);

/// A protocol-level failure: carries the typed code that the error response
/// frame will name. Thrown by request parsing and by TuneServer admission.
class ServeError : public Error {
 public:
  ServeError(ServeErrorCode code, const std::string& message)
      : Error(message), code_(code) {}

  ServeErrorCode code() const { return code_; }

 private:
  ServeErrorCode code_;
};

/// A tuning job specification, as carried by the `submit` request. Field
/// defaults mirror the CLI's `tune` subcommand, so a bare
/// `{"id":1,"op":"submit","model":"resnet18"}` tunes exactly what
/// `aaltune_cli tune --model resnet18` tunes.
struct JobSpec {
  std::string model;               // zoo name or model-file path (required)
  std::string target = "gpu-pascal";
  std::string tuner = "bted+bao";
  std::int64_t budget = 512;       // per-task measurement budget
  std::int64_t early_stop = 400;   // per-task early-stopping patience
  std::int64_t seed = 1;           // tuner seed; device seed derives from it
  std::string tenant = "default";  // admission-control bucket
  std::int64_t priority = 0;       // higher runs first; ties by submit order
  /// Warm-start from the daemon's shared record store: seed the job's tasks
  /// from the store's nearest prior tasks and blend a meta-surrogate into
  /// the search (docs/SERVING.md). No-op when the daemon has no --store.
  bool transfer = false;
  /// Schedule-template request in the TemplateRegistry vocabulary ("" =
  /// default CUDA-shaped space, "native" = the target family's native
  /// template, or an exact template name). Wire field "template".
  std::string schedule_template;

  /// Canonical wire form: the fields above in order, except `transfer` and
  /// `template`, which are additive-optional and omitted at their defaults
  /// (false / empty) so pre-transfer and pre-template clients see unchanged
  /// canonical lines.
  std::vector<TraceField> to_fields() const;

  /// Throws ServeError(kBadRequest) on out-of-range numeric fields or an
  /// empty model. Name validity (model/target/tuner) is the server's call.
  void validate() const;

  bool operator==(const JobSpec& other) const = default;
};

/// A parsed request line. Which members are meaningful depends on `op`.
struct ServeRequest {
  std::int64_t id = 0;        // client-chosen echo tag, >= 0
  ServeOp op = ServeOp::kHello;
  std::string version;        // optional on any request; checked if present
  JobSpec spec;               // submit
  std::int64_t job = -1;      // status / cancel / stream
  std::int64_t from = 0;      // stream: first trace step to deliver

  /// Canonical wire form (id, op, then the op's fields in documented order;
  /// submit spells out the full JobSpec).
  std::string to_line() const;

  /// Strict parse of one request line. Unknown ops, unknown fields for the
  /// op, wrong value types and out-of-range values throw ServeError with
  /// the matching code. If `id_out` is non-null it receives the request id
  /// as soon as it is known, so error responses can echo it even when the
  /// rest of the line is malformed.
  static ServeRequest parse(std::string_view line,
                            std::int64_t* id_out = nullptr);
};

/// A parsed response frame, as seen by clients.
struct ServeResponse {
  std::int64_t id = -1;
  bool ok = false;
  ServeErrorCode error = ServeErrorCode::kInternalError;  // when !ok
  std::string message;                                    // when !ok
  std::string frame;           // "" | "job" | "trace" | "end"
  std::vector<TraceField> fields;  // frame payload after id/ok

  /// Looks up a payload field by key; null when absent.
  const TraceValue* find(std::string_view key) const;

  static ServeResponse parse(std::string_view line);
};

/// Builds `{"id":N,"ok":true,...fields...}`.
std::string serve_ok_line(std::int64_t id,
                          const std::vector<TraceField>& fields = {});

/// Builds `{"id":N,"ok":false,"error":"<code>","message":"..."}`.
std::string serve_error_line(std::int64_t id, ServeErrorCode code,
                             const std::string& message);

}  // namespace aal
