#include "serve/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "support/common.hpp"

namespace aal {

namespace {

int make_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  AAL_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
  return fd;
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  AAL_CHECK(path.size() < sizeof(addr.sun_path),
            "socket path too long (" << path.size() << " bytes, max "
                                     << sizeof(addr.sun_path) - 1
                                     << "): " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

LineChannel::~LineChannel() { close(); }

LineChannel::LineChannel(LineChannel&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

void LineChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool LineChannel::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process kill.
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> LineChannel::recv_line() {
  while (true) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      return line;
    }
    if (fd_ < 0) return std::nullopt;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;  // EOF; a partial tail line is dropped
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

ServeSocketServer::ServeSocketServer(TuneServer& server,
                                     std::string socket_path)
    : server_(server), path_(std::move(socket_path)) {
  const sockaddr_un addr = make_address(path_);
  ::unlink(path_.c_str());
  listen_fd_ = make_socket();
  AAL_CHECK(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) == 0,
            "bind(" << path_ << ") failed: " << std::strerror(errno));
  AAL_CHECK(::listen(listen_fd_, 64) == 0,
            "listen(" << path_ << ") failed: " << std::strerror(errno));
}

ServeSocketServer::~ServeSocketServer() {
  stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) t.join();
  ::unlink(path_.c_str());
}

void ServeSocketServer::stop() { stop_.store(true); }

void ServeSocketServer::serve_forever() {
  while (!stop_.load() && !server_.shutting_down()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  // Graceful path: drain queued + running jobs before returning, so a
  // `shutdown` op means "finish what was admitted, then exit".
  if (!stop_.load()) server_.wait_idle();
}

void ServeSocketServer::handle_connection(int fd) {
  LineChannel channel(fd);
  while (std::optional<std::string> line = channel.recv_line()) {
    ServeRequest req;
    bool is_stream = false;
    try {
      req = ServeRequest::parse(*line);
      is_stream = req.op == ServeOp::kStream;
    } catch (const std::exception&) {
      // handle_line re-parses and produces the typed error frame.
    }
    if (!is_stream) {
      for (const std::string& frame : server_.handle_line(*line)) {
        if (!channel.send_line(frame)) return;
      }
      continue;
    }
    try {
      (void)server_.status(req.job);  // surface unknown_job before streaming
      std::int64_t cursor = req.from;
      bool finished = false;
      while (!finished && !stop_.load()) {
        const std::vector<std::string> lines =
            server_.stream_lines(req.job, &cursor, &finished);
        for (const std::string& trace_line : lines) {
          const std::string frame = serve_ok_line(
              req.id, {{"frame", TraceValue("trace")},
                       {"job", TraceValue(req.job)},
                       {"line", TraceValue(trace_line)}});
          if (!channel.send_line(frame)) return;
        }
        if (!finished) {
          server_.wait_progress(req.job, cursor,
                                std::chrono::milliseconds(50));
        }
      }
      const JobInfo info = server_.status(req.job);
      const std::string end_frame = serve_ok_line(
          req.id, {{"frame", TraceValue("end")},
                   {"job", TraceValue(info.id)},
                   {"state", TraceValue(info.state_name())},
                   {"measured", TraceValue(info.measured)},
                   {"trace_steps", TraceValue(info.trace_steps)},
                   {"best_gflops", TraceValue(info.best_gflops)}});
      if (!channel.send_line(end_frame)) return;
    } catch (const ServeError& e) {
      if (!channel.send_line(serve_error_line(req.id, e.code(), e.what()))) {
        return;
      }
    }
  }
}

namespace {

int connect_client(const std::string& path,
                   std::chrono::milliseconds timeout) {
  const sockaddr_un addr = make_address(path);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const int fd = make_socket();
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      throw InvalidArgument("connect(" + path +
                            ") failed: " + std::strerror(err));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

ServeClient::ServeClient(const std::string& socket_path,
                         std::chrono::milliseconds connect_timeout)
    : channel_(connect_client(socket_path, connect_timeout)) {}

ServeResponse ServeClient::recv_response() {
  std::optional<std::string> line = channel_.recv_line();
  AAL_CHECK(line.has_value(), "server closed the connection mid-response");
  return ServeResponse::parse(*line);
}

ServeResponse ServeClient::call(const ServeRequest& req) {
  AAL_CHECK(channel_.send_line(req.to_line()),
            "server closed the connection");
  return recv_response();
}

std::vector<ServeResponse> ServeClient::call_frames(const ServeRequest& req) {
  AAL_CHECK(channel_.send_line(req.to_line()),
            "server closed the connection");
  std::vector<ServeResponse> frames;
  while (true) {
    frames.push_back(recv_response());
    const ServeResponse& last = frames.back();
    if (!last.ok || last.frame.empty() || last.frame == "end") break;
  }
  return frames;
}

ServeResponse ServeClient::stream(std::int64_t job, std::ostream& out,
                                  std::int64_t request_id) {
  ServeRequest req;
  req.id = request_id;
  req.op = ServeOp::kStream;
  req.job = job;
  AAL_CHECK(channel_.send_line(req.to_line()),
            "server closed the connection");
  while (true) {
    const ServeResponse resp = recv_response();
    if (!resp.ok) throw ServeError(resp.error, resp.message);
    if (resp.frame == "trace") {
      const TraceValue* line = resp.find("line");
      AAL_CHECK(line != nullptr &&
                    line->kind() == TraceValue::Kind::kString,
                "trace frame without a \"line\" field");
      out << line->as_string() << '\n';
      continue;
    }
    if (resp.frame == "end") return resp;
    AAL_CHECK(false, "unexpected stream frame \"" << resp.frame << "\"");
  }
}

}  // namespace aal
