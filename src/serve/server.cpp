#include "serve/server.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "graph/model_parser.hpp"
#include "graph/models.hpp"
#include "hwsim/target.hpp"
#include "pipeline/model_tuner.hpp"
#include "space/template_registry.hpp"
#include "support/common.hpp"

namespace aal {

namespace {

bool is_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

/// The CLI's model resolution: an existing file parses as a model file,
/// anything else must be a zoo name.
Graph load_job_model(const std::string& spec) {
  if (std::filesystem::exists(spec)) return parse_model_file(spec);
  return make_model(spec);
}

}  // namespace

const char* job_state_name(JobState state, bool cancelling) {
  if (cancelling && state == JobState::kRunning) return "cancelling";
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::vector<TraceEvent> JobTraceSink::events_from(std::int64_t cursor) const {
  std::lock_guard<std::mutex> lock(events_mutex_);
  if (cursor < 0) cursor = 0;
  if (cursor >= static_cast<std::int64_t>(events_.size())) return {};
  return std::vector<TraceEvent>(events_.begin() + cursor, events_.end());
}

void JobTraceSink::write(const TraceEvent& event) {
  {
    std::lock_guard<std::mutex> lock(events_mutex_);
    events_.push_back(event);
  }
  count_.fetch_add(1, std::memory_order_release);
}

TuneServer::TuneServer(TuneServerOptions options)
    : options_(std::move(options)) {
  AAL_CHECK(options_.workers >= 1, "workers must be >= 1");
  AAL_CHECK(options_.max_queued >= 1, "max_queued must be >= 1");
  AAL_CHECK(options_.tenant_quota >= 1, "tenant_quota must be >= 1");
  AAL_CHECK(options_.max_budget >= 1, "max_budget must be >= 1");
  if (!options_.store_dir.empty()) {
    RecordStoreOptions store_options;
    store_options.read_only = options_.store_readonly;
    store_ = std::make_unique<RecordStore>(options_.store_dir, store_options);
  }
  if (options_.measure_threads > 0) {
    backend_ = std::make_unique<ParallelBackend>(
        static_cast<std::size_t>(options_.measure_threads));
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TuneServer::~TuneServer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    stop_ = true;
    for (const auto& entry : queue_) {
      finish_locked(*jobs_.at(std::get<1>(entry)), JobState::kCancelled);
    }
    queue_.clear();
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) {
        job->cancel.store(true, std::memory_order_relaxed);
      }
    }
  }
  queue_cv_.notify_all();
  progress_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TuneServer::reject(ServeErrorCode code, const std::string& message) {
  metrics_.counter("serve.rejected").add();
  metrics_.counter(std::string("serve.rejected.") +
                   serve_error_code_name(code)).add();
  throw ServeError(code, message);
}

std::int64_t TuneServer::submit(const JobSpec& spec) {
  try {
    spec.validate();
  } catch (const ServeError& e) {
    reject(e.code(), e.what());
  }
  if (spec.budget > options_.max_budget) {
    reject(ServeErrorCode::kBadRequest,
           "\"budget\" exceeds the server's per-job ceiling of " +
               std::to_string(options_.max_budget));
  }
  try {
    (void)tuner_factory_by_name(spec.tuner);
  } catch (const std::exception& e) {
    reject(ServeErrorCode::kBadTuner, e.what());
  }
  try {
    const TargetSpec target = make_target(spec.target);
    // Template-name validity is checked at admission like target/tuner, so
    // a typo fails the submit rather than the job.
    (void)TemplateRegistry::instance().resolve(spec.schedule_template,
                                               target);
  } catch (const std::exception& e) {
    reject(ServeErrorCode::kBadTarget, e.what());
  }
  try {
    (void)load_job_model(spec.model);
  } catch (const std::exception& e) {
    reject(ServeErrorCode::kBadModel, e.what());
  }

  std::int64_t id = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      reject(ServeErrorCode::kShuttingDown,
             "server is draining; new jobs are not admitted");
    }
    if (queue_.size() >= options_.max_queued) {
      reject(ServeErrorCode::kQueueFull,
             "job queue is full (" + std::to_string(options_.max_queued) +
                 " queued)");
    }
    const auto tenant_it = tenant_active_.find(spec.tenant);
    if (tenant_it != tenant_active_.end() &&
        tenant_it->second >= options_.tenant_quota) {
      reject(ServeErrorCode::kQuotaExceeded,
             "tenant \"" + spec.tenant + "\" already has " +
                 std::to_string(tenant_it->second) +
                 " active jobs (quota " +
                 std::to_string(options_.tenant_quota) + ")");
    }
    id = next_id_++;
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = spec;
    queue_.insert({-spec.priority, id});
    ++tenant_active_[spec.tenant];
    jobs_.emplace(id, std::move(job));
    metrics_.counter("serve.submitted").add();
    metrics_.gauge("serve.jobs_queued")
        .set(static_cast<std::int64_t>(queue_.size()));
    metrics_.gauge("serve.queue_high_water")
        .max_of(static_cast<std::int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
  return id;
}

TuneServer::Job& TuneServer::find_job_locked(std::int64_t id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw ServeError(ServeErrorCode::kUnknownJob,
                     "no job " + std::to_string(id));
  }
  return *it->second;
}

JobInfo TuneServer::snapshot_locked(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.spec = job.spec;
  info.state = job.state;
  info.cancelling = job.state == JobState::kRunning &&
                    job.cancel.load(std::memory_order_relaxed);
  info.trace_steps = job.trace.count();
  info.measured = is_terminal(job.state)
                      ? job.measured
                      : job.job_metrics.counter_value(
                            "measure.configs_measured");
  info.best_gflops = job.best_gflops;
  info.error = job.error;
  return info;
}

JobInfo TuneServer::status(std::int64_t job) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked(find_job_locked(job));
}

std::vector<JobInfo> TuneServer::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(snapshot_locked(*job));
  return out;
}

void TuneServer::finish_locked(Job& job, JobState state) {
  job.state = state;
  const auto it = tenant_active_.find(job.spec.tenant);
  if (it != tenant_active_.end() && --it->second <= 0) {
    tenant_active_.erase(it);
  }
  switch (state) {
    case JobState::kDone:
      metrics_.counter("serve.jobs_done").add();
      break;
    case JobState::kFailed:
      metrics_.counter("serve.jobs_failed").add();
      break;
    case JobState::kCancelled:
      metrics_.counter("serve.jobs_cancelled").add();
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;
  }
  metrics_.gauge("serve.jobs_queued")
      .set(static_cast<std::int64_t>(queue_.size()));
}

bool TuneServer::cancel(std::int64_t id) {
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Job& job = find_job_locked(id);
    if (job.state == JobState::kQueued) {
      queue_.erase({-job.spec.priority, job.id});
      finish_locked(job, JobState::kCancelled);
      changed = true;
    } else if (job.state == JobState::kRunning &&
               !job.cancel.load(std::memory_order_relaxed)) {
      job.cancel.store(true, std::memory_order_relaxed);
      changed = true;
    }
  }
  if (changed) progress_cv_.notify_all();
  return changed;
}

std::vector<std::string> TuneServer::stream_lines(std::int64_t id,
                                                  std::int64_t* cursor,
                                                  bool* finished) const {
  const JobTraceSink* sink = nullptr;
  bool terminal = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Job& job = find_job_locked(id);
    sink = &job.trace;
    terminal = is_terminal(job.state);
  }
  // Terminal state is read *before* the events: once a job is terminal no
  // more events arrive, so a drain that observed `terminal` is complete.
  std::vector<std::string> lines;
  for (const TraceEvent& e : sink->events_from(*cursor)) {
    lines.push_back(to_jsonl_line(e));
  }
  *cursor += static_cast<std::int64_t>(lines.size());
  if (finished != nullptr) {
    *finished = terminal && *cursor >= sink->count();
  }
  return lines;
}

void TuneServer::wait_progress(std::int64_t id, std::int64_t cursor,
                               std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mutex_);
  const Job& job = find_job_locked(id);
  const auto ready = [&] {
    return is_terminal(job.state) || job.trace.count() > cursor;
  };
  // Event arrival does not signal progress_cv_ (the trace sink must never
  // take the server lock from inside a session), so poll in short slices.
  while (!ready()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    progress_cv_.wait_for(
        lock, std::min<std::chrono::steady_clock::duration>(
                  deadline - now, std::chrono::milliseconds(10)));
  }
}

JobInfo TuneServer::wait_job(std::int64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  Job& job = find_job_locked(id);
  progress_cv_.wait(lock, [&] { return is_terminal(job.state); });
  return snapshot_locked(job);
}

void TuneServer::wait_idle() const {
  std::unique_lock<std::mutex> lock(mutex_);
  progress_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void TuneServer::begin_shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  progress_cv_.notify_all();
}

bool TuneServer::shutting_down() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutting_down_;
}

void TuneServer::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      const auto it = queue_.begin();
      job = jobs_.at(std::get<1>(*it)).get();
      queue_.erase(it);
      job->state = JobState::kRunning;
      ++running_;
      metrics_.gauge("serve.jobs_queued")
          .set(static_cast<std::int64_t>(queue_.size()));
      metrics_.gauge("serve.jobs_running").set(running_);
    }
    progress_cv_.notify_all();
    run_job(*job);
  }
}

void TuneServer::run_job(Job& job) {
  JobState final_state = JobState::kDone;
  try {
    const Graph g = load_job_model(job.spec.model);
    const TargetSpec target = make_target(job.spec.target);
    const TunerFactory factory = tuner_factory_by_name(job.spec.tuner);

    // Exactly the CLI `tune` derivations at jobs=1 — the determinism
    // contract: this job's trace is byte-identical to the standalone run.
    ModelTuneOptions options;
    options.tune.budget = job.spec.budget;
    options.tune.early_stopping = job.spec.early_stop;
    options.tune.seed = static_cast<std::uint64_t>(job.spec.seed);
    options.device_seed = options.tune.seed * 1009 + 7;
    options.jobs = 1;
    options.trace = &job.trace;
    options.metrics = &job.job_metrics;
    options.cancel = &job.cancel;
    options.store = store_.get();
    // Warm-start from fleet history on request; degrades to a no-op when
    // the daemon runs storeless (the prior needs store history to read).
    options.transfer.enabled = job.spec.transfer;
    options.schedule_template = job.spec.schedule_template;
    options.measure_backend = backend_.get();

    const ModelTuneReport report = tune_model(g, target, factory, options);

    double best = 0.0;
    for (const TaskTuneReport& t : report.tasks) {
      best = std::max(best, t.result.best_gflops());
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job.best_gflops = best;
      job.measured = report.total_measured();
    }
    if (job.cancel.load(std::memory_order_relaxed)) {
      final_state = JobState::kCancelled;
    }
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job.error = e.what();
      job.measured =
          job.job_metrics.counter_value("measure.configs_measured");
    }
    final_state = JobState::kFailed;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
    finish_locked(job, final_state);
    metrics_.gauge("serve.jobs_running").set(running_);
  }
  progress_cv_.notify_all();
}

namespace {

std::vector<TraceField> status_fields(const JobInfo& info) {
  std::vector<TraceField> fields = {
      {"job", TraceValue(info.id)},
      {"state", TraceValue(info.state_name())},
      {"model", TraceValue(info.spec.model)},
      {"target", TraceValue(info.spec.target)},
      {"tuner", TraceValue(info.spec.tuner)},
      {"tenant", TraceValue(info.spec.tenant)},
      {"priority", TraceValue(info.spec.priority)},
      {"budget", TraceValue(info.spec.budget)},
      {"seed", TraceValue(info.spec.seed)},
      {"measured", TraceValue(info.measured)},
      {"trace_steps", TraceValue(info.trace_steps)},
      {"best_gflops", TraceValue(info.best_gflops)},
  };
  // Additive-optional, mirroring JobSpec::to_fields(): absent for
  // default-template jobs so pinned status lines are unchanged.
  if (!info.spec.schedule_template.empty()) {
    fields.push_back({"template", TraceValue(info.spec.schedule_template)});
  }
  if (!info.error.empty()) {
    fields.push_back({"error", TraceValue(info.error)});
  }
  return fields;
}

}  // namespace

std::vector<std::string> TuneServer::handle_request(const ServeRequest& req) {
  switch (req.op) {
    case ServeOp::kHello:
      return {serve_ok_line(
          req.id, {{"version", TraceValue(kServeProtocolVersion)}})};
    case ServeOp::kSubmit: {
      const std::int64_t job = submit(req.spec);
      return {serve_ok_line(req.id, {{"job", TraceValue(job)},
                                     {"state", TraceValue("queued")}})};
    }
    case ServeOp::kStatus:
      return {serve_ok_line(req.id, status_fields(status(req.job)))};
    case ServeOp::kCancel: {
      const bool changed = cancel(req.job);
      const JobInfo info = status(req.job);
      return {serve_ok_line(req.id,
                            {{"job", TraceValue(info.id)},
                             {"state", TraceValue(info.state_name())},
                             {"changed", TraceValue(changed)}})};
    }
    case ServeOp::kList: {
      const std::vector<JobInfo> infos = list();
      std::vector<std::string> frames;
      frames.reserve(infos.size() + 2);
      frames.push_back(serve_ok_line(
          req.id, {{"frame", TraceValue("begin")},
                   {"count", TraceValue(infos.size())}}));
      for (const JobInfo& info : infos) {
        frames.push_back(serve_ok_line(
            req.id, {{"frame", TraceValue("job")},
                     {"job", TraceValue(info.id)},
                     {"state", TraceValue(info.state_name())},
                     {"model", TraceValue(info.spec.model)},
                     {"tenant", TraceValue(info.spec.tenant)},
                     {"priority", TraceValue(info.spec.priority)},
                     {"measured", TraceValue(info.measured)},
                     {"best_gflops", TraceValue(info.best_gflops)}}));
      }
      frames.push_back(
          serve_ok_line(req.id, {{"frame", TraceValue("end")}}));
      return frames;
    }
    case ServeOp::kStats: {
      std::int64_t queued = 0;
      std::int64_t running = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        queued = static_cast<std::int64_t>(queue_.size());
        running = running_;
      }
      return {serve_ok_line(
          req.id,
          {{"version", TraceValue(kServeProtocolVersion)},
           {"workers", TraceValue(options_.workers)},
           {"queued", TraceValue(queued)},
           {"running", TraceValue(running)},
           {"submitted", TraceValue(metrics_.counter_value("serve.submitted"))},
           {"rejected", TraceValue(metrics_.counter_value("serve.rejected"))},
           {"done", TraceValue(metrics_.counter_value("serve.jobs_done"))},
           {"failed", TraceValue(metrics_.counter_value("serve.jobs_failed"))},
           {"cancelled",
            TraceValue(metrics_.counter_value("serve.jobs_cancelled"))},
           {"store_records",
            TraceValue(store_ ? static_cast<std::int64_t>(store_->size())
                              : 0)}})};
    }
    case ServeOp::kShutdown:
      begin_shutdown();
      return {serve_ok_line(req.id, {{"state", TraceValue("draining")}})};
    case ServeOp::kStream:
      throw ServeError(
          ServeErrorCode::kBadRequest,
          "stream is served by streaming transports, not one-shot dispatch");
  }
  throw ServeError(ServeErrorCode::kInternalError, "unhandled op");
}

std::vector<std::string> TuneServer::handle_line(const std::string& line) {
  std::int64_t id = -1;
  try {
    const ServeRequest req = ServeRequest::parse(line, &id);
    return handle_request(req);
  } catch (const ServeError& e) {
    return {serve_error_line(id, e.code(), e.what())};
  } catch (const std::exception& e) {
    return {serve_error_line(id, ServeErrorCode::kInternalError, e.what())};
  }
}

}  // namespace aal
