#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/string_util.hpp"

namespace aal {

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (data_.count == 0) {
    data_.min = v;
    data_.max = v;
  } else {
    data_.min = std::min(data_.min, v);
    data_.max = std::max(data_.max, v);
  }
  ++data_.count;
  data_.sum += v;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::int64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TextTable table;
  table.set_header({"metric", "kind", "value"});
  for (const auto& [name, c] : counters_) {
    table.add_row({name, "counter", std::to_string(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    table.add_row({name, "gauge", std::to_string(g->value())});
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    std::ostringstream os;
    os << "count=" << s.count << " mean=" << format_double(s.mean(), 4)
       << " min=" << format_double(s.min, 4)
       << " max=" << format_double(s.max, 4);
    table.add_row({name, "histogram", os.str()});
  }
  return table.to_string();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    const Histogram::Snapshot s = h->snapshot();
    out += '"' + json_escape(name) + "\":{\"count\":" +
           std::to_string(s.count) +
           ",\"sum\":" + format_double_roundtrip(s.sum) +
           ",\"min\":" + format_double_roundtrip(s.min) +
           ",\"max\":" + format_double_roundtrip(s.max) + '}';
  }
  out += "}}";
  return out;
}

}  // namespace aal
