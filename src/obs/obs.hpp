// Obs: the lightweight observability handle threaded through the pipeline.
//
// An Obs bundles an optional TraceSink, an optional MetricsRegistry and a
// lane label, and is passed by value (three words) into sessions, tuners,
// measurers and backends. Every helper is a no-op when the corresponding
// receiver is absent, so instrumented code never branches on "is tracing
// on" — it just calls emit()/count() unconditionally.
//
// The lane label identifies which model-tuning lane an event came from
// (the task's workload key); single-task sessions leave it empty and the
// field is omitted from emitted events.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aal {

struct Obs {
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  std::string lane;

  bool tracing() const { return trace != nullptr; }
  bool active() const { return trace != nullptr || metrics != nullptr; }

  /// Emits a trace event (no-op without a sink). A non-empty lane is
  /// prepended as the first field; `exec_fields` carry execution-schedule
  /// metadata (backend name, thread counts) and are appended only when the
  /// sink opted in via set_capture_execution(true) — see trace.hpp.
  void emit(TraceEventType type, std::vector<TraceField> fields,
            std::vector<TraceField> exec_fields = {}) const;

  /// Bumps a counter (no-op without a registry).
  void count(std::string_view name, std::int64_t delta = 1) const {
    if (metrics != nullptr) metrics->counter(name).add(delta);
  }

  void gauge_set(std::string_view name, std::int64_t v) const {
    if (metrics != nullptr) metrics->gauge(name).set(v);
  }

  /// Raises a high-water gauge.
  void gauge_max(std::string_view name, std::int64_t v) const {
    if (metrics != nullptr) metrics->gauge(name).max_of(v);
  }

  void record(std::string_view name, double v) const {
    if (metrics != nullptr) metrics->histogram(name).record(v);
  }

  /// Copy of this handle with a different lane label.
  Obs with_lane(std::string lane_label) const {
    Obs out = *this;
    out.lane = std::move(lane_label);
    return out;
  }
};

}  // namespace aal
