#include "obs/trace.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <iterator>
#include <limits>
#include <utility>

#include "support/common.hpp"
#include "support/string_util.hpp"

namespace aal {

namespace {

struct TypeName {
  TraceEventType type;
  const char* name;
};

constexpr TypeName kTypeNames[] = {
    {TraceEventType::kSessionBegin, "session_begin"},
    {TraceEventType::kSessionEnd, "session_end"},
    {TraceEventType::kPropose, "propose"},
    {TraceEventType::kMeasureBatchBegin, "measure_batch_begin"},
    {TraceEventType::kMeasureBatchEnd, "measure_batch_end"},
    {TraceEventType::kObserve, "observe"},
    {TraceEventType::kSurrogateFit, "surrogate_fit"},
    {TraceEventType::kScopeChange, "scope_change"},
    {TraceEventType::kEarlyStop, "early_stop"},
    {TraceEventType::kMeasureRetry, "measure_retry"},
    {TraceEventType::kFaultInjected, "fault_injected"},
    {TraceEventType::kQuarantine, "quarantine"},
    {TraceEventType::kStoreHit, "store_hit"},
    {TraceEventType::kConstraintPrune, "constraint_prune"},
    {TraceEventType::kTransferSeed, "transfer_seed"},
    {TraceEventType::kMetaFit, "meta_fit"},
    {TraceEventType::kTemplateSelect, "template_select"},
};

}  // namespace

const char* trace_event_type_name(TraceEventType type) {
  for (const TypeName& t : kTypeNames) {
    if (t.type == type) return t.name;
  }
  return "unknown";
}

std::optional<TraceEventType> trace_event_type_from_name(
    std::string_view name) {
  for (const TypeName& t : kTypeNames) {
    if (name == t.name) return t.type;
  }
  return std::nullopt;
}

std::string TraceValue::to_json() const {
  switch (kind_) {
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble:
      return format_double_roundtrip(double_);
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kString:
      return '"' + json_escape(string_) + '"';
  }
  return {};
}

bool TraceValue::operator==(const TraceValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kInt:
      return int_ == other.int_;
    case Kind::kDouble:
      // NaN == NaN here: round-tripped events must compare equal.
      return double_ == other.double_ ||
             (std::isnan(double_) && std::isnan(other.double_));
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kString:
      return string_ == other.string_;
  }
  return false;
}

std::string to_jsonl_line(const TraceEvent& event) {
  std::string out;
  out.reserve(64 + event.fields.size() * 16);
  out += "{\"step\":";
  out += std::to_string(event.step);
  out += ",\"type\":\"";
  out += trace_event_type_name(event.type);
  out += '"';
  for (const TraceField& f : event.fields) {
    out += ",\"";
    out += json_escape(f.key);
    out += "\":";
    out += f.value.to_json();
  }
  out += '}';
  return out;
}

namespace {

/// Strict cursor-based parser for the flat single-line JSON objects
/// to_jsonl_line / to_json_object_line produce (plus the nan/inf/-inf
/// double extension).
class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  std::vector<TraceField> parse() {
    expect('{');
    std::vector<TraceField> fields;
    while (true) {
      if (peek() == '}') break;
      if (!fields.empty()) expect(',');
      std::string key = parse_string();
      expect(':');
      TraceValue value = parse_value();
      fields.push_back(TraceField{std::move(key), std::move(value)});
    }
    expect('}');
    AAL_CHECK(pos_ == s_.size(), "trailing input after JSON object: " << s_);
    return fields;
  }

 private:
  char peek() const {
    AAL_CHECK(pos_ < s_.size(), "truncated JSON object: " << s_);
    return s_[pos_];
  }

  void expect(char c) {
    AAL_CHECK(pos_ < s_.size() && s_[pos_] == c,
              "malformed JSON object (expected '" << c << "' at offset "
                                                  << pos_ << "): " << s_);
    ++pos_;
  }

  bool consume(std::string_view token) {
    if (s_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      AAL_CHECK(pos_ < s_.size(), "unterminated string in JSON object: " << s_);
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      AAL_CHECK(pos_ < s_.size(), "truncated escape in JSON object: " << s_);
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          AAL_CHECK(pos_ + 4 <= s_.size(),
                    "truncated \\u escape in JSON object: " << s_);
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            int digit;
            if (h >= '0' && h <= '9') digit = h - '0';
            else if (h >= 'a' && h <= 'f') digit = h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') digit = h - 'A' + 10;
            else { AAL_CHECK(false, "bad \\u escape in JSON object: " << s_); }
            code = code * 16 + digit;
          }
          AAL_CHECK(code < 0x80,
                    "only ASCII \\u escapes are produced by this writer: "
                        << s_);
          out += static_cast<char>(code);
          break;
        }
        default:
          AAL_CHECK(false, "unknown escape '\\" << esc
                                                << "' in JSON object: " << s_);
      }
    }
    return out;
  }

  TraceValue parse_value() {
    const char c = peek();
    if (c == '"') return TraceValue(parse_string());
    if (consume("true")) return TraceValue(true);
    if (consume("false")) return TraceValue(false);
    if (consume("nan")) return TraceValue(std::nan(""));
    if (consume("inf")) {
      return TraceValue(std::numeric_limits<double>::infinity());
    }
    if (consume("-inf")) {
      return TraceValue(-std::numeric_limits<double>::infinity());
    }
    // Number: scan the maximal numeric token, then decide int vs double by
    // the presence of '.'/'e' — matching the writer's ".0" convention.
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    const std::string_view token = s_.substr(start, pos_ - start);
    AAL_CHECK(!token.empty(), "malformed value in JSON object: " << s_);
    if (token.find_first_of(".eE") != std::string_view::npos) {
      return TraceValue(parse_double_strict(token));
    }
    return TraceValue(parse_int64_strict(token));
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_json_object_line(const std::vector<TraceField>& fields) {
  std::string out;
  out.reserve(16 + fields.size() * 16);
  out += '{';
  bool first = true;
  for (const TraceField& f : fields) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(f.key);
    out += "\":";
    out += f.value.to_json();
  }
  out += '}';
  return out;
}

std::vector<TraceField> fields_from_json_object_line(std::string_view line) {
  return LineParser(line).parse();
}

TraceEvent trace_event_from_jsonl_line(std::string_view line) {
  std::vector<TraceField> fields = LineParser(line).parse();
  AAL_CHECK(!fields.empty(), "empty trace event: " << line);
  AAL_CHECK(fields[0].key == "step" &&
                fields[0].value.kind() == TraceValue::Kind::kInt,
            "trace line must start with an integer \"step\" field: " << line);
  AAL_CHECK(fields.size() >= 2 && fields[1].key == "type" &&
                fields[1].value.kind() == TraceValue::Kind::kString,
            "trace line must carry a string \"type\" field: " << line);
  const auto type = trace_event_type_from_name(fields[1].value.as_string());
  AAL_CHECK(type.has_value(),
            "unknown trace event type '" << fields[1].value.as_string()
                                         << "'");
  TraceEvent event;
  event.step = fields[0].value.as_int();
  event.type = *type;
  event.fields.assign(std::make_move_iterator(fields.begin() + 2),
                      std::make_move_iterator(fields.end()));
  return event;
}

void TraceSink::emit(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.step = next_step_++;
  write(event);
}

std::int64_t TraceSink::steps_emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_step_;
}

void NullTraceSink::write(const TraceEvent& event) { (void)event; }

std::vector<TraceEvent> MemoryTraceSink::events() const {
  std::lock_guard<std::mutex> lock(events_mutex_);
  return events_;
}

std::string MemoryTraceSink::to_jsonl() const {
  std::lock_guard<std::mutex> lock(events_mutex_);
  std::string out;
  for (const TraceEvent& e : events_) {
    out += to_jsonl_line(e);
    out += '\n';
  }
  return out;
}

void MemoryTraceSink::replay_into(TraceSink& target) const {
  for (const TraceEvent& e : events()) target.emit(e);
}

void MemoryTraceSink::write(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(events_mutex_);
  events_.push_back(event);
}

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(&os) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  AAL_CHECK(file->good(), "cannot open trace file for writing: " << path);
  owned_ = std::move(file);
  os_ = owned_.get();
}

JsonlTraceSink::~JsonlTraceSink() { os_->flush(); }

void JsonlTraceSink::flush() { os_->flush(); }

void JsonlTraceSink::write(const TraceEvent& event) {
  *os_ << to_jsonl_line(event) << '\n';
}

}  // namespace aal
