#include "obs/obs.hpp"

namespace aal {

void Obs::emit(TraceEventType type, std::vector<TraceField> fields,
               std::vector<TraceField> exec_fields) const {
  if (trace == nullptr) return;
  TraceEvent event;
  event.type = type;
  event.fields.reserve(fields.size() + exec_fields.size() + 1);
  if (!lane.empty()) {
    event.fields.push_back(TraceField{"lane", TraceValue(lane)});
  }
  for (TraceField& f : fields) event.fields.push_back(std::move(f));
  if (trace->capture_execution()) {
    for (TraceField& f : exec_fields) event.fields.push_back(std::move(f));
  }
  trace->emit(std::move(event));
}

}  // namespace aal
