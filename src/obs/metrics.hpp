// Named counters, gauges and histograms for the tuning pipeline.
//
// A MetricsRegistry aggregates what a run *did* — configurations measured,
// Measurer cache hits, surrogate fits, BAO scope changes, thread-pool queue
// depth — without the per-event detail of a trace. Counters and gauges are
// lock-free atomics so concurrent tuning lanes can share one registry;
// metric handles returned by the registry stay valid for its lifetime.
//
// Logical-event metrics (counts of proposals, fits, cache hits) are as
// deterministic as the traces; execution metrics (queue high-water) reflect
// the actual schedule and may vary run to run — dumps label both the same
// way and leave the interpretation to the reader.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace aal {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write or high-water integer metric.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if it is larger (high-water semantics).
  void max_of(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Streaming summary of a double-valued distribution (count/sum/min/max).
class Histogram {
 public:
  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when empty
    double max = 0.0;  // 0 when empty

    double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  };

  void record(double v);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  Snapshot data_;
};

/// Name -> metric registry with deterministic (name-sorted) dumps.
class MetricsRegistry {
 public:
  /// Finds or creates a metric. Thread-safe; the reference stays valid for
  /// the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Value of a counter/gauge, or 0 when it was never touched (test and
  /// report convenience that avoids creating the metric).
  std::int64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;

  /// Fixed-width text table of every metric, sorted by name.
  std::string to_text() const;

  /// Single-line JSON dump ({"counters":{...},"gauges":{...},
  /// "histograms":{...}}), name-sorted so output is deterministic.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace aal
