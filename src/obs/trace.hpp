// Structured tracing for the tuning pipeline.
//
// A TraceSink receives typed events from every layer of a tuning run
// (session lifecycle, proposals, measurement batches, surrogate fits, BAO
// scope changes, early stops). Events are stamped with a *deterministic
// monotonic step counter*, never wall-clock time: a trace is a pure function
// of the run's seeds, so a serial run and a parallel run of the same task
// serialize to byte-identical JSONL — which is what makes golden-trace
// regression tests possible (tests/obs/test_golden_trace.cpp).
//
// Execution-schedule metadata (backend name, thread counts) is inherently
// not seed-deterministic in meaning, so emitters pass it separately and
// sinks drop it unless set_capture_execution(true) opted in. Default traces
// stay bitwise-reproducible; debugging traces can carry the extra context.
//
// Serialization is line-oriented JSON ("JSONL"): one flat object per event,
// keys in emission order, doubles in shortest round-trip form ("nan"/"inf"/
// "-inf" for non-finite values — a deliberate JSON5-style extension so
// failed-measurement latencies survive a round trip).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aal {

/// The event vocabulary of the tuning pipeline. One enumerator per row of
/// the schema table in DESIGN.md §4.
enum class TraceEventType : int {
  kSessionBegin,       // a TuningSession starts (tuner, budget, space size)
  kSessionEnd,         // ...and finishes (reason, best)
  kPropose,            // one policy proposal round (requested/proposed/fresh)
  kMeasureBatchBegin,  // a measurement batch enters the backend
  kMeasureBatchEnd,    // ...and leaves it (measured/cache hits/failures)
  kObserve,            // fresh results fed back to the policy
  kSurrogateFit,       // a cost model or bootstrap ensemble was (re)fitted
  kScopeChange,        // BAO adapted its neighborhood radius (R -> tau*R)
  kEarlyStop,          // the early-stopping patience tripped
  kMeasureRetry,       // a config needed more than one device attempt
  kFaultInjected,      // a transient fault struck a measurement attempt
  kQuarantine,         // a config's retry budget ran dry
  kStoreHit,           // a RecordStore preload seeded the memo cache
  kConstraintPrune,    // target constraints pruned sampled configs this run
  kTransferSeed,       // a cross-run transfer prior seeded this task
  kMetaFit,            // a meta-surrogate was fit on pooled store history
  kTemplateSelect,     // a non-default schedule template built a task's space
};

/// Stable wire name of an event type ("session_begin", ...).
const char* trace_event_type_name(TraceEventType type);

/// Inverse of trace_event_type_name; nullopt for unknown names.
std::optional<TraceEventType> trace_event_type_from_name(std::string_view name);

/// A typed field value: int64, double, bool or string. Doubles preserve
/// NaN/inf through serialization, and equality treats NaN == NaN so parsed
/// events compare equal to the originals in round-trip tests.
class TraceValue {
 public:
  enum class Kind : int { kInt, kDouble, kBool, kString };

  TraceValue() : kind_(Kind::kInt) {}
  TraceValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  TraceValue(int v) : TraceValue(static_cast<std::int64_t>(v)) {}
  TraceValue(std::size_t v) : TraceValue(static_cast<std::int64_t>(v)) {}
  TraceValue(double v) : kind_(Kind::kDouble), double_(v) {}
  TraceValue(bool v) : kind_(Kind::kBool), bool_(v) {}
  TraceValue(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}
  TraceValue(const char* v) : TraceValue(std::string(v)) {}

  Kind kind() const { return kind_; }
  std::int64_t as_int() const { return int_; }
  double as_double() const { return double_; }
  bool as_bool() const { return bool_; }
  const std::string& as_string() const { return string_; }

  /// Serialized JSON form ("12", "3.5", "nan", "true", "\"text\"").
  std::string to_json() const;

  bool operator==(const TraceValue& other) const;

 private:
  Kind kind_;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  bool bool_ = false;
  std::string string_;
};

struct TraceField {
  std::string key;
  TraceValue value;

  bool operator==(const TraceField& other) const {
    return key == other.key && value == other.value;
  }
};

struct TraceEvent {
  /// Monotonic per-sink step index, assigned by TraceSink::emit(). This is
  /// the event's only timestamp — see the determinism argument above.
  std::int64_t step = -1;
  TraceEventType type = TraceEventType::kSessionBegin;
  std::vector<TraceField> fields;  // serialized in this order

  bool operator==(const TraceEvent& other) const {
    return step == other.step && type == other.type && fields == other.fields;
  }
};

/// One JSONL line (no trailing newline), e.g.
/// {"step":3,"type":"propose","lane":"conv2d/...","round":1,"fresh":8}
std::string to_jsonl_line(const TraceEvent& event);

/// Strict inverse of to_jsonl_line: rejects trailing input, missing
/// step/type, unknown event types and malformed JSON (InvalidArgument).
TraceEvent trace_event_from_jsonl_line(std::string_view line);

/// Serializes ordered fields as one compact flat JSON object (no trailing
/// newline) under the same codec rules as to_jsonl_line: keys in order,
/// minimal string escaping, shortest round-trip doubles with the
/// nan/inf/-inf extension. The serve wire protocol (src/serve) frames its
/// messages with this, so protocol lines and trace lines share one codec.
std::string to_json_object_line(const std::vector<TraceField>& fields);

/// Strict inverse of to_json_object_line for any flat JSON object: returns
/// the fields in wire order. Rejects nesting, trailing input and malformed
/// JSON (InvalidArgument).
/// trace_event_from_jsonl_line layers step/type validation on top of this.
std::vector<TraceField> fields_from_json_object_line(std::string_view line);

/// Receives events from the pipeline. emit() is thread-safe; the step
/// counter and the write are updated under one lock so steps appear in
/// order even when lanes share a sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Stamps `event.step` with the next step index and records the event.
  void emit(TraceEvent event);

  /// Number of events emitted so far.
  std::int64_t steps_emitted() const;

  /// Opt into execution-schedule metadata (backend names, thread counts).
  /// Off by default so traces stay byte-identical across backends.
  void set_capture_execution(bool on) { capture_execution_ = on; }
  bool capture_execution() const { return capture_execution_; }

 protected:
  /// Called under the sink lock, with `event.step` already assigned.
  virtual void write(const TraceEvent& event) = 0;

 private:
  mutable std::mutex mutex_;
  std::int64_t next_step_ = 0;
  bool capture_execution_ = false;
};

/// Discards every event (but still counts steps). Useful as an explicit
/// "tracing off" sink and for measuring instrumentation overhead.
class NullTraceSink final : public TraceSink {
 protected:
  void write(const TraceEvent& event) override;
};

/// Buffers events in memory. tune_model gives each task lane one of these
/// and replays them into the final sink in model order after the lanes
/// join, which is what makes multi-lane traces jobs-invariant.
class MemoryTraceSink final : public TraceSink {
 public:
  /// Snapshot of the buffered events.
  std::vector<TraceEvent> events() const;

  /// Serializes the buffer as JSONL (one line per event, '\n'-terminated).
  std::string to_jsonl() const;

  /// Re-emits every buffered event into `target`, which re-stamps the step
  /// indices in its own sequence.
  void replay_into(TraceSink& target) const;

 protected:
  void write(const TraceEvent& event) override;

 private:
  mutable std::mutex events_mutex_;
  std::vector<TraceEvent> events_;
};

/// Streams JSONL lines to an ostream or file as events arrive.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Writes to a borrowed stream (must outlive the sink).
  explicit JsonlTraceSink(std::ostream& os);

  /// Opens `path` for writing; throws InvalidArgument on failure.
  explicit JsonlTraceSink(const std::string& path);

  ~JsonlTraceSink() override;

  void flush();

 protected:
  void write(const TraceEvent& event) override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
};

}  // namespace aal
