// Cross-run transfer priors: warm seeds + a meta-surrogate from fleet
// history.
//
// Given the task about to be tuned and a RecordStore accumulated over prior
// runs, build_transfer_prior() assembles everything the tuning policies can
// reuse from similar tasks (nearest by task embedding, same workload kind,
// same target — records measured on one backend never warm another):
//
//   * seeds — the best configurations of the nearest prior tasks, mapped
//     knob-by-knob into this task's space, feasibility-filtered against the
//     target's hardware constraints, then topped up with HW-aware picks: a
//     deterministic feasible sample pool ranked by the target DeviceModel's
//     analytical profile. Policies start from these instead of a full-width
//     random/BTED initial set.
//   * meta — a GBDT meta-surrogate fit on the pooled (features, normalized
//     score) rows of the source tasks. BAO blends its predictions into
//     bootstrap-ensemble scoring with a confidence weight that decays
//     geometrically as live observations arrive: weight_at(n) =
//     initial_weight * 2^(-n / half_life).
//
// Everything is a pure function of (task identity, store snapshot, seed,
// params), so warm runs are exactly as deterministic as cold ones. When the
// store offers nothing usable — empty, failed-records-only, different
// target, different kind — the returned prior is inactive, no trace events
// are emitted, and only the transfer.skipped counter moves: the run is then
// bitwise-identical to one with transfer disabled (the adversarial suite in
// tests/transfer pins this).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "measure/tuning_task.hpp"
#include "ml/dataset.hpp"
#include "ml/surrogate.hpp"
#include "obs/obs.hpp"
#include "space/config_space.hpp"
#include "store/record_store.hpp"

namespace aal {

struct TransferParams {
  /// Master switch. Off by default: the cross-run prior changes proposal
  /// order, so it must be opted into (--transfer) to keep default traces
  /// byte-identical across releases.
  bool enabled = false;

  /// Nearest prior tasks consulted (same kind, same target).
  std::size_t max_source_tasks = 4;
  /// Embedding-distance ceiling; farther tasks are ignored.
  double max_task_distance = 12.0;

  /// Pooled history rows cap (nearest sources first) for the meta fit.
  std::size_t max_meta_rows = 512;
  /// Below this many pooled rows no meta-surrogate is fit (tiny histories
  /// produce noise, not priors); seeds may still activate.
  std::size_t min_meta_rows = 16;

  /// Warm-start seed budget: prior-task bests first, HW-ranked feasible
  /// samples fill the remainder.
  std::size_t max_seeds = 12;
  /// Deterministic feasible-sample pool size for the HW-aware ranking.
  std::size_t hw_pool = 96;

  /// Initial-set width when a prior is active: the policy proposes at most
  /// this many initialization configs (seeds first) instead of the full
  /// TuneOptions::num_initial — the prior replaces breadth with history,
  /// which is where the measured-config reduction comes from.
  int warm_num_initial = 12;

  /// Meta-blend confidence at zero live observations, and the number of
  /// live observations that halves it.
  double initial_weight = 0.6;
  double half_life = 16.0;
};

/// The assembled prior a tuning policy consumes. Inactive (default-built)
/// priors change nothing anywhere.
struct TransferPrior {
  /// Warm-start proposals in this task's space: distinct, feasible, prior
  /// bests first, HW-ranked fills after.
  std::vector<Config> seeds;
  /// How many of `seeds` came from the HW-aware ranking (trailing entries).
  std::size_t hw_seeds = 0;

  /// Meta-surrogate over this task's feature encoding, predicting scores
  /// normalized to each source task's best (~[0, 1]); null when history was
  /// too thin. Shared so copies of the prior stay cheap.
  std::shared_ptr<Surrogate> meta;
  /// The pooled history rows the meta was (or would have been) fit on;
  /// XgbTuner blends these into its per-round model fits directly.
  Dataset rows;

  double initial_weight = 0.0;
  double half_life = 1.0;
  int warm_num_initial = 0;
  int source_tasks = 0;

  bool active() const { return !seeds.empty() || meta != nullptr; }

  /// Meta-blend confidence after `live` fresh observations of this task:
  /// initial_weight * 2^(-live / half_life).
  double weight_at(std::int64_t live) const;
};

/// Builds the prior for `task` from `store` history. Emits a transfer_seed
/// trace event (plus meta_fit when a meta-surrogate is fit) and transfer.*
/// metrics via `obs` when the prior activates; bumps only transfer.skipped
/// when it cannot. `seed` feeds the HW-pool sampling and the meta fit, and
/// must be derived from the run's tuner seed so warm runs stay
/// schedule-independent.
TransferPrior build_transfer_prior(const TuningTask& task,
                                   const RecordStore& store,
                                   const TransferParams& params,
                                   std::uint64_t seed, const Obs& obs);

}  // namespace aal
