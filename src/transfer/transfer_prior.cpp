#include "transfer/transfer_prior.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "space/schedule_template.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "transfer/task_index.hpp"

namespace aal {

namespace {

/// One source task's usable history: its space (for featurization), its
/// successful records ranked best-first, and its best GFLOPS (the score
/// normalizer).
struct SourceHistory {
  ConfigSpace space;
  std::vector<TuningRecord> ranked_ok;  // by (gflops desc, flat asc)
  std::vector<TuningRecord> all;        // in-range records, store order
  double best_gflops = 0.0;
};

/// Maps a source-space config onto the target space knob-by-knob: same
/// kind means the same knob list, but entity counts differ with shape, so
/// each choice index is clamped into the target knob's range. The result
/// lands "near" the source optimum in choice space — exactly the locality
/// BAO's neighborhood search exploits.
Config map_config(const ConfigSpace& source_space,
                  const ConfigSpace& target_space, std::int64_t source_flat) {
  std::vector<std::int32_t> choices = source_space.at(source_flat).choices;
  for (std::size_t k = 0; k < choices.size(); ++k) {
    const auto limit =
        static_cast<std::int32_t>(target_space.knob(k).size() - 1);
    choices[k] = std::min(choices[k], limit);
  }
  return target_space.make(std::move(choices));
}

}  // namespace

double TransferPrior::weight_at(std::int64_t live) const {
  if (half_life <= 0.0) return 0.0;
  return initial_weight * std::exp2(-static_cast<double>(live) / half_life);
}

TransferPrior build_transfer_prior(const TuningTask& task,
                                   const RecordStore& store,
                                   const TransferParams& params,
                                   std::uint64_t seed, const Obs& obs) {
  TransferPrior prior;
  if (!params.enabled) return prior;

  const ConfigSpace& space = task.space();
  const TaskIndex index(store);
  const std::vector<PriorTask> nearest = index.nearest(
      task.workload(), task.target(), params.max_source_tasks,
      params.max_task_distance, task.template_name());

  // Collect usable sources: parseable, knob/feature-compatible, and with at
  // least one successful record (a quarantined/failed-only history teaches
  // nothing worth seeding from).
  std::vector<SourceHistory> sources;
  for (const PriorTask& candidate : nearest) {
    SourceHistory src;
    // nearest() filtered to the query's template, so the source space is
    // built through the same template on the same target — mapped choice
    // indices land on the same knob layout.
    src.space = task.schedule_template().build(candidate.workload,
                                               task.target());
    if (src.space.num_knobs() != space.num_knobs() ||
        src.space.feature_dim() != space.feature_dim()) {
      continue;
    }
    for (TuningRecord& r : store.records_for(candidate.task_key)) {
      if (r.config_flat < 0 || r.config_flat >= src.space.size()) continue;
      if (r.ok && r.gflops > src.best_gflops) src.best_gflops = r.gflops;
      src.all.push_back(std::move(r));
    }
    if (src.best_gflops <= 0.0) continue;
    src.ranked_ok.reserve(src.all.size());
    for (const TuningRecord& r : src.all) {
      if (r.ok) src.ranked_ok.push_back(r);
    }
    std::sort(src.ranked_ok.begin(), src.ranked_ok.end(),
              [](const TuningRecord& a, const TuningRecord& b) {
                if (a.gflops != b.gflops) return a.gflops > b.gflops;
                return a.config_flat < b.config_flat;
              });
    sources.push_back(std::move(src));
  }
  if (sources.empty()) {
    // Nothing transferable: stay bitwise on the cold-start path (no trace
    // events), recording only why.
    obs.count("transfer.skipped");
    return prior;
  }

  // --- Pooled history rows (meta-surrogate training set) ---------------
  // Nearest sources first; failed records train at 0 so the meta learns to
  // steer around them, successes at gflops normalized by the source best.
  prior.rows = Dataset(static_cast<std::size_t>(space.feature_dim()));
  for (const SourceHistory& src : sources) {
    for (const TuningRecord& r : src.all) {
      if (prior.rows.num_rows() >= params.max_meta_rows) break;
      prior.rows.add_row(src.space.features(src.space.at(r.config_flat)),
                         r.ok ? r.gflops / src.best_gflops : 0.0);
    }
  }

  // --- Warm seeds: prior-task bests, round-robin across sources --------
  std::unordered_set<std::int64_t> seed_flats;
  for (std::size_t rank = 0; prior.seeds.size() < params.max_seeds; ++rank) {
    bool any = false;
    for (const SourceHistory& src : sources) {
      if (rank >= src.ranked_ok.size()) continue;
      any = true;
      if (prior.seeds.size() >= params.max_seeds) break;
      Config mapped =
          map_config(src.space, space, src.ranked_ok[rank].config_flat);
      if (!seed_flats.insert(mapped.flat).second) continue;
      if (!space.feasible(mapped)) continue;
      prior.seeds.push_back(std::move(mapped));
    }
    if (!any) break;
  }

  // --- HW-aware fill: feasible pool ranked by the analytical profile ---
  // sample_distinct() already rejects constraint-infeasible points, so on
  // constraint-heavy targets (the FPGA rejects ~66% of uniform draws) the
  // pool is all-feasible by construction; the DeviceModel profile then
  // orders it by predicted throughput.
  if (prior.seeds.size() < params.max_seeds && params.hw_pool > 0) {
    Rng hw_rng(splitmix64(seed ^ 0x48575345454453ULL));  // "HWSEEDS"
    std::vector<Config> pool = space.sample_distinct(
        static_cast<std::int64_t>(params.hw_pool), hw_rng);
    std::vector<std::pair<double, std::size_t>> ranked;  // (-gflops, idx)
    ranked.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const KernelProfile profile = task.profile(pool[i]);
      if (!profile.valid) continue;
      ranked.emplace_back(-profile.gflops(task.workload().flops()), i);
    }
    std::sort(ranked.begin(), ranked.end(),
              [&pool](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return pool[a.second].flat < pool[b.second].flat;
              });
    for (const auto& [neg_gflops, i] : ranked) {
      if (prior.seeds.size() >= params.max_seeds) break;
      if (!seed_flats.insert(pool[i].flat).second) continue;
      prior.seeds.push_back(pool[i]);
      ++prior.hw_seeds;
    }
  }

  // --- Meta-surrogate ---------------------------------------------------
  if (prior.rows.num_rows() >= params.min_meta_rows) {
    GbdtParams gbdt;
    gbdt.num_trees = 32;
    gbdt.max_depth = 4;
    gbdt.row_subsample = 1.0;
    gbdt.seed = splitmix64(seed ^ 0x4d455441464954ULL);  // "METAFIT"
    auto meta = std::make_shared<GbdtSurrogate>(gbdt);
    meta->fit(prior.rows);
    prior.meta = std::move(meta);
  }

  if (!prior.active()) {
    obs.count("transfer.skipped");
    return prior;
  }

  prior.initial_weight = params.initial_weight;
  prior.half_life = params.half_life;
  prior.warm_num_initial = params.warm_num_initial;
  prior.source_tasks = static_cast<int>(sources.size());

  obs.count("transfer.activations");
  obs.count("transfer.sources", prior.source_tasks);
  obs.count("transfer.seeds", static_cast<std::int64_t>(prior.seeds.size()));
  obs.count("transfer.hw_seeds", static_cast<std::int64_t>(prior.hw_seeds));
  obs.count("transfer.rows",
            static_cast<std::int64_t>(prior.rows.num_rows()));
  obs.emit(TraceEventType::kTransferSeed,
           {{"sources", TraceValue(prior.source_tasks)},
            {"rows", TraceValue(prior.rows.num_rows())},
            {"seeds", TraceValue(prior.seeds.size())},
            {"hw_seeds", TraceValue(prior.hw_seeds)},
            {"warm_initial", TraceValue(prior.warm_num_initial)}});
  if (prior.meta != nullptr) {
    obs.count("transfer.meta_fits");
    obs.emit(TraceEventType::kMetaFit,
             {{"model", TraceValue("gbdt")},
              {"sources", TraceValue(prior.source_tasks)},
              {"rows", TraceValue(prior.rows.num_rows())},
              {"weight", TraceValue(prior.initial_weight)},
              {"half_life", TraceValue(prior.half_life)}});
  }
  AAL_LOG_INFO << "transfer: " << prior.source_tasks << " source task(s), "
               << prior.rows.num_rows() << " rows, " << prior.seeds.size()
               << " seeds (" << prior.hw_seeds << " HW-ranked) for "
               << task.key();
  return prior;
}

}  // namespace aal
