// Deterministic task embeddings for cross-run transfer.
//
// A task's embedding is a fixed-width real vector computed purely from its
// identity — operator kind and shape parameters, target machine envelope,
// and the signature of the configuration space the schedule template builds
// for it. No measurements, wall-clock or store layout enter the embedding,
// so two processes (or the same store before and after compaction, or with
// a different shard count) embed a task to bitwise-identical vectors — the
// invariance the property suite in tests/transfer pins.
//
// Distances between embeddings rank *prior* store tasks by similarity to
// the task about to be tuned; the transfer layer only ever compares tasks
// of the same workload kind on the same target, so the metric's job is to
// order siblings by shape proximity (log2-encoded, like the config feature
// encoding, so "twice the channels" is one unit apart at every scale).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "hwsim/target.hpp"
#include "ir/workload.hpp"

namespace aal {

/// Width of every task embedding.
inline constexpr int kTaskEmbeddingDim = 22;

/// Embeds a task identity. Pure: same (workload, target, template) -> same
/// bits. `template_request` uses the TemplateRegistry vocabulary and
/// defaults to the CUDA-shaped template, so pre-template embeddings are
/// unchanged; the space-signature slots make two templates of the same task
/// embed apart.
std::vector<double> embed_task(const Workload& workload,
                               const TargetSpec& target,
                               const std::string& template_request =
                                   std::string());

/// Euclidean distance between two embeddings (symmetric, non-negative,
/// zero iff the vectors are bitwise equal). Widths must match.
double embedding_distance(std::span<const double> a,
                          std::span<const double> b);

}  // namespace aal
