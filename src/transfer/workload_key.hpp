// Inverting the task-identity keys the RecordStore files on.
//
// Cross-run transfer has to reason about *prior* tasks it only knows by
// their store keys. Workload::key() is a lossless canonical encoding of the
// workload parameters ("conv2d/n1_c3_hw224x224_o64_k3x3_s1x1_p1x1_g1_
// float32"), and TuningTask::key_for() appends "@<target-name>" for
// non-default targets and "#<template-name>" for non-default schedule
// templates — so the store key alone reconstructs a task's full identity.
// This header is that inverse: split a store key into (workload key, target
// name, template name) and parse the workload key back into a Workload,
// without any side index file that would change store bytes or orphan
// legacy stores.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "ir/workload.hpp"

namespace aal {

/// A store task key split into its identity parts. Legacy keys carry no
/// "@target" qualifier; they were written by the single-backend pipeline
/// whose only device was the default target, so they resolve to gpu-pascal
/// (the same convention TuningTask::key_for still encodes today). Likewise
/// keys without a "#template" suffix predate (or never left) the default
/// CUDA-shaped space and resolve to template "cuda" — so a bare legacy key,
/// an "@target" key and a "#template"-qualified key can never collide:
/// qualifiers are only written when the part differs from its default.
struct TaskKeyParts {
  std::string workload_key;   // e.g. "conv2d/n1_c3_hw8x8_o4_k3x3_s1x1_p1x1_g1_float32"
  std::string target_name;    // e.g. "gpu-pascal" (legacy bare keys), "fpga-systolic"
  std::string template_name;  // e.g. "cuda" (legacy keys), "systolic"
};

/// Splits a task key `<workload>[@<target>][#<template>]`: the template
/// suffix is taken at the last '#', then the target at the last '@' of the
/// remainder. Missing qualifiers report their defaults ("gpu-pascal",
/// "cuda").
TaskKeyParts split_task_key(std::string_view task_key);

/// Parses a canonical workload key (the Workload::key() encoding) back into
/// a Workload. Returns nullopt for malformed or unknown-kind keys — store
/// directories may contain keys written by future schema versions, and the
/// transfer layer must skip those rather than fail the run.
std::optional<Workload> workload_from_key(std::string_view workload_key);

}  // namespace aal
