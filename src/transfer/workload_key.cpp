#include "transfer/workload_key.hpp"

#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace aal {

namespace {

/// Minimal cursor over a key body: consumes literal markers and base-10
/// integers, flagging failure instead of throwing (malformed keys are a
/// skip, not an error — see workload_from_key's contract).
class KeyCursor {
 public:
  explicit KeyCursor(std::string_view text) : text_(text) {}

  bool literal(std::string_view expect) {
    if (!ok_ || text_.substr(pos_, expect.size()) != expect) return fail();
    pos_ += expect.size();
    return true;
  }

  bool integer(std::int64_t* out) {
    if (!ok_ || pos_ >= text_.size()) return fail();
    std::size_t i = pos_;
    std::int64_t value = 0;
    while (i < text_.size() && text_[i] >= '0' && text_[i] <= '9') {
      value = value * 10 + (text_[i] - '0');
      ++i;
    }
    if (i == pos_) return fail();
    pos_ = i;
    *out = value;
    return true;
  }

  /// The unconsumed remainder (used for the trailing dtype name).
  std::string_view rest() const { return ok_ ? text_.substr(pos_) : ""; }

  bool ok() const { return ok_; }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::optional<DType> dtype_from_key(std::string_view name) {
  try {
    return dtype_from_name(std::string(name));
  } catch (const InvalidArgument&) {
    return std::nullopt;
  }
}

std::optional<Workload> parse_conv(std::string_view body) {
  Conv2dWorkload w;
  KeyCursor c(body);
  c.literal("n") && c.integer(&w.batch);
  c.literal("_c") && c.integer(&w.in_channels);
  c.literal("_hw") && c.integer(&w.height);
  c.literal("x") && c.integer(&w.width);
  c.literal("_o") && c.integer(&w.out_channels);
  c.literal("_k") && c.integer(&w.kernel_h);
  c.literal("x") && c.integer(&w.kernel_w);
  c.literal("_s") && c.integer(&w.stride_h);
  c.literal("x") && c.integer(&w.stride_w);
  c.literal("_p") && c.integer(&w.pad_h);
  c.literal("x") && c.integer(&w.pad_w);
  c.literal("_g") && c.integer(&w.groups);
  c.literal("_");
  if (!c.ok()) return std::nullopt;
  const std::optional<DType> dtype = dtype_from_key(c.rest());
  if (!dtype) return std::nullopt;
  w.dtype = *dtype;
  try {
    return Workload::conv2d(w);
  } catch (const InvalidArgument&) {
    return std::nullopt;  // shape parameters that fail validation
  }
}

std::optional<Workload> parse_dense(std::string_view body) {
  DenseWorkload w;
  KeyCursor c(body);
  c.literal("n") && c.integer(&w.batch);
  c.literal("_i") && c.integer(&w.in_features);
  c.literal("_o") && c.integer(&w.out_features);
  c.literal("_");
  if (!c.ok()) return std::nullopt;
  const std::optional<DType> dtype = dtype_from_key(c.rest());
  if (!dtype) return std::nullopt;
  w.dtype = *dtype;
  try {
    return Workload::dense(w);
  } catch (const InvalidArgument&) {
    return std::nullopt;
  }
}

}  // namespace

TaskKeyParts split_task_key(std::string_view task_key) {
  TaskKeyParts parts;
  // Template suffix first: '#' never appears in workload keys or target
  // names, so the last '#' (when present) always starts the suffix.
  const std::size_t hash = task_key.rfind('#');
  if (hash == std::string_view::npos) {
    parts.template_name = "cuda";
  } else {
    parts.template_name = std::string(task_key.substr(hash + 1));
    task_key = task_key.substr(0, hash);
  }
  const std::size_t at = task_key.rfind('@');
  if (at == std::string_view::npos) {
    parts.workload_key = std::string(task_key);
    parts.target_name = "gpu-pascal";
  } else {
    parts.workload_key = std::string(task_key.substr(0, at));
    parts.target_name = std::string(task_key.substr(at + 1));
  }
  return parts;
}

std::optional<Workload> workload_from_key(std::string_view workload_key) {
  const std::size_t slash = workload_key.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const std::string_view kind = workload_key.substr(0, slash);
  const std::string_view body = workload_key.substr(slash + 1);
  std::optional<Workload> parsed;
  if (kind == "conv2d" || kind == "depthwise_conv2d") {
    parsed = parse_conv(body);
  } else if (kind == "dense") {
    parsed = parse_dense(body);
  } else {
    return std::nullopt;
  }
  // Round-trip guard: a key whose reconstruction does not re-encode to the
  // input (e.g. a depthwise key whose groups field says plain conv) is not
  // a faithful identity and must not seed transfer.
  if (parsed && parsed->key() != workload_key) return std::nullopt;
  return parsed;
}

}  // namespace aal
