#include "transfer/task_embedding.hpp"

#include <cmath>

#include "space/config_space.hpp"
#include "space/template_registry.hpp"
#include "support/common.hpp"

namespace aal {

namespace {

double log2p(double v) { return std::log2(v + 1.0); }

}  // namespace

std::vector<double> embed_task(const Workload& workload,
                               const TargetSpec& target,
                               const std::string& template_request) {
  std::vector<double> e;
  e.reserve(kTaskEmbeddingDim);

  // Operator kind, one-hot (the transfer layer never crosses kinds, but the
  // embedding is self-describing so distances between kinds stay large).
  e.push_back(workload.kind() == WorkloadKind::kConv2d ? 1.0 : 0.0);
  e.push_back(workload.kind() == WorkloadKind::kDepthwiseConv2d ? 1.0 : 0.0);
  e.push_back(workload.kind() == WorkloadKind::kDense ? 1.0 : 0.0);
  e.push_back(std::log2(static_cast<double>(workload.flops())));

  // Shape slots, log2-encoded. Dense workloads reuse the batch /
  // in-channels / out-channels slots and zero the spatial ones.
  if (workload.is_conv()) {
    const Conv2dWorkload& c = workload.as_conv2d();
    e.push_back(std::log2(static_cast<double>(c.batch)));
    e.push_back(std::log2(static_cast<double>(c.in_channels)));
    e.push_back(std::log2(static_cast<double>(c.height)));
    e.push_back(std::log2(static_cast<double>(c.width)));
    e.push_back(std::log2(static_cast<double>(c.out_channels)));
    e.push_back(std::log2(static_cast<double>(c.kernel_h * c.kernel_w)));
    e.push_back(std::log2(static_cast<double>(c.stride_h * c.stride_w)));
    e.push_back(log2p(static_cast<double>(c.pad_h + c.pad_w)));
    e.push_back(std::log2(static_cast<double>(c.groups)));
  } else {
    const DenseWorkload& d = workload.as_dense();
    e.push_back(std::log2(static_cast<double>(d.batch)));
    e.push_back(std::log2(static_cast<double>(d.in_features)));
    e.push_back(0.0);
    e.push_back(0.0);
    e.push_back(std::log2(static_cast<double>(d.out_features)));
    e.push_back(0.0);
    e.push_back(0.0);
    e.push_back(0.0);
    e.push_back(0.0);
  }

  // Target machine envelope: backend kind one-hot plus the three
  // backend-neutral magnitudes every DeviceModel exposes.
  e.push_back(target.kind == TargetKind::kGpu ? 1.0 : 0.0);
  e.push_back(target.kind == TargetKind::kCpu ? 1.0 : 0.0);
  e.push_back(target.kind == TargetKind::kFpga ? 1.0 : 0.0);
  e.push_back(std::log2(target.peak_gflops()));
  e.push_back(std::log2(target.dram_bw_gbps()));
  e.push_back(log2p(target.launch_overhead_us()));

  // Configuration-space signature: the schedule template is a pure function
  // of (workload, target, template), so these are identity features, not
  // run state. Two templates of the same task differ here, keeping their
  // embeddings apart.
  const ConfigSpace space =
      TemplateRegistry::instance().build(workload, target, template_request);
  e.push_back(static_cast<double>(space.num_knobs()));
  e.push_back(std::log2(static_cast<double>(space.size())));
  e.push_back(static_cast<double>(space.feature_dim()));

  AAL_CHECK(static_cast<int>(e.size()) == kTaskEmbeddingDim,
            "task embedding width drifted from kTaskEmbeddingDim");
  return e;
}

double embedding_distance(std::span<const double> a,
                          std::span<const double> b) {
  AAL_CHECK(a.size() == b.size(), "embedding width mismatch: "
                                      << a.size() << " vs " << b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace aal
