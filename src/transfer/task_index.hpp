// Store-side task index: "which prior tasks are nearest to this one?"
//
// The index is derived entirely from a RecordStore's sorted task keys —
// each key splits into (workload key, target name), the workload key parses
// back into a Workload, and the pair embeds deterministically. Nothing is
// persisted: the index is a pure function of the store's key set, so it is
// automatically invariant to shard order, compaction and process restarts,
// and legacy stores (bare keys, written before target qualification) index
// exactly like fresh ones.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hwsim/target.hpp"
#include "ir/workload.hpp"
#include "store/record_store.hpp"
#include "transfer/task_embedding.hpp"
#include "transfer/workload_key.hpp"

namespace aal {

/// One indexed prior task, plus its distance to the query task when
/// returned from nearest().
struct PriorTask {
  std::string task_key;       // the store key, verbatim
  std::string workload_key;   // key minus any "@target"/"#template" qualifier
  std::string target_name;    // qualifier, or "gpu-pascal" for legacy keys
  std::string template_name;  // qualifier, or "cuda" for legacy keys
  Workload workload;
  // Filled by nearest(): the embedding under the query's machine spec, and
  // its distance to the query task.
  std::vector<double> embedding;
  double distance = 0.0;
};

class TaskIndex {
 public:
  /// Indexes every parseable task key of `store` (a snapshot: keys appended
  /// to the store later are not seen). Unparseable keys — foreign schema
  /// versions, corrupt entries — are counted, not fatal.
  explicit TaskIndex(const RecordStore& store);

  /// Number of indexed (parseable) tasks.
  std::size_t size() const { return tasks_.size(); }

  /// Number of store keys that failed to split/parse and were skipped.
  std::size_t unparsed() const { return unparsed_; }

  /// The indexed prior tasks nearest to (workload, target, template),
  /// ascending by (distance, task key) — a total order, so results are
  /// deterministic. Only tasks of the same workload kind on the *same
  /// target name* tuned through the *same schedule template* are eligible
  /// (records measured on one backend — or drawn from one space shape —
  /// must never warm another), and the query task itself is excluded: its
  /// own records reach the run through the store preload path, not through
  /// transfer. `template_request` uses the registry vocabulary ("" = the
  /// default CUDA-shaped template).
  std::vector<PriorTask> nearest(const Workload& workload,
                                 const TargetSpec& target, std::size_t k,
                                 double max_distance,
                                 const std::string& template_request =
                                     std::string()) const;

 private:
  std::vector<PriorTask> tasks_;  // in sorted-task-key order
  std::size_t unparsed_ = 0;
};

}  // namespace aal
