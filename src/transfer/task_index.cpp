#include "transfer/task_index.hpp"

#include <algorithm>

#include "measure/tuning_task.hpp"

namespace aal {

TaskIndex::TaskIndex(const RecordStore& store) {
  for (const std::string& key : store.task_keys()) {
    TaskKeyParts parts = split_task_key(key);
    std::optional<Workload> workload = workload_from_key(parts.workload_key);
    if (!workload) {
      ++unparsed_;
      continue;
    }
    tasks_.push_back(PriorTask{key, std::move(parts.workload_key),
                               std::move(parts.target_name),
                               std::move(parts.template_name),
                               std::move(*workload),
                               /*embedding=*/{}, /*distance=*/0.0});
  }
}

std::vector<PriorTask> TaskIndex::nearest(
    const Workload& workload, const TargetSpec& target, std::size_t k,
    double max_distance, const std::string& template_request) const {
  const std::string self_key =
      TuningTask::key_for(workload, target, template_request);
  const std::string template_name =
      TemplateRegistry::instance().resolve(template_request, target).name();
  const std::vector<double> query =
      embed_task(workload, target, template_name);
  std::vector<PriorTask> out;
  for (const PriorTask& task : tasks_) {
    if (task.task_key == self_key) continue;
    if (task.workload.kind() != workload.kind()) continue;
    if (task.target_name != target.name) continue;
    if (task.template_name != template_name) continue;
    // Same target name means same machine spec, so the query's own
    // TargetSpec is the right envelope to embed the prior task with (and
    // fingerprint-named custom targets need no registry lookup).
    PriorTask candidate = task;
    candidate.embedding = embed_task(candidate.workload, target, template_name);
    candidate.distance = embedding_distance(candidate.embedding, query);
    if (candidate.distance > max_distance) continue;
    out.push_back(std::move(candidate));
  }
  std::sort(out.begin(), out.end(), [](const PriorTask& a, const PriorTask& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.task_key < b.task_key;
  });
  if (out.size() > k) {
    out.erase(out.begin() + static_cast<std::ptrdiff_t>(k), out.end());
  }
  return out;
}

}  // namespace aal
