#include "hwsim/device.hpp"

#include <cmath>

#include "support/common.hpp"

namespace aal {

SimulatedDevice::SimulatedDevice(TargetSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {}

SimulatedDevice::SimulatedDevice(const GpuSpec& spec, std::uint64_t seed)
    : SimulatedDevice(TargetSpec::from_gpu(spec), seed) {}

double SimulatedDevice::sample_time_us(const KernelProfile& profile,
                                       std::int64_t config_flat,
                                       int repeat) const {
  AAL_CHECK(profile.valid, "cannot sample an invalid kernel profile");
  AAL_CHECK(repeat >= 0, "repeat index must be >= 0");
  // Counter-based stream: mix (flat, repeat) into a per-call key, then fold
  // in the device seed. splitmix64 is a bijection, so distinct
  // (flat, repeat) pairs map to distinct keys; xoshiro's reseed scrambles
  // the key again, giving each call an unrelated short stream.
  const std::uint64_t key =
      splitmix64(static_cast<std::uint64_t>(config_flat) * 0x9E3779B97F4A7C15ULL +
                 static_cast<std::uint64_t>(repeat));
  Rng rng(splitmix64(seed_ ^ key));
  // Multiplicative log-normal noise (centered so E[factor] ~= 1) plus a
  // small absolute launch jitter that dominates for microsecond kernels.
  const double sigma = profile.noise_sigma;
  const double factor =
      std::exp(rng.next_gaussian(-0.5 * sigma * sigma, sigma));
  const double jitter_us = std::abs(rng.next_gaussian(0.0, 0.15));
  total_runs_.fetch_add(1, std::memory_order_relaxed);
  return profile.base_time_us * factor + jitter_us;
}

MeasureOutcome SimulatedDevice::run(const KernelProfile& profile,
                                    std::int64_t flops, int repeats,
                                    std::int64_t config_flat,
                                    int attempt) const {
  AAL_CHECK(repeats >= 1, "repeats must be >= 1");
  // The timing stream is attempt-invariant by contract (see Device::run):
  // a retry after a transient fault reproduces the fault-free values.
  (void)attempt;
  MeasureOutcome out;
  if (!profile.valid) {
    out.ok = false;
    out.error = profile.error;
    return out;
  }
  out.ok = true;
  out.times_us.reserve(static_cast<std::size_t>(repeats));
  double total = 0.0;
  for (int i = 0; i < repeats; ++i) {
    const double t = sample_time_us(profile, config_flat, i);
    out.times_us.push_back(t);
    total += t;
  }
  out.mean_time_us = total / repeats;
  out.gflops = static_cast<double>(flops) / (out.mean_time_us * 1e3);
  return out;
}

}  // namespace aal
