#include "hwsim/device.hpp"

#include <cmath>

#include "support/common.hpp"

namespace aal {

SimulatedDevice::SimulatedDevice(GpuSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

double SimulatedDevice::sample_time_us(const KernelProfile& profile) {
  AAL_CHECK(profile.valid, "cannot sample an invalid kernel profile");
  // Multiplicative log-normal noise (centered so E[factor] ~= 1) plus a
  // small absolute launch jitter that dominates for microsecond kernels.
  const double sigma = profile.noise_sigma;
  const double factor =
      std::exp(rng_.next_gaussian(-0.5 * sigma * sigma, sigma));
  const double jitter_us = std::abs(rng_.next_gaussian(0.0, 0.15));
  ++total_runs_;
  return profile.base_time_us * factor + jitter_us;
}

MeasureOutcome SimulatedDevice::run(const KernelProfile& profile,
                                    std::int64_t flops, int repeats) {
  AAL_CHECK(repeats >= 1, "repeats must be >= 1");
  MeasureOutcome out;
  if (!profile.valid) {
    out.ok = false;
    out.error = profile.error;
    return out;
  }
  out.ok = true;
  out.times_us.reserve(static_cast<std::size_t>(repeats));
  double total = 0.0;
  for (int i = 0; i < repeats; ++i) {
    const double t = sample_time_us(profile);
    out.times_us.push_back(t);
    total += t;
  }
  out.mean_time_us = total / repeats;
  out.gflops = static_cast<double>(flops) / (out.mean_time_us * 1e3);
  return out;
}

}  // namespace aal
