#include "hwsim/cpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "space/schedule_template.hpp"
#include "support/common.hpp"
#include "support/math_util.hpp"

namespace aal {

namespace {

/// Pruning bounds shared by constraints() and profile(); a config outside
/// them both prunes *and* profiles invalid, keeping the two views coherent.
constexpr std::int64_t kMaxTasksPerCore = 256;
constexpr std::int64_t kRegisterTileSlack = 4;  // x vector_registers

double dtype_rate(const CpuSpec& spec, DType t) {
  switch (t) {
    case DType::kFloat16: return spec.fp16_rate;
    case DType::kInt8: return spec.int8_rate;
    default: return 1.0;
  }
}

/// Issue-slot fraction lost to loop bookkeeping. CPUs predict the loop
/// branches well, so the un-unrolled overhead is milder than on the GPU,
/// but tiny bodies still drown in index arithmetic.
double loop_efficiency(double body_macs, std::int64_t auto_unroll,
                       bool unroll_explicit) {
  const bool unrolled = static_cast<double>(auto_unroll) >= 2.0 * body_macs &&
                        auto_unroll > 0;
  double overhead = unrolled ? 0.4 : 2.0;
  if (unroll_explicit && unrolled) overhead = 0.3;
  double icache_penalty = 1.0;
  if (unrolled && body_macs > 1024.0) icache_penalty = 1.06;
  const double eff = body_macs / (body_macs + overhead);
  return clamp(eff / icache_penalty, 0.3, 0.99);
}

/// SIMD lane utilization of a vectorized loop of extent `extent`: remainders
/// run in a masked/scalar epilogue, wasting the unfilled lanes of the last
/// vector iteration.
double vector_efficiency(std::int64_t extent, int simd_width) {
  if (extent <= 0) return 1.0 / static_cast<double>(simd_width);
  return static_cast<double>(extent) /
         static_cast<double>(round_up(extent, simd_width));
}

/// Mechanical facts about one schedule that both the feasibility predicates
/// and the timing equations consume.
struct CpuMapping {
  std::int64_t tasks = 1;          // parallel chunks over cores
  std::int64_t vector_extent = 1;  // innermost (vectorized) loop extent
  std::int64_t register_tiles = 1; // live accumulator vector registers
  std::int64_t working_set = 0;    // staged tile bytes per reduction step
  std::int64_t steps = 1;          // reduction staging steps per task
  double body_macs = 1.0;          // innermost unrollable MACs
  std::int64_t auto_unroll = 0;
  bool unroll_explicit = false;
};

CpuMapping conv_mapping(const Workload& workload, const CpuSpec& spec,
                        const ConvSchedule& s) {
  const Conv2dWorkload& w = workload.as_conv2d();
  const bool depthwise = workload.kind() == WorkloadKind::kDepthwiseConv2d;
  const std::int64_t elem = dtype_bytes(w.dtype);

  CpuMapping m;
  m.tasks = w.batch * s.num_blocks();
  m.vector_extent = s.xi;
  m.register_tiles =
      s.fi * s.yi * ceil_div(s.xi, spec.simd_width);
  const std::int64_t in_rows = (s.tile_y() - 1) * w.stride_h + s.ryi;
  const std::int64_t in_cols = (s.tile_x() - 1) * w.stride_w + s.rxi;
  const std::int64_t staged_channels = depthwise ? s.tile_f() : s.rci;
  const std::int64_t wt_elems = depthwise
                                    ? s.tile_f() * s.ryi * s.rxi
                                    : s.tile_f() * s.rci * s.ryi * s.rxi;
  m.working_set = (staged_channels * in_rows * in_cols + wt_elems) * elem;
  m.steps = (depthwise ? 1 : s.rco) * s.ryo * s.rxo;
  m.body_macs = static_cast<double>((depthwise ? 1 : s.rci) * s.ryi * s.rxi) *
                static_cast<double>(s.fi * s.yi * s.xi);
  m.auto_unroll = s.auto_unroll_max_step;
  m.unroll_explicit = s.unroll_explicit;
  return m;
}

CpuMapping dense_mapping(const Workload& workload, const CpuSpec& spec,
                         const DenseSchedule& s) {
  const DenseWorkload& w = workload.as_dense();
  const std::int64_t elem = dtype_bytes(w.dtype);

  CpuMapping m;
  m.tasks = w.batch * s.num_blocks();
  m.vector_extent = s.oi;
  m.register_tiles = s.vo * ceil_div(s.oi, spec.simd_width);
  // Staged per reduction step: the shared input chunk plus the weight rows
  // of the task's output tile.
  m.working_set = s.ki * elem * (1 + s.vo * s.to * s.oi);
  m.steps = s.ko;
  m.body_macs = static_cast<double>(s.ki * s.oi);
  m.auto_unroll = s.auto_unroll_max_step;
  m.unroll_explicit = s.unroll_explicit;
  return m;
}

struct FeasibilityVerdict {
  bool ok = true;
  const char* reason = "";
};

FeasibilityVerdict check_mapping(const CpuMapping& m, const CpuSpec& spec) {
  if (m.tasks > kMaxTasksPerCore * spec.cores) {
    return {false, "cpu.parallel-grain: task grid too fine for the core count"};
  }
  if (m.register_tiles > kRegisterTileSlack * spec.vector_registers) {
    return {false, "cpu.register-tile: accumulator tile exceeds vector "
                   "register budget"};
  }
  if (m.working_set > spec.l2_bytes) {
    return {false, "cpu.working-set: staged tile overflows the private L2"};
  }
  return {};
}

/// Which cache level serves the steady-state staged traffic, with its
/// per-core sustained bandwidth (bytes/cycle) and per-line miss cost
/// (cycles, paid on the fraction prefetchers fail to hide).
struct CacheLevel {
  double bytes_per_cycle = 64.0;
  double miss_cycles = 0.0;
};

CacheLevel serving_level(const CpuSpec& spec, std::int64_t working_set) {
  if (working_set <= spec.l1_bytes) return {64.0, 0.0};
  if (working_set <= spec.l2_bytes) return {32.0, spec.l2_miss_cycles};
  if (working_set <= spec.l3_bytes / std::max(1, spec.cores)) {
    return {16.0, spec.l3_miss_cycles};
  }
  return {8.0, spec.dram_miss_cycles};
}

}  // namespace

CpuDeviceModel::CpuDeviceModel(Workload workload, TargetSpec target,
                               const ScheduleTemplate* tmpl)
    : workload_(std::move(workload)),
      target_(std::move(target)),
      template_(tmpl != nullptr
                    ? tmpl
                    : &TemplateRegistry::instance().get(kDefaultTemplateName)) {
  AAL_CHECK(target_.kind == TargetKind::kCpu,
            "CpuDeviceModel needs a CPU target");
}

KernelProfile CpuDeviceModel::profile(const ConfigSpace& space,
                                      const Config& config) const {
  if (workload_.is_conv()) return profile_conv(space, config);
  return profile_dense(space, config);
}

std::vector<SpaceConstraint> CpuDeviceModel::constraints() const {
  const CpuSpec spec = target_.cpu;
  const Workload workload = workload_;
  const bool is_conv = workload.is_conv();
  // Registry singleton: safe to capture by pointer beyond the model's life.
  const ScheduleTemplate* tmpl = template_;
  const auto mapping = [workload, spec, is_conv, tmpl](const ConfigSpace& space,
                                                       const Config& config) {
    return is_conv
               ? conv_mapping(workload, spec,
                              tmpl->decode_conv(workload, space, config))
               : dense_mapping(workload, spec,
                               tmpl->decode_dense(workload, space, config));
  };
  std::vector<SpaceConstraint> out;
  out.push_back({"cpu.parallel-grain",
                 [mapping, spec](const ConfigSpace& space, const Config& c) {
                   return mapping(space, c).tasks <=
                          kMaxTasksPerCore * spec.cores;
                 }});
  out.push_back({"cpu.register-tile",
                 [mapping, spec](const ConfigSpace& space, const Config& c) {
                   return mapping(space, c).register_tiles <=
                          kRegisterTileSlack * spec.vector_registers;
                 }});
  out.push_back({"cpu.working-set",
                 [mapping, spec](const ConfigSpace& space, const Config& c) {
                   return mapping(space, c).working_set <= spec.l2_bytes;
                 }});
  return out;
}

KernelProfile CpuDeviceModel::profile_conv(const ConfigSpace& space,
                                           const Config& config) const {
  const Conv2dWorkload& w = workload_.as_conv2d();
  const bool depthwise = workload_.kind() == WorkloadKind::kDepthwiseConv2d;
  AAL_CHECK(depthwise || w.groups == 1,
            "cpu model supports groups==1 or depthwise convolutions");
  const CpuSpec& spec = target_.cpu;
  const ConvSchedule s = template_->decode_conv(workload_, space, config);
  const CpuMapping m = conv_mapping(workload_, spec, s);

  const FeasibilityVerdict verdict = check_mapping(m, spec);
  if (!verdict.ok) return KernelProfile::invalid_config(verdict.reason);

  // --- Parallel decomposition -------------------------------------------
  const double waves = std::ceil(static_cast<double>(m.tasks) / spec.cores);
  const double utilization =
      static_cast<double>(m.tasks) / (waves * spec.cores);

  // --- Compute time ------------------------------------------------------
  const std::int64_t total_macs = workload_.flops() / 2;
  const double vec_eff = vector_efficiency(m.vector_extent, spec.simd_width);
  const double loop_eff =
      loop_efficiency(m.body_macs, m.auto_unroll, m.unroll_explicit);
  double spill_eff = 1.0;
  bool spilled = false;
  if (m.register_tiles > spec.vector_registers) {
    spilled = true;
    spill_eff = std::max(
        0.45, static_cast<double>(spec.vector_registers) / m.register_tiles);
  }
  const double macs_per_core_us = spec.clock_ghz * 1e3 * spec.simd_width *
                                  spec.fma_ports *
                                  dtype_rate(spec, w.dtype);
  const double compute_us =
      static_cast<double>(total_macs) /
      (macs_per_core_us * spec.cores * vec_eff * loop_eff * spill_eff) /
      std::max(utilization, 0.05);

  // --- Cache hierarchy ---------------------------------------------------
  const double staged_bytes = static_cast<double>(m.tasks) *
                              static_cast<double>(m.steps) *
                              static_cast<double>(m.working_set);
  const CacheLevel level = serving_level(spec, m.working_set);
  const double cycles_per_us = spec.clock_ghz * 1e3;
  const double cache_bw =
      spec.cores * utilization * level.bytes_per_cycle * cycles_per_us;
  const double cache_us = staged_bytes / std::max(cache_bw, 1.0);
  // Miss cost: one line fill per 64 staged bytes, ~75% hidden by the
  // hardware prefetchers, amortized over the active cores.
  const double miss_us = (staged_bytes / 64.0) * level.miss_cycles * 0.25 /
                         (cycles_per_us * spec.cores *
                          std::max(utilization, 0.05));

  // --- DRAM --------------------------------------------------------------
  const double unique_bytes =
      static_cast<double>(w.input_type().num_bytes()) +
      static_cast<double>(w.weight_type().num_bytes()) +
      static_cast<double>(w.output_type().num_bytes());
  // Tiles that overflow the shared L3 re-stream from DRAM every step.
  const bool l3_thrash =
      m.working_set > spec.l3_bytes / std::max(1, spec.cores);
  const double dram_bytes =
      unique_bytes + (l3_thrash ? 0.5 * staged_bytes : 0.0);
  const double dram_us = dram_bytes / (spec.dram_bw_gbps * 1e3);

  // --- Assemble ----------------------------------------------------------
  const double mem_us = cache_us + miss_us;
  const double mx = std::max({compute_us, mem_us, dram_us});
  const double sum = compute_us + mem_us + dram_us;
  const double overhead_us =
      spec.parallel_launch_overhead_us + 0.2 * waves;

  KernelProfile p;
  p.valid = true;
  p.base_time_us = overhead_us + mx + 0.2 * (sum - mx);
  p.occupancy = utilization;
  p.registers_per_thread = static_cast<int>(m.register_tiles);
  p.smem_bytes_per_block = m.working_set;
  p.threads_per_block = s.threads_per_block();
  p.num_blocks = m.tasks;
  p.compute_time_us = compute_us;
  p.dram_time_us = dram_us;
  p.l2_time_us = miss_us;
  p.smem_time_us = cache_us;
  p.wave_count = waves;

  // CPUs are quieter than GPUs, but memory-bound schedules feel neighbor
  // contention and low-utilization grids feel OS scheduling jitter.
  const double mem_frac = (mem_us + dram_us) / std::max(1e-9, sum);
  p.noise_sigma = clamp(0.005 + 0.035 * mem_frac * mem_frac +
                            0.03 * (1.0 - utilization) +
                            (spilled ? 0.01 : 0.0),
                        0.004, 0.09);
  return p;
}

KernelProfile CpuDeviceModel::profile_dense(const ConfigSpace& space,
                                            const Config& config) const {
  const DenseWorkload& w = workload_.as_dense();
  const CpuSpec& spec = target_.cpu;
  const DenseSchedule s = template_->decode_dense(workload_, space, config);
  const CpuMapping m = dense_mapping(workload_, spec, s);

  const FeasibilityVerdict verdict = check_mapping(m, spec);
  if (!verdict.ok) return KernelProfile::invalid_config(verdict.reason);

  const double waves = std::ceil(static_cast<double>(m.tasks) / spec.cores);
  const double utilization =
      static_cast<double>(m.tasks) / (waves * spec.cores);

  const std::int64_t total_macs = workload_.flops() / 2;
  const double vec_eff = vector_efficiency(m.vector_extent, spec.simd_width);
  const double loop_eff =
      loop_efficiency(m.body_macs, m.auto_unroll, m.unroll_explicit);
  double spill_eff = 1.0;
  bool spilled = false;
  if (m.register_tiles > spec.vector_registers) {
    spilled = true;
    spill_eff = std::max(
        0.45, static_cast<double>(spec.vector_registers) / m.register_tiles);
  }
  const double macs_per_core_us = spec.clock_ghz * 1e3 * spec.simd_width *
                                  spec.fma_ports *
                                  dtype_rate(spec, w.dtype);
  const double compute_us =
      static_cast<double>(total_macs) /
      (macs_per_core_us * spec.cores * vec_eff * loop_eff * spill_eff) /
      std::max(utilization, 0.05);

  const double staged_bytes = static_cast<double>(m.tasks) *
                              static_cast<double>(m.steps) *
                              static_cast<double>(m.working_set);
  const CacheLevel level = serving_level(spec, m.working_set);
  const double cycles_per_us = spec.clock_ghz * 1e3;
  const double cache_bw =
      spec.cores * utilization * level.bytes_per_cycle * cycles_per_us;
  const double cache_us = staged_bytes / std::max(cache_bw, 1.0);
  const double miss_us = (staged_bytes / 64.0) * level.miss_cycles * 0.25 /
                         (cycles_per_us * spec.cores *
                          std::max(utilization, 0.05));

  // Weights stream once; the input vector is tiny and re-read per task.
  const double unique_bytes =
      static_cast<double>(w.weight_type().num_bytes()) +
      static_cast<double>(w.input_type().num_bytes()) *
          static_cast<double>(std::max<std::int64_t>(1, s.bo)) +
      static_cast<double>(w.output_type().num_bytes());
  const double dram_us = unique_bytes / (spec.dram_bw_gbps * 1e3);

  const double mem_us = cache_us + miss_us;
  const double mx = std::max({compute_us, mem_us, dram_us});
  const double sum = compute_us + mem_us + dram_us;
  const double overhead_us =
      spec.parallel_launch_overhead_us + 0.2 * waves;

  KernelProfile p;
  p.valid = true;
  p.base_time_us = overhead_us + mx + 0.2 * (sum - mx);
  p.occupancy = utilization;
  p.registers_per_thread = static_cast<int>(m.register_tiles);
  p.smem_bytes_per_block = m.working_set;
  p.threads_per_block = s.threads_per_block();
  p.num_blocks = m.tasks;
  p.compute_time_us = compute_us;
  p.dram_time_us = dram_us;
  p.l2_time_us = miss_us;
  p.smem_time_us = cache_us;
  p.wave_count = waves;

  const double mem_frac = (mem_us + dram_us) / std::max(1e-9, sum);
  p.noise_sigma = clamp(0.005 + 0.035 * mem_frac * mem_frac +
                            0.03 * (1.0 - utilization) +
                            (spilled ? 0.01 : 0.0),
                        0.004, 0.09);
  return p;
}

}  // namespace aal
