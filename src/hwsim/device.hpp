// Simulated measurement device.
//
// Wraps the analytical KernelModel with a stochastic measurement layer: each
// "on-chip run" draws log-normal multiplicative noise (scale from the
// profile's noise_sigma) plus a small absolute launch jitter, mimicking the
// run-to-run variation AutoTVM sees from a real GPU. The device also tracks
// the total number of measurements, which is the budget currency of every
// experiment in the paper.
//
// Noise is *counter-based*: every timing sample is a pure function of
// (device seed, config flat index, repeat index), derived through a
// splitmix64 mix rather than a shared sequential generator. Two devices with
// the same seed therefore agree on every sample regardless of the order in
// which configurations are measured — the property that makes parallel
// measurement (and resume-from-records) bitwise-deterministic.
//
// Measurement consumers program against the abstract Device interface so
// decorators can be layered on top; FaultyDevice (hwsim/fault.hpp) wraps any
// Device with deterministic transient-fault injection. run() takes an
// `attempt` index for that purpose: the underlying timing stream ignores it
// (a retried measurement reproduces the fault-free values bitwise), while
// fault decorators key their injection decision on it.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "hwsim/kernel_model.hpp"
#include "hwsim/target.hpp"
#include "support/rng.hpp"

namespace aal {

struct MeasureOutcome {
  bool ok = false;
  std::string error;           // for failed builds/launches
  double mean_time_us = 0.0;   // average over the repeats
  double gflops = 0.0;         // derived from mean_time_us
  std::vector<double> times_us;  // individual repeats

  /// A transient failure is worth retrying (injected timeout, flaky launch,
  /// dead worker, ...); permanent failures (invalid build) are not.
  bool transient = false;
  /// Short fault-kind name when transient ("timeout", "launch_error", ...).
  std::string fault;
};

/// Abstract measurement device: the seam the Measurer programs against.
class Device {
 public:
  virtual ~Device() = default;

  /// The backend-neutral target this device measures on. Must return a
  /// reference to storage owned by the device chain (never a temporary):
  /// decorators forward it by reference, so a by-value implementation would
  /// dangle through the decorator — see the lifetime test in
  /// tests/hwsim/test_faults.cpp.
  virtual const TargetSpec& spec() const = 0;

  /// Simulates `repeats` timed runs of the profiled kernel identified by its
  /// flat config index. `attempt` is the zero-based retry ordinal of this
  /// measurement; implementations must keep the *timing* outcome independent
  /// of it so retries after transient faults reproduce the fault-free values
  /// bitwise. Thread-safe and pure in (seed, config_flat, repeat, attempt).
  virtual MeasureOutcome run(const KernelProfile& profile, std::int64_t flops,
                             int repeats, std::int64_t config_flat,
                             int attempt) const = 0;

  /// Convenience: the first attempt.
  MeasureOutcome run(const KernelProfile& profile, std::int64_t flops,
                     int repeats, std::int64_t config_flat) const {
    return run(profile, flops, repeats, config_flat, 0);
  }
};

class SimulatedDevice : public Device {
 public:
  explicit SimulatedDevice(TargetSpec spec, std::uint64_t seed = 1);

  /// Compatibility: wraps a raw GpuSpec as a GPU target (the historical
  /// single-backend spelling used throughout tests and benches).
  explicit SimulatedDevice(const GpuSpec& spec, std::uint64_t seed = 1);

  using Device::run;

  const TargetSpec& spec() const override { return spec_; }

  /// Invalid profiles yield ok == false with gflops == 0 (AutoTVM error
  /// records). The outcome depends only on (seed, config_flat, repeat
  /// index) — never on other calls, and never on `attempt`.
  MeasureOutcome run(const KernelProfile& profile, std::int64_t flops,
                     int repeats, std::int64_t config_flat,
                     int attempt) const override;

  /// One noisy timing sample for an already-validated profile; `repeat`
  /// selects which independent draw of the (seed, flat) stream to return.
  double sample_time_us(const KernelProfile& profile, std::int64_t config_flat,
                        int repeat) const;

  /// Total successful timed runs so far (diagnostics only; tuners count
  /// *measured configurations*, not repeats).
  std::int64_t total_runs() const {
    return total_runs_.load(std::memory_order_relaxed);
  }

 private:
  TargetSpec spec_;
  std::uint64_t seed_ = 1;
  mutable std::atomic<std::int64_t> total_runs_{0};
};

}  // namespace aal
