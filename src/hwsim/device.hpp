// Simulated measurement device.
//
// Wraps the analytical KernelModel with a stochastic measurement layer: each
// "on-chip run" draws log-normal multiplicative noise (scale from the
// profile's noise_sigma) plus a small absolute launch jitter, mimicking the
// run-to-run variation AutoTVM sees from a real GPU. The device also tracks
// the total number of measurements, which is the budget currency of every
// experiment in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "hwsim/kernel_model.hpp"
#include "support/rng.hpp"

namespace aal {

struct MeasureOutcome {
  bool ok = false;
  std::string error;           // for failed builds/launches
  double mean_time_us = 0.0;   // average over the repeats
  double gflops = 0.0;         // derived from mean_time_us
  std::vector<double> times_us;  // individual repeats
};

class SimulatedDevice {
 public:
  explicit SimulatedDevice(GpuSpec spec, std::uint64_t seed = 1);

  const GpuSpec& spec() const { return spec_; }

  /// Simulates `repeats` timed runs of the profiled kernel. Invalid
  /// profiles yield ok == false with gflops == 0 (AutoTVM error records).
  MeasureOutcome run(const KernelProfile& profile, std::int64_t flops,
                     int repeats);

  /// One noisy timing sample for an already-validated profile.
  double sample_time_us(const KernelProfile& profile);

  /// Total successful timed runs so far (diagnostics only; tuners count
  /// *measured configurations*, not repeats).
  std::int64_t total_runs() const { return total_runs_; }

 private:
  GpuSpec spec_;
  Rng rng_;
  std::int64_t total_runs_ = 0;
};

}  // namespace aal
