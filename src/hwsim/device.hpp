// Simulated measurement device.
//
// Wraps the analytical KernelModel with a stochastic measurement layer: each
// "on-chip run" draws log-normal multiplicative noise (scale from the
// profile's noise_sigma) plus a small absolute launch jitter, mimicking the
// run-to-run variation AutoTVM sees from a real GPU. The device also tracks
// the total number of measurements, which is the budget currency of every
// experiment in the paper.
//
// Noise is *counter-based*: every timing sample is a pure function of
// (device seed, config flat index, repeat index), derived through a
// splitmix64 mix rather than a shared sequential generator. Two devices with
// the same seed therefore agree on every sample regardless of the order in
// which configurations are measured — the property that makes parallel
// measurement (and resume-from-records) bitwise-deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "hwsim/kernel_model.hpp"
#include "support/rng.hpp"

namespace aal {

struct MeasureOutcome {
  bool ok = false;
  std::string error;           // for failed builds/launches
  double mean_time_us = 0.0;   // average over the repeats
  double gflops = 0.0;         // derived from mean_time_us
  std::vector<double> times_us;  // individual repeats
};

class SimulatedDevice {
 public:
  explicit SimulatedDevice(GpuSpec spec, std::uint64_t seed = 1);

  const GpuSpec& spec() const { return spec_; }

  /// Simulates `repeats` timed runs of the profiled kernel identified by its
  /// flat config index. Invalid profiles yield ok == false with gflops == 0
  /// (AutoTVM error records). Thread-safe; the outcome depends only on
  /// (seed, config_flat, repeat index), never on other calls.
  MeasureOutcome run(const KernelProfile& profile, std::int64_t flops,
                     int repeats, std::int64_t config_flat) const;

  /// One noisy timing sample for an already-validated profile; `repeat`
  /// selects which independent draw of the (seed, flat) stream to return.
  double sample_time_us(const KernelProfile& profile, std::int64_t config_flat,
                        int repeat) const;

  /// Total successful timed runs so far (diagnostics only; tuners count
  /// *measured configurations*, not repeats).
  std::int64_t total_runs() const {
    return total_runs_.load(std::memory_order_relaxed);
  }

 private:
  GpuSpec spec_;
  std::uint64_t seed_ = 1;
  mutable std::atomic<std::int64_t> total_runs_{0};
};

}  // namespace aal
