#include "hwsim/fault.hpp"

#include <utility>
#include <vector>

#include "support/common.hpp"
#include "support/string_util.hpp"

namespace aal {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kLaunchError: return "launch_error";
    case FaultKind::kWrongResult: return "wrong_result";
    case FaultKind::kWorkerDeath: return "worker_death";
  }
  return "unknown";
}

bool FaultPlan::active() const { return total_rate() > 0.0; }

double FaultPlan::total_rate() const {
  return timeout_rate + launch_error_rate + wrong_result_rate +
         worker_death_rate;
}

void FaultPlan::validate() const {
  for (const double rate : {timeout_rate, launch_error_rate, wrong_result_rate,
                            worker_death_rate}) {
    AAL_CHECK(rate >= 0.0 && rate <= 1.0,
              "fault rate must be in [0, 1], got " << rate);
  }
  AAL_CHECK(total_rate() <= 1.0,
            "fault rates must sum to <= 1, got " << total_rate());
  AAL_CHECK(max_faults_per_config >= 0,
            "fault cap must be >= 0, got " << max_faults_per_config);
}

FaultKind FaultPlan::draw(std::int64_t flat, int attempt) const {
  if (!active()) return FaultKind::kNone;
  if (max_faults_per_config > 0 && attempt >= max_faults_per_config) {
    return FaultKind::kNone;
  }
  // Counter-based draw, same discipline as the device timing noise: a
  // bijective mix of (flat, attempt) folded into the plan seed. The salt
  // decorrelates this stream from the timing stream even when the plan and
  // device share a seed.
  constexpr std::uint64_t kFaultSalt = 0x6A09E667F3BCC909ULL;
  const std::uint64_t key = splitmix64(
      static_cast<std::uint64_t>(flat) * 0x9E3779B97F4A7C15ULL +
      static_cast<std::uint64_t>(attempt) + kFaultSalt);
  const std::uint64_t mixed = splitmix64(seed ^ key);
  const double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  double acc = timeout_rate;
  if (u < acc) return FaultKind::kTimeout;
  acc += launch_error_rate;
  if (u < acc) return FaultKind::kLaunchError;
  acc += wrong_result_rate;
  if (u < acc) return FaultKind::kWrongResult;
  acc += worker_death_rate;
  if (u < acc) return FaultKind::kWorkerDeath;
  return FaultKind::kNone;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (const std::string& part : split(spec, ',')) {
    const std::string_view item = trim(part);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    AAL_CHECK(eq != std::string_view::npos,
              "fault spec entry must be key=value: '" << item << "'");
    const std::string_view key = trim(item.substr(0, eq));
    const std::string_view value = trim(item.substr(eq + 1));
    if (key == "timeout") {
      plan.timeout_rate = parse_double_strict(value);
    } else if (key == "launch") {
      plan.launch_error_rate = parse_double_strict(value);
    } else if (key == "wrong") {
      plan.wrong_result_rate = parse_double_strict(value);
    } else if (key == "death") {
      plan.worker_death_rate = parse_double_strict(value);
    } else if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_int64_strict(value));
    } else if (key == "cap") {
      plan.max_faults_per_config =
          static_cast<int>(parse_int64_strict(value));
    } else {
      AAL_CHECK(false, "unknown fault spec key '"
                           << key
                           << "' (expected timeout, launch, wrong, death, "
                              "seed or cap)");
    }
  }
  plan.validate();
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::string out;
  const auto append = [&out](std::string_view key, const std::string& value) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  };
  if (timeout_rate > 0.0) append("timeout", format_double(timeout_rate, 4));
  if (launch_error_rate > 0.0) {
    append("launch", format_double(launch_error_rate, 4));
  }
  if (wrong_result_rate > 0.0) {
    append("wrong", format_double(wrong_result_rate, 4));
  }
  if (worker_death_rate > 0.0) {
    append("death", format_double(worker_death_rate, 4));
  }
  append("seed", std::to_string(seed));
  if (max_faults_per_config > 0) {
    append("cap", std::to_string(max_faults_per_config));
  }
  return out;
}

FaultyDevice::FaultyDevice(const Device& inner, FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {
  plan_.validate();
}

MeasureOutcome FaultyDevice::run(const KernelProfile& profile,
                                 std::int64_t flops, int repeats,
                                 std::int64_t config_flat, int attempt) const {
  attempts_.fetch_add(1, std::memory_order_relaxed);
  // Build errors never reach the device, so they cannot be struck by a
  // device-side fault: forward them untouched (they stay permanent).
  if (profile.valid) {
    const FaultKind kind = plan_.draw(config_flat, attempt);
    if (kind != FaultKind::kNone) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      MeasureOutcome out;
      out.ok = false;
      out.transient = true;
      out.fault = fault_kind_name(kind);
      out.error = std::string("transient ") + fault_kind_name(kind) +
                  " (injected, attempt " + std::to_string(attempt) + ")";
      return out;
    }
  }
  return inner_.run(profile, flops, repeats, config_flat, attempt);
}

}  // namespace aal
