// Analytical systolic-array FPGA performance model (AutoSA-style).
//
// Reinterprets the schedule templates as a spatial mapping: the thread
// split (t*) becomes the set of PEs a tile occupies on the rectangular
// array, the innermost extent (fi for conv, oi for dense) becomes the SIMD
// lanes inside each PE, the block split (b*) becomes the sequence of tile
// invocations streamed through the one accelerator, and the reduction
// splits set the pipeline body length (inner) and the number of
// local-buffer refills (outer).
//
// The landscape has FPGA-native structure: hard capacity walls (PE count,
// per-PE lanes, local-buffer bytes), a pipeline-fill tax paid per tile
// invocation and per outer reduction step (long inner reductions amortize
// it — the latency-hiding lever), column-granularity packing loss on the
// array, and off-chip streaming overlapped with compute by double
// buffering. Noise is almost nil: the datapath is statically scheduled and
// only DDR arbitration jitters.
#pragma once

#include "hwsim/device_model.hpp"

namespace aal {

class FpgaDeviceModel final : public DeviceModel {
 public:
  /// `tmpl` is the schedule template that built (and decodes) the config
  /// space this model profiles — a registry singleton, nullptr = "cuda".
  FpgaDeviceModel(Workload workload, TargetSpec target,
                  const ScheduleTemplate* tmpl = nullptr);

  const TargetSpec& target() const override { return target_; }
  const Workload& workload() const override { return workload_; }

  KernelProfile profile(const ConfigSpace& space,
                        const Config& config) const override;

  /// Hardware-native pruning: PE-array capacity, per-PE SIMD lanes,
  /// accumulator replication and local-buffer sizing (see fpga_model.cpp).
  /// Every pruned config also profiles as invalid.
  std::vector<SpaceConstraint> constraints() const override;

 private:
  KernelProfile profile_conv(const ConfigSpace& space,
                             const Config& config) const;
  KernelProfile profile_dense(const ConfigSpace& space,
                              const Config& config) const;

  Workload workload_;
  TargetSpec target_;
  const ScheduleTemplate* template_;  // registry singleton, never null
};

}  // namespace aal
