// Backend-neutral analytical device model.
//
// A DeviceModel binds one workload to one TargetSpec and answers two
// questions the tuning stack needs:
//   * profile():     the deterministic performance profile of one schedule
//                    configuration (the target's analytical equations);
//   * constraints(): Bolt-style hardware-native feasibility predicates the
//                    config space uses to prune infeasible/poor schedules
//                    before they ever reach a tuner proposal.
// The contract between the two: a configuration rejected by constraints()
// must also profile as invalid (the pruner only skips configs the backend
// could not execute anyway), so pruning never hides the optimum.
//
// make_device_model() dispatches on the target kind: GPU targets wrap the
// original KernelModel unchanged (and attach zero constraints, keeping the
// default landscape bit-identical to the pre-target-layer code); CPU and
// FPGA targets get their own analytical models (cpu_model.hpp,
// fpga_model.hpp).
#pragma once

#include <memory>
#include <vector>

#include "hwsim/kernel_profile.hpp"
#include "hwsim/target.hpp"
#include "ir/workload.hpp"
#include "space/config_space.hpp"
#include "space/template_registry.hpp"

namespace aal {

class DeviceModel {
 public:
  virtual ~DeviceModel() = default;

  virtual const TargetSpec& target() const = 0;
  virtual const Workload& workload() const = 0;

  /// Deterministic profile of one configuration from the workload's space.
  virtual KernelProfile profile(const ConfigSpace& space,
                                const Config& config) const = 0;

  /// Hardware-native feasibility predicates for this (workload, target)
  /// pair. Default: none (every config is feasible).
  virtual std::vector<SpaceConstraint> constraints() const { return {}; }
};

/// Builds the analytical model for `workload` on `target`. The model decodes
/// configs through `tmpl` (a registry singleton; nullptr selects the default
/// "cuda" template), so spaces built by a native template profile through
/// the same knob layout that produced them. The caller must pass the
/// template that built the space later handed to profile()/constraints().
std::unique_ptr<DeviceModel> make_device_model(
    Workload workload, const TargetSpec& target,
    const ScheduleTemplate* tmpl = nullptr);

}  // namespace aal
