// Analytical multicore-SIMD CPU performance model.
//
// Reinterprets the CUDA-shaped schedule templates on a CPU, the way TVM's
// x86 schedules reuse the same split structure: the block-level split (b*)
// becomes the parallel task grid over cores, the vthread/thread splits
// (v*, t*) become serial cache/register blocking, and the innermost extents
// (i*) are the vectorized loops mapped onto SIMD lanes.
//
// The landscape is shaped by three mechanisms with CPU-native cliffs:
//   * vectorization: the innermost spatial extent fills simd_width lanes;
//     remainders waste lanes (xi / round_up(xi, simd));
//   * cache hierarchy: the per-task staged working set is served from the
//     deepest level it fits (L1/L2/L3/DRAM), with per-line miss costs and
//     level-dependent bandwidth;
//   * parallel grain: too few tasks leave cores idle (tail waves), too many
//     drown in dispatch overhead.
// Register-tile pressure beyond the architectural vector registers spills
// with a heavy penalty, mirroring the GPU model's spill cliff.
#pragma once

#include "hwsim/device_model.hpp"

namespace aal {

class CpuDeviceModel final : public DeviceModel {
 public:
  /// `tmpl` is the schedule template that built (and decodes) the config
  /// space this model profiles — a registry singleton, nullptr = "cuda".
  CpuDeviceModel(Workload workload, TargetSpec target,
                 const ScheduleTemplate* tmpl = nullptr);

  const TargetSpec& target() const override { return target_; }
  const Workload& workload() const override { return workload_; }

  KernelProfile profile(const ConfigSpace& space,
                        const Config& config) const override;

  /// Hardware-native pruning: parallel-grain, register-tile and working-set
  /// predicates (see cpu_model.cpp for the exact bounds). Every pruned
  /// config also profiles as invalid.
  std::vector<SpaceConstraint> constraints() const override;

 private:
  KernelProfile profile_conv(const ConfigSpace& space,
                             const Config& config) const;
  KernelProfile profile_dense(const ConfigSpace& space,
                              const Config& config) const;

  Workload workload_;
  TargetSpec target_;
  const ScheduleTemplate* template_;  // registry singleton, never null
};

}  // namespace aal
