// Backend-neutral hardware target description.
//
// A TargetSpec names one deployment backend and carries the machine
// parameters its analytical device model needs. Three backend kinds are
// modeled:
//   * GPU  — the original Pascal-class CUDA simulator (GpuSpec);
//   * CPU  — a multicore SIMD CPU with a three-level cache hierarchy;
//   * FPGA — an AutoSA-style systolic array with on-chip local buffers.
// Every target is reachable by a stable registry name (`make_target`), which
// is the vocabulary of the CLI's --target flag, the bench baselines and the
// record-store task keys of non-default targets. The default target,
// gpu-pascal, reproduces the pre-target-layer behavior bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hwsim/gpu_spec.hpp"

namespace aal {

enum class TargetKind : int { kGpu, kCpu, kFpga };

/// Stable wire name of a target kind ("gpu", "cpu", "fpga").
const char* target_kind_name(TargetKind kind);

/// Multicore SIMD CPU description for the analytical CPU model. The model
/// needs the cache hierarchy (capacities and miss costs), the vector width
/// and the core count to reproduce the landscape a TVM x86 schedule sees:
/// cache-blocking cliffs, vectorization remainders, register spills and
/// parallel-grain tradeoffs.
struct CpuSpec {
  const char* name = "generic-cpu";

  int cores = 16;
  double clock_ghz = 3.0;
  /// fp32 lanes per vector unit (8 = AVX2, 16 = AVX-512).
  int simd_width = 8;
  /// Vector FMA pipes per core that can issue each cycle.
  int fma_ports = 2;
  /// Architectural vector registers available for accumulators.
  int vector_registers = 16;

  // Per-core private caches plus the shared last-level cache.
  std::int64_t l1_bytes = 32 * 1024;
  std::int64_t l2_bytes = 1024 * 1024;
  std::int64_t l3_bytes = 32LL * 1024 * 1024;  // shared across cores
  // Load-to-use miss costs in core cycles (next level services the miss).
  double l2_miss_cycles = 14.0;
  double l3_miss_cycles = 42.0;
  double dram_miss_cycles = 180.0;

  double dram_bw_gbps = 42.0;
  /// Cost of dispatching one wave of parallel tasks onto the thread pool.
  double parallel_launch_overhead_us = 3.0;

  /// Arithmetic-rate multipliers relative to fp32 (fp16 emulated, int8 via
  /// dp-style instructions).
  double fp16_rate = 1.0;
  double int8_rate = 2.0;

  /// Peak fp32 throughput in GFLOPS (FMA = 2 flops per lane per cycle).
  double peak_gflops() const {
    return 2.0 * static_cast<double>(cores) * simd_width * fma_ports *
           clock_ghz;
  }

  /// Desktop-class 16-core AVX2 part (the cpu-simd registry target).
  static CpuSpec desktop_simd();
};

/// Systolic-array FPGA description, in the spirit of AutoSA's generated
/// accelerators: a rectangular PE array with per-PE SIMD lanes, on-chip
/// local buffers fed by off-chip DRAM, deep pipelines whose fill cost is
/// paid per tile invocation, and double-buffering that hides (most of) the
/// transfer time behind compute.
struct FpgaSpec {
  const char* name = "generic-fpga";

  int pe_rows = 16;
  int pe_cols = 16;
  /// MAC units per PE issuing each cycle (SIMD inside the PE).
  int simd_lanes = 8;
  double clock_ghz = 0.30;  // typical post-place-and-route fabric clock

  /// Total on-chip local-buffer capacity (BRAM/URAM) available to one
  /// kernel's input/weight/output tiles.
  std::int64_t local_buffer_bytes = 4LL * 1024 * 1024;

  /// Pipeline depth in cycles: paid once per (tile invocation x outer
  /// reduction step) before the array streams at full rate.
  int pipeline_depth = 48;
  /// Fraction of off-chip transfer hidden behind compute by double
  /// buffering (0 = fully serialized, 1 = perfect overlap).
  double latency_hiding = 0.85;

  double dram_bw_gbps = 19.2;  // one DDR4-2400 channel
  /// Host-side kernel invocation overhead (once per enqueued run).
  double launch_overhead_us = 30.0;

  double fp16_rate = 2.0;  // narrower datapaths pack two MACs per DSP
  double int8_rate = 4.0;

  /// Peak fp32 throughput in GFLOPS across the full array.
  double peak_gflops() const {
    return 2.0 * static_cast<double>(pe_rows) * pe_cols * simd_lanes *
           clock_ghz;
  }

  /// Mid-range 16x16 systolic array (the fpga-systolic registry target).
  static FpgaSpec midrange_systolic();
};

/// One deployment target: a backend kind plus the matching machine spec.
/// Only the spec matching `kind` is meaningful; the others stay at their
/// defaults. Value type — cheap to copy, safe to store by value.
struct TargetSpec {
  TargetKind kind = TargetKind::kGpu;
  /// Stable registry name ("gpu-pascal", "cpu-simd", ...): the CLI / bench /
  /// record-store vocabulary.
  std::string name = "gpu-pascal";
  /// Human-readable device label for banners and logs.
  std::string device_name = "GeForce GTX 1080 Ti";

  GpuSpec gpu;    // valid when kind == kGpu
  CpuSpec cpu;    // valid when kind == kCpu
  FpgaSpec fpga;  // valid when kind == kFpga

  /// Peak fp32 throughput of the active backend in GFLOPS.
  double peak_gflops() const;

  /// Off-chip memory bandwidth of the active backend in GB/s.
  double dram_bw_gbps() const;

  /// Per-kernel launch/dispatch overhead of the active backend in us.
  double launch_overhead_us() const;

  /// Wraps a raw GpuSpec as a GPU target (compatibility path for the many
  /// call sites that still speak GpuSpec). Known specs map back to their
  /// registry names; unknown ones get a fingerprint-qualified name
  /// ("gpu-custom-xxxxxxxx" over the spec's fields) so two distinct custom
  /// machines never share a store key namespace — a shared name would leak
  /// tuning records and transfer priors across unrelated hardware.
  static TargetSpec from_gpu(const GpuSpec& spec);
};

/// Names of every registered target, in table order.
const std::vector<std::string>& target_names();

/// Resolves a registry name to its TargetSpec. Unknown names throw
/// InvalidArgument with a did-you-mean suggestion plus the valid names.
TargetSpec make_target(const std::string& name);

/// One-line description of a registered target (for --list-targets).
std::string target_description(const std::string& name);

}  // namespace aal
