#include "hwsim/kernel_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"
#include "support/math_util.hpp"

namespace aal {

namespace {

/// Arithmetic-rate multiplier for the workload's element type.
double dtype_rate(const GpuSpec& spec, DType t) {
  switch (t) {
    case DType::kFloat16: return spec.fp16_rate;
    case DType::kInt8: return spec.int8_rate;
    default: return 1.0;
  }
}

/// Cycles per microsecond at the given clock.
double cycles_per_us(const GpuSpec& spec) { return spec.clock_ghz * 1e3; }

/// DRAM bytes per microsecond.
double dram_bytes_per_us(const GpuSpec& spec) {
  return spec.dram_bw_gbps * 1e3;
}

/// Fraction of issue slots doing useful work in a partially filled warp.
double warp_efficiency(const GpuSpec& spec, std::int64_t tpb) {
  const std::int64_t rounded = round_up(tpb, spec.warp_size);
  return static_cast<double>(tpb) / static_cast<double>(rounded);
}

/// How well arithmetic latency is hidden: saturates with resident warps and
/// per-thread ILP. Calibrated so ~16 resident warps with moderate ILP reach
/// ~90% of peak issue rate, matching Pascal's rule of thumb.
double latency_hiding(double warps_per_sm, double ilp) {
  const double effective = warps_per_sm * (1.0 + ilp / 4.0);
  return std::max(0.04, 1.0 - std::exp(-effective / 12.0));
}

/// Issue-slot fraction lost to loop bookkeeping. `body_macs` is the number
/// of MACs in the innermost unrollable region; unrolling amortizes the
/// branch/index overhead.
double loop_efficiency(double body_macs, std::int64_t auto_unroll,
                       bool unroll_explicit) {
  // Roughly 2 instructions per MAC; overhead ~4 instructions per iteration
  // without unrolling, ~0.5 when fully unrolled.
  const bool unrolled = static_cast<double>(auto_unroll) >= 2.0 * body_macs &&
                        auto_unroll > 0;
  double overhead = unrolled ? 0.5 : 4.0;
  if (unroll_explicit && unrolled) overhead = 0.35;
  // Very large unrolled bodies thrash the instruction cache.
  double icache_penalty = 1.0;
  if (unrolled && body_macs > 512.0) icache_penalty = 1.08;
  const double eff = body_macs / (body_macs + overhead);
  return clamp(eff / icache_penalty, 0.25, 0.99);
}

/// Shared-memory bank-conflict penalty given the float stride between
/// consecutive lanes of a warp.
double bank_conflict_penalty(std::int64_t stride_floats) {
  if (stride_floats <= 0) return 1.0;
  const std::int64_t s = stride_floats % 32;
  if (s == 0) return 2.2;   // all lanes hit the same bank
  if (s % 16 == 0) return 1.6;
  if (s % 8 == 0) return 1.25;
  return 1.0;
}

/// Global-memory coalescing efficiency for segment loads of `contiguous`
/// consecutive elements (DRAM transactions are 32-byte sectors, so a sector
/// holds 8 fp32 / 16 fp16 / 32 int8 elements).
double coalesce_efficiency(std::int64_t contiguous,
                           std::int64_t elems_per_sector = 8) {
  if (contiguous <= 0) {
    return 1.0 / static_cast<double>(elems_per_sector);
  }
  const std::int64_t sectors = ceil_div(contiguous, elems_per_sector);
  return static_cast<double>(contiguous) /
         static_cast<double>(sectors * elems_per_sector);
}

/// L2/DRAM partition camping: power-of-two tile row pitches alias onto a
/// subset of memory partitions. A modular-arithmetic cliff — locally
/// explorable (one knob step moves the pitch) but near-random when viewed
/// through global log-scale features, exactly like on real silicon.
double partition_camping_penalty(std::int64_t row_bytes) {
  if (row_bytes <= 0) return 1.0;
  if (row_bytes % 256 == 0) return 1.35;
  if (row_bytes % 128 == 0) return 1.15;
  return 1.0;
}

/// Register-bank aliasing ripple: certain accumulator counts force the
/// compiler into bank-conflicting operand assignments. Narrow valleys in
/// the accumulator dimension (period 8).
double register_bank_ripple(std::int64_t accumulators) {
  const std::int64_t phase = accumulators % 8;
  return (phase == 5 || phase == 7) ? 1.08 : 1.0;
}

/// Dual-issue friendliness: blocks that are a multiple of two warps keep
/// both schedulers of an SM partition busy.
double dual_issue_efficiency(std::int64_t tpb) {
  return tpb % 64 == 0 ? 1.0 : 0.92;
}

struct BottleneckTimes {
  double compute_us = 0.0;
  double dram_us = 0.0;
  double l2_us = 0.0;
  double smem_us = 0.0;

  /// Combines bottlenecks: the slowest resource dominates but the others
  /// steal some overlap headroom (15% of the residual), a standard
  /// roofline-with-imperfect-overlap approximation.
  double combined() const {
    const double mx = std::max({compute_us, dram_us, l2_us, smem_us});
    const double sum = compute_us + dram_us + l2_us + smem_us;
    return mx + 0.15 * (sum - mx);
  }
};

}  // namespace

int blocks_per_sm(const GpuSpec& spec, std::int64_t threads_per_block,
                  std::int64_t smem_bytes_per_block,
                  int registers_per_thread) {
  if (threads_per_block < 1 ||
      threads_per_block > spec.max_threads_per_block) {
    return 0;
  }
  if (smem_bytes_per_block > spec.shared_mem_per_block) return 0;
  const std::int64_t regs_per_block =
      static_cast<std::int64_t>(registers_per_thread) * threads_per_block;
  if (regs_per_block > spec.registers_per_sm) return 0;

  std::int64_t limit = spec.max_blocks_per_sm;
  limit = std::min<std::int64_t>(limit,
                                 spec.max_threads_per_sm / threads_per_block);
  if (smem_bytes_per_block > 0) {
    limit = std::min<std::int64_t>(
        limit, spec.shared_mem_per_sm / smem_bytes_per_block);
  }
  if (regs_per_block > 0) {
    limit = std::min<std::int64_t>(limit,
                                   spec.registers_per_sm / regs_per_block);
  }
  return static_cast<int>(std::max<std::int64_t>(0, limit));
}

KernelModel::KernelModel(Workload workload, GpuSpec spec)
    : workload_(std::move(workload)), spec_(spec) {}

KernelProfile KernelModel::profile(const ConfigSpace& space,
                                   const Config& config) const {
  if (workload_.is_conv()) return profile_conv(space, config);
  return profile_dense(space, config);
}

KernelProfile KernelModel::profile_conv(const ConfigSpace& space,
                                        const Config& config) const {
  const Conv2dWorkload& w = workload_.as_conv2d();
  const bool depthwise = workload_.kind() == WorkloadKind::kDepthwiseConv2d;
  AAL_CHECK(depthwise || w.groups == 1,
            "kernel model supports groups==1 or depthwise convolutions");
  const ConvSchedule s = decode_conv_schedule(workload_, space, config);

  const std::int64_t tpb = s.threads_per_block();
  if (tpb > spec_.max_threads_per_block) {
    return KernelProfile::invalid_config("threads per block exceeds limit");
  }

  // --- Per-block tiles and shared-memory footprint ---------------------
  const std::int64_t tile_f = s.tile_f();
  const std::int64_t tile_y = s.tile_y();
  const std::int64_t tile_x = s.tile_x();
  const std::int64_t in_rows = (tile_y - 1) * w.stride_h + s.ryi;
  const std::int64_t in_cols = (tile_x - 1) * w.stride_w + s.rxi;
  // Channels staged per reduction step: the reduction-channel slice for a
  // regular conv; the block's own channel tile for depthwise.
  const std::int64_t staged_channels = depthwise ? tile_f : s.rci;
  const std::int64_t elem_bytes = dtype_bytes(w.dtype);
  const std::int64_t smem_in =
      staged_channels * in_rows * in_cols * elem_bytes;
  const std::int64_t wt_elems = depthwise ? tile_f * s.ryi * s.rxi
                                          : tile_f * s.rci * s.ryi * s.rxi;
  const std::int64_t smem_wt = wt_elems * elem_bytes;
  const std::int64_t smem_total = smem_in + smem_wt;
  if (smem_total > spec_.shared_mem_per_block) {
    return KernelProfile::invalid_config("shared memory exceeds 48KB");
  }

  // --- Registers ---------------------------------------------------------
  // Accumulators are replicated per virtual thread; a handful of operand and
  // index registers ride along.
  const std::int64_t accumulators = s.per_thread_outputs();
  std::int64_t regs = 22 + accumulators + s.fi + s.xi;
  bool spilled = false;
  if (regs > spec_.max_registers_per_thread) {
    spilled = true;
    regs = spec_.max_registers_per_thread;
  }

  const int bps = blocks_per_sm(spec_, tpb, smem_total, static_cast<int>(regs));
  if (bps == 0) {
    return KernelProfile::invalid_config("launch exceeds SM resources");
  }

  const std::int64_t total_blocks = w.batch * s.num_blocks();
  const double occupancy =
      static_cast<double>(bps) * static_cast<double>(tpb) /
      static_cast<double>(spec_.max_threads_per_sm);

  const double concurrent_blocks =
      static_cast<double>(bps) * spec_.num_sms;
  const double waves =
      std::ceil(static_cast<double>(total_blocks) / concurrent_blocks);
  // Fraction of the machine busy over all waves (tail effect).
  const double utilization = static_cast<double>(total_blocks) /
                             (waves * concurrent_blocks);

  // --- Compute time -------------------------------------------------------
  const std::int64_t total_macs = workload_.flops() / 2;
  const double warps_per_sm =
      static_cast<double>(bps) *
      std::ceil(static_cast<double>(tpb) / spec_.warp_size);
  const double ilp = std::min<double>(8.0, static_cast<double>(s.fi * s.yi * s.xi));
  const double reduction_body =
      static_cast<double>((depthwise ? 1 : s.rci) * s.ryi * s.rxi);
  const double body_macs =
      reduction_body * static_cast<double>(s.fi * s.yi * s.xi);

  double compute_eff = warp_efficiency(spec_, tpb) *
                       latency_hiding(warps_per_sm, ilp) *
                       loop_efficiency(body_macs, s.auto_unroll_max_step,
                                       s.unroll_explicit) *
                       dual_issue_efficiency(tpb);
  if (spilled) compute_eff *= 0.6;

  const double ideal_cycles =
      static_cast<double>(total_macs) /
      (static_cast<double>(spec_.total_cores()) *
       dtype_rate(spec_, w.dtype));
  const double compute_us = ideal_cycles / cycles_per_us(spec_) /
                            std::max(compute_eff, 1e-3) *
                            register_bank_ripple(accumulators);

  // --- Memory traffic ------------------------------------------------------
  const std::int64_t steps =
      (depthwise ? 1 : s.rco) * s.ryo * s.rxo;
  // Every block stages its input/weight tiles from L2 (or DRAM) each step.
  const double total_in_bytes = static_cast<double>(total_blocks) *
                                static_cast<double>(steps) *
                                static_cast<double>(smem_in);
  const double total_wt_bytes = static_cast<double>(total_blocks) *
                                static_cast<double>(steps) *
                                static_cast<double>(smem_wt);
  const double out_bytes =
      static_cast<double>(w.output_type().num_bytes());
  const double unique_in =
      static_cast<double>(w.input_type().num_bytes());
  const double unique_wt =
      static_cast<double>(w.weight_type().num_bytes());

  // DRAM sees each unique byte about once (L2 captures block-level reuse as
  // long as the streamed tiles fit; when the per-wave working set blows past
  // L2, a fraction of the re-reads spills to DRAM).
  const double wave_working_set =
      concurrent_blocks * static_cast<double>(smem_total);
  const double l2_spill =
      clamp(wave_working_set / static_cast<double>(spec_.l2_bytes) - 1.0, 0.0,
            3.0) /
      3.0;  // 0 (fits) .. 1 (3x oversubscribed)
  const double dram_bytes = unique_in + unique_wt + out_bytes +
                            l2_spill * 0.25 * (total_in_bytes + total_wt_bytes);

  // 128-bit vectorized global loads (ld.global.v4) require the staged row
  // to be float4-aligned — a compound condition over (tx, vx, xi, rxi,
  // stride) that creates the sharp ridges real schedules live on. Unaligned
  // rows waste partially-consumed 32-byte sectors all the way out to DRAM.
  const std::int64_t vec_elems = 16 / elem_bytes;  // 128-bit vector width
  const double vector_bonus =
      in_cols % vec_elems == 0
          ? 1.4
          : (in_cols % (vec_elems / 2) == 0 ? 1.15 : 1.0);
  const double eff_in =
      coalesce_efficiency(in_cols, 32 / elem_bytes) * vector_bonus;
  const double eff_wt = 0.9;  // weight tiles are contiguous
  const double l2_traffic =
      total_in_bytes / eff_in + total_wt_bytes / eff_wt + out_bytes;

  const double camping = partition_camping_penalty(in_cols * elem_bytes);
  const double dram_in_eff = in_cols % vec_elems == 0
                                 ? 1.0
                                 : (in_cols % 2 == 0 ? 0.8 : 0.65);
  const double dram_us =
      (dram_bytes + unique_in * (1.0 / dram_in_eff - 1.0)) * camping /
      dram_bytes_per_us(spec_);
  const double l2_us = l2_traffic * camping /
                       (dram_bytes_per_us(spec_) * spec_.l2_bw_multiplier);

  // --- Shared-memory time ---------------------------------------------------
  // Register blocking reuses each staged input across fi outputs and each
  // staged weight across yi*xi outputs.
  const double smem_read_bytes =
      static_cast<double>(total_macs) * static_cast<double>(elem_bytes) *
      (1.0 / static_cast<double>(s.fi) +
       1.0 / static_cast<double>(s.yi * s.xi));
  const double smem_write_bytes = total_in_bytes + total_wt_bytes;
  const double smem_bw =
      static_cast<double>(spec_.num_sms) * spec_.smem_bytes_per_cycle *
      cycles_per_us(spec_);
  // Bank conflicts from both the per-lane access stride and the staged
  // tile's row pitch: power-of-two pitches alias banks (an odd pitch is the
  // classic conflict-free "swizzle"); again a compound modular condition.
  const double pitch_conflict =
      in_cols % 32 == 0 ? 1.8 : (in_cols % 16 == 0 ? 1.35 : 1.0);
  const double conflict =
      bank_conflict_penalty(s.xi * w.stride_w) * pitch_conflict;
  const double smem_us =
      (smem_read_bytes + smem_write_bytes) * conflict / smem_bw;

  // --- Assemble --------------------------------------------------------------
  BottleneckTimes t;
  t.compute_us = compute_us;
  t.dram_us = dram_us;
  t.l2_us = l2_us;
  t.smem_us = smem_us;

  KernelProfile p;
  p.valid = true;
  p.base_time_us =
      spec_.kernel_launch_overhead_us + t.combined() / std::max(utilization, 0.05);
  p.occupancy = occupancy;
  p.registers_per_thread = static_cast<int>(regs);
  p.smem_bytes_per_block = smem_total;
  p.threads_per_block = tpb;
  p.num_blocks = total_blocks;
  p.compute_time_us = compute_us;
  p.dram_time_us = dram_us;
  p.l2_time_us = l2_us;
  p.smem_time_us = smem_us;
  p.wave_count = waves;

  // Run-to-run noise grows when the schedule is fragile: low occupancy
  // (sensitive to scheduling jitter) or bandwidth saturation (sensitive to
  // contention). Well-tuned kernels sit near 0.5-1% like real hardware.
  const double mem_frac =
      (dram_us + l2_us) / std::max(1e-9, compute_us + dram_us + l2_us + smem_us);
  p.noise_sigma = clamp(0.012 + 0.10 * std::max(0.0, 0.45 - occupancy) +
                            0.05 * mem_frac * mem_frac +
                            (spilled ? 0.03 : 0.0),
                        0.01, 0.18);
  return p;
}

KernelProfile KernelModel::profile_dense(const ConfigSpace& space,
                                         const Config& config) const {
  const DenseWorkload& w = workload_.as_dense();
  const DenseSchedule s = decode_dense_schedule(workload_, space, config);

  const std::int64_t tpb = s.threads_per_block();
  if (tpb > spec_.max_threads_per_block) {
    return KernelProfile::invalid_config("threads per block exceeds limit");
  }

  // Input chunk staged in shared memory per reduction step, shared by the
  // whole block.
  const std::int64_t elem_bytes = dtype_bytes(w.dtype);
  const std::int64_t smem_total = s.ki * elem_bytes;
  if (smem_total > spec_.shared_mem_per_block) {
    return KernelProfile::invalid_config("shared memory exceeds 48KB");
  }

  std::int64_t regs = 20 + s.per_thread_outputs() + 4;
  bool spilled = false;
  if (regs > spec_.max_registers_per_thread) {
    spilled = true;
    regs = spec_.max_registers_per_thread;
  }

  const int bps = blocks_per_sm(spec_, tpb, smem_total, static_cast<int>(regs));
  if (bps == 0) {
    return KernelProfile::invalid_config("launch exceeds SM resources");
  }

  const std::int64_t total_blocks = w.batch * s.num_blocks();
  const double occupancy = static_cast<double>(bps) *
                           static_cast<double>(tpb) /
                           static_cast<double>(spec_.max_threads_per_sm);
  const double concurrent_blocks =
      static_cast<double>(bps) * spec_.num_sms;
  const double waves =
      std::ceil(static_cast<double>(total_blocks) / concurrent_blocks);
  const double utilization =
      static_cast<double>(total_blocks) / (waves * concurrent_blocks);

  const std::int64_t total_macs = workload_.flops() / 2;
  const double warps_per_sm =
      static_cast<double>(bps) *
      std::ceil(static_cast<double>(tpb) / spec_.warp_size);
  const double ilp = std::min<double>(8.0, static_cast<double>(s.oi));
  const double body_macs = static_cast<double>(s.ki * s.oi);
  double compute_eff = warp_efficiency(spec_, tpb) *
                       latency_hiding(warps_per_sm, ilp) *
                       loop_efficiency(body_macs, s.auto_unroll_max_step,
                                       s.unroll_explicit) *
                       dual_issue_efficiency(tpb);
  if (spilled) compute_eff *= 0.6;
  const double compute_us =
      static_cast<double>(total_macs) /
      (static_cast<double>(spec_.total_cores()) * dtype_rate(spec_, w.dtype)) /
      cycles_per_us(spec_) / std::max(compute_eff, 1e-3) *
      register_bank_ripple(s.per_thread_outputs());

  // Weights stream once from DRAM; coalescing improves with longer
  // contiguous per-step runs (ki) and suffers when each thread owns many
  // scattered rows (oi).
  const double wt_bytes = static_cast<double>(w.weight_type().num_bytes());
  const double in_bytes = static_cast<double>(w.input_type().num_bytes()) *
                          static_cast<double>(s.bo);  // re-read per block
  const double out_bytes = static_cast<double>(w.output_type().num_bytes());
  const double eff_wt = clamp(
      coalesce_efficiency(s.ki, 32 / elem_bytes) *
          (1.0 / (1.0 + 0.15 * static_cast<double>(s.oi - 1))),
      0.1, 1.0);
  const double dram_us =
      (wt_bytes / eff_wt + in_bytes + out_bytes) / dram_bytes_per_us(spec_);

  const double smem_read_bytes =
      static_cast<double>(total_macs) * static_cast<double>(elem_bytes) /
      std::max<double>(1.0, static_cast<double>(s.oi));
  const double smem_bw = static_cast<double>(spec_.num_sms) *
                         spec_.smem_bytes_per_cycle * cycles_per_us(spec_);
  const double smem_us = smem_read_bytes / smem_bw;

  BottleneckTimes t;
  t.compute_us = compute_us;
  t.dram_us = dram_us;
  t.l2_us = dram_us / spec_.l2_bw_multiplier;
  t.smem_us = smem_us;

  KernelProfile p;
  p.valid = true;
  p.base_time_us = spec_.kernel_launch_overhead_us +
                   t.combined() / std::max(utilization, 0.05);
  p.occupancy = occupancy;
  p.registers_per_thread = static_cast<int>(regs);
  p.smem_bytes_per_block = smem_total;
  p.threads_per_block = tpb;
  p.num_blocks = total_blocks;
  p.compute_time_us = compute_us;
  p.dram_time_us = dram_us;
  p.l2_time_us = t.l2_us;
  p.smem_time_us = smem_us;
  p.wave_count = waves;

  const double mem_frac = dram_us / std::max(1e-9, compute_us + dram_us);
  p.noise_sigma = clamp(0.012 + 0.10 * std::max(0.0, 0.45 - occupancy) +
                            0.05 * mem_frac * mem_frac +
                            (spilled ? 0.03 : 0.0),
                        0.01, 0.18);
  return p;
}

}  // namespace aal
