// GPU hardware description for the analytical performance model.
//
// The paper measures on an Nvidia GeForce GTX 1080 Ti; gtx1080ti() encodes
// that card's published microarchitecture (Pascal GP102). The model only
// needs coarse machine parameters — SM count, warp width, register/shared
// memory capacities, clock, DRAM/L2 bandwidth — to reproduce the *shape* of
// a CUDA schedule landscape: occupancy cliffs, memory-vs-compute crossovers,
// tiling reuse, tail effects and launch overheads.
#pragma once

#include <cstdint>

namespace aal {

struct GpuSpec {
  const char* name = "generic-gpu";

  int num_sms = 28;
  int cores_per_sm = 128;        // fp32 lanes
  double clock_ghz = 1.582;      // boost clock
  int warp_size = 32;

  int max_threads_per_block = 1024;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;

  std::int64_t registers_per_sm = 65536;     // 32-bit registers
  int max_registers_per_thread = 255;

  std::int64_t shared_mem_per_block = 48 * 1024;  // bytes
  std::int64_t shared_mem_per_sm = 96 * 1024;

  double dram_bw_gbps = 484.0;   // GB/s
  std::int64_t l2_bytes = 2816 * 1024;
  double l2_bw_multiplier = 3.0;  // L2 bandwidth relative to DRAM

  /// Bytes/cycle of shared-memory bandwidth per SM (32 banks x 4 B).
  int smem_bytes_per_cycle = 128;

  /// Arithmetic-throughput multipliers relative to fp32. Pascal consumer
  /// parts run fp16 through conversion (no speedup) but have 4x dp4a int8;
  /// Volta doubles fp16.
  double fp16_rate = 1.0;
  double int8_rate = 4.0;

  double kernel_launch_overhead_us = 4.0;

  /// Peak fp32 throughput in GFLOPS (2 flops per core-cycle FMA).
  double peak_gflops() const {
    return 2.0 * static_cast<double>(num_sms) * cores_per_sm * clock_ghz;
  }

  /// Total fp32 lanes.
  int total_cores() const { return num_sms * cores_per_sm; }

  /// GeForce GTX 1080 Ti (the paper's platform).
  static GpuSpec gtx1080ti();

  /// A small embedded-class GPU (Jetson-like) used by tests and the
  /// robustness benches to check the model scales sensibly.
  static GpuSpec small_embedded();

  /// Tesla V100-class server GPU (Volta): used by the hardware-portability
  /// ablation — the tuners must transfer across machine balances.
  static GpuSpec v100();
};

}  // namespace aal
