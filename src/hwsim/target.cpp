#include "hwsim/target.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "support/common.hpp"

namespace aal {

namespace {

/// Levenshtein distance for the did-you-mean suggestion; the registry is
/// tiny, so the quadratic table is irrelevant.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

struct RegistryEntry {
  const char* name;
  const char* description;
  TargetSpec (*make)();
};

/// FNV-1a over the spec's identity — device name plus every performance
/// field. Two distinct custom machines must never share a target name:
/// the name qualifies record-store task keys, and a shared "gpu-custom"
/// would leak one machine's tuning records into the other's warm starts.
std::uint64_t gpu_spec_fingerprint(const GpuSpec& spec) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix_bytes = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  const auto mix_int = [&](std::int64_t v) { mix_bytes(&v, sizeof(v)); };
  const auto mix_double = [&](double v) { mix_bytes(&v, sizeof(v)); };
  mix_bytes(spec.name, std::char_traits<char>::length(spec.name));
  mix_int(spec.num_sms);
  mix_int(spec.cores_per_sm);
  mix_double(spec.clock_ghz);
  mix_int(spec.warp_size);
  mix_int(spec.max_threads_per_block);
  mix_int(spec.max_threads_per_sm);
  mix_int(spec.max_blocks_per_sm);
  mix_int(spec.registers_per_sm);
  mix_int(spec.max_registers_per_thread);
  mix_int(spec.shared_mem_per_block);
  mix_int(spec.shared_mem_per_sm);
  mix_double(spec.dram_bw_gbps);
  mix_int(spec.l2_bytes);
  mix_double(spec.l2_bw_multiplier);
  mix_int(spec.smem_bytes_per_cycle);
  mix_double(spec.fp16_rate);
  mix_double(spec.int8_rate);
  mix_double(spec.kernel_launch_overhead_us);
  return h;
}

TargetSpec make_gpu_target(const char* name, GpuSpec spec) {
  TargetSpec t;
  t.kind = TargetKind::kGpu;
  t.name = name;
  t.device_name = spec.name;
  t.gpu = spec;
  return t;
}

TargetSpec make_gpu_pascal() {
  return make_gpu_target("gpu-pascal", GpuSpec::gtx1080ti());
}
TargetSpec make_gpu_volta() {
  return make_gpu_target("gpu-volta", GpuSpec::v100());
}
TargetSpec make_gpu_embedded() {
  return make_gpu_target("gpu-embedded", GpuSpec::small_embedded());
}

TargetSpec make_cpu_simd() {
  TargetSpec t;
  t.kind = TargetKind::kCpu;
  t.name = "cpu-simd";
  t.cpu = CpuSpec::desktop_simd();
  t.device_name = t.cpu.name;
  return t;
}

TargetSpec make_fpga_systolic() {
  TargetSpec t;
  t.kind = TargetKind::kFpga;
  t.name = "fpga-systolic";
  t.fpga = FpgaSpec::midrange_systolic();
  t.device_name = t.fpga.name;
  return t;
}

constexpr RegistryEntry kRegistry[] = {
    {"gpu-pascal",
     "Pascal-class CUDA GPU (GTX 1080 Ti), the paper's platform",
     &make_gpu_pascal},
    {"gpu-volta", "Volta-class server GPU (Tesla V100)", &make_gpu_volta},
    {"gpu-embedded", "small embedded-class GPU (Jetson-like)",
     &make_gpu_embedded},
    {"cpu-simd", "16-core AVX2 CPU with a 3-level cache hierarchy",
     &make_cpu_simd},
    {"fpga-systolic",
     "16x16 systolic-array FPGA with on-chip local buffers (AutoSA-style)",
     &make_fpga_systolic},
};

}  // namespace

const char* target_kind_name(TargetKind kind) {
  switch (kind) {
    case TargetKind::kGpu: return "gpu";
    case TargetKind::kCpu: return "cpu";
    case TargetKind::kFpga: return "fpga";
  }
  return "unknown";
}

CpuSpec CpuSpec::desktop_simd() {
  CpuSpec s;
  s.name = "desktop-16c-avx2";
  return s;  // defaults describe the desktop part
}

FpgaSpec FpgaSpec::midrange_systolic() {
  FpgaSpec s;
  s.name = "midrange-systolic-16x16";
  return s;  // defaults describe the mid-range array
}

double TargetSpec::peak_gflops() const {
  switch (kind) {
    case TargetKind::kGpu: return gpu.peak_gflops();
    case TargetKind::kCpu: return cpu.peak_gflops();
    case TargetKind::kFpga: return fpga.peak_gflops();
  }
  return 0.0;
}

double TargetSpec::dram_bw_gbps() const {
  switch (kind) {
    case TargetKind::kGpu: return gpu.dram_bw_gbps;
    case TargetKind::kCpu: return cpu.dram_bw_gbps;
    case TargetKind::kFpga: return fpga.dram_bw_gbps;
  }
  return 0.0;
}

double TargetSpec::launch_overhead_us() const {
  switch (kind) {
    case TargetKind::kGpu: return gpu.kernel_launch_overhead_us;
    case TargetKind::kCpu: return cpu.parallel_launch_overhead_us;
    case TargetKind::kFpga: return fpga.launch_overhead_us;
  }
  return 0.0;
}

TargetSpec TargetSpec::from_gpu(const GpuSpec& spec) {
  TargetSpec t;
  t.kind = TargetKind::kGpu;
  t.gpu = spec;
  t.device_name = spec.name;
  const std::string device = spec.name;
  if (device == "GeForce GTX 1080 Ti") {
    t.name = "gpu-pascal";
  } else if (device == "Tesla V100") {
    t.name = "gpu-volta";
  } else if (device == "small-embedded") {
    t.name = "gpu-embedded";
  } else {
    // Fingerprint-qualified: distinct custom machines get distinct names
    // (and therefore distinct "@target"-qualified store keys). The bare
    // "gpu-custom" of earlier releases made every unknown GPU share one
    // key namespace, leaking records — and transfer priors — across
    // unrelated machines.
    char suffix[20];
    std::snprintf(suffix, sizeof(suffix), "%08llx",
                  static_cast<unsigned long long>(
                      gpu_spec_fingerprint(spec) & 0xFFFFFFFFULL));
    t.name = std::string("gpu-custom-") + suffix;
  }
  return t;
}

const std::vector<std::string>& target_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const RegistryEntry& e : kRegistry) out.emplace_back(e.name);
    return out;
  }();
  return names;
}

TargetSpec make_target(const std::string& name) {
  for (const RegistryEntry& e : kRegistry) {
    if (name == e.name) return e.make();
  }
  // Unknown: build the did-you-mean error from the closest registry name.
  const RegistryEntry* closest = &kRegistry[0];
  std::size_t best = edit_distance(name, kRegistry[0].name);
  for (const RegistryEntry& e : kRegistry) {
    const std::size_t d = edit_distance(name, e.name);
    if (d < best) {
      best = d;
      closest = &e;
    }
  }
  std::string valid;
  for (const RegistryEntry& e : kRegistry) {
    if (!valid.empty()) valid += ", ";
    valid += e.name;
  }
  std::string message = "unknown target '" + name + "'";
  if (best <= name.size() / 2 + 1) {
    message += " (did you mean '" + std::string(closest->name) + "'?)";
  }
  message += "; valid targets: " + valid;
  throw InvalidArgument(message);
}

std::string target_description(const std::string& name) {
  for (const RegistryEntry& e : kRegistry) {
    if (name == e.name) return e.description;
  }
  throw InvalidArgument("unknown target '" + name + "'");
}

}  // namespace aal
