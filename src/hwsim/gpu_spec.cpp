#include "hwsim/gpu_spec.hpp"

namespace aal {

GpuSpec GpuSpec::gtx1080ti() {
  GpuSpec s;
  s.name = "GeForce GTX 1080 Ti";
  s.num_sms = 28;
  s.cores_per_sm = 128;
  s.clock_ghz = 1.582;
  s.warp_size = 32;
  s.max_threads_per_block = 1024;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.registers_per_sm = 65536;
  s.max_registers_per_thread = 255;
  s.shared_mem_per_block = 48 * 1024;
  s.shared_mem_per_sm = 96 * 1024;
  s.dram_bw_gbps = 484.0;
  s.l2_bytes = 2816 * 1024;
  s.l2_bw_multiplier = 3.0;
  s.smem_bytes_per_cycle = 128;
  s.kernel_launch_overhead_us = 4.0;
  return s;
}

GpuSpec GpuSpec::v100() {
  GpuSpec s;
  s.name = "Tesla V100";
  s.num_sms = 80;
  s.cores_per_sm = 64;
  s.clock_ghz = 1.53;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.registers_per_sm = 65536;
  s.shared_mem_per_block = 48 * 1024;
  s.shared_mem_per_sm = 96 * 1024;
  s.dram_bw_gbps = 900.0;
  s.l2_bytes = 6 * 1024 * 1024;
  s.l2_bw_multiplier = 3.5;
  s.fp16_rate = 2.0;
  s.int8_rate = 4.0;
  s.kernel_launch_overhead_us = 3.5;
  return s;
}

GpuSpec GpuSpec::small_embedded() {
  GpuSpec s;
  s.name = "small-embedded";
  s.num_sms = 2;
  s.cores_per_sm = 128;
  s.clock_ghz = 0.92;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 16;
  s.registers_per_sm = 32768;
  s.shared_mem_per_block = 48 * 1024;
  s.shared_mem_per_sm = 64 * 1024;
  s.dram_bw_gbps = 25.6;
  s.l2_bytes = 512 * 1024;
  s.kernel_launch_overhead_us = 8.0;
  return s;
}

}  // namespace aal
