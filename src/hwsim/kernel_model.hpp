// Analytical CUDA kernel performance model.
//
// Given a workload and one schedule configuration, produces a KernelProfile:
// either an invalid-config verdict (the simulator's equivalent of a TVM
// build/launch failure) or a deterministic kernel time assembled from four
// candidate bottlenecks — ALU throughput, DRAM bandwidth, L2 bandwidth and
// shared-memory bandwidth — modulated by occupancy, warp efficiency, loop
// overhead, register spilling, coalescing, bank conflicts and wave tails.
//
// The goal is NOT cycle accuracy: it is a rugged, multi-modal, realistic
// landscape over the configuration space, with the correct *relative*
// preferences (tile reuse vs. parallelism vs. resource cliffs) so that
// search-strategy comparisons transfer. Magnitudes land in the right range
// for a GTX 1080 Ti (multi-TFLOPS for large fp32 convs, bandwidth-bound
// depthwise layers around 1 TFLOPS, ~0.85 ms for a streaming VGG-16 fc6).
#pragma once

#include "hwsim/gpu_spec.hpp"
#include "hwsim/kernel_profile.hpp"
#include "ir/workload.hpp"
#include "space/config_space.hpp"
#include "space/schedule_template.hpp"

namespace aal {

class KernelModel {
 public:
  KernelModel(Workload workload, GpuSpec spec);

  const Workload& workload() const { return workload_; }
  const GpuSpec& spec() const { return spec_; }

  /// Profiles one configuration from the workload's own space.
  KernelProfile profile(const ConfigSpace& space, const Config& config) const;

 private:
  KernelProfile profile_conv(const ConfigSpace& space,
                             const Config& config) const;
  KernelProfile profile_dense(const ConfigSpace& space,
                              const Config& config) const;

  Workload workload_;
  GpuSpec spec_;
};

/// Occupancy calculation shared by both kernel models; exposed for tests.
/// Returns concurrent blocks per SM (0 means the launch is impossible).
int blocks_per_sm(const GpuSpec& spec, std::int64_t threads_per_block,
                  std::int64_t smem_bytes_per_block,
                  int registers_per_thread);

}  // namespace aal
