// Latency model for non-tunable (fixed-function) graph operators.
//
// Pooling, softmax, LRN, standalone element-wise ops and copies are simple
// bandwidth-bound kernels whose performance barely depends on scheduling;
// TVM emits them with a fixed default schedule. The end-to-end latency
// pipeline charges each non-tunable fused group this cost.
#pragma once

#include <vector>

#include "hwsim/gpu_spec.hpp"
#include "hwsim/target.hpp"
#include "ir/op.hpp"
#include "tensor/shape.hpp"

namespace aal {

/// Deterministic latency (microseconds) of one fixed-function op. Returns 0
/// for ops with no runtime kernel (input, flatten, inference-time dropout).
double fixed_op_latency_us(const Op& op, const std::vector<TensorType>& inputs,
                           const GpuSpec& spec);

/// Backend-neutral overload: the same bandwidth-bound cost model, charged
/// at the target's off-chip bandwidth and launch overhead. The GPU path is
/// identical to the GpuSpec overload.
double fixed_op_latency_us(const Op& op, const std::vector<TensorType>& inputs,
                           const TargetSpec& target);

/// Run-to-run noise sigma used for fixed ops (small, bandwidth-kernel-like).
double fixed_op_noise_sigma();

}  // namespace aal
