#include "hwsim/device_model.hpp"

#include "hwsim/cpu_model.hpp"
#include "hwsim/fpga_model.hpp"
#include "hwsim/kernel_model.hpp"
#include "support/common.hpp"

namespace aal {

namespace {

/// GPU targets wrap the original Pascal-calibrated KernelModel verbatim —
/// the profile numbers (and therefore every golden trace of the default
/// target) are bit-identical to the pre-target-layer code. No constraints:
/// the GPU landscape keeps its full space, including its invalid regions.
class GpuDeviceModel final : public DeviceModel {
 public:
  GpuDeviceModel(Workload workload, TargetSpec target)
      : target_(std::move(target)), model_(std::move(workload), target_.gpu) {}

  const TargetSpec& target() const override { return target_; }
  const Workload& workload() const override { return model_.workload(); }

  KernelProfile profile(const ConfigSpace& space,
                        const Config& config) const override {
    return model_.profile(space, config);
  }

 private:
  TargetSpec target_;
  KernelModel model_;
};

}  // namespace

std::unique_ptr<DeviceModel> make_device_model(Workload workload,
                                               const TargetSpec& target,
                                               const ScheduleTemplate* tmpl) {
  if (tmpl == nullptr) {
    tmpl = &TemplateRegistry::instance().get(kDefaultTemplateName);
  }
  switch (target.kind) {
    case TargetKind::kGpu:
      // The GPU model keeps its CUDA-only decode path: the registry resolves
      // every template request on a GPU target to "cuda".
      AAL_CHECK(tmpl->name() == kDefaultTemplateName,
                "GPU targets only support the '" << kDefaultTemplateName
                                                 << "' template");
      return std::make_unique<GpuDeviceModel>(std::move(workload), target);
    case TargetKind::kCpu:
      return std::make_unique<CpuDeviceModel>(std::move(workload), target,
                                              tmpl);
    case TargetKind::kFpga:
      return std::make_unique<FpgaDeviceModel>(std::move(workload), target,
                                               tmpl);
  }
  throw InvalidArgument("unknown target kind");
}

}  // namespace aal
