#include "hwsim/fixed_ops.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace aal {

namespace {

double bytes_of(const std::vector<TensorType>& types) {
  double total = 0.0;
  for (const auto& t : types) total += static_cast<double>(t.num_bytes());
  return total;
}

double fixed_op_latency_at(const Op& op, const std::vector<TensorType>& inputs,
                           double bw_bytes_per_us, double launch_us) {
  // Ops that are views / removed at inference time launch no kernel.
  switch (op.type) {
    case OpType::kInput:
    case OpType::kFlatten:
    case OpType::kDropout:
      return 0.0;
    default:
      break;
  }

  const TensorType out = infer_output_type(op, inputs);
  const double out_bytes = static_cast<double>(out.num_bytes());
  const double in_bytes = bytes_of(inputs);

  double traffic = in_bytes + out_bytes;
  switch (op.type) {
    case OpType::kSoftmax:
      traffic = 3.0 * (in_bytes + out_bytes);  // max, exp-sum, normalize
      break;
    case OpType::kLRN:
      traffic = 2.0 * (in_bytes + out_bytes);  // square-sum window + scale
      break;
    case OpType::kMaxPool2d:
    case OpType::kAvgPool2d: {
      // Each output reads a kxk window; L1/L2 capture most of the overlap,
      // so charge the input once plus a window overhead factor.
      const double window =
          static_cast<double>(op.pool.kernel_h * op.pool.kernel_w);
      traffic = in_bytes * std::min(2.0, 1.0 + window / 16.0) + out_bytes;
      break;
    }
    default:
      break;
  }
  return launch_us + traffic / bw_bytes_per_us;
}

}  // namespace

double fixed_op_latency_us(const Op& op, const std::vector<TensorType>& inputs,
                           const GpuSpec& spec) {
  // Effective bandwidth of simple memory-bound kernels: ~75% of peak.
  // Fixed-function kernels launch back-to-back on one stream, so they pay a
  // reduced share of the launch overhead.
  return fixed_op_latency_at(op, inputs, spec.dram_bw_gbps * 1e3 * 0.75,
                             spec.kernel_launch_overhead_us * 0.6);
}

double fixed_op_latency_us(const Op& op, const std::vector<TensorType>& inputs,
                           const TargetSpec& target) {
  switch (target.kind) {
    case TargetKind::kGpu:
      return fixed_op_latency_us(op, inputs, target.gpu);
    case TargetKind::kCpu:
      // CPU fixed ops skip the kernel-launch path entirely (they run inline
      // in the host thread pool), but stream at a lower bandwidth fraction:
      // scalar/short-vector loops rarely saturate DRAM.
      return fixed_op_latency_at(op, inputs, target.dram_bw_gbps() * 1e3 * 0.6,
                                 target.launch_overhead_us() * 0.1);
    case TargetKind::kFpga:
      // Fixed ops fall back to the host/soft cores next to the fabric;
      // streaming DMA gets close to peak, but each op pays a descriptor
      // setup cost well below a full bitstream invocation.
      return fixed_op_latency_at(op, inputs, target.dram_bw_gbps() * 1e3 * 0.8,
                                 target.launch_overhead_us() * 0.05);
  }
  AAL_CHECK(false, "unreachable: unknown target kind");
  return 0.0;
}

double fixed_op_noise_sigma() { return 0.006; }

}  // namespace aal
