#include "hwsim/fpga_model.hpp"

#include <algorithm>
#include <cmath>

#include "space/schedule_template.hpp"
#include "support/common.hpp"
#include "support/math_util.hpp"

namespace aal {

namespace {

/// Accumulator replication bound: virtual threads replicate result buffers
/// across the array; a handful is free, more blows the BRAM budget fitted
/// for double buffering.
constexpr std::int64_t kMaxReplication = 4;

double dtype_rate(const FpgaSpec& spec, DType t) {
  switch (t) {
    case DType::kFloat16: return spec.fp16_rate;
    case DType::kInt8: return spec.int8_rate;
    default: return 1.0;
  }
}

/// Mechanical facts about one schedule's spatial mapping; shared by the
/// feasibility predicates and the timing equations.
struct FpgaMapping {
  std::int64_t spatial_pes = 1;    // PEs the tile occupies (t* extents)
  std::int64_t simd = 1;           // lanes used inside each PE
  std::int64_t replication = 1;    // accumulator copies (v* extents)
  std::int64_t buffer_bytes = 0;   // local-buffer tile footprint
  std::int64_t invocations = 1;    // tile dispatches (b* extents x batch)
  std::int64_t outer_steps = 1;    // local-buffer refills per invocation
  std::int64_t inner_body = 1;     // pipeline body length (inner reduction)
};

FpgaMapping conv_mapping(const Workload& workload, const ConvSchedule& s) {
  const Conv2dWorkload& w = workload.as_conv2d();
  const bool depthwise = workload.kind() == WorkloadKind::kDepthwiseConv2d;
  const std::int64_t elem = dtype_bytes(w.dtype);

  FpgaMapping m;
  m.spatial_pes = s.threads_per_block();
  m.simd = s.fi;
  m.replication = s.vthreads();
  const std::int64_t in_rows = (s.tile_y() - 1) * w.stride_h + s.ryi;
  const std::int64_t in_cols = (s.tile_x() - 1) * w.stride_w + s.rxi;
  const std::int64_t staged_channels = depthwise ? s.tile_f() : s.rci;
  const std::int64_t wt_elems = depthwise
                                    ? s.tile_f() * s.ryi * s.rxi
                                    : s.tile_f() * s.rci * s.ryi * s.rxi;
  const std::int64_t out_elems = s.tile_f() * s.tile_y() * s.tile_x();
  // Input + weight tiles double-buffered, plus the replicated output tile.
  m.buffer_bytes = (2 * (staged_channels * in_rows * in_cols + wt_elems) +
                    m.replication * out_elems) *
                   elem;
  m.invocations = w.batch * s.num_blocks();
  m.outer_steps = (depthwise ? 1 : s.rco) * s.ryo * s.rxo;
  m.inner_body = (depthwise ? 1 : s.rci) * s.ryi * s.rxi;
  return m;
}

FpgaMapping dense_mapping(const Workload& workload, const DenseSchedule& s) {
  const DenseWorkload& w = workload.as_dense();
  const std::int64_t elem = dtype_bytes(w.dtype);

  FpgaMapping m;
  m.spatial_pes = s.threads_per_block();
  m.simd = s.oi;
  m.replication = s.vo;
  const std::int64_t out_elems = s.vo * s.to * s.oi;
  m.buffer_bytes =
      (2 * (s.ki + out_elems * s.ki) + m.replication * out_elems) * elem;
  m.invocations = w.batch * s.num_blocks();
  m.outer_steps = s.ko;
  m.inner_body = s.ki;
  return m;
}

struct FeasibilityVerdict {
  bool ok = true;
  const char* reason = "";
};

FeasibilityVerdict check_mapping(const FpgaMapping& m, const FpgaSpec& spec) {
  if (m.spatial_pes > static_cast<std::int64_t>(spec.pe_rows) * spec.pe_cols) {
    return {false, "fpga.pe-array: spatial extents exceed the PE array"};
  }
  if (m.simd > spec.simd_lanes) {
    return {false, "fpga.simd-lanes: inner extent exceeds per-PE lanes"};
  }
  if (m.replication > kMaxReplication) {
    return {false, "fpga.replication: too many accumulator copies"};
  }
  if (m.buffer_bytes > spec.local_buffer_bytes) {
    return {false, "fpga.local-buffer: tile overflows the on-chip buffers"};
  }
  return {};
}

KernelProfile assemble(const Workload& workload, const FpgaSpec& spec,
                       const FpgaMapping& m, DType dtype,
                       double unique_bytes, std::int64_t tile_traffic_bytes,
                       std::int64_t threads_per_block) {
  const FeasibilityVerdict verdict = check_mapping(m, spec);
  if (!verdict.ok) return KernelProfile::invalid_config(verdict.reason);

  const double cycles_per_us = spec.clock_ghz * 1e3;

  // --- Compute: streaming rate x packing, plus the pipeline-fill tax ----
  const std::int64_t total_macs = workload.flops() / 2;
  const double macs_per_cycle = static_cast<double>(m.spatial_pes) *
                                static_cast<double>(m.simd) *
                                dtype_rate(spec, dtype);
  // The scheduler allocates whole array columns: odd PE counts round up.
  const double pack_eff =
      static_cast<double>(m.spatial_pes) /
      static_cast<double>(round_up(m.spatial_pes, spec.pe_cols));
  const double stream_cycles =
      static_cast<double>(total_macs) / macs_per_cycle / pack_eff;
  const double fill_cycles = static_cast<double>(m.invocations) *
                             static_cast<double>(m.outer_steps) *
                             static_cast<double>(spec.pipeline_depth);
  const double compute_us = (stream_cycles + fill_cycles) / cycles_per_us;

  // --- Off-chip streaming ------------------------------------------------
  // No cache hierarchy: every staged tile streams from DRAM each refill.
  const double staged_bytes = static_cast<double>(m.invocations) *
                              static_cast<double>(m.outer_steps) *
                              static_cast<double>(tile_traffic_bytes);
  const double dram_bytes = unique_bytes + staged_bytes;
  const double dram_us = dram_bytes / (spec.dram_bw_gbps * 1e3);

  // --- Overlap -----------------------------------------------------------
  // Double buffering hides `latency_hiding` of the shorter phase behind the
  // longer one.
  const double mx = std::max(compute_us, dram_us);
  const double mn = std::min(compute_us, dram_us);
  const double overlapped = mx + (1.0 - spec.latency_hiding) * mn;

  KernelProfile p;
  p.valid = true;
  p.base_time_us = spec.launch_overhead_us + overlapped;
  // "Occupancy" on the array: fraction of PEs (and their lanes) streaming.
  p.occupancy = static_cast<double>(m.spatial_pes * m.simd) /
                (static_cast<double>(spec.pe_rows) * spec.pe_cols *
                 spec.simd_lanes);
  p.registers_per_thread = static_cast<int>(m.replication);
  p.smem_bytes_per_block = m.buffer_bytes;
  p.threads_per_block = threads_per_block;
  p.num_blocks = m.invocations;
  p.compute_time_us = compute_us;
  p.dram_time_us = dram_us;
  p.l2_time_us = 0.0;
  p.smem_time_us = fill_cycles / cycles_per_us;
  p.wave_count = static_cast<double>(m.invocations);

  // Statically scheduled datapath: only DDR arbitration jitters, and only
  // when the schedule is transfer-bound.
  const double dram_frac = dram_us / std::max(1e-9, compute_us + dram_us);
  p.noise_sigma = clamp(0.0015 + 0.008 * dram_frac, 0.001, 0.012);
  return p;
}

}  // namespace

FpgaDeviceModel::FpgaDeviceModel(Workload workload, TargetSpec target,
                                 const ScheduleTemplate* tmpl)
    : workload_(std::move(workload)),
      target_(std::move(target)),
      template_(tmpl != nullptr
                    ? tmpl
                    : &TemplateRegistry::instance().get(kDefaultTemplateName)) {
  AAL_CHECK(target_.kind == TargetKind::kFpga,
            "FpgaDeviceModel needs an FPGA target");
}

KernelProfile FpgaDeviceModel::profile(const ConfigSpace& space,
                                       const Config& config) const {
  if (workload_.is_conv()) return profile_conv(space, config);
  return profile_dense(space, config);
}

std::vector<SpaceConstraint> FpgaDeviceModel::constraints() const {
  const FpgaSpec spec = target_.fpga;
  const Workload workload = workload_;
  const bool is_conv = workload.is_conv();
  // Registry singleton: safe to capture by pointer beyond the model's life.
  const ScheduleTemplate* tmpl = template_;
  const auto mapping = [workload, is_conv, tmpl](const ConfigSpace& space,
                                                 const Config& config) {
    return is_conv
               ? conv_mapping(workload,
                              tmpl->decode_conv(workload, space, config))
               : dense_mapping(workload,
                               tmpl->decode_dense(workload, space, config));
  };
  std::vector<SpaceConstraint> out;
  out.push_back({"fpga.pe-array",
                 [mapping, spec](const ConfigSpace& space, const Config& c) {
                   return mapping(space, c).spatial_pes <=
                          static_cast<std::int64_t>(spec.pe_rows) *
                              spec.pe_cols;
                 }});
  out.push_back({"fpga.simd-lanes",
                 [mapping, spec](const ConfigSpace& space, const Config& c) {
                   return mapping(space, c).simd <= spec.simd_lanes;
                 }});
  out.push_back({"fpga.replication",
                 [mapping](const ConfigSpace& space, const Config& c) {
                   return mapping(space, c).replication <= kMaxReplication;
                 }});
  out.push_back({"fpga.local-buffer",
                 [mapping, spec](const ConfigSpace& space, const Config& c) {
                   return mapping(space, c).buffer_bytes <=
                          spec.local_buffer_bytes;
                 }});
  return out;
}

KernelProfile FpgaDeviceModel::profile_conv(const ConfigSpace& space,
                                            const Config& config) const {
  const Conv2dWorkload& w = workload_.as_conv2d();
  const bool depthwise = workload_.kind() == WorkloadKind::kDepthwiseConv2d;
  AAL_CHECK(depthwise || w.groups == 1,
            "fpga model supports groups==1 or depthwise convolutions");
  const ConvSchedule s = template_->decode_conv(workload_, space, config);
  const FpgaMapping m = conv_mapping(workload_, s);

  const std::int64_t elem = dtype_bytes(w.dtype);
  const std::int64_t in_rows = (s.tile_y() - 1) * w.stride_h + s.ryi;
  const std::int64_t in_cols = (s.tile_x() - 1) * w.stride_w + s.rxi;
  const std::int64_t staged_channels = depthwise ? s.tile_f() : s.rci;
  const std::int64_t wt_elems = depthwise
                                    ? s.tile_f() * s.ryi * s.rxi
                                    : s.tile_f() * s.rci * s.ryi * s.rxi;
  const std::int64_t tile_traffic =
      (staged_channels * in_rows * in_cols + wt_elems) * elem;
  const double unique_bytes =
      static_cast<double>(w.output_type().num_bytes());

  return assemble(workload_, target_.fpga, m, w.dtype, unique_bytes,
                  tile_traffic, s.threads_per_block());
}

KernelProfile FpgaDeviceModel::profile_dense(const ConfigSpace& space,
                                             const Config& config) const {
  const DenseWorkload& w = workload_.as_dense();
  const DenseSchedule s = template_->decode_dense(workload_, space, config);
  const FpgaMapping m = dense_mapping(workload_, s);

  const std::int64_t elem = dtype_bytes(w.dtype);
  const std::int64_t out_elems = s.vo * s.to * s.oi;
  const std::int64_t tile_traffic = (s.ki + out_elems * s.ki) * elem;
  const double unique_bytes =
      static_cast<double>(w.output_type().num_bytes());

  return assemble(workload_, target_.fpga, m, w.dtype, unique_bytes,
                  tile_traffic, s.threads_per_block());
}

}  // namespace aal
