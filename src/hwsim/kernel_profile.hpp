// Result of analytically profiling one (workload, configuration) pair.
//
// `valid == false` corresponds to a TVM build/launch failure (block too
// large, shared-memory overflow, ...): AutoTVM sees these as error records
// with zero GFLOPS, and so do our tuners. For valid configs the profile
// carries the deterministic kernel time plus the run-to-run noise scale the
// device applies when "measuring".
#pragma once

#include <cstdint>
#include <string>

namespace aal {

struct KernelProfile {
  bool valid = false;
  std::string error;  // set when !valid

  /// Deterministic (noise-free) kernel time in microseconds.
  double base_time_us = 0.0;
  /// Log-normal sigma of run-to-run measurement noise. Fragile schedules
  /// (low occupancy, bandwidth-saturated) get larger sigma — this is the
  /// mechanism behind the paper's latency-variance column.
  double noise_sigma = 0.0;

  // Diagnostics (exposed for tests, benches and docs).
  double occupancy = 0.0;          // active warps / max warps per SM
  int registers_per_thread = 0;
  std::int64_t smem_bytes_per_block = 0;
  std::int64_t threads_per_block = 0;
  std::int64_t num_blocks = 0;
  double compute_time_us = 0.0;    // ALU-bound component
  double dram_time_us = 0.0;       // DRAM-bound component
  double l2_time_us = 0.0;         // L2-bound component
  double smem_time_us = 0.0;       // shared-memory-bound component
  double wave_count = 0.0;         // ceil(blocks / concurrent blocks)

  /// GFLOPS of this kernel at its deterministic time.
  double gflops(std::int64_t flops) const {
    if (!valid || base_time_us <= 0.0) return 0.0;
    return static_cast<double>(flops) / (base_time_us * 1e3);
  }

  static KernelProfile invalid_config(std::string reason) {
    KernelProfile p;
    p.valid = false;
    p.error = std::move(reason);
    return p;
  }
};

}  // namespace aal
