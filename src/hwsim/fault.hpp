// Deterministic fault injection for the measurement pipeline.
//
// Real tuning runs see transient device failures on top of the deterministic
// build errors the analytical model produces: AutoTVM's measurement loop
// routinely retries RPC timeouts, flaky kernel launches, wrong-answer
// correctness checks and dead worker processes. FaultyDevice reproduces that
// misbehavior *deterministically*: whether a given measurement attempt faults
// is a pure function of (plan seed, config flat index, attempt index), drawn
// through a splitmix64 mix exactly like the device's timing noise. No thread
// schedule, batch shape or call order can change which attempts fault, so
// serial and parallel chaos runs stay bitwise-identical — which is what lets
// the chaos test suite pin retry semantics with golden traces.
//
// All injected faults are *transient*: the faulted attempt fails, but the
// underlying device outcome is untouched, so a retry that draws no fault
// returns the fault-free timing values bitwise. Permanent failures (invalid
// profiles, i.e. build errors) pass through uninjected — the build never
// reaches the device.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "hwsim/device.hpp"

namespace aal {

/// The transient-fault taxonomy, mirroring AutoTVM's MeasureErrorNo
/// categories that are retryable in practice.
enum class FaultKind : int {
  kNone,         // attempt proceeds normally
  kTimeout,      // measurement timed out (RPC or kernel hang)
  kLaunchError,  // kernel launch failed transiently
  kWrongResult,  // output failed the correctness check (dirty memory)
  kWorkerDeath,  // the measurement worker process died
};

/// Stable wire name of a fault kind ("timeout", "launch_error", ...).
const char* fault_kind_name(FaultKind kind);

/// Declarative fault schedule. Rates are per-attempt probabilities; the
/// draw for (flat, attempt) is pure in (seed, flat, attempt).
struct FaultPlan {
  std::uint64_t seed = 1;
  double timeout_rate = 0.0;
  double launch_error_rate = 0.0;
  double wrong_result_rate = 0.0;
  double worker_death_rate = 0.0;
  /// Deterministic chaos bound: with cap > 0, attempts at index >= cap never
  /// fault. Every attempt consumes one retry, so a config can suffer at most
  /// `cap` injected faults — and a retry budget of cap+1 attempts is
  /// *guaranteed* to reach the clean measurement. 0 = unbounded.
  int max_faults_per_config = 0;

  /// True when any fault rate is non-zero.
  bool active() const;

  /// Sum of the four rates (must be <= 1).
  double total_rate() const;

  /// The fault (or kNone) injected into measurement attempt `attempt` of
  /// config `flat`. Pure in (seed, flat, attempt); thread-safe.
  FaultKind draw(std::int64_t flat, int attempt) const;

  /// Throws InvalidArgument when rates are outside [0, 1], their sum
  /// exceeds 1, or the cap is negative.
  void validate() const;

  /// Parses a comma-separated spec, e.g.
  ///   "timeout=0.05,launch=0.02,wrong=0.01,death=0.01,seed=7,cap=2"
  /// Keys: timeout, launch, wrong, death (rates), seed, cap. Unknown keys,
  /// malformed numbers and invalid rates throw InvalidArgument.
  static FaultPlan parse(std::string_view spec);

  /// Canonical spec string (parse round-trips it).
  std::string to_spec() const;
};

/// Decorator injecting the plan's faults into any Device. The wrapped
/// device is borrowed and must outlive the decorator.
class FaultyDevice final : public Device {
 public:
  FaultyDevice(const Device& inner, FaultPlan plan);

  using Device::run;

  /// Forwards the wrapped device's spec by reference. Safe because the
  /// inner device owns its TargetSpec by value and must outlive this
  /// decorator (class contract above); the reference is address-stable
  /// through arbitrarily deep decorator chains — pinned by the lifetime
  /// test in tests/hwsim/test_faults.cpp.
  const TargetSpec& spec() const override { return inner_.spec(); }
  const FaultPlan& plan() const { return plan_; }

  MeasureOutcome run(const KernelProfile& profile, std::int64_t flops,
                     int repeats, std::int64_t config_flat,
                     int attempt) const override;

  /// Total run() calls (diagnostics; pins never-re-dispatch guarantees).
  std::int64_t attempts() const {
    return attempts_.load(std::memory_order_relaxed);
  }

  /// Total faults injected so far (diagnostics).
  std::int64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  const Device& inner_;
  FaultPlan plan_;
  mutable std::atomic<std::int64_t> attempts_{0};
  mutable std::atomic<std::int64_t> injected_{0};
};

}  // namespace aal
