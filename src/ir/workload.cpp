#include "ir/workload.hpp"

#include <sstream>

#include "support/common.hpp"

namespace aal {

std::int64_t Conv2dWorkload::flops() const {
  // 2 * output elements * reduction length (channels-per-group * kh * kw).
  const std::int64_t out_elems =
      batch * out_channels * out_height() * out_width();
  const std::int64_t reduction = (in_channels / groups) * kernel_h * kernel_w;
  return 2 * out_elems * reduction;
}

void Conv2dWorkload::validate() const {
  AAL_CHECK(batch >= 1, "conv2d: batch must be >= 1");
  AAL_CHECK(in_channels >= 1 && out_channels >= 1,
            "conv2d: channels must be >= 1");
  AAL_CHECK(height >= 1 && width >= 1, "conv2d: spatial dims must be >= 1");
  AAL_CHECK(kernel_h >= 1 && kernel_w >= 1, "conv2d: kernel must be >= 1");
  AAL_CHECK(stride_h >= 1 && stride_w >= 1, "conv2d: stride must be >= 1");
  AAL_CHECK(pad_h >= 0 && pad_w >= 0, "conv2d: padding must be >= 0");
  AAL_CHECK(groups >= 1, "conv2d: groups must be >= 1");
  AAL_CHECK(in_channels % groups == 0,
            "conv2d: in_channels (" << in_channels << ") not divisible by groups ("
                                    << groups << ")");
  AAL_CHECK(out_channels % groups == 0,
            "conv2d: out_channels (" << out_channels
                                     << ") not divisible by groups (" << groups
                                     << ")");
  AAL_CHECK(height + 2 * pad_h >= kernel_h && width + 2 * pad_w >= kernel_w,
            "conv2d: kernel larger than padded input");
}

void DenseWorkload::validate() const {
  AAL_CHECK(batch >= 1, "dense: batch must be >= 1");
  AAL_CHECK(in_features >= 1 && out_features >= 1,
            "dense: feature dims must be >= 1");
}

std::string workload_kind_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kConv2d: return "conv2d";
    case WorkloadKind::kDepthwiseConv2d: return "depthwise_conv2d";
    case WorkloadKind::kDense: return "dense";
  }
  return "unknown";
}

Workload Workload::conv2d(Conv2dWorkload w) {
  w.validate();
  Workload out;
  out.kind_ = w.is_depthwise() ? WorkloadKind::kDepthwiseConv2d
                               : WorkloadKind::kConv2d;
  out.conv_ = w;
  return out;
}

Workload Workload::dense(DenseWorkload w) {
  w.validate();
  Workload out;
  out.kind_ = WorkloadKind::kDense;
  out.dense_ = w;
  return out;
}

const Conv2dWorkload& Workload::as_conv2d() const {
  AAL_CHECK(is_conv(), "workload is not a convolution");
  return conv_;
}

const DenseWorkload& Workload::as_dense() const {
  AAL_CHECK(kind_ == WorkloadKind::kDense, "workload is not dense");
  return dense_;
}

std::int64_t Workload::flops() const {
  return is_conv() ? conv_.flops() : dense_.flops();
}

std::string Workload::key() const {
  std::ostringstream os;
  os << workload_kind_name(kind_) << '/';
  if (is_conv()) {
    const auto& c = conv_;
    os << 'n' << c.batch << "_c" << c.in_channels << "_hw" << c.height << 'x'
       << c.width << "_o" << c.out_channels << "_k" << c.kernel_h << 'x'
       << c.kernel_w << "_s" << c.stride_h << 'x' << c.stride_w << "_p"
       << c.pad_h << 'x' << c.pad_w << "_g" << c.groups << '_'
       << dtype_name(c.dtype);
  } else {
    const auto& d = dense_;
    os << 'n' << d.batch << "_i" << d.in_features << "_o" << d.out_features
       << '_' << dtype_name(d.dtype);
  }
  return os.str();
}

std::string Workload::brief() const {
  std::ostringstream os;
  if (is_conv()) {
    const auto& c = conv_;
    os << workload_kind_name(kind_) << ' ' << c.in_channels << 'x' << c.height
       << 'x' << c.width << " -> " << c.out_channels << ", k" << c.kernel_h
       << 's' << c.stride_h;
  } else {
    const auto& d = dense_;
    os << "dense " << d.in_features << " -> " << d.out_features;
  }
  return os.str();
}

}  // namespace aal
