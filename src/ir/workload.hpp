// Tunable-task workload descriptions.
//
// In TVM/AutoTVM terms a *workload* identifies one tensor computation to be
// scheduled: the operator kind plus its static shape parameters. Node-wise
// optimization (the paper's Fig. 1) extracts one workload per fused graph
// node and tunes each independently; identical workloads across a model (or
// across models, for transfer learning) share a task.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/shape.hpp"

namespace aal {

/// Direct (im2col-style tiled) 2D convolution, NCHW/OIHW.
struct Conv2dWorkload {
  std::int64_t batch = 1;
  std::int64_t in_channels = 0;
  std::int64_t height = 0;   // input spatial height
  std::int64_t width = 0;    // input spatial width
  std::int64_t out_channels = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  std::int64_t groups = 1;  // ==in_channels for depthwise
  DType dtype = DType::kFloat32;

  std::int64_t out_height() const {
    return (height + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  std::int64_t out_width() const {
    return (width + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  bool is_depthwise() const {
    return groups == in_channels && groups == out_channels && groups > 1;
  }

  /// Multiply-accumulate pairs counted as 2 FLOPs each, the convention
  /// GFLOPS numbers in the paper and in AutoTVM logs use.
  std::int64_t flops() const;

  TensorType input_type() const {
    return {Shape{batch, in_channels, height, width}, dtype};
  }
  TensorType weight_type() const {
    return {Shape{out_channels, in_channels / groups, kernel_h, kernel_w},
            dtype};
  }
  TensorType output_type() const {
    return {Shape{batch, out_channels, out_height(), out_width()}, dtype};
  }

  void validate() const;
};

/// Fully-connected layer: [batch, in_features] x [out_features, in_features].
struct DenseWorkload {
  std::int64_t batch = 1;
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;
  DType dtype = DType::kFloat32;

  std::int64_t flops() const { return 2 * batch * in_features * out_features; }

  TensorType input_type() const { return {Shape{batch, in_features}, dtype}; }
  TensorType weight_type() const {
    return {Shape{out_features, in_features}, dtype};
  }
  TensorType output_type() const {
    return {Shape{batch, out_features}, dtype};
  }

  void validate() const;
};

enum class WorkloadKind : std::uint8_t {
  kConv2d,
  kDepthwiseConv2d,
  kDense,
};

std::string workload_kind_name(WorkloadKind k);

/// Tagged union of the tunable workloads. Equality and the canonical key
/// define task identity for deduplication and transfer learning.
class Workload {
 public:
  /// Builds a conv2d (or depthwise conv2d, decided by the groups field)
  /// workload; validates parameters.
  static Workload conv2d(Conv2dWorkload w);
  static Workload dense(DenseWorkload w);

  WorkloadKind kind() const { return kind_; }
  bool is_conv() const {
    return kind_ == WorkloadKind::kConv2d ||
           kind_ == WorkloadKind::kDepthwiseConv2d;
  }

  const Conv2dWorkload& as_conv2d() const;
  const DenseWorkload& as_dense() const;

  /// Total floating-point operations of one execution.
  std::int64_t flops() const;

  /// Canonical string key, e.g.
  /// "conv2d/n1_c3_hw224x224_o64_k3x3_s1x1_p1x1_g1_float32".
  std::string key() const;

  /// Short human label, e.g. "conv2d 3x224x224 -> 64, k3s1".
  std::string brief() const;

  bool operator==(const Workload& other) const { return key() == other.key(); }

 private:
  Workload() = default;

  WorkloadKind kind_ = WorkloadKind::kConv2d;
  Conv2dWorkload conv_;
  DenseWorkload dense_;
};

}  // namespace aal
