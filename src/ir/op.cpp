#include "ir/op.hpp"

#include "support/common.hpp"

namespace aal {

namespace {

// Pooling output extent along one axis.
std::int64_t pool_out(std::int64_t in, std::int64_t kernel, std::int64_t stride,
                      std::int64_t pad, bool ceil_mode) {
  const std::int64_t numer = in + 2 * pad - kernel;
  AAL_CHECK(numer >= 0, "pool kernel larger than padded input");
  if (ceil_mode) return (numer + stride - 1) / stride + 1;
  return numer / stride + 1;
}

const TensorType& sole_input(const Op& op,
                             const std::vector<TensorType>& inputs) {
  AAL_CHECK(inputs.size() == 1, op_type_name(op.type)
                                    << " expects exactly 1 input, got "
                                    << inputs.size());
  return inputs[0];
}

}  // namespace

std::string op_type_name(OpType t) {
  switch (t) {
    case OpType::kInput: return "input";
    case OpType::kConv2d: return "conv2d";
    case OpType::kDepthwiseConv2d: return "depthwise_conv2d";
    case OpType::kDense: return "dense";
    case OpType::kMaxPool2d: return "max_pool2d";
    case OpType::kAvgPool2d: return "avg_pool2d";
    case OpType::kGlobalAvgPool2d: return "global_avg_pool2d";
    case OpType::kRelu: return "relu";
    case OpType::kBatchNorm: return "batch_norm";
    case OpType::kAdd: return "add";
    case OpType::kConcat: return "concat";
    case OpType::kSoftmax: return "softmax";
    case OpType::kFlatten: return "flatten";
    case OpType::kDropout: return "dropout";
    case OpType::kLRN: return "lrn";
  }
  return "unknown";
}

Workload make_workload(const Op& op, const std::vector<TensorType>& inputs) {
  AAL_CHECK(is_tunable(op.type),
            "make_workload on non-tunable op " << op_type_name(op.type));
  const TensorType& in = inputs.at(0);
  if (op.type == OpType::kDense) {
    AAL_CHECK(in.shape.rank() == 2, "dense expects rank-2 input, got "
                                        << in.shape.to_string());
    DenseWorkload w;
    w.batch = in.shape[0];
    w.in_features = in.shape[1];
    w.out_features = op.dense.out_features;
    w.dtype = in.dtype;
    return Workload::dense(w);
  }
  AAL_CHECK(in.shape.rank() == 4, "conv2d expects NCHW input, got "
                                      << in.shape.to_string());
  Conv2dWorkload w;
  w.batch = in.shape[0];
  w.in_channels = in.shape[1];
  w.height = in.shape[2];
  w.width = in.shape[3];
  w.out_channels = op.conv.out_channels;
  w.kernel_h = op.conv.kernel_h;
  w.kernel_w = op.conv.kernel_w;
  w.stride_h = op.conv.stride_h;
  w.stride_w = op.conv.stride_w;
  w.pad_h = op.conv.pad_h;
  w.pad_w = op.conv.pad_w;
  w.groups = op.type == OpType::kDepthwiseConv2d ? in.shape[1] : op.conv.groups;
  w.dtype = in.dtype;
  return Workload::conv2d(w);
}

TensorType infer_output_type(const Op& op,
                             const std::vector<TensorType>& inputs) {
  switch (op.type) {
    case OpType::kInput:
      return sole_input(op, inputs);

    case OpType::kConv2d:
    case OpType::kDepthwiseConv2d:
    case OpType::kDense:
      return make_workload(op, inputs).is_conv()
                 ? make_workload(op, inputs).as_conv2d().output_type()
                 : make_workload(op, inputs).as_dense().output_type();

    case OpType::kMaxPool2d:
    case OpType::kAvgPool2d: {
      const TensorType& in = sole_input(op, inputs);
      AAL_CHECK(in.shape.rank() == 4,
                "pool expects NCHW input, got " << in.shape.to_string());
      const auto& p = op.pool;
      return {Shape{in.shape[0], in.shape[1],
                    pool_out(in.shape[2], p.kernel_h, p.stride_h, p.pad_h,
                             p.ceil_mode),
                    pool_out(in.shape[3], p.kernel_w, p.stride_w, p.pad_w,
                             p.ceil_mode)},
              in.dtype};
    }

    case OpType::kGlobalAvgPool2d: {
      const TensorType& in = sole_input(op, inputs);
      AAL_CHECK(in.shape.rank() == 4, "global pool expects NCHW input");
      return {Shape{in.shape[0], in.shape[1], 1, 1}, in.dtype};
    }

    case OpType::kRelu:
    case OpType::kBatchNorm:
    case OpType::kSoftmax:
    case OpType::kDropout:
    case OpType::kLRN:
      return sole_input(op, inputs);

    case OpType::kAdd: {
      AAL_CHECK(inputs.size() == 2, "add expects 2 inputs");
      AAL_CHECK(inputs[0] == inputs[1],
                "add input type mismatch: " << inputs[0].to_string() << " vs "
                                            << inputs[1].to_string());
      return inputs[0];
    }

    case OpType::kConcat: {
      AAL_CHECK(inputs.size() >= 2, "concat expects >= 2 inputs");
      const auto axis = static_cast<std::size_t>(op.concat.axis);
      const Shape& first = inputs[0].shape;
      AAL_CHECK(axis < first.rank(), "concat axis out of rank");
      std::vector<std::int64_t> dims = first.dims();
      for (std::size_t i = 1; i < inputs.size(); ++i) {
        const Shape& s = inputs[i].shape;
        AAL_CHECK(s.rank() == first.rank(), "concat rank mismatch");
        AAL_CHECK(inputs[i].dtype == inputs[0].dtype, "concat dtype mismatch");
        for (std::size_t d = 0; d < s.rank(); ++d) {
          if (d == axis) continue;
          AAL_CHECK(s[d] == first[d], "concat non-axis dim mismatch");
        }
        dims[axis] += s[axis];
      }
      return {Shape{std::move(dims)}, inputs[0].dtype};
    }

    case OpType::kFlatten: {
      const TensorType& in = sole_input(op, inputs);
      AAL_CHECK(in.shape.rank() >= 1, "flatten expects rank >= 1");
      std::int64_t rest = 1;
      for (std::size_t d = 1; d < in.shape.rank(); ++d) rest *= in.shape[d];
      return {Shape{in.shape[0], rest}, in.dtype};
    }
  }
  throw InternalError("unhandled op type in infer_output_type");
}

std::int64_t op_flops(const Op& op, const std::vector<TensorType>& inputs) {
  switch (op.type) {
    case OpType::kConv2d:
    case OpType::kDepthwiseConv2d:
    case OpType::kDense:
      return make_workload(op, inputs).flops();

    case OpType::kMaxPool2d:
    case OpType::kAvgPool2d: {
      const TensorType out = infer_output_type(op, inputs);
      return out.shape.num_elements() * op.pool.kernel_h * op.pool.kernel_w;
    }
    case OpType::kGlobalAvgPool2d:
      return inputs.at(0).shape.num_elements();

    case OpType::kRelu:
    case OpType::kAdd:
      return inputs.at(0).shape.num_elements();

    case OpType::kBatchNorm:
    case OpType::kSoftmax:
    case OpType::kLRN:
      // Scale+shift / exp+normalize: a handful of ops per element; 4 is the
      // conventional accounting.
      return 4 * inputs.at(0).shape.num_elements();

    case OpType::kInput:
    case OpType::kConcat:
    case OpType::kFlatten:
    case OpType::kDropout:
      return 0;
  }
  throw InternalError("unhandled op type in op_flops");
}

}  // namespace aal
