// Graph-level operator vocabulary.
//
// The model zoo needs more than the three tunable workloads: pooling,
// element-wise, normalization and shape ops appear between the tuned kernels
// and are handled by the fusion pass / fixed-cost model. Attributes are kept
// in one flat struct per category (pooling carries kernel/stride/pad, concat
// carries an axis, ...), which keeps shape inference a plain switch instead
// of a class hierarchy — there is no per-op behaviour beyond shapes & FLOPs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/workload.hpp"
#include "tensor/shape.hpp"

namespace aal {

enum class OpType : std::uint8_t {
  kInput,            // graph input placeholder
  kConv2d,           // tunable
  kDepthwiseConv2d,  // tunable
  kDense,            // tunable
  kMaxPool2d,
  kAvgPool2d,
  kGlobalAvgPool2d,
  kRelu,
  kBatchNorm,
  kAdd,       // element-wise (residual) addition, 2 inputs
  kConcat,    // channel concat, >= 2 inputs
  kSoftmax,
  kFlatten,
  kDropout,   // identity at inference time
  kLRN,       // local response normalization (AlexNet)
};

std::string op_type_name(OpType t);

/// True for ops that get their own tuning task.
constexpr bool is_tunable(OpType t) {
  return t == OpType::kConv2d || t == OpType::kDepthwiseConv2d ||
         t == OpType::kDense;
}

/// True for cheap ops a fusion pass may merge into a preceding tunable op.
constexpr bool is_fusable_elemwise(OpType t) {
  return t == OpType::kRelu || t == OpType::kBatchNorm ||
         t == OpType::kDropout || t == OpType::kAdd;
}

struct Conv2dAttrs {
  std::int64_t out_channels = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride_h = 1, stride_w = 1;
  std::int64_t pad_h = 0, pad_w = 0;
  std::int64_t groups = 1;
};

struct DenseAttrs {
  std::int64_t out_features = 0;
};

struct PoolAttrs {
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride_h = 1, stride_w = 1;
  std::int64_t pad_h = 0, pad_w = 0;
  bool ceil_mode = false;
};

struct ConcatAttrs {
  int axis = 1;  // channel axis in NCHW
};

/// One operator instance: type + (sparse) attributes. Only the fields
/// relevant to `type` are meaningful.
struct Op {
  OpType type = OpType::kInput;
  Conv2dAttrs conv;
  DenseAttrs dense;
  PoolAttrs pool;
  ConcatAttrs concat;
};

/// Infers the output type from input types; throws InvalidArgument on
/// arity/shape mismatches.
TensorType infer_output_type(const Op& op,
                             const std::vector<TensorType>& inputs);

/// FLOPs of one execution (0 for shape/identity ops; pooling and
/// normalization count one op per produced element).
std::int64_t op_flops(const Op& op, const std::vector<TensorType>& inputs);

/// For a tunable op, builds the corresponding Workload from its input types.
Workload make_workload(const Op& op, const std::vector<TensorType>& inputs);

}  // namespace aal
