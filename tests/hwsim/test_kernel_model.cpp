#include "hwsim/kernel_model.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"
#include "test_util.hpp"

namespace aal {
namespace {

TEST(GpuSpec, Gtx1080TiNumbers) {
  const GpuSpec s = GpuSpec::gtx1080ti();
  EXPECT_EQ(s.num_sms, 28);
  EXPECT_EQ(s.total_cores(), 3584);
  // 3584 cores * 2 flop * 1.582 GHz ~= 11.34 TFLOPS.
  EXPECT_NEAR(s.peak_gflops(), 11340.0, 50.0);
  EXPECT_EQ(s.shared_mem_per_block, 48 * 1024);
}

TEST(BlocksPerSm, RespectsEveryLimit) {
  const GpuSpec s = GpuSpec::gtx1080ti();
  // Unconstrained small block: capped by max_blocks_per_sm.
  EXPECT_EQ(blocks_per_sm(s, 32, 0, 16), 32);
  // Thread-limited: 2048 / 512 = 4.
  EXPECT_EQ(blocks_per_sm(s, 512, 0, 16), 4);
  // Shared-memory-limited: 96KB / 40KB = 2.
  EXPECT_EQ(blocks_per_sm(s, 64, 40 * 1024, 16), 2);
  // Register-limited: 65536 / (128 * 128) = 4.
  EXPECT_EQ(blocks_per_sm(s, 128, 0, 128), 4);
}

TEST(BlocksPerSm, ImpossibleLaunchesReturnZero) {
  const GpuSpec s = GpuSpec::gtx1080ti();
  EXPECT_EQ(blocks_per_sm(s, 2048, 0, 16), 0);          // too many threads
  EXPECT_EQ(blocks_per_sm(s, 0, 0, 16), 0);             // no threads
  EXPECT_EQ(blocks_per_sm(s, 64, 49 * 1024, 16), 0);    // smem over block cap
  EXPECT_EQ(blocks_per_sm(s, 1024, 0, 255), 0);         // register file blown
}

class ConvModelTest : public ::testing::Test {
 protected:
  Workload workload_ = testing::small_conv_workload();
  GpuSpec spec_ = GpuSpec::gtx1080ti();
  KernelModel model_{workload_, spec_};
  ConfigSpace space_ = build_config_space(workload_);
};

TEST_F(ConvModelTest, ValidProfilesAreWellFormed) {
  Rng rng(3);
  int valid = 0;
  for (int i = 0; i < 300; ++i) {
    const Config c = space_.sample(rng);
    const KernelProfile p = model_.profile(space_, c);
    if (!p.valid) continue;
    ++valid;
    EXPECT_GT(p.base_time_us, 0.0);
    EXPECT_GT(p.noise_sigma, 0.0);
    EXPECT_LE(p.noise_sigma, 0.2);
    EXPECT_GT(p.occupancy, 0.0);
    EXPECT_LE(p.occupancy, 1.0);
    EXPECT_GE(p.threads_per_block, 1);
    EXPECT_LE(p.threads_per_block, spec_.max_threads_per_block);
    EXPECT_LE(p.smem_bytes_per_block, spec_.shared_mem_per_block);
    // GFLOPS can never exceed the machine peak.
    EXPECT_LE(p.gflops(workload_.flops()), spec_.peak_gflops());
  }
  // A healthy fraction of random configs must be buildable.
  EXPECT_GT(valid, 50);
  EXPECT_LT(valid, 300);  // ... and some must fail, as on real hardware
}

TEST_F(ConvModelTest, ProfileIsDeterministic) {
  Rng rng(5);
  const Config c = space_.sample(rng);
  const KernelProfile a = model_.profile(space_, c);
  const KernelProfile b = model_.profile(space_, c);
  EXPECT_EQ(a.valid, b.valid);
  if (a.valid) {
    EXPECT_DOUBLE_EQ(a.base_time_us, b.base_time_us);
    EXPECT_DOUBLE_EQ(a.noise_sigma, b.noise_sigma);
  }
}

TEST_F(ConvModelTest, OversizedBlockIsInvalid) {
  // Find a config whose threads-per-block exceeds 1024: put everything in
  // the thread slots of tile_y/tile_x.
  Rng rng(7);
  bool found = false;
  for (int i = 0; i < 3000 && !found; ++i) {
    const Config c = space_.sample(rng);
    const ConvSchedule s = decode_conv_schedule(workload_, space_, c);
    if (s.threads_per_block() > 1024) {
      const KernelProfile p = model_.profile(space_, c);
      EXPECT_FALSE(p.valid);
      EXPECT_FALSE(p.error.empty());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ConvModelTest, InvalidProfileHasZeroGflops) {
  const KernelProfile p = KernelProfile::invalid_config("test");
  EXPECT_DOUBLE_EQ(p.gflops(1000000), 0.0);
}

TEST_F(ConvModelTest, LowOccupancyIsNoisierOnAverage) {
  // Average noise sigma over the low-occupancy quartile must exceed the
  // high-occupancy quartile: fragile launches jitter more.
  Rng rng(9);
  std::vector<std::pair<double, double>> occ_sigma;  // (occupancy, sigma)
  for (int i = 0; i < 2000; ++i) {
    const KernelProfile p = model_.profile(space_, space_.sample(rng));
    if (p.valid) occ_sigma.emplace_back(p.occupancy, p.noise_sigma);
  }
  ASSERT_GT(occ_sigma.size(), 100u);
  std::sort(occ_sigma.begin(), occ_sigma.end());
  const std::size_t q = occ_sigma.size() / 4;
  double low = 0.0, high = 0.0;
  for (std::size_t i = 0; i < q; ++i) {
    low += occ_sigma[i].second;
    high += occ_sigma[occ_sigma.size() - 1 - i].second;
  }
  EXPECT_GT(low / q, high / q);
}

TEST(DenseModelTest, ProfilesBehave) {
  const Workload w = testing::small_dense_workload();
  const GpuSpec spec = GpuSpec::gtx1080ti();
  const KernelModel model(w, spec);
  const ConfigSpace space = build_config_space(w);
  Rng rng(11);
  int valid = 0;
  for (int i = 0; i < 200; ++i) {
    const KernelProfile p = model.profile(space, space.sample(rng));
    if (p.valid) {
      ++valid;
      EXPECT_GT(p.base_time_us, 0.0);
      EXPECT_LE(p.gflops(w.flops()), spec.peak_gflops());
    }
  }
  EXPECT_GT(valid, 20);
}

TEST(DepthwiseModelTest, BandwidthBoundRegime) {
  // Depthwise convolutions have almost no reuse: even the best config found
  // by random search must sit far below machine peak.
  const Workload w = testing::small_depthwise_workload();
  const GpuSpec spec = GpuSpec::gtx1080ti();
  const KernelModel model(w, spec);
  const ConfigSpace space = build_config_space(w);
  Rng rng(13);
  double best = 0.0;
  for (int i = 0; i < 500; ++i) {
    const KernelProfile p = model.profile(space, space.sample(rng));
    if (p.valid) best = std::max(best, p.gflops(w.flops()));
  }
  EXPECT_GT(best, 0.0);
  EXPECT_LT(best, 0.25 * spec.peak_gflops());
}

TEST(AlignmentRidges, Float4AlignedRowsAreFasterInAggregate) {
  // The vectorized-load / swizzle ridges: among valid configs, those whose
  // staged input row is float4-aligned must be faster on average in the
  // memory-bound regime. Use a depthwise workload (bandwidth-bound) so the
  // memory path dominates.
  const Workload w = testing::small_depthwise_workload();
  const GpuSpec spec = GpuSpec::gtx1080ti();
  const KernelModel model(w, spec);
  const ConfigSpace space = build_config_space(w);
  Rng rng(101);
  RunningStats aligned, unaligned;
  for (int i = 0; i < 4000; ++i) {
    const Config c = space.sample(rng);
    const KernelProfile p = model.profile(space, c);
    if (!p.valid) continue;
    const ConvSchedule s = decode_conv_schedule(w, space, c);
    const std::int64_t in_cols =
        (s.tile_x() - 1) * w.as_conv2d().stride_w + s.rxi;
    const double gflops = p.gflops(w.flops());
    // The sweet spot is float4-aligned but NOT a power-of-two pitch (which
    // triggers the bank/partition aliasing penalties) — e.g. pitch 4, 12,
    // 20, 28: vectorized loads without swizzle conflicts.
    if (in_cols % 4 == 0 && in_cols % 16 != 0) {
      aligned.add(gflops);
    } else if (in_cols % 2 == 1) {
      unaligned.add(gflops);
    }
  }
  ASSERT_GT(aligned.count(), 50u);
  ASSERT_GT(unaligned.count(), 50u);
  EXPECT_GT(aligned.mean(), unaligned.mean());
}

TEST(Precision, LowerPrecisionIsFasterInAggregate) {
  // fp16 halves and int8 quarters the memory traffic; int8 also gets 4x
  // dp4a arithmetic on Pascal. On a bandwidth-bound depthwise layer the
  // average valid-config time must drop monotonically with element size.
  Conv2dWorkload conv = testing::small_depthwise_workload().as_conv2d();
  const GpuSpec spec = GpuSpec::gtx1080ti();
  double mean_time[3] = {};
  const DType dtypes[3] = {DType::kFloat32, DType::kFloat16, DType::kInt8};
  for (int d = 0; d < 3; ++d) {
    conv.dtype = dtypes[d];
    const Workload w = Workload::conv2d(conv);
    const KernelModel model(w, spec);
    const ConfigSpace space = build_config_space(w);
    Rng rng(55);  // same stream: same configs compared across dtypes
    RunningStats stats;
    for (int i = 0; i < 1500; ++i) {
      const KernelProfile p = model.profile(space, space.sample(rng));
      if (p.valid) stats.add(p.base_time_us);
    }
    ASSERT_GT(stats.count(), 100u) << dtype_name(dtypes[d]);
    mean_time[d] = stats.mean();
  }
  EXPECT_LT(mean_time[1], mean_time[0]);  // fp16 < fp32
  EXPECT_LT(mean_time[2], mean_time[1]);  // int8 < fp16
}

TEST(Precision, Int8ShrinksSharedMemoryFootprint) {
  Conv2dWorkload conv = testing::small_conv_workload().as_conv2d();
  const GpuSpec spec = GpuSpec::gtx1080ti();
  conv.dtype = DType::kFloat32;
  const Workload w32 = Workload::conv2d(conv);
  conv.dtype = DType::kInt8;
  const Workload w8 = Workload::conv2d(conv);
  const ConfigSpace space = build_config_space(w32);  // same knobs/dims
  const KernelModel m32(w32, spec);
  const KernelModel m8(w8, spec);
  Rng rng(66);
  int compared = 0;
  for (int i = 0; i < 400 && compared < 30; ++i) {
    const Config c = space.sample(rng);
    const KernelProfile p32 = m32.profile(space, c);
    const KernelProfile p8 = m8.profile(space, c);
    if (!p32.valid || !p8.valid) continue;
    EXPECT_EQ(p8.smem_bytes_per_block * 4, p32.smem_bytes_per_block);
    ++compared;
  }
  EXPECT_GE(compared, 30);
}

TEST(KernelModelScaling, V100OutrunsPascalOnBigKernels) {
  const Workload w = testing::small_conv_workload();
  const ConfigSpace space = build_config_space(w);
  const KernelModel pascal(w, GpuSpec::gtx1080ti());
  const KernelModel volta(w, GpuSpec::v100());
  EXPECT_GT(GpuSpec::v100().peak_gflops(), GpuSpec::gtx1080ti().peak_gflops());
  // Aggregate over valid configs: V100 should win on average (more SMs,
  // double the bandwidth), even if tiny kernels are launch-bound on both.
  Rng rng(7);
  double p_total = 0.0, v_total = 0.0;
  int n = 0;
  for (int i = 0; i < 500 && n < 60; ++i) {
    const Config c = space.sample(rng);
    const KernelProfile pp = pascal.profile(space, c);
    const KernelProfile vp = volta.profile(space, c);
    if (pp.valid && vp.valid) {
      p_total += pp.base_time_us;
      v_total += vp.base_time_us;
      ++n;
    }
  }
  ASSERT_GE(n, 60);
  EXPECT_LT(v_total, p_total);
}

TEST(KernelModelScaling, SmallerGpuIsSlower) {
  const Workload w = testing::small_conv_workload();
  const ConfigSpace space = build_config_space(w);
  const KernelModel big(w, GpuSpec::gtx1080ti());
  const KernelModel small(w, GpuSpec::small_embedded());
  Rng rng(17);
  int compared = 0;
  for (int i = 0; i < 300 && compared < 20; ++i) {
    const Config c = space.sample(rng);
    const KernelProfile pb = big.profile(space, c);
    const KernelProfile ps = small.profile(space, c);
    if (pb.valid && ps.valid) {
      EXPECT_LT(pb.base_time_us, ps.base_time_us);
      ++compared;
    }
  }
  EXPECT_GE(compared, 20);
}

}  // namespace
}  // namespace aal
