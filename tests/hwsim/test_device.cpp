#include "hwsim/device.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/stats.hpp"
#include "test_util.hpp"

namespace aal {
namespace {

KernelProfile find_valid_profile(const KernelModel& model,
                                 const ConfigSpace& space) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const KernelProfile p = model.profile(space, space.sample(rng));
    if (p.valid) return p;
  }
  ADD_FAILURE() << "no valid profile found";
  return KernelProfile::invalid_config("none");
}

class DeviceTest : public ::testing::Test {
 protected:
  Workload workload_ = testing::small_conv_workload();
  GpuSpec spec_ = GpuSpec::gtx1080ti();
  KernelModel model_{workload_, spec_};
  ConfigSpace space_ = build_config_space(workload_);
  KernelProfile profile_ = find_valid_profile(model_, space_);
};

TEST_F(DeviceTest, SamplesAreReproducibleBySeed) {
  SimulatedDevice a(spec_, 42), b(spec_, 42);
  for (int flat = 0; flat < 5; ++flat) {
    for (int rep = 0; rep < 4; ++rep) {
      EXPECT_DOUBLE_EQ(a.sample_time_us(profile_, flat, rep),
                       b.sample_time_us(profile_, flat, rep));
    }
  }
}

TEST_F(DeviceTest, SamplesAreOrderIndependent) {
  // Counter-based noise: the draw for (flat, repeat) is the same whether it
  // is the first call on a device or the millionth — this is the property
  // that makes parallel measurement and resume deterministic.
  SimulatedDevice fresh(spec_, 42), warm(spec_, 42);
  for (int i = 0; i < 100; ++i) warm.sample_time_us(profile_, 9999 + i, 0);
  EXPECT_DOUBLE_EQ(fresh.sample_time_us(profile_, 5, 2),
                   warm.sample_time_us(profile_, 5, 2));

  // Permuting the evaluation order leaves every sample unchanged.
  SimulatedDevice c(spec_, 7), d(spec_, 7);
  std::vector<double> forward, backward;
  for (int flat = 0; flat < 16; ++flat) {
    forward.push_back(c.sample_time_us(profile_, flat, 0));
  }
  for (int flat = 15; flat >= 0; --flat) {
    backward.push_back(d.sample_time_us(profile_, flat, 0));
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST_F(DeviceTest, DistinctFlatsAndRepeatsDrawDistinctNoise) {
  SimulatedDevice dev(spec_, 1);
  EXPECT_NE(dev.sample_time_us(profile_, 1, 0),
            dev.sample_time_us(profile_, 2, 0));
  EXPECT_NE(dev.sample_time_us(profile_, 1, 0),
            dev.sample_time_us(profile_, 1, 1));
}

TEST_F(DeviceTest, DifferentSeedsDiffer) {
  SimulatedDevice a(spec_, 1), b(spec_, 2);
  int equal = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.sample_time_us(profile_, i, 0) == b.sample_time_us(profile_, i, 0)) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST_F(DeviceTest, MeanNearBaseTime) {
  SimulatedDevice dev(spec_, 7);
  RunningStats stats;
  for (int i = 0; i < 3000; ++i) stats.add(dev.sample_time_us(profile_, i, 0));
  // Log-normal noise is mean-compensated; the absolute jitter adds a small
  // positive bias (~0.12us) on top of base time.
  EXPECT_NEAR(stats.mean(), profile_.base_time_us,
              0.05 * profile_.base_time_us + 0.3);
  EXPECT_GT(stats.variance(), 0.0);
}

TEST_F(DeviceTest, SamplesAlwaysPositive) {
  SimulatedDevice dev(spec_, 11);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GT(dev.sample_time_us(profile_, i, 0), 0.0);
  }
}

TEST_F(DeviceTest, RunAveragesRepeats) {
  SimulatedDevice dev(spec_, 13);
  const MeasureOutcome out = dev.run(profile_, workload_.flops(), 5, 0);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.times_us.size(), 5u);
  double sum = 0.0;
  for (double t : out.times_us) sum += t;
  EXPECT_NEAR(out.mean_time_us, sum / 5.0, 1e-9);
  EXPECT_NEAR(out.gflops,
              static_cast<double>(workload_.flops()) / (out.mean_time_us * 1e3),
              1e-9);
}

TEST_F(DeviceTest, RunIsDeterministicPerConfig) {
  SimulatedDevice dev(spec_, 13);
  const MeasureOutcome a = dev.run(profile_, workload_.flops(), 3, 77);
  const MeasureOutcome b = dev.run(profile_, workload_.flops(), 3, 77);
  EXPECT_EQ(a.times_us, b.times_us);
  EXPECT_DOUBLE_EQ(a.mean_time_us, b.mean_time_us);
  // The first repeats of a longer run are the same draws (a prefix).
  const MeasureOutcome c = dev.run(profile_, workload_.flops(), 5, 77);
  ASSERT_EQ(c.times_us.size(), 5u);
  EXPECT_DOUBLE_EQ(c.times_us[0], a.times_us[0]);
  EXPECT_DOUBLE_EQ(c.times_us[2], a.times_us[2]);
}

TEST_F(DeviceTest, InvalidProfileFailsGracefully) {
  SimulatedDevice dev(spec_, 17);
  const MeasureOutcome out =
      dev.run(KernelProfile::invalid_config("smem overflow"),
              workload_.flops(), 3, 0);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, "smem overflow");
  EXPECT_DOUBLE_EQ(out.gflops, 0.0);
  EXPECT_THROW(dev.sample_time_us(KernelProfile::invalid_config("x"), 0, 0),
               InvalidArgument);
}

TEST_F(DeviceTest, RunCountsTotalRuns) {
  SimulatedDevice dev(spec_, 19);
  EXPECT_EQ(dev.total_runs(), 0);
  dev.run(profile_, workload_.flops(), 3, 0);
  EXPECT_EQ(dev.total_runs(), 3);
  dev.run(profile_, workload_.flops(), 2, 1);
  EXPECT_EQ(dev.total_runs(), 5);
}

TEST_F(DeviceTest, RejectsZeroRepeats) {
  SimulatedDevice dev(spec_, 23);
  EXPECT_THROW(dev.run(profile_, workload_.flops(), 0, 0), InvalidArgument);
}

TEST_F(DeviceTest, NoisierProfileHasWiderSpread) {
  KernelProfile calm = profile_;
  calm.noise_sigma = 0.01;
  KernelProfile wild = profile_;
  wild.noise_sigma = 0.15;
  SimulatedDevice dev(spec_, 29);
  RunningStats calm_stats, wild_stats;
  for (int i = 0; i < 2000; ++i) {
    calm_stats.add(dev.sample_time_us(calm, i, 0));
  }
  for (int i = 0; i < 2000; ++i) {
    wild_stats.add(dev.sample_time_us(wild, i, 0));
  }
  EXPECT_GT(wild_stats.variance(), calm_stats.variance());
}

}  // namespace
}  // namespace aal
