#include "hwsim/gpu_spec.hpp"

#include <gtest/gtest.h>

namespace aal {
namespace {

TEST(GpuSpecZoo, V100Numbers) {
  const GpuSpec s = GpuSpec::v100();
  EXPECT_EQ(s.total_cores(), 5120);
  // 5120 * 2 * 1.53 GHz ~= 15.7 TFLOPS fp32.
  EXPECT_NEAR(s.peak_gflops(), 15667.0, 100.0);
  EXPECT_GT(s.dram_bw_gbps, 850.0);
  EXPECT_EQ(s.l2_bytes, 6 * 1024 * 1024);
}

TEST(GpuSpecZoo, EmbeddedIsSmall) {
  const GpuSpec s = GpuSpec::small_embedded();
  EXPECT_LT(s.peak_gflops(), 1000.0);
  EXPECT_LT(s.dram_bw_gbps, 50.0);
  EXPECT_GT(s.kernel_launch_overhead_us,
            GpuSpec::gtx1080ti().kernel_launch_overhead_us);
}

TEST(GpuSpecZoo, RelativeOrdering) {
  const double embedded = GpuSpec::small_embedded().peak_gflops();
  const double pascal = GpuSpec::gtx1080ti().peak_gflops();
  const double volta = GpuSpec::v100().peak_gflops();
  EXPECT_LT(embedded, pascal);
  EXPECT_LT(pascal, volta);
}

TEST(GpuSpecZoo, NamesAreSet) {
  EXPECT_STRNE(GpuSpec::gtx1080ti().name, "generic-gpu");
  EXPECT_STRNE(GpuSpec::v100().name, "generic-gpu");
  EXPECT_STRNE(GpuSpec::small_embedded().name, "generic-gpu");
}

TEST(GpuSpecZoo, ResourceLimitsAreSane) {
  for (const GpuSpec& s : {GpuSpec::gtx1080ti(), GpuSpec::v100(),
                           GpuSpec::small_embedded()}) {
    EXPECT_GE(s.max_threads_per_sm, s.max_threads_per_block) << s.name;
    EXPECT_GE(s.shared_mem_per_sm, s.shared_mem_per_block) << s.name;
    EXPECT_GT(s.registers_per_sm, 0) << s.name;
    EXPECT_EQ(s.warp_size, 32) << s.name;
  }
}

}  // namespace
}  // namespace aal
