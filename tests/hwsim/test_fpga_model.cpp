// Tests for the analytical systolic-array FPGA device model: valid spatial
// mappings exist, the statically-scheduled datapath has near-zero noise,
// capacity constraints (PE array, SIMD lanes, replication, local buffer)
// agree with the model, and pruning never rejects the best schedule.
#include "hwsim/fpga_model.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "hwsim/device_model.hpp"
#include "space/schedule_template.hpp"
#include "test_util.hpp"

namespace aal {
namespace {

class FpgaModelTest : public ::testing::TestWithParam<Workload> {
 protected:
  FpgaModelTest()
      : workload_(GetParam()),
        target_(make_target("fpga-systolic")),
        model_(workload_, target_),
        space_(build_config_space(workload_)) {}

  Workload workload_;
  TargetSpec target_;
  FpgaDeviceModel model_;
  ConfigSpace space_;  // unconstrained: samples the full space
};

TEST_P(FpgaModelTest, ValidMappingsExistWithNearZeroNoise) {
  Rng rng(3);
  int valid = 0;
  for (int i = 0; i < 800; ++i) {
    const KernelProfile p = model_.profile(space_, space_.sample(rng));
    if (!p.valid) continue;
    ++valid;
    EXPECT_GT(p.base_time_us, 0.0);
    // A statically scheduled datapath barely jitters: only DDR arbitration
    // moves, far below the GPU model's noise floor.
    EXPECT_GE(p.noise_sigma, 0.001);
    EXPECT_LE(p.noise_sigma, 0.012);
    EXPECT_LE(p.gflops(workload_.flops()), target_.peak_gflops() * 1.001);
  }
  EXPECT_GT(valid, 0);
}

TEST_P(FpgaModelTest, ProfileIsDeterministic) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Config c = space_.sample(rng);
    const KernelProfile a = model_.profile(space_, c);
    const KernelProfile b = model_.profile(space_, c);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_DOUBLE_EQ(a.base_time_us, b.base_time_us);
    EXPECT_DOUBLE_EQ(a.noise_sigma, b.noise_sigma);
    EXPECT_EQ(a.error, b.error);
  }
}

TEST_P(FpgaModelTest, ConstraintsAreNamedAndFpgaPrefixed) {
  const std::vector<SpaceConstraint> constraints = model_.constraints();
  ASSERT_EQ(constraints.size(), 4u);
  std::set<std::string> names;
  for (const SpaceConstraint& c : constraints) {
    ASSERT_TRUE(c.predicate);
    EXPECT_EQ(c.name.substr(0, 5), "fpga.") << c.name;
    names.insert(c.name);
  }
  EXPECT_EQ(names.size(), constraints.size()) << "constraint names collide";
}

TEST_P(FpgaModelTest, PrunedConfigsAlwaysProfileInvalid) {
  ConfigSpace constrained = build_config_space(workload_);
  constrained.set_constraints(model_.constraints());
  Rng rng(11);
  int pruned = 0;
  for (int i = 0; i < 600; ++i) {
    const Config c = space_.sample(rng);
    if (constrained.feasible(c)) continue;
    ++pruned;
    const KernelProfile p = model_.profile(space_, c);
    EXPECT_FALSE(p.valid) << space_.to_string(c);
    EXPECT_FALSE(p.error.empty());
  }
  EXPECT_GT(pruned, 0);
}

TEST_P(FpgaModelTest, BestSampledMappingIsNeverPruned) {
  ConfigSpace constrained = build_config_space(workload_);
  constrained.set_constraints(model_.constraints());
  Rng rng(13);
  double best_gflops = 0.0;
  Config best;
  for (const Config& c : space_.sample_distinct(800, rng)) {
    const KernelProfile p = model_.profile(space_, c);
    const double g = p.gflops(workload_.flops());
    if (p.valid && g > best_gflops) {
      best_gflops = g;
      best = c;
    }
  }
  ASSERT_GT(best_gflops, 0.0);
  EXPECT_TRUE(constrained.feasible(best)) << space_.to_string(best);
}

TEST_P(FpgaModelTest, ConstrainedSamplingOnlyYieldsFeasiblePoints) {
  // The systolic array prunes hard (most of the CUDA-shaped space exceeds
  // its capacity walls); what sampling returns must all be feasible.
  ConfigSpace constrained = build_config_space(workload_);
  constrained.set_constraints(model_.constraints());
  Rng rng(17);
  const auto sampled = constrained.sample_distinct(200, rng);
  EXPECT_FALSE(sampled.empty());
  for (const Config& c : sampled) {
    const KernelProfile p = model_.profile(space_, c);
    EXPECT_TRUE(p.valid) << space_.to_string(c) << ": " << p.error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FpgaModelTest,
    ::testing::Values(testing::small_conv_workload(),
                      testing::small_dense_workload()),
    [](const ::testing::TestParamInfo<Workload>& info) {
      return info.index == 0 ? "conv" : "dense";
    });

}  // namespace
}  // namespace aal
