#include "hwsim/fixed_ops.hpp"

#include <gtest/gtest.h>

namespace aal {
namespace {

TensorType nchw(std::int64_t c, std::int64_t h, std::int64_t w) {
  return {Shape{1, c, h, w}, DType::kFloat32};
}

TEST(FixedOps, ViewsHaveZeroLatency) {
  const GpuSpec spec = GpuSpec::gtx1080ti();
  for (OpType t : {OpType::kInput, OpType::kFlatten, OpType::kDropout}) {
    Op op;
    op.type = t;
    EXPECT_DOUBLE_EQ(fixed_op_latency_us(op, {nchw(64, 56, 56)}, spec), 0.0);
  }
}

TEST(FixedOps, KernelsIncludeLaunchOverhead) {
  const GpuSpec spec = GpuSpec::gtx1080ti();
  Op op;
  op.type = OpType::kRelu;
  const double t = fixed_op_latency_us(op, {nchw(1, 1, 1)}, spec);
  EXPECT_GT(t, 0.5 * spec.kernel_launch_overhead_us * 0.5);
}

TEST(FixedOps, LatencyGrowsWithTensorSize) {
  const GpuSpec spec = GpuSpec::gtx1080ti();
  Op op;
  op.type = OpType::kRelu;
  const double small = fixed_op_latency_us(op, {nchw(16, 28, 28)}, spec);
  const double large = fixed_op_latency_us(op, {nchw(64, 112, 112)}, spec);
  EXPECT_GT(large, small);
}

TEST(FixedOps, SoftmaxCostsMoreThanRelu) {
  const GpuSpec spec = GpuSpec::gtx1080ti();
  Op relu;
  relu.type = OpType::kRelu;
  Op softmax;
  softmax.type = OpType::kSoftmax;
  const auto input = std::vector<TensorType>{nchw(64, 56, 56)};
  EXPECT_GT(fixed_op_latency_us(softmax, input, spec),
            fixed_op_latency_us(relu, input, spec));
}

TEST(FixedOps, PoolChargesWindowOverhead) {
  const GpuSpec spec = GpuSpec::gtx1080ti();
  Op pool;
  pool.type = OpType::kMaxPool2d;
  pool.pool = {3, 3, 2, 2, 0, 0, false};
  Op relu;
  relu.type = OpType::kRelu;
  const auto input = std::vector<TensorType>{nchw(64, 112, 112)};
  EXPECT_GT(fixed_op_latency_us(pool, input, spec),
            0.5 * fixed_op_latency_us(relu, input, spec));
}

TEST(FixedOps, SlowerGpuTakesLonger) {
  Op op;
  op.type = OpType::kLRN;
  const auto input = std::vector<TensorType>{nchw(64, 56, 56)};
  EXPECT_GT(fixed_op_latency_us(op, input, GpuSpec::small_embedded()),
            fixed_op_latency_us(op, input, GpuSpec::gtx1080ti()));
}

TEST(FixedOps, NoiseSigmaIsSmallPositive) {
  EXPECT_GT(fixed_op_noise_sigma(), 0.0);
  EXPECT_LT(fixed_op_noise_sigma(), 0.05);
}

}  // namespace
}  // namespace aal
