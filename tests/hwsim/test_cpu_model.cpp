// Tests for the analytical CPU device model: valid schedules exist, the
// profile is deterministic and physically sane, and the hardware-native
// constraints agree with the model (a pruned config never hides a schedule
// the backend could execute — the "never prunes the optimum" contract).
#include "hwsim/cpu_model.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "hwsim/device_model.hpp"
#include "space/schedule_template.hpp"
#include "test_util.hpp"

namespace aal {
namespace {

class CpuModelTest : public ::testing::TestWithParam<Workload> {
 protected:
  CpuModelTest()
      : workload_(GetParam()),
        target_(make_target("cpu-simd")),
        model_(workload_, target_),
        space_(build_config_space(workload_)) {}

  Workload workload_;
  TargetSpec target_;
  CpuDeviceModel model_;
  ConfigSpace space_;  // unconstrained: samples the full space
};

TEST_P(CpuModelTest, ValidSchedulesExistAndAreSane) {
  Rng rng(3);
  int valid = 0;
  for (int i = 0; i < 400; ++i) {
    const KernelProfile p = model_.profile(space_, space_.sample(rng));
    if (!p.valid) continue;
    ++valid;
    EXPECT_GT(p.base_time_us, 0.0);
    EXPECT_GE(p.noise_sigma, 0.004);
    EXPECT_LE(p.noise_sigma, 0.09);
    // No profile beats the machine's peak arithmetic throughput.
    EXPECT_LE(p.gflops(workload_.flops()), target_.peak_gflops() * 1.001);
  }
  EXPECT_GT(valid, 0);
}

TEST_P(CpuModelTest, ProfileIsDeterministic) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Config c = space_.sample(rng);
    const KernelProfile a = model_.profile(space_, c);
    const KernelProfile b = model_.profile(space_, c);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_DOUBLE_EQ(a.base_time_us, b.base_time_us);
    EXPECT_DOUBLE_EQ(a.noise_sigma, b.noise_sigma);
    EXPECT_EQ(a.error, b.error);
  }
}

TEST_P(CpuModelTest, ConstraintsAreNamedAndCpuPrefixed) {
  const std::vector<SpaceConstraint> constraints = model_.constraints();
  ASSERT_EQ(constraints.size(), 3u);
  std::set<std::string> names;
  for (const SpaceConstraint& c : constraints) {
    ASSERT_TRUE(c.predicate);
    EXPECT_EQ(c.name.substr(0, 4), "cpu.") << c.name;
    names.insert(c.name);
  }
  EXPECT_EQ(names.size(), constraints.size()) << "constraint names collide";
}

TEST_P(CpuModelTest, PrunedConfigsAlwaysProfileInvalid) {
  // Model/constraint coherence: any config a constraint rejects must also
  // fail to profile, so pruning can only skip configs that were worthless
  // anyway — the best valid schedule is always feasible.
  ConfigSpace constrained = build_config_space(workload_);
  constrained.set_constraints(model_.constraints());
  Rng rng(11);
  int pruned = 0;
  for (int i = 0; i < 600; ++i) {
    const Config c = space_.sample(rng);
    if (constrained.feasible(c)) continue;
    ++pruned;
    const KernelProfile p = model_.profile(space_, c);
    EXPECT_FALSE(p.valid) << space_.to_string(c);
    EXPECT_FALSE(p.error.empty());
  }
  // The sweep must actually exercise the pruning path.
  EXPECT_GT(pruned, 0);
}

TEST_P(CpuModelTest, BestSampledScheduleIsNeverPruned) {
  ConfigSpace constrained = build_config_space(workload_);
  constrained.set_constraints(model_.constraints());
  Rng rng(13);
  double best_gflops = 0.0;
  Config best;
  for (const Config& c : space_.sample_distinct(800, rng)) {
    const KernelProfile p = model_.profile(space_, c);
    const double g = p.gflops(workload_.flops());
    if (p.valid && g > best_gflops) {
      best_gflops = g;
      best = c;
    }
  }
  ASSERT_GT(best_gflops, 0.0);
  EXPECT_TRUE(constrained.feasible(best)) << space_.to_string(best);
}

TEST_P(CpuModelTest, FactoryBuildsCpuModelWithConstraints) {
  const auto model = make_device_model(workload_, target_);
  EXPECT_EQ(model->target().name, "cpu-simd");
  EXPECT_EQ(model->constraints().size(), 3u);
  Rng rng(17);
  const Config c = space_.sample(rng);
  const KernelProfile direct = model_.profile(space_, c);
  const KernelProfile via_factory = model->profile(space_, c);
  EXPECT_EQ(direct.valid, via_factory.valid);
  EXPECT_DOUBLE_EQ(direct.base_time_us, via_factory.base_time_us);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CpuModelTest,
    ::testing::Values(testing::small_conv_workload(),
                      testing::small_depthwise_workload(),
                      testing::small_dense_workload()),
    [](const ::testing::TestParamInfo<Workload>& info) {
      return info.index == 0 ? "conv" : info.index == 1 ? "depthwise" : "dense";
    });

}  // namespace
}  // namespace aal
