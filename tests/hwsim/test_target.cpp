// Unit tests for the target registry: stable names, did-you-mean
// resolution errors, GpuSpec round-trips and per-kind dispatch of the
// TargetSpec convenience accessors.
#include "hwsim/target.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/common.hpp"

namespace aal {
namespace {

TEST(Target, RegistryListsEveryTargetInStableOrder) {
  const std::vector<std::string> expected = {
      "gpu-pascal", "gpu-volta", "gpu-embedded", "cpu-simd", "fpga-systolic"};
  EXPECT_EQ(target_names(), expected);
}

TEST(Target, MakeTargetResolvesEveryRegisteredName) {
  for (const std::string& name : target_names()) {
    const TargetSpec t = make_target(name);
    EXPECT_EQ(t.name, name);
    EXPECT_FALSE(t.device_name.empty()) << name;
    EXPECT_FALSE(target_description(name).empty()) << name;
    EXPECT_GT(t.peak_gflops(), 0.0) << name;
    EXPECT_GT(t.dram_bw_gbps(), 0.0) << name;
    EXPECT_GE(t.launch_overhead_us(), 0.0) << name;
    // The registry name prefix encodes the backend kind.
    const std::string kind = target_kind_name(t.kind);
    EXPECT_EQ(name.substr(0, kind.size()), kind) << name;
  }
}

TEST(Target, UnknownNameThrowsWithDidYouMeanAndValidList) {
  try {
    make_target("cpu-smid");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cpu-smid"), std::string::npos);
    EXPECT_NE(msg.find("did you mean 'cpu-simd'"), std::string::npos);
    for (const std::string& name : target_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
  }
}

TEST(Target, WildlyWrongNameListsTargetsWithoutSuggestion) {
  try {
    make_target("zzzzzzzzzzzz");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid targets"), std::string::npos);
  }
}

TEST(Target, FromGpuMapsKnownSpecsToRegistryNames) {
  EXPECT_EQ(TargetSpec::from_gpu(GpuSpec::gtx1080ti()).name, "gpu-pascal");
  EXPECT_EQ(TargetSpec::from_gpu(GpuSpec::v100()).name, "gpu-volta");
  EXPECT_EQ(TargetSpec::from_gpu(GpuSpec::small_embedded()).name,
            "gpu-embedded");
  GpuSpec custom = GpuSpec::gtx1080ti();
  custom.name = "my-weird-gpu";
  EXPECT_TRUE(
      TargetSpec::from_gpu(custom).name.starts_with("gpu-custom-"))
      << TargetSpec::from_gpu(custom).name;
}

TEST(Target, DistinctCustomGpusGetDistinctFingerprintedNames) {
  // Regression: unknown specs used to collapse onto one shared
  // "gpu-custom" name, so two unrelated machines wrote records under the
  // same "@gpu-custom" task keys and cross-contaminated each other's
  // warm starts. The name must now be a pure, stable function of the spec
  // that separates distinct machines.
  GpuSpec a = GpuSpec::gtx1080ti();
  a.name = "machine-a";
  GpuSpec b = a;
  b.name = "machine-b";                  // same numbers, different device
  GpuSpec c = a;
  c.dram_bw_gbps = a.dram_bw_gbps * 2;   // same device, different numbers
  const std::string name_a = TargetSpec::from_gpu(a).name;
  EXPECT_NE(name_a, TargetSpec::from_gpu(b).name);
  EXPECT_NE(name_a, TargetSpec::from_gpu(c).name);
  // Deterministic: the same spec always maps to the same name (the store
  // key namespace must be stable across processes and runs).
  EXPECT_EQ(name_a, TargetSpec::from_gpu(a).name);
}

TEST(Target, DefaultTargetMatchesHistoricalPascalSpec) {
  // The compatibility contract: the registry's gpu-pascal and the from_gpu
  // wrapping of GpuSpec::gtx1080ti() describe the same machine, so the
  // default pipeline's behavior is unchanged by the target layer.
  const TargetSpec reg = make_target("gpu-pascal");
  const TargetSpec wrapped = TargetSpec::from_gpu(GpuSpec::gtx1080ti());
  EXPECT_EQ(reg.kind, TargetKind::kGpu);
  EXPECT_EQ(reg.name, wrapped.name);
  EXPECT_EQ(reg.device_name, wrapped.device_name);
  EXPECT_DOUBLE_EQ(reg.peak_gflops(), wrapped.peak_gflops());
  EXPECT_DOUBLE_EQ(reg.gpu.dram_bw_gbps, wrapped.gpu.dram_bw_gbps);
  EXPECT_EQ(reg.gpu.shared_mem_per_block, wrapped.gpu.shared_mem_per_block);
}

TEST(Target, AccessorsDispatchOnKind) {
  const TargetSpec cpu = make_target("cpu-simd");
  EXPECT_EQ(cpu.kind, TargetKind::kCpu);
  EXPECT_DOUBLE_EQ(cpu.peak_gflops(), cpu.cpu.peak_gflops());
  EXPECT_DOUBLE_EQ(cpu.dram_bw_gbps(), cpu.cpu.dram_bw_gbps);
  EXPECT_DOUBLE_EQ(cpu.launch_overhead_us(),
                   cpu.cpu.parallel_launch_overhead_us);

  const TargetSpec fpga = make_target("fpga-systolic");
  EXPECT_EQ(fpga.kind, TargetKind::kFpga);
  EXPECT_DOUBLE_EQ(fpga.peak_gflops(), fpga.fpga.peak_gflops());
  EXPECT_DOUBLE_EQ(fpga.dram_bw_gbps(), fpga.fpga.dram_bw_gbps);
  EXPECT_DOUBLE_EQ(fpga.launch_overhead_us(), fpga.fpga.launch_overhead_us);
}

TEST(Target, KindNamesAreStable) {
  EXPECT_STREQ(target_kind_name(TargetKind::kGpu), "gpu");
  EXPECT_STREQ(target_kind_name(TargetKind::kCpu), "cpu");
  EXPECT_STREQ(target_kind_name(TargetKind::kFpga), "fpga");
}

}  // namespace
}  // namespace aal
