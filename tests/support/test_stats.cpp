#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/common.hpp"
#include "support/rng.hpp"

namespace aal {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.5, -3.0, 7.0, 0.25};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SampleVarianceBesselCorrected) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);         // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);  // unbiased
}

TEST(RunningStats, MergeEquivalentToCombinedStream) {
  Rng rng(5);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_gaussian(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(2.0);
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Stats, MeanAndVarianceBasics) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, EmptySpanMeanIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 15.0);
}

TEST(Stats, PercentileValidatesInput) {
  EXPECT_THROW(percentile({}, 50.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, -1.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 101.0), InvalidArgument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> b{1.0, 8.0, 27.0, 64.0, 125.0};  // monotone
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Stats, AverageRanksHandleTies) {
  const std::vector<double> xs{10.0, 20.0, 20.0, 30.0};
  const auto ranks = average_ranks(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Stats, RSquaredPerfectAndMean) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(truth, truth), 1.0);
  const std::vector<double> mean_pred{2.0, 2.0, 2.0};
  EXPECT_NEAR(r_squared(mean_pred, truth), 0.0, 1e-12);
}

TEST(Stats, RmseBasics) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<double> truth{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(pred, truth), 0.0);
  const std::vector<double> off{2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(off, truth), 1.0);
}

TEST(Stats, BootstrapCiCoversTrueMean) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) xs.push_back(rng.next_gaussian(10.0, 2.0));
  const ConfidenceInterval ci = bootstrap_mean_ci(xs);
  EXPECT_LE(ci.lo, ci.mean);
  EXPECT_GE(ci.hi, ci.mean);
  EXPECT_NEAR(ci.mean, mean(xs), 1e-12);
  // With n=60, sigma=2: the 95% CI half-width is ~0.5; 10 must be inside.
  EXPECT_LT(ci.lo, 10.0 + 1.0);
  EXPECT_GT(ci.hi, 10.0 - 1.0);
}

TEST(Stats, BootstrapCiNarrowsWithMoreData) {
  Rng rng(13);
  std::vector<double> small_xs, large_xs;
  for (int i = 0; i < 10; ++i) small_xs.push_back(rng.next_gaussian(0.0, 1.0));
  for (int i = 0; i < 500; ++i) large_xs.push_back(rng.next_gaussian(0.0, 1.0));
  const ConfidenceInterval a = bootstrap_mean_ci(small_xs);
  const ConfidenceInterval b = bootstrap_mean_ci(large_xs);
  EXPECT_GT(a.hi - a.lo, b.hi - b.lo);
}

TEST(Stats, BootstrapCiDeterministicAndValidated) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const ConfidenceInterval a = bootstrap_mean_ci(xs, 0.05, 500, 7);
  const ConfidenceInterval b = bootstrap_mean_ci(xs, 0.05, 500, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);

  const ConfidenceInterval single = bootstrap_mean_ci(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(single.lo, 5.0);
  EXPECT_DOUBLE_EQ(single.hi, 5.0);

  EXPECT_THROW(bootstrap_mean_ci({}), InvalidArgument);
  EXPECT_THROW(bootstrap_mean_ci(xs, 1.5), InvalidArgument);
  EXPECT_THROW(bootstrap_mean_ci(xs, 0.05, 5), InvalidArgument);
}

TEST(Stats, SizeMismatchThrows) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(pearson(a, b), InvalidArgument);
  EXPECT_THROW(spearman(a, b), InvalidArgument);
  EXPECT_THROW(rmse(a, b), InvalidArgument);
  EXPECT_THROW(r_squared(a, b), InvalidArgument);
}

}  // namespace
}  // namespace aal
