#include "support/arg_parser.hpp"

#include <gtest/gtest.h>

#include "support/common.hpp"

namespace aal {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return {args};
}

TEST(ArgParser, FlagsBothSyntaxes) {
  ArgParser p("test");
  p.add_flag("name", "a name", "default");
  p.add_int_flag("count", "a count", 7);

  auto args = argv_of({"--name", "alpha", "--count=42"});
  p.parse(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(p.get("name"), "alpha");
  EXPECT_EQ(p.get_int("count"), 42);
}

TEST(ArgParser, DefaultsApplyWhenUnset) {
  ArgParser p("test");
  p.add_flag("name", "a name", "fallback");
  p.add_int_flag("count", "a count", 9);
  p.add_switch("verbose", "chatty");
  p.parse(0, nullptr);
  EXPECT_EQ(p.get("name"), "fallback");
  EXPECT_EQ(p.get_int("count"), 9);
  EXPECT_FALSE(p.get_switch("verbose"));
}

TEST(ArgParser, SwitchesToggle) {
  ArgParser p("test");
  p.add_switch("verbose", "chatty");
  auto args = argv_of({"--verbose"});
  p.parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(p.get_switch("verbose"));
}

TEST(ArgParser, PositionalsInOrder) {
  ArgParser p("test");
  p.add_positional("first", "1st");
  p.add_positional("second", "2nd", /*required=*/false);
  auto args = argv_of({"aaa", "bbb"});
  p.parse(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(*p.get_positional("first"), "aaa");
  EXPECT_EQ(*p.get_positional("second"), "bbb");
}

TEST(ArgParser, OptionalPositionalMayBeAbsent) {
  ArgParser p("test");
  p.add_positional("first", "1st");
  p.add_positional("second", "2nd", /*required=*/false);
  auto args = argv_of({"only"});
  p.parse(static_cast<int>(args.size()), args.data());
  EXPECT_FALSE(p.get_positional("second").has_value());
}

TEST(ArgParser, MixedFlagsAndPositionals) {
  ArgParser p("test");
  p.add_positional("model", "model");
  p.add_flag("gpu", "target", "1080ti");
  auto args = argv_of({"--gpu", "v100", "resnet18"});
  p.parse(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(*p.get_positional("model"), "resnet18");
  EXPECT_EQ(p.get("gpu"), "v100");
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser p("test");
  p.add_positional("required", "needed");
  auto args = argv_of({"--help"});
  p.parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(p.help_requested());  // no missing-positional error
}

TEST(ArgParser, ErrorsOnBadInput) {
  ArgParser p("test");
  p.add_flag("name", "a name", "x");
  p.add_int_flag("count", "a count", 1);
  p.add_switch("flag", "switch");
  p.add_positional("pos", "positional");

  {
    auto args = argv_of({"--unknown", "v", "pos"});
    ArgParser q = p;
    EXPECT_THROW(q.parse(static_cast<int>(args.size()), args.data()),
                 InvalidArgument);
  }
  {
    auto args = argv_of({"pos", "--name"});  // missing value
    ArgParser q = p;
    EXPECT_THROW(q.parse(static_cast<int>(args.size()), args.data()),
                 InvalidArgument);
  }
  {
    auto args = argv_of({"pos", "--count", "NaN"});
    ArgParser q = p;
    EXPECT_THROW(q.parse(static_cast<int>(args.size()), args.data()),
                 InvalidArgument);
  }
  {
    auto args = argv_of({"pos", "--flag=1"});  // switch with value
    ArgParser q = p;
    EXPECT_THROW(q.parse(static_cast<int>(args.size()), args.data()),
                 InvalidArgument);
  }
  {
    auto args = argv_of({"pos", "extra"});
    ArgParser q = p;
    EXPECT_THROW(q.parse(static_cast<int>(args.size()), args.data()),
                 InvalidArgument);
  }
  {
    ArgParser q = p;  // missing required positional
    EXPECT_THROW(q.parse(0, nullptr), InvalidArgument);
  }
}

TEST(ArgParser, UsageMentionsEverything) {
  ArgParser p("My tool.");
  p.add_positional("model", "the model");
  p.add_flag("gpu", "target GPU", "1080ti");
  p.add_switch("quiet", "hush");
  const std::string u = p.usage("tool");
  EXPECT_NE(u.find("My tool."), std::string::npos);
  EXPECT_NE(u.find("<model>"), std::string::npos);
  EXPECT_NE(u.find("--gpu"), std::string::npos);
  EXPECT_NE(u.find("--quiet"), std::string::npos);
  EXPECT_NE(u.find("1080ti"), std::string::npos);
}

TEST(ArgParser, DuplicateRegistrationRejected) {
  ArgParser p("test");
  p.add_flag("x", "x", "1");
  EXPECT_THROW(p.add_flag("x", "again", "2"), InvalidArgument);
  EXPECT_THROW(p.add_switch("x", "again"), InvalidArgument);
}

}  // namespace
}  // namespace aal
