#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace aal {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 42; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 17) {
                                     throw std::runtime_error("worker failed");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SizeMatchesConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> acc{0};
  ThreadPool::shared().parallel_for(64, [&](std::size_t) { ++acc; });
  EXPECT_EQ(acc.load(), 64);
}

TEST(ThreadPool, SharedPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

TEST(ThreadPool, SharedPoolSurvivesRepeatedUse) {
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> acc{0};
    ThreadPool::shared().parallel_for(32, [&](std::size_t) { ++acc; });
    EXPECT_EQ(acc.load(), 32);
  }
}

TEST(ThreadPool, PoolUsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(
          16, [&](std::size_t i) {
            if (i == 3) throw std::runtime_error("first round fails");
          }),
      std::runtime_error);
  // The pool must drain the failed round completely and accept new work.
  std::atomic<int> acc{0};
  pool.parallel_for(64, [&](std::size_t) { ++acc; });
  EXPECT_EQ(acc.load(), 64);
  auto fut = pool.submit([] { return 7; });
  EXPECT_EQ(fut.get(), 7);
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto fut = pool.submit([&] { ran = true; });
  fut.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, SingleThreadPoolRunsEverything) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  long long total = 0;
  for (auto& f : futures) total += f.get();
  long long expected = 0;
  for (int i = 0; i < 200; ++i) expected += static_cast<long long>(i) * i;
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace aal
