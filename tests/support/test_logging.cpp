#include "support/logging.hpp"

#include <gtest/gtest.h>

namespace aal {
namespace {

TEST(Logging, ThresholdDefaultsAndSet) {
  const LogLevel original = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  set_log_threshold(original);
}

TEST(Logging, ScopedLevelRestores) {
  const LogLevel original = log_threshold();
  {
    ScopedLogLevel scope(LogLevel::kOff);
    EXPECT_EQ(log_threshold(), LogLevel::kOff);
    {
      ScopedLogLevel inner(LogLevel::kDebug);
      EXPECT_EQ(log_threshold(), LogLevel::kDebug);
    }
    EXPECT_EQ(log_threshold(), LogLevel::kOff);
  }
  EXPECT_EQ(log_threshold(), original);
}

TEST(Logging, SuppressedMessagesDoNotEvaluate) {
  ScopedLogLevel scope(LogLevel::kOff);
  int evaluations = 0;
  auto touch = [&]() {
    ++evaluations;
    return "msg";
  };
  AAL_LOG_DEBUG << touch();
  AAL_LOG_INFO << touch();
  AAL_LOG_ERROR << touch();
  EXPECT_EQ(evaluations, 0);
}

TEST(Logging, EnabledMessagesEvaluate) {
  ScopedLogLevel scope(LogLevel::kDebug);
  // Redirecting stderr is more trouble than it is worth; just check the
  // stream side effects run.
  int evaluations = 0;
  auto touch = [&]() {
    ++evaluations;
    return "msg";
  };
  ::testing::internal::CaptureStderr();
  AAL_LOG_DEBUG << touch();
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(captured.find("msg"), std::string::npos);
  EXPECT_NE(captured.find("DEBUG"), std::string::npos);
}

}  // namespace
}  // namespace aal
