#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace aal {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, NextIndexInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_index(17), 17u);
  }
  EXPECT_EQ(rng.next_index(1), 0u);
}

TEST(Rng, NextIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.next_index(0), InvalidArgument);
}

TEST(Rng, NextIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : s) EXPECT_LT(idx, 100u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(29);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(31);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), InvalidArgument);
}

TEST(Rng, SampleWithReplacementSizeAndRange) {
  Rng rng(37);
  const auto s = rng.sample_with_replacement(10, 40);
  EXPECT_EQ(s.size(), 40u);
  for (std::size_t idx : s) EXPECT_LT(idx, 10u);
  // With 40 draws from 10 values, collisions are certain.
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_LT(unique.size(), s.size());
}

TEST(Rng, BootstrapUniqueFractionNearTheory) {
  // The paper cites 1 - 1/e ~= 0.632 unique elements per bootstrap set.
  Rng rng(41);
  const std::size_t n = 2000;
  const auto s = rng.sample_with_replacement(n, n);
  std::set<std::size_t> unique(s.begin(), s.end());
  const double frac = static_cast<double>(unique.size()) / static_cast<double>(n);
  EXPECT_NEAR(frac, 0.632, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(47);
  Rng child = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace aal
