#include "support/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace aal {
namespace {

dense::Matrix random_matrix(std::size_t n, std::size_t d, Rng& rng) {
  dense::Matrix x(n, d);
  for (double& v : x.data) v = rng.next_double(-2.0, 2.0);
  return x;
}

TEST(DenseMatrix, FromRowsRoundTrip) {
  const std::vector<std::vector<double>> rows{{1.0, 2.0}, {3.0, 4.0}};
  const dense::Matrix m = dense::from_rows(rows);
  EXPECT_EQ(m.rows, 2u);
  EXPECT_EQ(m.cols, 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(DenseMatrix, FromRowsRejectsRagged) {
  const std::vector<std::vector<double>> bad{{1.0, 2.0}, {3.0}};
  EXPECT_THROW(dense::from_rows(bad), InvalidArgument);
}

TEST(DenseMatrix, FromRowsEmpty) {
  EXPECT_TRUE(dense::from_rows({}).empty());
}

TEST(DenseDot, MatchesSerialSum) {
  Rng rng(1);
  for (const std::size_t n : {0u, 1u, 3u, 4u, 7u, 16u, 33u}) {
    std::vector<double> a(n), b(n);
    for (auto& v : a) v = rng.next_double(-1.0, 1.0);
    for (auto& v : b) v = rng.next_double(-1.0, 1.0);
    double expected = 0.0;
    for (std::size_t i = 0; i < n; ++i) expected += a[i] * b[i];
    EXPECT_NEAR(dense::dot(a.data(), b.data(), n), expected, 1e-12) << n;
  }
}

TEST(DenseAxpy, BitwiseEqualsScalarLoop) {
  Rng rng(2);
  std::vector<double> x(17), y(17), expected(17);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.next_double();
    y[i] = rng.next_double();
    expected[i] = y[i] + 0.37 * x[i];
  }
  dense::axpy(0.37, x.data(), y.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(y[i], expected[i]);
  }
}

TEST(DenseGram, BlockedMatchesNaive) {
  Rng rng(3);
  // Sizes straddling the 48-row tile edge, plus degenerate shapes.
  for (const std::size_t n : {1u, 2u, 47u, 48u, 49u, 130u}) {
    const dense::Matrix x = random_matrix(n, 5, rng);
    std::vector<double> blocked, naive;
    dense::gram(x, blocked);
    dense::gram_naive(x, naive);
    ASSERT_EQ(blocked.size(), n * n);
    for (std::size_t i = 0; i < blocked.size(); ++i) {
      EXPECT_NEAR(blocked[i], naive[i], 1e-12) << "n=" << n << " idx=" << i;
    }
  }
}

TEST(DenseGram, SymmetricAndPsd) {
  Rng rng(4);
  const std::size_t n = 40;
  const dense::Matrix x = random_matrix(n, 6, rng);
  std::vector<double> g;
  dense::gram(x, g);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(g[i * n + j], g[j * n + i]);
    }
    // Diagonal of a Gram matrix is a squared norm.
    EXPECT_GE(g[i * n + i], 0.0);
  }
  // PSD spot check: v^T G v = ||X^T v||^2 >= 0 for random v.
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> v(n);
    for (auto& e : v) e = rng.next_double(-1.0, 1.0);
    double quad = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      quad += v[i] * dense::dot(&g[i * n], v.data(), n);
    }
    EXPECT_GE(quad, -1e-9);
  }
}

TEST(DensePairwiseSqDist, BlockedMatchesNaive) {
  Rng rng(5);
  for (const std::size_t n : {1u, 2u, 48u, 49u, 120u}) {
    const dense::Matrix x = random_matrix(n, 7, rng);
    std::vector<double> fast, naive;
    dense::pairwise_sq_dist(x, fast);
    dense::pairwise_sq_dist_naive(x, naive);
    ASSERT_EQ(fast.size(), n * n);
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], naive[i], 1e-12) << "n=" << n << " idx=" << i;
    }
  }
}

TEST(DensePairwiseSqDist, ZeroDiagonalAndDuplicateRowsNonNegative) {
  // The Gram identity can go fractionally negative for duplicates; the
  // kernel must clamp, and the diagonal must be exactly zero.
  dense::Matrix x(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    x.at(i, 0) = 0.1234567;
    x.at(i, 1) = -7.654321;
    x.at(i, 2) = 3.1415926;
  }
  std::vector<double> sq;
  dense::pairwise_sq_dist(x, sq);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(sq[i * 4 + i], 0.0);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_GE(sq[i * 4 + j], 0.0);
  }
}

TEST(DenseStandardize, WelfordMatchesTwoPassReference) {
  // The one-pass Welford moments must agree with the textbook two-pass
  // mean/variance to floating-point accuracy (the satellite fix replaced
  // the two-pass loop in ted.cpp with this kernel).
  Rng rng(6);
  dense::Matrix x = random_matrix(200, 4, rng);
  const dense::Matrix original = x;
  const dense::ColumnMoments moments = dense::standardize_columns(x);
  for (std::size_t c = 0; c < original.cols; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < original.rows; ++r) sum += original.at(r, c);
    const double mean = sum / static_cast<double>(original.rows);
    double var = 0.0;
    for (std::size_t r = 0; r < original.rows; ++r) {
      const double d = original.at(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(original.rows);
    EXPECT_NEAR(moments.mean[c], mean, 1e-12);
    EXPECT_NEAR(moments.stddev[c], std::sqrt(var), 1e-12);
    // And the transformed column must match the two-pass z-score.
    for (std::size_t r = 0; r < original.rows; ++r) {
      EXPECT_NEAR(x.at(r, c), (original.at(r, c) - mean) / std::sqrt(var),
                  1e-10);
    }
  }
}

TEST(DenseStandardize, ConstantColumnZeroed) {
  dense::Matrix x(3, 2);
  x.at(0, 0) = x.at(1, 0) = x.at(2, 0) = 5.0;
  x.at(0, 1) = 1.0;
  x.at(1, 1) = 2.0;
  x.at(2, 1) = 3.0;
  dense::standardize_columns(x);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(x.at(r, 0), 0.0);
  EXPECT_LT(x.at(0, 1), 0.0);
  EXPECT_GT(x.at(2, 1), 0.0);
}

TEST(DenseStandardize, EmptyAndSingleRow) {
  dense::Matrix empty;
  const auto m0 = dense::standardize_columns(empty);
  EXPECT_TRUE(m0.mean.empty());

  dense::Matrix one(1, 3);
  one.at(0, 0) = 4.0;
  const auto m1 = dense::standardize_columns(one);
  EXPECT_DOUBLE_EQ(m1.mean[0], 4.0);
  // A single row has zero variance: every column zeroes out.
  for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(one.at(0, c), 0.0);
}

TEST(DenseRowSqNorms, MatchesManualSum) {
  Rng rng(7);
  const std::size_t n = 9;
  std::vector<double> k(n * n);
  for (auto& v : k) v = rng.next_double(-1.0, 1.0);
  std::vector<double> norms(n);
  dense::row_sq_norms(k.data(), n, norms.data());
  for (std::size_t i = 0; i < n; ++i) {
    double expected = 0.0;
    for (std::size_t j = 0; j < n; ++j) expected += k[i * n + j] * k[i * n + j];
    EXPECT_DOUBLE_EQ(norms[i], expected);
  }
}

TEST(DenseDeflateRankOne, MatchesScalarUpdateAndRefreshesNorms) {
  Rng rng(8);
  const std::size_t n = 12;
  std::vector<double> k(n * n);
  for (auto& v : k) v = rng.next_double(-1.0, 1.0);
  std::vector<double> expected = k;
  std::vector<double> col(n);
  for (std::size_t u = 0; u < n; ++u) col[u] = k[3 * n + u];
  const double denom = 0.7;
  for (std::size_t i = 0; i < n; ++i) {
    const double ci = col[i] / denom;
    for (std::size_t j = 0; j < n; ++j) expected[i * n + j] -= ci * col[j];
  }
  std::vector<double> norms(n, -1.0);
  dense::row_sq_norms(k.data(), n, norms.data());
  dense::deflate_rank_one(k.data(), n, col.data(), denom, norms.data());
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_DOUBLE_EQ(k[i], expected[i]);
  for (std::size_t i = 0; i < n; ++i) {
    double fresh = 0.0;
    for (std::size_t j = 0; j < n; ++j) fresh += k[i * n + j] * k[i * n + j];
    EXPECT_DOUBLE_EQ(norms[i], fresh);
  }
}

}  // namespace
}  // namespace aal
