#include "support/string_util.hpp"

#include <gtest/gtest.h>

namespace aal {
namespace {

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtil, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "/"), "x/y/z");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"solo"}, "/"), "solo");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 4), "1.0000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(StringUtil, FormatPercentSigned) {
  EXPECT_EQ(format_percent(-0.1384), "-13.84%");
  EXPECT_EQ(format_percent(0.2923), "+29.23%");
  EXPECT_EQ(format_percent(0.0), "+0.00%");
}

TEST(StringUtil, FormatCount) {
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1500), "1.5K");
  EXPECT_EQ(format_count(209715200), "209.7M");
  EXPECT_EQ(format_count(2000000000), "2.0B");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("conv2d/n1", "conv2d"));
  EXPECT_FALSE(starts_with("conv", "conv2d"));
  EXPECT_TRUE(ends_with("file.txt", ".txt"));
  EXPECT_FALSE(ends_with("txt", "file.txt"));
}

TEST(TextTable, RendersAlignedGrid) {
  TextTable t;
  t.set_header({"Model", "Latency"});
  t.add_row({"AlexNet", "1.36"});
  t.add_row({"VGG-16", "6.52"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Model"), std::string::npos);
  EXPECT_NE(s.find("| AlexNet"), std::string::npos);
  EXPECT_NE(s.find("| VGG-16"), std::string::npos);
  // Every rendered line has the same width.
  const auto lines = split(s, '\n');
  std::size_t width = lines[0].size();
  for (const auto& line : lines) {
    if (!line.empty()) EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, HandlesShortRowsAndSeparators) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"1", "2", "3"});
  const std::string s = t.to_string();
  EXPECT_FALSE(s.empty());
}

}  // namespace
}  // namespace aal
