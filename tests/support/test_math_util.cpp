#include "support/math_util.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/common.hpp"

namespace aal {
namespace {

TEST(MathUtil, DivisorsSmall) {
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(7), (std::vector<std::int64_t>{1, 7}));
  EXPECT_EQ(divisors(64),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16, 32, 64}));
}

TEST(MathUtil, DivisorsPerfectSquare) {
  EXPECT_EQ(divisors(36), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
}

TEST(MathUtil, DivisorsRejectsNonPositive) {
  EXPECT_THROW(divisors(0), InvalidArgument);
  EXPECT_THROW(divisors(-4), InvalidArgument);
}

TEST(MathUtil, FactorizationCountsMatchEnumeration) {
  for (std::int64_t n : {1, 2, 6, 12, 24, 36, 64, 224}) {
    for (int k : {1, 2, 3, 4}) {
      const auto all = ordered_factorizations(n, k);
      EXPECT_EQ(static_cast<std::int64_t>(all.size()),
                count_ordered_factorizations(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(MathUtil, FactorizationsHaveCorrectProduct) {
  const auto all = ordered_factorizations(24, 3);
  for (const auto& f : all) {
    ASSERT_EQ(f.size(), 3u);
    std::int64_t prod = 1;
    for (std::int64_t v : f) {
      EXPECT_GE(v, 1);
      prod *= v;
    }
    EXPECT_EQ(prod, 24);
  }
}

TEST(MathUtil, FactorizationsAreDistinct) {
  const auto all = ordered_factorizations(36, 4);
  std::set<std::vector<std::int64_t>> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
}

TEST(MathUtil, KnownFactorizationCounts) {
  // 4-way ordered factorizations of 2^6: C(6+3,3) = 84.
  EXPECT_EQ(count_ordered_factorizations(64, 4), 84);
  // 224 = 2^5 * 7: C(8,3) * C(4,3) = 56 * 4 = 224.
  EXPECT_EQ(count_ordered_factorizations(224, 4), 224);
  // Any n with k=1 has exactly one factorization.
  EXPECT_EQ(count_ordered_factorizations(12345, 1), 1);
  // Prime p with k=2: (1,p) and (p,1).
  EXPECT_EQ(count_ordered_factorizations(13, 2), 2);
}

TEST(MathUtil, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(round_up(10, 32), 32);
  EXPECT_EQ(round_up(32, 32), 32);
  EXPECT_EQ(round_up(33, 32), 64);
}

TEST(MathUtil, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(next_power_of_two(1), 1);
  EXPECT_EQ(next_power_of_two(17), 32);
  EXPECT_EQ(next_power_of_two(64), 64);
}

TEST(MathUtil, Clamp) {
  EXPECT_EQ(clamp(5, 0, 10), 5);
  EXPECT_EQ(clamp(-5, 0, 10), 0);
  EXPECT_EQ(clamp(15, 0, 10), 10);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

// Property sweep: the count function is multiplicative over prime powers.
class FactorizationProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(FactorizationProperty, CountMatchesEnumerationAndAllValid) {
  const std::int64_t n = GetParam();
  for (int k = 1; k <= 4; ++k) {
    const auto all = ordered_factorizations(n, k);
    EXPECT_EQ(static_cast<std::int64_t>(all.size()),
              count_ordered_factorizations(n, k));
    for (const auto& f : all) {
      const std::int64_t prod = std::accumulate(
          f.begin(), f.end(), std::int64_t{1}, std::multiplies<>());
      EXPECT_EQ(prod, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CommonLayerExtents, FactorizationProperty,
                         ::testing::Values(1, 3, 7, 16, 32, 55, 56, 96, 112,
                                           192, 512));

}  // namespace
}  // namespace aal
