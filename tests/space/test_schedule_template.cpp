#include "space/schedule_template.hpp"

#include <gtest/gtest.h>

#include "graph/fusion.hpp"
#include "graph/models.hpp"
#include "test_util.hpp"

namespace aal {
namespace {

TEST(ScheduleTemplate, ConvSpaceKnobLayout) {
  const Workload w = testing::small_conv_workload();
  const ConfigSpace space = build_config_space(w);
  ASSERT_EQ(space.num_knobs(), 8u);
  EXPECT_EQ(space.knob(0).name(), "tile_f");
  EXPECT_EQ(space.knob(3).name(), "tile_rc");
  EXPECT_EQ(space.knob(6).name(), "auto_unroll_max_step");
  EXPECT_EQ(space.knob(7).name(), "unroll_explicit");
}

TEST(ScheduleTemplate, DepthwiseSpaceHasNoChannelReduction) {
  const Workload w = testing::small_depthwise_workload();
  const ConfigSpace space = build_config_space(w);
  ASSERT_EQ(space.num_knobs(), 7u);
  EXPECT_EQ(space.knob(0).name(), "tile_c");
  for (std::size_t i = 0; i < space.num_knobs(); ++i) {
    EXPECT_NE(space.knob(i).name(), "tile_rc");
  }
}

TEST(ScheduleTemplate, DenseSpaceKnobs) {
  const Workload w = testing::small_dense_workload();
  const ConfigSpace space = build_config_space(w);
  ASSERT_EQ(space.num_knobs(), 4u);
  EXPECT_EQ(space.knob(0).name(), "tile_y");
  EXPECT_EQ(space.knob(1).name(), "tile_k");
}

TEST(ScheduleTemplate, VggFirstNodeMatchesPaperScale) {
  // The paper: "the first optimization node in VGG-16 has approximately
  // 0.2 billion configuration points".
  const auto tasks = extract_tasks(fuse(make_vgg16()));
  ASSERT_FALSE(tasks.empty());
  const ConfigSpace space = build_config_space(tasks[0].workload);
  EXPECT_EQ(space.size(), 202309632);  // 84 * 224 * 224 * 2*2*2 * 3 * 2
}

TEST(ScheduleTemplate, ConvDecodeProductsMatchExtents) {
  const Workload w = testing::small_conv_workload();
  const Conv2dWorkload& c = w.as_conv2d();
  const ConfigSpace space = build_config_space(w);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Config config = space.sample(rng);
    const ConvSchedule s = decode_conv_schedule(w, space, config);
    EXPECT_EQ(s.bf * s.vf * s.tf * s.fi, c.out_channels);
    EXPECT_EQ(s.by * s.vy * s.ty * s.yi, c.out_height());
    EXPECT_EQ(s.bx * s.vx * s.tx * s.xi, c.out_width());
    EXPECT_EQ(s.rco * s.rci, c.in_channels / c.groups);
    EXPECT_EQ(s.ryo * s.ryi, c.kernel_h);
    EXPECT_EQ(s.rxo * s.rxi, c.kernel_w);
  }
}

TEST(ScheduleTemplate, DepthwiseDecodeProducts) {
  const Workload w = testing::small_depthwise_workload();
  const Conv2dWorkload& c = w.as_conv2d();
  const ConfigSpace space = build_config_space(w);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Config config = space.sample(rng);
    const ConvSchedule s = decode_conv_schedule(w, space, config);
    EXPECT_EQ(s.bf * s.vf * s.tf * s.fi, c.out_channels);
    EXPECT_EQ(s.rco, 1);
    EXPECT_EQ(s.rci, 1);
    EXPECT_EQ(s.ryo * s.ryi, c.kernel_h);
  }
}

TEST(ScheduleTemplate, DenseDecodeProducts) {
  const Workload w = testing::small_dense_workload();
  const DenseWorkload& d = w.as_dense();
  const ConfigSpace space = build_config_space(w);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Config config = space.sample(rng);
    const DenseSchedule s = decode_dense_schedule(w, space, config);
    EXPECT_EQ(s.bo * s.vo * s.to * s.oi, d.out_features);
    EXPECT_EQ(s.ko * s.ki, d.in_features);
  }
}

TEST(ScheduleTemplate, DecodeRejectsWrongKind) {
  const Workload conv = testing::small_conv_workload();
  const Workload dense = testing::small_dense_workload();
  const ConfigSpace conv_space = build_config_space(conv);
  const ConfigSpace dense_space = build_config_space(dense);
  Rng rng(9);
  EXPECT_THROW(decode_dense_schedule(conv, conv_space, conv_space.sample(rng)),
               InvalidArgument);
  EXPECT_THROW(decode_conv_schedule(dense, dense_space, dense_space.sample(rng)),
               InvalidArgument);
}

TEST(ScheduleTemplate, ScheduleHelpers) {
  const Workload w = testing::small_conv_workload();
  const ConfigSpace space = build_config_space(w);
  Rng rng(11);
  const Config config = space.sample(rng);
  const ConvSchedule s = decode_conv_schedule(w, space, config);
  EXPECT_EQ(s.threads_per_block(), s.tf * s.ty * s.tx);
  EXPECT_EQ(s.num_blocks(), s.bf * s.by * s.bx);
  EXPECT_EQ(s.per_thread_outputs(), s.vf * s.vy * s.vx * s.fi * s.yi * s.xi);
  EXPECT_EQ(s.tile_f() * s.bf, w.as_conv2d().out_channels);
}

// Property: the space size formula holds for every tunable task of a model.
class SpaceSizeProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(SpaceSizeProperty, SizeEqualsKnobProduct) {
  const auto tasks = extract_tasks(fuse(make_model(GetParam())));
  for (const auto& t : tasks) {
    const ConfigSpace space = build_config_space(t.workload);
    std::int64_t product = 1;
    for (std::size_t i = 0; i < space.num_knobs(); ++i) {
      product *= space.knob(i).size();
    }
    EXPECT_EQ(space.size(), product) << t.workload.key();
    EXPECT_GT(space.size(), 0) << t.workload.key();
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, SpaceSizeProperty,
                         ::testing::Values("alexnet", "mobilenet_v1",
                                           "squeezenet_v11"));

}  // namespace
}  // namespace aal
