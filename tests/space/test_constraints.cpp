// Property tests for hardware-native constraint pruning on ConfigSpace:
// the pruned set is a subset of the full space, sampling only returns
// feasible points, the statistics tally correctly (shared across copies),
// and pruning decisions are pure functions of the target spec.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hwsim/target.hpp"
#include "measure/tuning_task.hpp"
#include "space/config_space.hpp"
#include "test_util.hpp"

namespace aal {
namespace {

/// A small synthetic space (6 x 4 x 3 = 72 points) for exhaustive checks.
ConfigSpace tiny_space() {
  std::vector<Knob> knobs;
  knobs.push_back(Knob::split("tile", 32, 2));        // 6 factorizations
  knobs.push_back(Knob::option("unroll", {0, 2, 4, 8}));
  knobs.push_back(Knob::option("vec", {1, 2, 4}));
  return ConfigSpace(std::move(knobs));
}

SpaceConstraint even_flat_only() {
  return {"test.even-flat", [](const ConfigSpace&, const Config& c) {
            return c.flat % 2 == 0;
          }};
}

TEST(SpaceConstraints, SetConstraintsValidatesNameAndPredicate) {
  ConfigSpace space = tiny_space();
  EXPECT_THROW(
      space.set_constraints({{"", [](const ConfigSpace&, const Config&) {
                                return true;
                              }}}),
      InvalidArgument);
  EXPECT_THROW(space.set_constraints({{"test.null-predicate", nullptr}}),
               InvalidArgument);
  space.set_constraints({even_flat_only()});
  EXPECT_EQ(space.num_constraints(), 1u);
}

TEST(SpaceConstraints, FeasibleCountsChecksAndPrunes) {
  ConfigSpace space = tiny_space();
  space.set_constraints({even_flat_only()});
  EXPECT_EQ(space.feasibility_checks(), 0);
  EXPECT_TRUE(space.feasible(space.at(0)));
  EXPECT_FALSE(space.feasible(space.at(1)));
  EXPECT_FALSE(space.feasible(space.at(3)));
  EXPECT_EQ(space.feasibility_checks(), 3);
  EXPECT_EQ(space.pruned_count(), 2);
  // Replacing the constraint set resets the tally.
  space.set_constraints({even_flat_only()});
  EXPECT_EQ(space.feasibility_checks(), 0);
  EXPECT_EQ(space.pruned_count(), 0);
}

TEST(SpaceConstraints, UnconstrainedSpaceCountsNothing) {
  ConfigSpace space = tiny_space();
  EXPECT_TRUE(space.feasible(space.at(1)));
  EXPECT_EQ(space.feasibility_checks(), 0);
  EXPECT_EQ(space.pruned_count(), 0);
}

TEST(SpaceConstraints, CopiesShareOneStatsTally) {
  // ConfigSpace is a value type passed around by copy (TuningTask::space()
  // returns a reference but sessions copy it); the pruning tally must
  // aggregate over every copy or the reported counts undercount.
  ConfigSpace space = tiny_space();
  space.set_constraints({even_flat_only()});
  const ConfigSpace copy = space;
  EXPECT_FALSE(copy.feasible(copy.at(1)));
  EXPECT_TRUE(copy.feasible(copy.at(2)));
  EXPECT_EQ(space.feasibility_checks(), 2);
  EXPECT_EQ(space.pruned_count(), 1);
}

TEST(SpaceConstraints, SamplingOnlyReturnsFeasiblePoints) {
  ConfigSpace space = tiny_space();
  space.set_constraints({even_flat_only()});
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(space.sample(rng).flat % 2, 0);
  }
}

TEST(SpaceConstraints, SampleDistinctIsSubsetOfFeasibleSet) {
  ConfigSpace space = tiny_space();
  space.set_constraints({even_flat_only()});
  std::set<std::int64_t> feasible;
  for (std::int64_t f = 0; f < space.size(); f += 2) feasible.insert(f);

  Rng rng(7);
  const auto sampled = space.sample_distinct(20, rng);
  std::set<std::int64_t> distinct;
  for (const Config& c : sampled) {
    EXPECT_TRUE(feasible.count(c.flat)) << c.flat;
    distinct.insert(c.flat);
  }
  EXPECT_EQ(distinct.size(), sampled.size()) << "duplicates returned";

  // n >= size enumerates exactly the feasible subset, in order.
  Rng rng2(7);
  const auto everything = space.sample_distinct(space.size() + 10, rng2);
  ASSERT_EQ(everything.size(), feasible.size());
  for (const Config& c : everything) EXPECT_TRUE(feasible.count(c.flat));
}

TEST(SpaceConstraints, NeighborhoodsFilterInfeasiblePoints) {
  ConfigSpace space = tiny_space();
  space.set_constraints({even_flat_only()});
  Rng rng(9);
  const Config center = space.at(0);
  for (const Config& c : space.neighborhood(center, 2.0, 32, rng)) {
    EXPECT_EQ(c.flat % 2, 0);
  }
  for (const Config& c : space.feature_neighborhood(center, 2.0, 32, rng)) {
    EXPECT_EQ(c.flat % 2, 0);
  }
}

TEST(SpaceConstraints, UnconstrainedRngStreamIsUnchanged) {
  // Byte-compat guarantee: a space with no constraints must consume the RNG
  // exactly as the pre-constraint code did — attaching an EMPTY constraint
  // set (what GPU targets do) must not perturb any sampling stream.
  ConfigSpace plain = tiny_space();
  ConfigSpace with_empty = tiny_space();
  with_empty.set_constraints({});
  Rng a(11), b(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(plain.sample(a).flat, with_empty.sample(b).flat);
  }
  const auto da = plain.sample_distinct(30, a);
  const auto db = with_empty.sample_distinct(30, b);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].flat, db[i].flat);
  }
  EXPECT_EQ(a.next_index(1u << 30), b.next_index(1u << 30))
      << "RNG streams diverged";
}

TEST(SpaceConstraints, PruningIsPureInTargetSpec) {
  // Two tasks built from the same (workload, target) must agree on every
  // feasibility verdict — pruning depends on the target spec alone, never
  // on task identity, sampling history or check order.
  const Workload workload = testing::small_conv_workload();
  const TuningTask a(workload, make_target("cpu-simd"));
  const TuningTask b(workload, make_target("cpu-simd"));
  const ConfigSpace full = build_config_space(workload);
  Rng rng(13);
  const auto probes = full.sample_distinct(300, rng);
  for (auto it = probes.rbegin(); it != probes.rend(); ++it) {
    // b checks in reverse order: verdicts must not depend on order.
    b.space().feasible(*it);
  }
  int pruned = 0;
  for (const Config& c : probes) {
    const bool verdict = a.space().feasible(c);
    EXPECT_EQ(verdict, b.space().feasible(c)) << full.to_string(c);
    if (!verdict) ++pruned;
  }
  EXPECT_GT(pruned, 0) << "probe set never exercised pruning";

  // A different target spec draws a different feasible region.
  const TuningTask fpga(workload, make_target("fpga-systolic"));
  bool any_difference = false;
  for (const Config& c : probes) {
    if (a.space().feasible(c) != fpga.space().feasible(c)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SpaceConstraints, GpuTargetsAttachNoConstraints) {
  const Workload workload = testing::small_conv_workload();
  for (const char* name : {"gpu-pascal", "gpu-volta", "gpu-embedded"}) {
    const TuningTask task(workload, make_target(name));
    EXPECT_EQ(task.space().num_constraints(), 0u) << name;
  }
  EXPECT_GT(
      TuningTask(workload, make_target("cpu-simd")).space().num_constraints(),
      0u);
}

}  // namespace
}  // namespace aal
