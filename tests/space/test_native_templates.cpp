// Property suites for the target-native schedule templates (cpu-native,
// systolic), mirroring tests/space/test_constraints.cpp: decode round-trips
// (every split part multiplies back to its axis extent and respects its
// spec-derived cap), mostly-feasible-by-construction sampling, and the
// headline pin — the fpga-systolic native space's sampled infeasible rate
// stays at or below 10%, down from ~66% in the CUDA-shaped space.
#include <gtest/gtest.h>

#include "hwsim/target.hpp"
#include "measure/tuning_task.hpp"
#include "space/schedule_template.hpp"
#include "space/template_registry.hpp"
#include "test_util.hpp"

namespace aal {
namespace {

std::vector<Workload> conv_workloads() {
  return {testing::small_conv_workload(),
          testing::small_depthwise_workload()};
}

/// Sampled infeasible fraction of a task's constrained space: sampling
/// retries until feasible, so pruned/checked is exactly the metric the
/// tuner's `space.constraint_pruned / space.constraint_checked` exposes.
double sampled_infeasible_rate(const TuningTask& task, int samples,
                               std::uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) (void)task.space().sample(rng);
  const std::int64_t checked = task.space().feasibility_checks();
  EXPECT_GE(checked, samples);
  return static_cast<double>(task.space().pruned_count()) /
         static_cast<double>(checked);
}

// --- cpu-native ----------------------------------------------------------

TEST(NativeTemplates, CpuConvDecodeRoundTripsAndRespectsCaps) {
  const TargetSpec target = make_target("cpu-simd");
  const CpuSpec& spec = target.cpu;
  const std::int64_t cap_fi = 2 * spec.simd_width;
  const std::int64_t cap_yi = 4LL * spec.vector_registers / cap_fi;
  for (const Workload& w : conv_workloads()) {
    const TuningTask task(w, target, "cpu-native");
    const Conv2dWorkload& cw = w.as_conv2d();
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      const Config c = task.space().sample(rng);
      const ConvSchedule s =
          task.schedule_template().decode_conv(w, task.space(), c);
      // 3-way spatial splits: no vthread slot on a CPU.
      EXPECT_EQ(s.vf, 1);
      EXPECT_EQ(s.vy, 1);
      EXPECT_EQ(s.vx, 1);
      EXPECT_EQ(s.bf * s.tf * s.fi, cw.out_channels);
      EXPECT_EQ(s.by * s.ty * s.yi, cw.out_height());
      EXPECT_EQ(s.bx * s.tx * s.xi, cw.out_width());
      EXPECT_EQ(s.rco * s.rci, cw.in_channels / cw.groups);
      EXPECT_EQ(s.ryo * s.ryi, cw.kernel_h);
      EXPECT_EQ(s.rxo * s.rxi, cw.kernel_w);
      // Spec-derived caps: register tile inside the model's spill budget,
      // parallel-outer factors inside the core count.
      EXPECT_LE(s.fi, cap_fi);
      EXPECT_LE(s.yi, cap_yi);
      EXPECT_LE(s.xi, spec.simd_width);
      EXPECT_LE(s.bf, spec.cores);
      EXPECT_LE(s.by, spec.cores);
      EXPECT_LE(s.bx, spec.cores);
      if (w.kind() != WorkloadKind::kDepthwiseConv2d) {
        EXPECT_LE(s.rci, spec.simd_width);
      }
    }
  }
}

TEST(NativeTemplates, CpuDenseDecodeRoundTripsAndRespectsCaps) {
  const TargetSpec target = make_target("cpu-simd");
  const CpuSpec& spec = target.cpu;
  const Workload w = testing::small_dense_workload();
  const DenseWorkload& dw = w.as_dense();
  const TuningTask task(w, target, "native");
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Config c = task.space().sample(rng);
    const DenseSchedule s =
        task.schedule_template().decode_dense(w, task.space(), c);
    EXPECT_EQ(s.bo * s.vo * s.to * s.oi, dw.out_features);
    EXPECT_EQ(s.ko * s.ki, dw.in_features);
    EXPECT_LE(s.vo, 8);
    EXPECT_LE(s.to, 16);
    EXPECT_LE(s.oi, 8 * spec.simd_width);
    EXPECT_LE(s.ki, 2 * spec.simd_width);
  }
}

TEST(NativeTemplates, CpuNativeSamplesAreMostlyFeasibleAndProfileValid) {
  const TargetSpec target = make_target("cpu-simd");
  for (const Workload& w :
       {testing::small_conv_workload(), testing::small_depthwise_workload(),
        testing::small_dense_workload()}) {
    const TuningTask task(w, target, "native");
    EXPECT_LE(sampled_infeasible_rate(task, 500, 7), 0.10) << w.key();
    // Feasible samples must actually profile valid — the constraints and
    // the profile equations read the same decoded schedule.
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
      const Config c = task.space().sample(rng);
      EXPECT_TRUE(task.profile(c).valid) << task.space().to_string(c);
    }
  }
}

// --- systolic ------------------------------------------------------------

TEST(NativeTemplates, SystolicConvDecodeRoundTripsAndRespectsCaps) {
  const TargetSpec target = make_target("fpga-systolic");
  const FpgaSpec& spec = target.fpga;
  for (const Workload& w : conv_workloads()) {
    const TuningTask task(w, target, "systolic");
    const Conv2dWorkload& cw = w.as_conv2d();
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
      const Config c = task.space().sample(rng);
      const ConvSchedule s =
          task.schedule_template().decode_conv(w, task.space(), c);
      EXPECT_EQ(s.bf * s.vf * s.tf * s.fi, cw.out_channels);
      EXPECT_EQ(s.by * s.ty * s.yi, cw.out_height());
      EXPECT_EQ(s.vy, 1);
      EXPECT_EQ(s.bx * s.xi, cw.out_width());
      EXPECT_EQ(s.vx, 1);
      EXPECT_EQ(s.tx, 1);
      EXPECT_EQ(s.rco * s.rci, cw.in_channels / cw.groups);
      // PE-array caps: rows x cols spatial bound, per-PE SIMD bound,
      // replication bound.
      EXPECT_LE(s.tf, spec.pe_rows);
      EXPECT_LE(s.ty, spec.pe_cols);
      EXPECT_LE(s.tf * s.ty * s.tx, spec.pe_rows * spec.pe_cols);
      EXPECT_LE(s.fi, spec.simd_lanes);
      EXPECT_LE(s.vf, 2);
      // The pipelined array has no unroll analogue.
      EXPECT_EQ(s.auto_unroll_max_step, 0);
      EXPECT_FALSE(s.unroll_explicit);
    }
  }
}

TEST(NativeTemplates, SystolicDenseIsATwoKnobSpace) {
  const TargetSpec target = make_target("fpga-systolic");
  const FpgaSpec& spec = target.fpga;
  const Workload w = testing::small_dense_workload();
  const DenseWorkload& dw = w.as_dense();
  const TuningTask task(w, target, "native");
  ASSERT_EQ(task.space().num_knobs(), 2u);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const Config c = task.space().sample(rng);
    const DenseSchedule s =
        task.schedule_template().decode_dense(w, task.space(), c);
    EXPECT_EQ(s.bo * s.vo * s.to * s.oi, dw.out_features);
    EXPECT_EQ(s.ko * s.ki, dw.in_features);
    EXPECT_LE(s.to, spec.pe_rows * spec.pe_cols);
    EXPECT_LE(s.oi, spec.simd_lanes);
    EXPECT_LE(s.vo, 2);
    EXPECT_EQ(s.auto_unroll_max_step, 0);
  }
}

TEST(NativeTemplates, SystolicInfeasibleRateDropsFromCudaToAtMostTenPercent) {
  // The acceptance pin: on fpga-systolic the CUDA-shaped space rejects the
  // majority of samples (~66% across the zoo), while the native template's
  // space is mostly feasible by construction (<= 10%).
  const TargetSpec target = make_target("fpga-systolic");
  for (const Workload& w :
       {testing::small_conv_workload(), testing::small_depthwise_workload(),
        testing::small_dense_workload()}) {
    const TuningTask cuda_task(w, target);  // default CUDA-shaped space
    const TuningTask native_task(w, target, "native");
    const double cuda_rate = sampled_infeasible_rate(cuda_task, 500, 19);
    const double native_rate = sampled_infeasible_rate(native_task, 2000, 19);
    EXPECT_GE(cuda_rate, 0.30) << w.key();
    EXPECT_LE(native_rate, 0.10) << w.key();
    EXPECT_LT(native_rate, cuda_rate) << w.key();
  }
}

TEST(NativeTemplates, SystolicSamplesProfileValid) {
  const TargetSpec target = make_target("fpga-systolic");
  for (const Workload& w :
       {testing::small_conv_workload(), testing::small_dense_workload()}) {
    const TuningTask task(w, target, "systolic");
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
      const Config c = task.space().sample(rng);
      EXPECT_TRUE(task.profile(c).valid) << task.space().to_string(c);
    }
  }
}

// --- cross-template hygiene ---------------------------------------------

TEST(NativeTemplates, NativeSpacesAreSmallerThanCudaSpaces) {
  // Capping knob factors by the machine spec must shrink the search space,
  // never inflate it — the whole point is a denser feasible region.
  for (const char* target_name : {"cpu-simd", "fpga-systolic"}) {
    const TargetSpec target = make_target(target_name);
    for (const Workload& w :
         {testing::small_conv_workload(), testing::small_dense_workload()}) {
      const TuningTask cuda_task(w, target);
      const TuningTask native_task(w, target, "native");
      EXPECT_LT(native_task.space().size(), cuda_task.space().size())
          << target_name << " " << w.key();
      EXPECT_GT(native_task.space().size(), 1) << target_name << " "
                                               << w.key();
    }
  }
}

TEST(NativeTemplates, ConstraintStatsStayPureAcrossTemplates) {
  // Same (workload, target, template) => same feasibility verdicts, mirror
  // of SpaceConstraints.PruningIsPureInTargetSpec for the native spaces.
  const Workload w = testing::small_conv_workload();
  const TargetSpec target = make_target("fpga-systolic");
  const TuningTask a(w, target, "native");
  const TuningTask b(w, target, "native");
  Rng rng(29);
  const auto probes = a.space().sample_distinct(200, rng);
  for (const Config& c : probes) {
    EXPECT_EQ(a.space().feasible(c), b.space().feasible(b.space().at(c.flat)));
  }
}

}  // namespace
}  // namespace aal
