// Property-based ConfigSpace tests: randomized small spaces checked against
// the algebraic invariants the tuning stack leans on —
//   * flat -> config -> flat and choices -> flat -> choices round-trips,
//   * distance symmetry and identity,
//   * scope monotonicity: the radius-R ball is contained in the tau*R ball
//     (BAO's widening step may only ever *grow* the scope),
//   * neighborhood membership actually honors the radius.
//
// The ball-containment properties use small spaces with generous max_points
// so neighborhood() stays in its exact-enumeration regime (the sampling
// fallback for huge balls and the empty-ball escape hatch are deliberately
// out of scope here — they trade exactness for progress).
#include "space/config_space.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace aal {
namespace {

/// A randomized small space: 2-4 knobs mixing splits and options, total
/// size a few hundred points at most.
ConfigSpace random_space(Rng& rng) {
  const std::int64_t extents[] = {4, 6, 8, 12, 16};
  std::vector<Knob> knobs;
  const int num_knobs = 2 + static_cast<int>(rng.next_index(3));
  for (int i = 0; i < num_knobs; ++i) {
    const std::string name = "k" + std::to_string(i);
    if (rng.next_bernoulli(0.5)) {
      knobs.push_back(Knob::split(
          name, extents[rng.next_index(5)], 2 + static_cast<int>(rng.next_index(2))));
    } else {
      std::vector<std::int64_t> values;
      const int n = 2 + static_cast<int>(rng.next_index(4));
      for (int v = 0; v < n; ++v) values.push_back(1LL << v);
      knobs.push_back(Knob::option(name, std::move(values)));
    }
  }
  return ConfigSpace(std::move(knobs));
}

TEST(SpacePropertyTest, FlatConfigFlatRoundTrips) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const ConfigSpace space = random_space(rng);
    for (int i = 0; i < 50; ++i) {
      const std::int64_t flat =
          static_cast<std::int64_t>(rng.next_index(
              static_cast<std::uint64_t>(space.size())));
      const Config config = space.at(flat);
      EXPECT_EQ(config.flat, flat);
      EXPECT_EQ(space.flat_of(config.choices), flat);
      // choices -> flat -> choices is the identity too.
      const Config again = space.at(space.make(config.choices).flat);
      EXPECT_EQ(again.choices, config.choices);
    }
  }
}

TEST(SpacePropertyTest, FlatEncodingIsInjective) {
  Rng rng(202);
  for (int trial = 0; trial < 10; ++trial) {
    const ConfigSpace space = random_space(rng);
    std::set<std::vector<std::int32_t>> seen;
    for (std::int64_t flat = 0; flat < space.size(); ++flat) {
      EXPECT_TRUE(seen.insert(space.at(flat).choices).second)
          << "two flats decode to the same choices";
    }
  }
}

TEST(SpacePropertyTest, DistancesAreSymmetricWithZeroDiagonal) {
  Rng rng(303);
  for (int trial = 0; trial < 10; ++trial) {
    const ConfigSpace space = random_space(rng);
    for (int i = 0; i < 30; ++i) {
      const Config a = space.sample(rng);
      const Config b = space.sample(rng);
      EXPECT_DOUBLE_EQ(space.choice_distance_sq(a, b),
                       space.choice_distance_sq(b, a));
      EXPECT_DOUBLE_EQ(space.feature_distance_sq(a, b),
                       space.feature_distance_sq(b, a));
      EXPECT_DOUBLE_EQ(space.choice_distance_sq(a, a), 0.0);
      EXPECT_DOUBLE_EQ(space.feature_distance_sq(a, a), 0.0);
      EXPECT_GE(space.choice_distance_sq(a, b), 0.0);
      EXPECT_GE(space.feature_distance_sq(a, b), 0.0);
    }
  }
}

TEST(SpacePropertyTest, NeighborhoodMembersAreWithinRadiusAndDistinct) {
  Rng rng(404);
  constexpr std::size_t kCap = 100000;  // exact enumeration, cap not binding
  for (int trial = 0; trial < 10; ++trial) {
    const ConfigSpace space = random_space(rng);
    const Config center = space.sample(rng);
    for (const double radius : {1.0, 2.0, 3.0}) {
      const std::vector<Config> ball =
          space.neighborhood(center, radius, kCap, rng);
      std::set<std::int64_t> flats;
      for (const Config& c : ball) {
        EXPECT_NE(c.flat, center.flat) << "center must be excluded";
        EXPECT_LE(space.choice_distance_sq(c, center), radius * radius + 1e-9);
        EXPECT_TRUE(flats.insert(c.flat).second) << "duplicate member";
      }
    }
  }
}

TEST(SpacePropertyTest, ScopeNeverShrinksUnderTau) {
  // BAO's adaptation replaces R with tau*R (tau > 1): the new scope must be
  // a superset of the old one, point for point.
  Rng rng(505);
  constexpr std::size_t kCap = 100000;
  constexpr double kTau = 1.5;
  for (int trial = 0; trial < 10; ++trial) {
    const ConfigSpace space = random_space(rng);
    const Config center = space.sample(rng);
    double radius = 1.0;
    for (int widening = 0; widening < 4; ++widening) {
      const std::vector<Config> inner =
          space.neighborhood(center, radius, kCap, rng);
      const std::vector<Config> outer =
          space.neighborhood(center, kTau * radius, kCap, rng);
      EXPECT_GE(outer.size(), inner.size());
      std::set<std::int64_t> outer_flats;
      for (const Config& c : outer) outer_flats.insert(c.flat);
      for (const Config& c : inner) {
        EXPECT_TRUE(outer_flats.contains(c.flat))
            << "ball(R) member " << c.flat << " missing from ball(tau*R) at R="
            << radius;
      }
      radius *= kTau;
    }
  }
}

TEST(SpacePropertyTest, FeatureNeighborhoodMembersAreWithinRadius) {
  Rng rng(606);
  for (int trial = 0; trial < 10; ++trial) {
    const ConfigSpace space = random_space(rng);
    const Config center = space.sample(rng);
    const double radius = 3.0;
    const std::vector<Config> ball =
        space.feature_neighborhood(center, radius, 64, rng);
    ASSERT_FALSE(ball.empty());
    std::set<std::int64_t> flats;
    for (const Config& c : ball) {
      EXPECT_NE(c.flat, center.flat);
      EXPECT_TRUE(flats.insert(c.flat).second) << "duplicate member";
      // The empty-ball escape hatch may return one out-of-radius point, but
      // only when it returns exactly one point.
      if (ball.size() > 1) {
        EXPECT_LE(space.feature_distance_sq(c, center), radius * radius + 1e-9);
      }
    }
  }
}

TEST(SpacePropertyTest, SampleDistinctIsDistinctAndComplete) {
  Rng rng(707);
  for (int trial = 0; trial < 10; ++trial) {
    const ConfigSpace space = random_space(rng);
    const std::int64_t n = std::min<std::int64_t>(space.size(), 40);
    const std::vector<Config> picks = space.sample_distinct(n, rng);
    EXPECT_EQ(static_cast<std::int64_t>(picks.size()), n);
    std::set<std::int64_t> flats;
    for (const Config& c : picks) {
      EXPECT_TRUE(flats.insert(c.flat).second);
      EXPECT_GE(c.flat, 0);
      EXPECT_LT(c.flat, space.size());
    }
    // Asking for the whole space returns exactly the whole space.
    const std::vector<Config> all = space.sample_distinct(space.size(), rng);
    EXPECT_EQ(static_cast<std::int64_t>(all.size()), space.size());
  }
}

}  // namespace
}  // namespace aal
