#include "space/config_space.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/common.hpp"

namespace aal {
namespace {

ConfigSpace small_space() {
  std::vector<Knob> knobs;
  knobs.push_back(Knob::split("a", 8, 2));   // 4 entities
  knobs.push_back(Knob::split("b", 12, 2));  // 6 entities
  knobs.push_back(Knob::option("c", {0, 1, 2}));
  return ConfigSpace(std::move(knobs));
}

TEST(ConfigSpace, SizeIsProductOfKnobs) {
  const ConfigSpace s = small_space();
  EXPECT_EQ(s.size(), 4 * 6 * 3);
  EXPECT_EQ(s.num_knobs(), 3u);
}

TEST(ConfigSpace, EmptyKnobListRejected) {
  EXPECT_THROW(ConfigSpace(std::vector<Knob>{}), InvalidArgument);
}

TEST(ConfigSpace, FlatRoundTripExhaustive) {
  const ConfigSpace s = small_space();
  std::set<std::vector<std::int32_t>> seen;
  for (std::int64_t flat = 0; flat < s.size(); ++flat) {
    const Config c = s.at(flat);
    EXPECT_EQ(c.flat, flat);
    EXPECT_EQ(s.flat_of(c.choices), flat);
    seen.insert(c.choices);
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), s.size());
}

TEST(ConfigSpace, AtValidatesRange) {
  const ConfigSpace s = small_space();
  EXPECT_THROW(s.at(-1), InvalidArgument);
  EXPECT_THROW(s.at(s.size()), InvalidArgument);
}

TEST(ConfigSpace, FlatOfValidatesChoices) {
  const ConfigSpace s = small_space();
  EXPECT_THROW(s.flat_of({0, 0}), InvalidArgument);           // wrong arity
  EXPECT_THROW(s.flat_of({0, 0, 3}), InvalidArgument);        // out of range
  EXPECT_THROW(s.flat_of({-1, 0, 0}), InvalidArgument);
}

TEST(ConfigSpace, SampleIsInRange) {
  const ConfigSpace s = small_space();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Config c = s.sample(rng);
    EXPECT_GE(c.flat, 0);
    EXPECT_LT(c.flat, s.size());
  }
}

TEST(ConfigSpace, SampleDistinctReturnsDistinct) {
  const ConfigSpace s = small_space();
  Rng rng(5);
  const auto configs = s.sample_distinct(30, rng);
  EXPECT_EQ(configs.size(), 30u);
  std::set<std::int64_t> flats;
  for (const auto& c : configs) flats.insert(c.flat);
  EXPECT_EQ(flats.size(), 30u);
}

TEST(ConfigSpace, SampleDistinctCapsAtSpaceSize) {
  const ConfigSpace s = small_space();
  Rng rng(7);
  const auto configs = s.sample_distinct(10000, rng);
  EXPECT_EQ(static_cast<std::int64_t>(configs.size()), s.size());
}

TEST(ConfigSpace, FeatureDimMatchesVector) {
  const ConfigSpace s = small_space();
  EXPECT_EQ(s.feature_dim(), 2 + 2 + 1);
  Rng rng(9);
  const Config c = s.sample(rng);
  EXPECT_EQ(s.features(c).size(), static_cast<std::size_t>(s.feature_dim()));
}

TEST(ConfigSpace, ChoiceDistance) {
  const ConfigSpace s = small_space();
  const Config a = s.make({0, 0, 0});
  const Config b = s.make({3, 4, 0});
  EXPECT_DOUBLE_EQ(s.choice_distance_sq(a, b), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(s.choice_distance_sq(a, a), 0.0);
}

TEST(ConfigSpace, NeighborhoodWithinRadiusAndExcludesCenter) {
  const ConfigSpace s = small_space();
  Rng rng(11);
  const Config center = s.make({2, 3, 1});
  const auto nb = s.neighborhood(center, 2.0, 1000, rng);
  EXPECT_FALSE(nb.empty());
  std::set<std::int64_t> flats;
  for (const auto& c : nb) {
    EXPECT_NE(c.flat, center.flat);
    EXPECT_LE(s.choice_distance_sq(center, c), 4.0 + 1e-9);
    flats.insert(c.flat);
  }
  EXPECT_EQ(flats.size(), nb.size());
}

TEST(ConfigSpace, NeighborhoodExactMatchesBruteForce) {
  const ConfigSpace s = small_space();
  Rng rng(13);
  const Config center = s.make({1, 2, 1});
  const double radius = 2.0;
  const auto nb = s.neighborhood(center, radius, 100000, rng);

  std::size_t brute = 0;
  for (std::int64_t flat = 0; flat < s.size(); ++flat) {
    const Config c = s.at(flat);
    if (c.flat != center.flat &&
        s.choice_distance_sq(center, c) <= radius * radius) {
      ++brute;
    }
  }
  EXPECT_EQ(nb.size(), brute);
}

TEST(ConfigSpace, NeighborhoodHonorsMaxPoints) {
  const ConfigSpace s = small_space();
  Rng rng(17);
  const Config center = s.make({2, 3, 1});
  const auto nb = s.neighborhood(center, 3.0, 5, rng);
  EXPECT_LE(nb.size(), 5u);
  EXPECT_FALSE(nb.empty());
}

TEST(ConfigSpace, NeighborhoodZeroRadiusFallsBack) {
  const ConfigSpace s = small_space();
  Rng rng(19);
  const Config center = s.make({0, 0, 0});
  // Radius 0 has no in-ball neighbors; the fallback must still provide one.
  const auto nb = s.neighborhood(center, 0.0, 10, rng);
  EXPECT_FALSE(nb.empty());
  for (const auto& c : nb) EXPECT_NE(c.flat, center.flat);
}

TEST(ConfigSpace, FeatureDistanceMatchesManual) {
  const ConfigSpace s = small_space();
  const Config a = s.make({0, 0, 0});
  const Config b = s.make({3, 4, 2});
  const auto fa = s.features(a);
  const auto fb = s.features(b);
  double expected = 0.0;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    expected += (fa[i] - fb[i]) * (fa[i] - fb[i]);
  }
  EXPECT_DOUBLE_EQ(s.feature_distance_sq(a, b), expected);
  EXPECT_DOUBLE_EQ(s.feature_distance_sq(a, a), 0.0);
}

TEST(ConfigSpace, FeatureNeighborhoodWithinRadius) {
  const ConfigSpace s = small_space();
  Rng rng(29);
  const Config center = s.make({2, 3, 1});
  const double radius = 2.5;
  const auto nb = s.feature_neighborhood(center, radius, 200, rng);
  EXPECT_FALSE(nb.empty());
  std::set<std::int64_t> flats;
  for (const auto& c : nb) {
    EXPECT_NE(c.flat, center.flat);
    EXPECT_LE(s.feature_distance_sq(center, c), radius * radius + 1e-9);
    flats.insert(c.flat);
  }
  EXPECT_EQ(flats.size(), nb.size());
}

TEST(ConfigSpace, FeatureNeighborhoodFallsBackWhenEmpty) {
  const ConfigSpace s = small_space();
  Rng rng(31);
  const Config center = s.make({0, 0, 0});
  // Radius 0 admits nothing; the fallback must still return one point.
  const auto nb = s.feature_neighborhood(center, 0.0, 10, rng);
  EXPECT_FALSE(nb.empty());
  for (const auto& c : nb) EXPECT_NE(c.flat, center.flat);
}

TEST(ConfigSpace, ToStringShowsKnobs) {
  const ConfigSpace s = small_space();
  const std::string str = s.to_string(s.make({0, 0, 1}));
  EXPECT_NE(str.find("a="), std::string::npos);
  EXPECT_NE(str.find("c=1"), std::string::npos);
}

// Property sweep over radii: all returned points are inside the ball.
class NeighborhoodRadius : public ::testing::TestWithParam<double> {};

TEST_P(NeighborhoodRadius, AllPointsInsideBall) {
  const double radius = GetParam();
  const ConfigSpace s = small_space();
  Rng rng(23);
  const Config center = s.make({2, 2, 1});
  for (const auto& c : s.neighborhood(center, radius, 64, rng)) {
    EXPECT_LE(std::sqrt(s.choice_distance_sq(center, c)), radius + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, NeighborhoodRadius,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 4.5));

}  // namespace
}  // namespace aal
