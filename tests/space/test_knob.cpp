#include "space/knob.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/math_util.hpp"

namespace aal {
namespace {

TEST(Knob, SplitEnumeratesAllFactorizations) {
  const Knob k = Knob::split("tile_f", 16, 4);
  EXPECT_TRUE(k.is_split());
  EXPECT_EQ(k.name(), "tile_f");
  EXPECT_EQ(k.size(), count_ordered_factorizations(16, 4));
  for (const auto& entity : k.as_split().entities) {
    ASSERT_EQ(entity.size(), 4u);
    std::int64_t prod = 1;
    for (std::int64_t f : entity) prod *= f;
    EXPECT_EQ(prod, 16);
  }
}

TEST(Knob, SplitOfOneIsSingleton) {
  const Knob k = Knob::split("t", 1, 4);
  EXPECT_EQ(k.size(), 1);
  EXPECT_EQ(k.as_split().entities[0],
            (std::vector<std::int64_t>{1, 1, 1, 1}));
}

TEST(Knob, OptionHoldsValues) {
  const Knob k = Knob::option("auto_unroll", {0, 512, 1500});
  EXPECT_FALSE(k.is_split());
  EXPECT_EQ(k.size(), 3);
  EXPECT_EQ(k.as_option().values[1], 512);
  EXPECT_THROW(k.as_split(), InvalidArgument);
}

TEST(Knob, OptionRejectsEmpty) {
  EXPECT_THROW(Knob::option("x", {}), InvalidArgument);
}

TEST(Knob, FeatureWidths) {
  EXPECT_EQ(Knob::split("s", 8, 4).feature_width(), 4);
  EXPECT_EQ(Knob::split("s", 8, 2).feature_width(), 2);
  EXPECT_EQ(Knob::option("o", {0, 1}).feature_width(), 1);
}

TEST(Knob, SplitFeaturesAreLog2Factors) {
  const Knob k = Knob::split("s", 8, 2);
  // Find the entity [2, 4].
  std::int64_t choice = -1;
  for (std::int64_t i = 0; i < k.size(); ++i) {
    if (k.as_split().entities[static_cast<std::size_t>(i)] ==
        std::vector<std::int64_t>{2, 4}) {
      choice = i;
    }
  }
  ASSERT_GE(choice, 0);
  std::vector<double> feats;
  k.append_features(choice, feats);
  ASSERT_EQ(feats.size(), 2u);
  EXPECT_DOUBLE_EQ(feats[0], 1.0);  // log2(2)
  EXPECT_DOUBLE_EQ(feats[1], 2.0);  // log2(4)
}

TEST(Knob, OptionFeatureIsLog2Plus1) {
  const Knob k = Knob::option("o", {0, 511, 1500});
  std::vector<double> feats;
  k.append_features(0, feats);
  EXPECT_DOUBLE_EQ(feats[0], 0.0);
  feats.clear();
  k.append_features(1, feats);
  EXPECT_DOUBLE_EQ(feats[0], 9.0);  // log2(512)
}

TEST(Knob, AppendFeaturesValidatesChoice) {
  const Knob k = Knob::option("o", {1, 2});
  std::vector<double> feats;
  EXPECT_THROW(k.append_features(-1, feats), InvalidArgument);
  EXPECT_THROW(k.append_features(2, feats), InvalidArgument);
}

TEST(Knob, EntityToString) {
  const Knob split = Knob::split("s", 4, 2);
  const std::string s = split.entity_to_string(0);
  EXPECT_EQ(s.front(), '[');
  EXPECT_EQ(s.back(), ']');
  const Knob opt = Knob::option("o", {7});
  EXPECT_EQ(opt.entity_to_string(0), "7");
}

}  // namespace
}  // namespace aal
