// Golden feature-matrix fixtures.
//
// The featurization contract — column order (knob order, split parts
// in-order), scale (log2 factors, log2(v+1) options) and exact bit patterns
// — is load-bearing: fitted surrogates, checked-in golden traces and the
// batched scoring engine all assume rows produced today match rows produced
// by every past and future session. These fixtures pin the encoding with
// literal hex-float constants captured from the reference implementation;
// if any test here fails, the feature encoding changed and every persisted
// model/trace artifact is invalidated — that is a breaking change, not a
// fixture to regenerate casually.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "hwsim/target.hpp"
#include "measure/tuning_task.hpp"
#include "space/config_space.hpp"
#include "test_util.hpp"

namespace aal {
namespace {

::testing::AssertionResult rows_bits_equal(std::span<const double> got,
                                           std::span<const double> want) {
  if (got.size() != want.size()) {
    return ::testing::AssertionFailure()
           << "width " << got.size() << " != " << want.size();
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(got[i]) !=
        std::bit_cast<std::uint64_t>(want[i])) {
      return ::testing::AssertionFailure()
             << "column " << i << ": " << got[i] << " != " << want[i];
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(FeatureMatrixGolden, SmallSpaceFullMatrixPinned) {
  // split("tile", 8, 2) enumerates ordered factorizations in divisor order:
  // [1,8] [2,4] [4,2] [8,1]; option values feed log2(v+1). Both the entity
  // order and the encodings are pinned literally.
  std::vector<Knob> knobs;
  knobs.push_back(Knob::split("tile", 8, 2));
  knobs.push_back(Knob::option("unroll", {0, 512, 1500}));
  const ConfigSpace s(std::move(knobs));
  ASSERT_EQ(s.size(), 12);
  ASSERT_EQ(s.feature_dim(), 3);

  const double kLog513 = 0x1.20170f83ff0a7p+3;   // log2(512 + 1)
  const double kLog1501 = 0x1.51a798159301p+3;   // log2(1500 + 1)
  const std::vector<std::vector<double>> expected = {
      {0.0, 3.0, 0.0},      {0.0, 3.0, kLog513}, {0.0, 3.0, kLog1501},
      {1.0, 2.0, 0.0},      {1.0, 2.0, kLog513}, {1.0, 2.0, kLog1501},
      {2.0, 1.0, 0.0},      {2.0, 1.0, kLog513}, {2.0, 1.0, kLog1501},
      {3.0, 0.0, 0.0},      {3.0, 0.0, kLog513}, {3.0, 0.0, kLog1501},
  };
  for (std::int64_t flat = 0; flat < s.size(); ++flat) {
    const auto row = s.features(s.at(flat));
    EXPECT_TRUE(
        rows_bits_equal(row, expected[static_cast<std::size_t>(flat)]))
        << "flat " << flat;
  }

  // The pinned entity order itself (the column semantics depend on it).
  const SplitKnob& tile = s.knob(0).as_split();
  const std::vector<std::vector<std::int64_t>> entities = {
      {1, 8}, {2, 4}, {4, 2}, {8, 1}};
  EXPECT_EQ(tile.entities, entities);
}

struct TargetFixture {
  const char* target;
  // Rows for flats {0, 12345, size() - 1}, captured from the reference
  // featurization of testing::small_conv_workload().
  std::vector<std::vector<double>> rows;
};

const std::vector<double>& conv_row_flat0() {
  static const std::vector<double> row = {
      0x0p+0, 0x0p+0, 0x0p+0, 0x1.4p+2,                      // tile_f [1,1,1,32]
      0x0p+0, 0x0p+0, 0x0p+0, 0x1.33abb3faa0216p+2,          // tile_y [1,1,1,28]
      0x0p+0, 0x0p+0, 0x0p+0, 0x1.33abb3faa0216p+2,          // tile_x [1,1,1,28]
      0x0p+0, 0x1p+2,                                        // tile_rc [1,16]
      0x0p+0, 0x1.95c01a39fbd68p+0,                          // tile_ry [1,3]
      0x0p+0, 0x1.95c01a39fbd68p+0,                          // tile_rx [1,3]
      0x0p+0,                                                // unroll 0
      0x0p+0,                                                // explicit 0
  };
  return row;
}

const std::vector<double>& conv_row_flat12345() {
  static const std::vector<double> row = {
      0x0p+0, 0x0p+0, 0x0p+0, 0x1.4p+2,
      0x0p+0, 0x0p+0, 0x1p+1, 0x1.675767f54042dp+1,
      0x1p+0, 0x1p+0, 0x0p+0, 0x1.675767f54042dp+1,
      0x1p+2, 0x0p+0,
      0x0p+0, 0x1.95c01a39fbd68p+0,
      0x1.95c01a39fbd68p+0, 0x0p+0,
      0x1.20170f83ff0a7p+3,
      0x1p+0,
  };
  return row;
}

const std::vector<double>& conv_row_last() {
  static const std::vector<double> row = {
      0x1.4p+2, 0x0p+0, 0x0p+0, 0x0p+0,
      0x1.33abb3faa0216p+2, 0x0p+0, 0x0p+0, 0x0p+0,
      0x1.33abb3faa0216p+2, 0x0p+0, 0x0p+0, 0x0p+0,
      0x1p+2, 0x0p+0,
      0x1.95c01a39fbd68p+0, 0x0p+0,
      0x1.95c01a39fbd68p+0, 0x0p+0,
      0x1.51a798159301p+3,
      0x1p+0,
  };
  return row;
}

TEST(FeatureMatrixGolden, Conv2dRowsPinnedPerTarget) {
  // The encoding is a function of the workload alone; attaching any
  // target's constraints must not bend a single bit of it. The same pinned
  // rows therefore hold for the GPU, CPU and FPGA device models.
  const std::vector<std::vector<double>> expected = {
      conv_row_flat0(), conv_row_flat12345(), conv_row_last()};
  for (const char* target : {"gpu-pascal", "cpu-simd", "fpga-systolic"}) {
    const TuningTask task(testing::small_conv_workload(), make_target(target));
    const ConfigSpace& s = task.space();
    ASSERT_EQ(s.feature_dim(), 20) << target;
    ASSERT_EQ(s.size(), 10752000) << target;

    // Column layout: knob order with split parts in-order.
    const std::vector<std::pair<std::string, int>> layout = {
        {"tile_f", 4}, {"tile_y", 4}, {"tile_x", 4},
        {"tile_rc", 2}, {"tile_ry", 2}, {"tile_rx", 2},
        {"auto_unroll_max_step", 1}, {"unroll_explicit", 1}};
    ASSERT_EQ(s.num_knobs(), layout.size()) << target;
    for (std::size_t i = 0; i < layout.size(); ++i) {
      EXPECT_EQ(s.knob(i).name(), layout[i].first) << target;
      EXPECT_EQ(s.knob(i).feature_width(), layout[i].second) << target;
    }

    const std::int64_t flats[] = {0, 12345, s.size() - 1};
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(
          rows_bits_equal(s.features(s.at(flats[i])), expected[i]))
          << target << " flat " << flats[i];
    }
  }
}

TEST(FeatureMatrixGolden, BatchPathsMatchScalarFeaturesBitwise) {
  // features_into and features_batch are the batched spellings of
  // features(); all three must agree bit for bit on arbitrary configs.
  const TuningTask task(testing::small_conv_workload(),
                        make_target("gpu-pascal"));
  const ConfigSpace& s = task.space();
  Rng rng(17);
  const std::vector<Config> configs = s.sample_distinct(64, rng);
  const auto dim = static_cast<std::size_t>(s.feature_dim());

  const dense::Matrix batch =
      s.features_batch({configs.data(), configs.size()});
  ASSERT_EQ(batch.rows, configs.size());
  ASSERT_EQ(batch.cols, dim);

  std::vector<double> into(dim);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const std::vector<double> reference = s.features(configs[i]);
    s.features_into(configs[i], into);
    EXPECT_TRUE(rows_bits_equal(into, reference)) << "row " << i;
    EXPECT_TRUE(rows_bits_equal({batch.row(i), dim}, reference))
        << "row " << i;
  }
}

}  // namespace
}  // namespace aal
