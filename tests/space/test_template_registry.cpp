// TemplateRegistry API: request resolution (aliases, exact names, family
// validation), the build_config_space compatibility shim, and the template
// qualification of task keys. The per-template decode/feasibility property
// suites live in test_native_templates.cpp.
#include <gtest/gtest.h>

#include <algorithm>

#include "hwsim/target.hpp"
#include "measure/tuning_task.hpp"
#include "space/schedule_template.hpp"
#include "space/template_registry.hpp"
#include "test_util.hpp"

namespace aal {
namespace {

std::vector<Workload> all_test_workloads() {
  return {testing::small_conv_workload(), testing::small_depthwise_workload(),
          testing::small_dense_workload()};
}

TEST(TemplateRegistry, ListsTheThreeShippedTemplates) {
  const auto names = TemplateRegistry::instance().template_names();
  EXPECT_EQ(names,
            (std::vector<std::string>{"cuda", "cpu-native", "systolic"}));
}

TEST(TemplateRegistry, EmptyAndDefaultResolveToCudaOnEveryTarget) {
  const TemplateRegistry& reg = TemplateRegistry::instance();
  for (const std::string& name : target_names()) {
    const TargetSpec target = make_target(name);
    EXPECT_EQ(reg.resolve("", target).name(), kDefaultTemplateName) << name;
    EXPECT_EQ(reg.resolve("default", target).name(), kDefaultTemplateName)
        << name;
  }
}

TEST(TemplateRegistry, NativeResolvesPerTargetFamily) {
  const TemplateRegistry& reg = TemplateRegistry::instance();
  // The CUDA space is GPU-native, so "native" is the default there.
  EXPECT_EQ(reg.resolve("native", make_target("gpu-pascal")).name(), "cuda");
  EXPECT_EQ(reg.resolve("native", make_target("cpu-simd")).name(),
            "cpu-native");
  EXPECT_EQ(reg.resolve("native", make_target("fpga-systolic")).name(),
            "systolic");
}

TEST(TemplateRegistry, NativeTemplateNameCoversEveryKind) {
  EXPECT_STREQ(TemplateRegistry::native_template_name(TargetKind::kGpu),
               "cuda");
  EXPECT_STREQ(TemplateRegistry::native_template_name(TargetKind::kCpu),
               "cpu-native");
  EXPECT_STREQ(TemplateRegistry::native_template_name(TargetKind::kFpga),
               "systolic");
}

TEST(TemplateRegistry, ExactNamesAreValidatedAgainstTheTargetFamily) {
  const TemplateRegistry& reg = TemplateRegistry::instance();
  EXPECT_EQ(reg.resolve("systolic", make_target("fpga-systolic")).name(),
            "systolic");
  EXPECT_EQ(reg.resolve("cpu-native", make_target("cpu-simd")).name(),
            "cpu-native");
  // Family mismatches throw, naming the valid set for the target.
  EXPECT_THROW((void)reg.resolve("systolic", make_target("gpu-pascal")),
               InvalidArgument);
  EXPECT_THROW((void)reg.resolve("cpu-native", make_target("fpga-systolic")),
               InvalidArgument);
  EXPECT_THROW((void)reg.resolve("systolic", make_target("cpu-simd")),
               InvalidArgument);
}

TEST(TemplateRegistry, UnknownNamesThrow) {
  const TemplateRegistry& reg = TemplateRegistry::instance();
  EXPECT_THROW((void)reg.resolve("no-such-template",
                                 make_target("gpu-pascal")),
               InvalidArgument);
  EXPECT_THROW((void)reg.get("no-such-template"), InvalidArgument);
}

TEST(TemplateRegistry, GetSkipsFamilyValidation) {
  // Store-key decode paths look templates up by exact name even when the
  // local process has no target of the matching family registered.
  EXPECT_EQ(TemplateRegistry::instance().get("systolic").name(), "systolic");
  EXPECT_EQ(TemplateRegistry::instance().get("cpu-native").name(),
            "cpu-native");
}

TEST(TemplateRegistry, TemplateNamesForKindMatchServes) {
  const TemplateRegistry& reg = TemplateRegistry::instance();
  EXPECT_EQ(reg.template_names_for(TargetKind::kGpu),
            (std::vector<std::string>{"cuda"}));
  EXPECT_EQ(reg.template_names_for(TargetKind::kCpu),
            (std::vector<std::string>{"cuda", "cpu-native"}));
  EXPECT_EQ(reg.template_names_for(TargetKind::kFpga),
            (std::vector<std::string>{"cuda", "systolic"}));
}

TEST(TemplateRegistry, ShimBuildsTheSameSpaceAsTheCudaTemplate) {
  // build_config_space is a deprecated forwarding shim; it must agree with
  // the registry's cuda template knob for knob and decode to identical
  // schedules — the byte-compat contract behind the golden traces.
  const TemplateRegistry& reg = TemplateRegistry::instance();
  const ScheduleTemplate& cuda = reg.get(kDefaultTemplateName);
  for (const Workload& w : all_test_workloads()) {
    const ConfigSpace shim = build_config_space(w);
    const ConfigSpace direct = cuda.build(w, TargetSpec{});
    ASSERT_EQ(shim.size(), direct.size()) << w.key();
    ASSERT_EQ(shim.num_knobs(), direct.num_knobs()) << w.key();
    for (std::size_t k = 0; k < shim.num_knobs(); ++k) {
      EXPECT_EQ(shim.knob(k).name(), direct.knob(k).name());
      EXPECT_EQ(shim.knob(k).size(), direct.knob(k).size());
    }
    Rng rng(17);
    for (int i = 0; i < 32; ++i) {
      const Config c = shim.sample(rng);
      EXPECT_EQ(shim.to_string(c), direct.to_string(direct.at(c.flat)));
    }
  }
}

TEST(TemplateRegistry, DefaultTemplateKeysAreUnqualified) {
  const Workload w = testing::small_conv_workload();
  // Default target + default template: the bare legacy key.
  EXPECT_EQ(TuningTask::key_for(w, TargetSpec{}), w.key());
  // "native" on a GPU resolves to cuda, so still no suffix.
  EXPECT_EQ(TuningTask::key_for(w, make_target("gpu-pascal"), "native"),
            w.key());
  // Non-default target, default template: target-qualified only.
  EXPECT_EQ(TuningTask::key_for(w, make_target("cpu-simd")),
            w.key() + "@cpu-simd");
}

TEST(TemplateRegistry, NativeTemplateKeysCarryTheSuffix) {
  const Workload w = testing::small_conv_workload();
  EXPECT_EQ(TuningTask::key_for(w, make_target("cpu-simd"), "native"),
            w.key() + "@cpu-simd#cpu-native");
  EXPECT_EQ(TuningTask::key_for(w, make_target("fpga-systolic"), "systolic"),
            w.key() + "@fpga-systolic#systolic");
}

TEST(TemplateRegistry, TuningTaskThreadsTemplateIdentity) {
  const Workload w = testing::small_conv_workload();
  const TuningTask task(w, make_target("fpga-systolic"), "native");
  EXPECT_EQ(task.template_name(), "systolic");
  EXPECT_EQ(&task.schedule_template(),
            &TemplateRegistry::instance().get("systolic"));
  EXPECT_EQ(task.key(), w.key() + "@fpga-systolic#systolic");
  // The same task built with the default request keeps the legacy key and
  // a different (CUDA-shaped) space.
  const TuningTask legacy(w, make_target("fpga-systolic"));
  EXPECT_EQ(legacy.template_name(), kDefaultTemplateName);
  EXPECT_EQ(legacy.key(), w.key() + "@fpga-systolic");
  EXPECT_NE(task.space().size(), legacy.space().size());
}

TEST(TemplateRegistry, TuningTaskRejectsFamilyMismatch) {
  const Workload w = testing::small_conv_workload();
  EXPECT_THROW(TuningTask(w, make_target("gpu-pascal"), "systolic"),
               InvalidArgument);
  EXPECT_THROW(TuningTask(w, make_target("cpu-simd"), "bogus"),
               InvalidArgument);
}

TEST(TemplateRegistry, SplitCappedFiltersEntitiesByPerPartCaps) {
  const Knob k = Knob::split_capped("tile", 64, 3, {0, 8, 4});
  EXPECT_GT(k.size(), 0);
  EXPECT_LT(k.size(), Knob::split("tile", 64, 3).size());
  for (const auto& entity : k.as_split().entities) {
    std::int64_t prod = 1;
    for (std::int64_t f : entity) prod *= f;
    EXPECT_EQ(prod, 64);          // still exact factorizations
    EXPECT_LE(entity[1], 8);      // capped parts respect their caps
    EXPECT_LE(entity[2], 4);
  }
}

TEST(TemplateRegistry, SplitCappedFallsBackWhenCapsRejectEverything) {
  // A prime extent above every cap has no satisfying factorization; the
  // knob must keep the unfiltered set (the constraint layer is the net).
  const Knob capped = Knob::split_capped("tile", 13, 2, {4, 4});
  const Knob full = Knob::split("tile", 13, 2);
  EXPECT_EQ(capped.size(), full.size());
}

}  // namespace
}  // namespace aal
